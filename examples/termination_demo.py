"""Watch the Fig-2 distributed termination protocol work, message by message.

A tiny cyclic dataset keeps answer tuples trickling around the strong
component of the rule/goal graph.  This example captures the full message
trace and prints the tail end of the conversation: the leader's end-request
waves going down the breadth-first spanning tree, the end-negative answers
while tuples are still in flight, and finally two clean waves of
end-confirmed followed by the end message to the customer.

Run:  python examples/termination_demo.py
"""

from repro import parse_program
from repro.network.engine import MessagePassingEngine
from repro.network.messages import (
    EndConfirmed,
    EndMessage,
    EndNegative,
    EndRequest,
)
from repro.network.tracing import MessageTrace
from repro.workloads import facts_from_tables

PROGRAM = """
goal(Z) <- t(0, Z).
t(X, Y) <- e(X, Y).
t(X, Y) <- t(X, U), t(U, Y).
"""

EDGES = [(0, 1), (1, 2), (2, 0)]  # a 3-cycle: answers circulate


def main() -> None:
    program = parse_program(PROGRAM).with_facts(facts_from_tables({"e": EDGES}))
    trace = MessageTrace()
    engine = MessagePassingEngine(program, trace=trace, seed=7)
    result = engine.run()

    print("Strong components and their BFST leaders:")
    for info in engine.graph.strong_components():
        print(f"  leader: {engine.graph.node_label(info.leader)}")
        for member in sorted(info.members):
            marker = "*" if member == info.leader else " "
            print(f"   {marker} {engine.graph.node_label(member)}")

    protocol = [
        m
        for m in trace.messages
        if isinstance(m, (EndRequest, EndNegative, EndConfirmed, EndMessage))
    ]
    print()
    print(f"Answers: {sorted(result.answers)}")
    print(
        f"{result.computation_messages} computation messages, "
        f"{result.protocol_messages} protocol messages, "
        f"{result.protocol_rounds} end-request waves."
    )

    print()
    print("The last 30 protocol messages (the final waves and the end):")
    tail = MessageTrace()
    tail.messages = protocol[-30:]
    print(tail.render(engine.graph))

    waves = [m for m in protocol if isinstance(m, EndRequest)]
    confirmed = [m for m in protocol if isinstance(m, EndConfirmed)]
    print()
    print(
        f"It took {max(m.round_id for m in waves)} waves; "
        f"the last {len({m.round_id for m in confirmed})} produced confirmations "
        "(a node confirms only after being idle for a full inter-wave period)."
    )

    print()
    print("Activity timeline (computation rows go quiet; protocol probes on):")
    print(trace.activity_timeline(engine.graph, buckets=64))


if __name__ == "__main__":
    main()
