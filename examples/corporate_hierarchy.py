"""Corporate hierarchy: relevance-restricted queries over a large org chart.

Scenario: a company database records who reports to whom (``reports_to``)
and which office each employee sits in.  The query asks for everyone in the
CEO-designate's *management chain's* reporting subtree — a recursive query
touching only a sliver of a large organization.

This example showcases the framework's central efficiency mechanism: the
class "d" (dynamically bound) arguments restrict every intermediate relation
to the part reachable from the query constant.  We run the same query with
sideways information passing on (greedy) and off (all-free) and print how
much of the database each strategy actually touched.

Run:  python examples/corporate_hierarchy.py
"""

import random

from repro import all_free_sip, evaluate, parse_program
from repro.workloads import facts_from_tables

RULES = """
% goal: everyone managed (directly or transitively) by the target, with
% the office they sit in.
goal(Person, Office) <- manages(carol, Person), sits_in(Person, Office).

% manages is the transitive closure of direct reports.
manages(Boss, Person) <- reports_to(Person, Boss).
manages(Boss, Person) <- reports_to(Person, Middle), manages(Boss, Middle).
"""


def build_company(divisions: int, size: int, seed: int = 42):
    """A forest of `divisions` reporting trees, each with `size` employees."""
    rng = random.Random(seed)
    reports_to = []
    sits_in = []
    offices = ["hq", "east", "west", "lab"]
    for division in range(divisions):
        boss = f"d{division}_head"
        names = [boss] + [f"d{division}_e{i}" for i in range(size)]
        for i, name in enumerate(names[1:], start=1):
            manager = names[rng.randrange(0, i)]  # random tree shape
            reports_to.append((name, manager))
        for name in names:
            sits_in.append((name, rng.choice(offices)))
    # carol runs division 0.
    reports_to.append(("d0_head", "carol"))
    sits_in.append(("carol", "hq"))
    return {"reports_to": reports_to, "sits_in": sits_in}


def main() -> None:
    tables = build_company(divisions=8, size=40)
    program = parse_program(RULES).with_facts(facts_from_tables(tables))
    total_employees = len(tables["sits_in"])

    restricted = evaluate(program)
    unrestricted = evaluate(program, sip_factory=all_free_sip)
    assert restricted.answers == unrestricted.answers

    print(f"Company size: {total_employees} employees in 8 divisions")
    print(f"People in carol's subtree: {len(restricted.answers)}")
    print()
    sample = sorted(restricted.answers)[:8]
    for person, office in sample:
        print(f"  {person:14s} sits in {office}")
    if len(restricted.answers) > len(sample):
        print(f"  ... and {len(restricted.answers) - len(sample)} more")

    print()
    print("Work comparison (sideways information passing on vs off):")
    print(f"  {'':24s}{'greedy':>10s}{'all-free':>10s}")
    print(f"  {'tuples materialized':24s}{restricted.tuples_stored:>10d}"
          f"{unrestricted.tuples_stored:>10d}")
    print(f"  {'EDB rows retrieved':24s}{restricted.db_rows_retrieved:>10d}"
          f"{unrestricted.db_rows_retrieved:>10d}")
    print(f"  {'messages':24s}{restricted.total_messages:>10d}"
          f"{unrestricted.total_messages:>10d}")
    print()
    print("The greedy strategy never looks at the other 7 divisions: the 'd'")
    print("binding on `manages` flows carol's subtree down to the EDB index.")


if __name__ == "__main__":
    main()
