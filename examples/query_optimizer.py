"""Static analysis and statistics-driven optimization of a real-ish workload.

A product-catalog knowledge base: categories form a tree, products belong to
categories, a sparse `featured` table flags a handful of products.  The
query finds featured products in a given category's subtree.

Three stages, mirroring how the library is meant to be used:

1. ``analyze`` the program: recursion classes, induced binding patterns,
   monotone flow per rule, and warnings (the Section 4 toolbox as a linter);
2. evaluate with the paper's default **greedy** strategy (which knows only
   the structure of the rules);
3. gather ``EdbStatistics`` and re-evaluate with the **statistics-driven**
   strategy (the §3.1 "optimization information" extension) — the sparse
   `featured` table gets scheduled early and the work drops sharply.

Run:  python examples/query_optimizer.py
"""

import random

from repro import evaluate, parse_program
from repro.core.analysis import analyze
from repro.core.optimizer import EdbStatistics, statistics_sip
from repro.relational.database import Database
from repro.workloads import facts_from_tables

RULES = """
% Featured products somewhere under a category (subtree search).
goal(Product) <- in_subtree(electronics, Cat), product(Product, Cat),
                 featured(Product).

in_subtree(Cat, Cat) <- category(Cat).
in_subtree(Root, Cat) <- subcategory(Mid, Root), in_subtree(Mid, Cat).
"""


def build_catalog(categories: int = 60, products: int = 1500, seed: int = 7):
    rng = random.Random(seed)
    names = ["electronics"] + [f"cat{i}" for i in range(1, categories)]
    subcategory = []
    for i in range(1, categories):
        parent = names[rng.randrange(0, i)]
        subcategory.append((names[i], parent))
    product = [(f"prod{i}", rng.choice(names)) for i in range(products)]
    featured = [(f"prod{i}",) for i in rng.sample(range(products), 12)]
    return {
        "category": [(n,) for n in names],
        "subcategory": subcategory,
        "product": product,
        "featured": featured,
    }


def main() -> None:
    tables = build_catalog()
    program = parse_program(RULES).with_facts(facts_from_tables(tables))

    print("=== 1. Static analysis ===")
    print(analyze(program).render())

    print()
    print("=== 2. Structural greedy strategy ===")
    structural = evaluate(program)
    print(f"answers: {len(structural.answers)}")
    print(f"tuples materialized: {structural.tuples_stored}")
    print(f"EDB rows retrieved:  {structural.db_rows_retrieved}")

    print()
    print("=== 3. Statistics-driven strategy (§3.1 extension) ===")
    stats = EdbStatistics.from_database(Database.from_tuples(tables))
    informed = evaluate(program, sip_factory=statistics_sip(stats))
    assert informed.answers == structural.answers
    print(f"answers: {len(informed.answers)} (identical)")
    print(f"tuples materialized: {informed.tuples_stored}")
    print(f"EDB rows retrieved:  {informed.db_rows_retrieved}")

    saved = structural.tuples_stored / max(1, informed.tuples_stored)
    print()
    print(f"Knowing that `featured` holds 12 rows (vs {len(tables['product'])} "
          f"products) is worth {saved:.1f}x in materialized tuples here.")


if __name__ == "__main__":
    main()
