"""Flight routes: nonlinear recursion with cycles, on two runtimes.

Reachability over an airline network whose route map contains cycles —
evaluated with the *nonlinear* transitive closure (t = hop ∪ t∘t, the
divide-and-conquer formulation Section 1.2 highlights: "nonlinear recursion
frequently arises in divide-and-conquer algorithms").  Cycles in the data
produce cycles of messages; duplicate deletion makes the nodes go idle and
the Fig-2 protocol detects it — no global coordinator ever looks at the
whole network.

The same query then runs on the asyncio runtime: one task and one queue per
rule/goal graph node, genuinely concurrent, and necessarily relying on the
distributed termination protocol to know it is done.

Run:  python examples/flight_routes.py
"""

from repro import evaluate, parse_program
from repro.runtime import evaluate_async
from repro.workloads import facts_from_tables

RULES = """
goal(City) <- reachable(sfo, City).

% Nonlinear (divide-and-conquer) closure: a trip is a hop, or two trips.
reachable(A, B) <- hop(A, B).
reachable(A, B) <- reachable(A, M), reachable(M, B).
"""

ROUTES = [
    # A west-coast cycle ...
    ("sfo", "lax"), ("lax", "sea"), ("sea", "sfo"),
    # ... connected onward to hubs ...
    ("sea", "ord"), ("ord", "jfk"), ("jfk", "lhr"),
    ("lhr", "cdg"), ("cdg", "jfk"),  # trans-atlantic cycle
    ("ord", "den"), ("den", "lax"),
    # ... and a component unreachable from sfo:
    ("syd", "akl"), ("akl", "syd"), ("akl", "hnd"),
]


def main() -> None:
    program = parse_program(RULES).with_facts(facts_from_tables({"hop": ROUTES}))

    result = evaluate(program)
    print(f"Cities reachable from SFO over {len(ROUTES)} routes:")
    print("  " + ", ".join(city for (city,) in sorted(result.answers)))
    unreachable = {c for pair in ROUTES for c in pair} - {
        c for (c,) in result.answers
    } - {"sfo"}
    print(f"Never requested / never derived: {', '.join(sorted(unreachable))}")
    print()
    print("Deterministic simulator run:")
    print("  " + result.summary().replace("\n", "\n  "))

    concurrent = evaluate_async(program)
    assert concurrent.answers == result.answers
    print()
    print(f"asyncio runtime: {concurrent.tasks} concurrent node tasks, "
          f"{concurrent.messages_sent} messages, same {len(concurrent.answers)} answers.")
    print("The run ends when the termination protocol's end message reaches")
    print("the driver — no task can see the other queues.")


if __name__ == "__main__":
    main()
