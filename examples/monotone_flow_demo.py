"""Monotone flow analysis: hypergraphs, qual trees, and strategy costs.

Walks Example 4.1's three rules through the Section 4 toolbox:

* build each rule's evaluation hypergraph for the binding p(X^d, Z^f);
* GYO-reduce it — R1 and R2 reduce (monotone flow), R3 leaves the Y/V/W
  cyclic core (Fig 4);
* for the monotone rules, print the qual tree and the greedy SIP obtained by
  directing its edges away from the root (Theorem 4.1);
* rank all evaluation orders with the §4.3 cost model and confirm the
  qual-tree order is model-optimal.

Run:  python examples/monotone_flow_demo.py
"""

from repro.core.costmodel import CostModel, rank_orders
from repro.core.monotone import (
    evaluation_hypergraph,
    qual_tree_sip,
    rule_qual_tree,
)
from repro.core.sips import adorn_body, is_greedy
from repro.workloads import adorned_head_df, rule_r1, rule_r2, rule_r3


def show_rule(name, rule):
    head = adorned_head_df(rule)
    print(f"{name}: {rule}")
    print(f"  head binding: {head}")

    reduction = evaluation_hypergraph(rule, head).gyo_reduction()
    if not reduction.acyclic:
        core = ", ".join(sorted(v.name for v in reduction.cyclic_core_vertices()))
        print(f"  hypergraph: CYCLIC — no monotone flow (core: {core})")
        print("  parallel branch evaluation risks large, nearly unjoinable")
        print("  intermediates (see benchmarks/bench_ex41_monotone_flow.py)")
        print()
        return

    print("  hypergraph: acyclic — the rule has the MONOTONE FLOW property")
    tree = rule_qual_tree(rule, head)
    parents = tree.parent_map()

    def subgoal_name(label):
        if label == "head":
            return f"head^b ({head})"
        return str(rule.body[int(str(label)[1:])])

    print("  qual tree (child <- parent):")
    for child in sorted(parents, key=str):
        print(f"    {subgoal_name(child):24s} <- {subgoal_name(parents[child])}")

    sip = qual_tree_sip(rule, head)
    adorned = adorn_body(sip)
    order = " -> ".join(str(adorned[i]) for i in sip.order)
    print(f"  qual-tree SIP: {order}")
    print(f"  greedy per Definition 2.4: {is_greedy(sip)}")

    model = CostModel()
    ranked = rank_orders(rule, head, model)
    sip_cost = model.estimate_sip(sip).total_cost
    print(
        f"  cost model: qual-tree order costs {sip_cost:,.0f}; best of all "
        f"{len(ranked)} orders costs {ranked[0].total_cost:,.0f}; "
        f"worst costs {ranked[-1].total_cost:,.0f}"
    )
    print()


def main() -> None:
    print("Example 4.1 of the paper, analyzed by the library:\n")
    show_rule("R1", rule_r1())
    show_rule("R2", rule_r2())
    show_rule("R3", rule_r3())


if __name__ == "__main__":
    main()
