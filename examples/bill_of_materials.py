"""Bill-of-materials part explosion — nonlinear recursion with shared parts.

A manufacturing database records which parts each assembly directly uses.
Part explosion ("every part inside a widget, at any depth") is the classic
deductive-database query, here in the divide-and-conquer form the paper's
§1.2 highlights as the kind of nonlinear recursion its framework handles
and linear-recursion methods (Henschen–Naqvi) do not::

    contains(A, P) <- uses(A, P).
    contains(A, P) <- contains(A, S), contains(S, P).

Subassemblies are *shared* (a screw appears in many places): duplicate
deletion at goal nodes is what keeps the message traffic proportional to
the distinct part set, not to the number of paths through the DAG.

Run:  python examples/bill_of_materials.py
"""

from repro import Session, evaluate
from repro.workloads import (
    bill_of_materials_program,
    bom_tables,
    facts_from_tables,
)


def main() -> None:
    tables = bom_tables(depth=5, fanout=3, shared=6, seed=11)
    uses = tables["uses"]
    program = bill_of_materials_program("widget").with_facts(
        facts_from_tables(tables)
    )
    print(f"Bill of materials: {len(uses)} direct uses-edges, shared subparts.")

    result = evaluate(program)
    print(f"The widget transitively contains {len(result.answers)} distinct parts.")
    print()

    # Count paths vs parts: the gap is what dedup saved.
    children: dict = {}
    for parent, child in uses:
        children.setdefault(parent, []).append(child)

    def count_paths(part: str) -> int:
        return 1 + sum(count_paths(c) for c in children.get(part, ()))

    paths = count_paths("widget") - 1
    print(f"Derivation paths through the DAG: {paths}")
    print(f"Distinct parts (answers):        {len(result.answers)}")
    print(f"Tuples the engine materialized:  {result.tuples_stored}")
    print("Duplicate deletion is why the engine's work tracks distinct parts —")
    print("and why the recursive cycles go quiescent at all (Section 3.1).")
    print()

    # The same data through the Session API: interactive what-uses queries.
    session = Session(
        """
        contains(A, P) <- uses(A, P).
        contains(A, P) <- contains(A, S), contains(S, P).
        """
    )
    from repro.core.atoms import Atom
    from repro.core.terms import Constant

    session.add_facts(
        Atom("uses", (Constant(a), Constant(p))) for a, p in uses
    )
    some_part = sorted(result.answers)[len(result.answers) // 2][0]
    containers = session.query(f"contains(A, {_quote(some_part)})")
    print(f"Part {some_part} appears inside {len(containers)} assemblies "
          f"(reverse query on the same session).")
    assert session.ask(f"contains(widget, {_quote(some_part)})")


def _quote(value: object) -> str:
    text = str(value)
    return text if text.isidentifier() and text[0].islower() else f"'{text}'"


if __name__ == "__main__":
    main()
