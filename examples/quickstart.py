"""Quickstart: define a recursive Datalog program and evaluate the query.

The library implements Van Gelder's message-passing framework (SIGMOD 1986):
the program below is compiled into an information-passing rule/goal graph,
each node becomes a process, and the query is answered entirely by message
exchange — tuple requests flowing down, answer tuples flowing up, and the
distributed termination protocol detecting when the recursive component is
done.

Run:  python examples/quickstart.py
"""

from repro import evaluate, parse_program

PROGRAM = """
% Who are Ann's ancestors' descendants? A classic recursive query.
goal(Z) <- anc(ann, Z).

anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, U), anc(U, Y).

% The EDB: a small family tree (par(child's-parent... no: par(X, Y) reads
% "Y is a child of X" here, so anc finds descendants).
par(ann, bob).
par(ann, bea).
par(bob, cal).
par(bob, cat).
par(cal, dee).
"""


def main() -> None:
    program = parse_program(PROGRAM)
    result = evaluate(program)

    print("Descendants of ann:")
    for (person,) in sorted(result.answers):
        print(f"  {person}")

    print()
    print("How the distributed evaluation went:")
    print(result.summary())

    # The rule/goal graph that structured the computation (Section 2):
    print()
    print("Rule/goal graph:")
    print(result.graph.pretty())


if __name__ == "__main__":
    main()
