"""Unit tests for the canonical paper programs."""

from repro.core.rules import GOAL_PREDICATE
from repro.workloads import (
    P1_TEXT,
    adorned_head_df,
    ancestor_program,
    left_recursive_tc_program,
    mutual_recursion_program,
    nonlinear_tc_program,
    nonrecursive_join_program,
    program_p1,
    rule_r1,
    rule_r2,
    rule_r3,
    same_generation_program,
)


class TestP1:
    def test_structure(self):
        program = program_p1()
        assert len(program.rules) == 3
        assert program.idb_predicates == {GOAL_PREDICATE, "p"}
        assert {"q", "r"} <= program.edb_predicates

    def test_custom_constant(self):
        program = program_p1("z9")
        (query,) = program.query_rules
        from repro.core.terms import Constant

        assert query.body[0].args[0] == Constant("z9")

    def test_text_matches_paper(self):
        assert "p(X, U), q(U, V), p(V, Y)" in P1_TEXT


class TestExample41Rules:
    def test_r1_shape(self):
        rule = rule_r1()
        assert [s.predicate for s in rule.body] == ["a", "b", "c"]

    def test_r2_shape(self):
        rule = rule_r2()
        assert [s.predicate for s in rule.body] == ["a", "b", "c", "d", "e"]
        assert rule.body[0].arity == 3

    def test_r3_differs_from_r2_by_w(self):
        r2_vars = {v.name for v in rule_r2().variables()}
        r3_vars = {v.name for v in rule_r3().variables()}
        assert r3_vars - r2_vars == {"W"}

    def test_adorned_head_df(self):
        adorned = adorned_head_df(rule_r1())
        assert adorned.adornment == ("d", "f")

    def test_adorned_head_requires_binary(self):
        import pytest

        from repro.core.parser import parse_rule

        with pytest.raises(ValueError):
            adorned_head_df(parse_rule("p(X) <- e(X)."))


class TestRecursionShapes:
    def test_ancestor_linear(self):
        assert ancestor_program().is_linear()

    def test_nonlinear_tc_nonlinear(self):
        assert not nonlinear_tc_program().is_linear()

    def test_left_recursive_first_subgoal(self):
        program = left_recursive_tc_program()
        recursive_rule = program.rules_for("t")[0]
        assert recursive_rule.body[0].predicate == "t"

    def test_same_generation_recursive(self):
        assert "sg" in same_generation_program().recursive_predicates()

    def test_mutual_recursion_pair(self):
        program = mutual_recursion_program()
        assert program.recursive_predicates() == {"oddp", "evenp"}

    def test_nonrecursive_join(self):
        assert not nonrecursive_join_program().is_recursive()

    def test_all_programs_validate(self):
        for program in (
            program_p1(),
            ancestor_program(),
            nonlinear_tc_program(),
            left_recursive_tc_program(),
            same_generation_program(),
            mutual_recursion_program(),
            nonrecursive_join_program(),
        ):
            program.validate()
