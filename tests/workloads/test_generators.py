"""Unit tests for the workload generators: shapes, determinism, bounds."""

from repro.core.atoms import Atom
from repro.workloads import (
    chain_edges,
    cycle_edges,
    facts_from_tables,
    grid_edges,
    layered_dag_edges,
    p1_tables,
    pair_table,
    random_digraph_edges,
    tree_parent_edges,
)


class TestShapes:
    def test_chain(self):
        assert chain_edges(4) == [(0, 1), (1, 2), (2, 3)]

    def test_chain_stride(self):
        assert chain_edges(7, stride=2) == [(0, 2), (2, 4), (4, 6)]

    def test_cycle_wraps(self):
        edges = cycle_edges(4)
        assert (3, 0) in edges and len(edges) == 4

    def test_tree_child_parent_order(self):
        edges = tree_parent_edges(2, 2)
        # 2 levels of branching 2: 2 + 4 = 6 edges; root 0 is a parent.
        assert len(edges) == 6
        children_of_root = [c for c, p in edges if p == 0]
        assert len(children_of_root) == 2

    def test_grid_counts(self):
        # rows*(cols-1) right edges + (rows-1)*cols down edges.
        edges = grid_edges(3, 4)
        assert len(edges) == 3 * 3 + 2 * 4

    def test_layered_dag_respects_layers(self):
        edges = layered_dag_edges(3, 4, 2, seed=0)
        for a, b in edges:
            assert b // 4 == a // 4 + 1


class TestDeterminismAndBounds:
    def test_random_digraph_deterministic(self):
        assert random_digraph_edges(10, 20, seed=5) == random_digraph_edges(10, 20, seed=5)

    def test_random_digraph_seed_sensitivity(self):
        assert random_digraph_edges(10, 20, seed=5) != random_digraph_edges(10, 20, seed=6)

    def test_random_digraph_no_self_loops_by_default(self):
        assert all(a != b for a, b in random_digraph_edges(6, 20, seed=1))

    def test_random_digraph_caps_at_max_edges(self):
        edges = random_digraph_edges(3, 100, seed=1)
        assert len(edges) == 6  # 3*2 ordered pairs

    def test_pair_table_distinct(self):
        pairs = pair_table(5, 5, 10, seed=2)
        assert len(set(pairs)) == len(pairs) == 10

    def test_pair_table_offsets(self):
        pairs = pair_table(3, 3, 5, seed=2, left_offset=100, right_offset=200)
        assert all(100 <= a < 103 and 200 <= b < 203 for a, b in pairs)


class TestFactConversion:
    def test_facts_from_tables(self):
        facts = facts_from_tables({"e": [(1, 2)], "v": [(7,)]})
        assert Atom("e", tuple()) not in facts
        assert len(facts) == 2
        assert all(f.is_ground() for f in facts)

    def test_p1_tables_contains_query_constant(self):
        tables = p1_tables(10, 0.5, seed=3)
        r_sources = {a for a, _ in tables["r"]}
        assert "a" in r_sources
        assert tables["q"]  # q nonempty

    def test_p1_tables_deterministic(self):
        assert p1_tables(10, 0.5, seed=3) == p1_tables(10, 0.5, seed=3)
