"""Unit tests for the cluster wire format (``repro.cluster.framing``).

Three layers, mirroring the module:

* the message codec — every class in the wire vocabulary must survive an
  encode → JSON → decode round trip losslessly, including constants JSON
  cannot carry natively (tuples, bytes, ``None`` inside rows);
* the frame reader — TCP guarantees byte order, not message boundaries,
  so the parser must reassemble frames fed a byte at a time and reject a
  corrupted length prefix before allocating for it;
* the handshake — a peer speaking a different protocol revision (or not
  speaking the protocol at all) must be refused with a typed REJECT on
  its first frame, against a *live* manager.
"""

import json
import socket
import struct

import pytest

from repro.cluster.framing import (
    HEADER_SIZE,
    MAX_FRAME_SIZE,
    PROTOCOL_VERSION,
    FrameError,
    FrameReader,
    FrameSocket,
    FrameType,
    decode_batch,
    decode_message,
    decode_messages,
    encode_batch,
    encode_frame,
    encode_json_frame,
    encode_message,
    encode_messages,
    rows_from_wire,
    rows_to_wire,
)
from repro.cluster.manager import ManagerThread
from repro.network.messages import (
    ComponentDone,
    EndConfirmed,
    EndMessage,
    EndNegative,
    EndNudge,
    EndRequest,
    MessageBatch,
    PackagedTupleRequest,
    RelationRequest,
    TupleMessage,
    TupleRequest,
    TupleSet,
)

#: One instance of every message class the codec must carry — the codec is
#: exhaustive over the vocabulary, so this list must be too.
MESSAGES = [
    RelationRequest(1, 2, ("b", "f", "d")),
    TupleRequest(3, 4, ("ann", 7), 12),
    PackagedTupleRequest(3, 4, (("ann",), ("bob",), ("cal",)), 15),
    TupleMessage(5, 6, ("x", 42)),
    TupleSet(5, 6, frozenset({("a", 1), ("b", 2), ("c", 3)})),
    EndMessage(5, 6, 15),
    EndRequest(0, 7, 3),
    EndNegative(7, 0, 3),
    EndConfirmed(7, 0, 4),
    ComponentDone(0, 7, 4),
    EndNudge(7, 0),
]


def wire_round_trip(message):
    """Encode, push through an actual JSON round trip, decode."""
    cells = json.loads(json.dumps(encode_message(message)))
    return decode_message(cells)


class TestMessageCodec:
    @pytest.mark.parametrize(
        "message", MESSAGES, ids=[type(m).__name__ for m in MESSAGES]
    )
    def test_every_message_class_round_trips(self, message):
        restored = wire_round_trip(message)
        assert restored == message
        assert type(restored) is type(message)

    def test_non_json_constants_survive(self):
        """Tuples, bytes, and None inside rows take the tagged-pickle cell."""
        odd_rows = [
            (("nested", 1), b"\x00\xff", None),
            (3.5, True, "plain"),
        ]
        for row in odd_rows:
            assert wire_round_trip(TupleMessage(1, 2, row)).row == row
        tuple_set = TupleSet(1, 2, frozenset(odd_rows))
        assert wire_round_trip(tuple_set).rows == tuple_set.rows

    def test_batch_round_trips(self):
        batch = MessageBatch(3, tuple(MESSAGES))
        cells = json.loads(json.dumps(encode_batch(batch)))
        assert decode_batch(cells) == batch

    def test_message_list_round_trips(self):
        cells = json.loads(json.dumps(encode_messages(MESSAGES)))
        assert decode_messages(cells) == MESSAGES

    def test_unknown_message_class_fails_at_encode_time(self):
        """An unencodable message is a loud error, not a silent drop."""
        with pytest.raises(FrameError, match="no wire encoding"):
            encode_message(MessageBatch(0, ()))

    def test_unknown_tag_fails_at_decode_time(self):
        with pytest.raises(FrameError, match="unknown message tag"):
            decode_message(["zz", 0, 1])

    def test_rows_encode_deterministically(self):
        rows = {("c", 3), ("a", 1), ("b", 2)}
        wire = rows_to_wire(rows)
        assert wire == rows_to_wire(sorted(rows, reverse=True))
        assert set(rows_from_wire(json.loads(json.dumps(wire)))) == rows


class TestFrameReader:
    def frames(self):
        return [
            encode_frame(FrameType.BATCH, b"\x00\x01payload\xff"),
            encode_json_frame(FrameType.PING, {"i": 1}),
            encode_frame(FrameType.STOP),  # empty payload
        ]

    def assert_reassembled(self, frames):
        assert [f.ftype for f in frames] == [
            FrameType.BATCH,
            FrameType.PING,
            FrameType.STOP,
        ]
        assert frames[0].payload == b"\x00\x01payload\xff"
        assert frames[1].json() == {"i": 1}
        assert frames[2].payload == b""
        assert all(f.version == PROTOCOL_VERSION for f in frames)

    def test_one_feed_many_frames(self):
        reader = FrameReader()
        self.assert_reassembled(reader.feed(b"".join(self.frames())))

    def test_byte_at_a_time(self):
        """Partial-read recovery: no feed granularity may break framing."""
        stream = b"".join(self.frames())
        reader = FrameReader()
        collected = []
        for i in range(len(stream)):
            collected.extend(reader.feed(stream[i : i + 1]))
        self.assert_reassembled(collected)

    def test_chunks_straddling_frame_boundaries(self):
        stream = b"".join(self.frames())
        for chunk_size in (2, 3, 7, HEADER_SIZE, HEADER_SIZE + 1):
            reader = FrameReader()
            collected = []
            for start in range(0, len(stream), chunk_size):
                collected.extend(reader.feed(stream[start : start + chunk_size]))
            self.assert_reassembled(collected)

    def test_incomplete_frame_yields_nothing(self):
        frame = self.frames()[0]
        reader = FrameReader()
        assert reader.feed(frame[:-1]) == []
        assert len(reader.feed(frame[-1:])) == 1

    def test_corrupt_length_prefix_is_rejected(self):
        """A bogus size must raise before anyone allocates gigabytes."""
        header = struct.pack(
            "!BBI", PROTOCOL_VERSION, FrameType.BATCH, MAX_FRAME_SIZE + 1
        )
        with pytest.raises(FrameError, match="too large"):
            FrameReader().feed(header)


# ----------------------------------------------------------------------
# Handshake against a live manager.
# ----------------------------------------------------------------------
@pytest.fixture()
def manager():
    thread = ManagerThread().start()
    try:
        yield thread
    finally:
        thread.stop()


def dial(manager):
    host, _, port = manager.address.rpartition(":")
    sock = socket.create_connection((host, int(port)), timeout=10.0)
    return FrameSocket(sock)


class TestHandshake:
    def test_current_version_is_welcomed(self, manager):
        fs = dial(manager)
        try:
            fs.send_json(FrameType.HELLO, {"role": "client"})
            welcome = fs.recv_frame(timeout=10.0)
            assert welcome.ftype == FrameType.WELCOME
            assert welcome.json()["workers"] == []  # none registered
        finally:
            fs.close()

    def test_version_mismatch_is_rejected_with_reason(self, manager):
        fs = dial(manager)
        try:
            payload = json.dumps({"role": "worker", "name": "w"}).encode()
            fs.send_frame(
                FrameType.HELLO, payload, version=PROTOCOL_VERSION + 1
            )
            reject = fs.recv_frame(timeout=10.0)
            assert reject.ftype == FrameType.REJECT
            reason = reject.json()["reason"]
            assert "version mismatch" in reason
            assert str(PROTOCOL_VERSION) in reason
            assert str(PROTOCOL_VERSION + 1) in reason
            # The manager hangs up after a REJECT: EOF, not a stall.
            with pytest.raises(FrameError, match="closed by peer"):
                fs.recv_frame(timeout=10.0)
        finally:
            fs.close()

    def test_non_hello_first_frame_is_rejected(self, manager):
        fs = dial(manager)
        try:
            fs.send_json(FrameType.BATCH, {"j": 1})
            reject = fs.recv_frame(timeout=10.0)
            assert reject.ftype == FrameType.REJECT
            assert "expected HELLO" in reject.json()["reason"]
        finally:
            fs.close()

    def test_unknown_role_is_rejected(self, manager):
        fs = dial(manager)
        try:
            fs.send_json(FrameType.HELLO, {"role": "observer"})
            reject = fs.recv_frame(timeout=10.0)
            assert reject.ftype == FrameType.REJECT
            assert "unknown role" in reject.json()["reason"]
        finally:
            fs.close()
