"""Supervision and transport-fault coverage for the cluster runtime.

The parity matrix (``tests/integration/test_runtime_parity.py``) pins the
happy path; this file pins the failure model over real localhost TCP:

* a worker SIGKILLed (``FaultPlan.kill_worker``) mid-query is masked by a
  supervised whole-query retry over the survivors — same answers, a
  ``WorkerCrashError`` entry in the failure log, zero caller-visible
  errors;
* a wedged worker (alive but silent) draws a ``WorkerStallError`` verdict
  from heartbeats alone;
* link-level faults at the manager relay — a severed connection
  mid-transfer, a slow hop, duplicated row batches — either retry or are
  absorbed without changing the least fixpoint;
* every result carries the wire-level transport counters that have no
  in-process analogue.

Destructive scenarios (a kill or drop leaves the harness degraded or
reconnected) get their own harness; benign ones share a module-scoped one.
"""

import signal
import sys
import time

import pytest

from repro.baselines import naive
from repro.cluster import ClusterHarness, evaluate_cluster
from repro.runtime.faults import FaultPlan
from repro.runtime.supervision import WorkerStallError
from repro.workloads import ancestor_program, chain_edges

from tests.helpers import with_tables

pytestmark = pytest.mark.skipif(
    sys.platform not in ("linux", "darwin"),
    reason="the localhost harness needs POSIX process control",
)


def make_program():
    return with_tables(ancestor_program(0), {"par": chain_edges(8)})


@pytest.fixture(scope="module")
def expected():
    return naive.goal_answers(make_program())


@pytest.fixture(autouse=True)
def watchdog():
    """Per-test SIGALRM timeout — a hung cluster must fail one test only."""
    if not hasattr(signal, "SIGALRM"):
        pytest.skip("platform lacks SIGALRM; watchdog unavailable")

    def on_alarm(signum, frame):
        raise TimeoutError("cluster test exceeded its per-test timeout")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(120)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="module")
def shared_cluster():
    """One 2-worker harness for the tests that leave the cluster healthy."""
    with ClusterHarness(workers=2) as harness:
        yield harness.client()


@pytest.fixture()
def own_cluster():
    """A private harness for tests that kill, wedge, or disconnect workers."""
    with ClusterHarness(workers=2) as harness:
        yield harness


class TestWorkerLoss:
    def test_killed_worker_is_masked_by_retry(self, own_cluster, expected):
        """The acceptance scenario: SIGKILL mid-query, zero visible errors.

        ``kill_worker=0`` hard-exits shard 0's process after 3 deliveries
        on attempt 1 only.  The manager turns the EOF into a crash verdict,
        the client's retry policy re-dispatches over the survivor, and
        monotone set semantics makes the 1-shard re-run reach the identical
        least fixpoint.
        """
        plan = FaultPlan(kill_worker=0, kill_after=3, only_attempt=1)
        result = evaluate_cluster(
            make_program(),
            client=own_cluster.client(),
            retry=2,
            fault_plan=plan,
            timeout=60,
        )
        assert result.answers == expected
        assert result.attempts == 2
        assert not result.degraded
        assert any("WorkerCrashError" in line for line in result.failure_log)
        # The dead worker stays dead: the retry ran on the survivor alone.
        assert result.workers == 1

    def test_wedged_worker_draws_a_stall_verdict(self, own_cluster, expected):
        """A silent-but-alive worker is a stall, detected from heartbeats.

        The wedge keeps the TCP connection open, so only the heartbeat
        watchdog — not connection loss — can reach this verdict.  (No
        retry: the wedged process never recovers, so every attempt would
        stall; the single-attempt verdict is what this test pins.)
        """
        plan = FaultPlan(wedge_worker=1, wedge_after=2)
        with pytest.raises(WorkerStallError):
            evaluate_cluster(
                make_program(),
                client=own_cluster.client(),
                fault_plan=plan,
                heartbeat_interval=0.3,
                timeout=30,
            )


class TestLinkFaults:
    def test_severed_link_retries_and_worker_reconnects(
        self, own_cluster, expected
    ):
        """drop_link cuts the origin worker's socket mid-transfer.

        Unlike a SIGKILL the process survives and reconnects under its own
        name.  The retry may race the reconnect backoff — a degraded-
        capacity second attempt is correct too — so the answers and the
        crash verdict are asserted from the result, and the
        re-registration from the manager's registry once the worker is
        back.
        """
        plan = FaultPlan(drop_link="0->1", drop_link_after=0, only_attempt=1)
        result = evaluate_cluster(
            make_program(),
            client=own_cluster.client(),
            retry=3,
            fault_plan=plan,
            timeout=60,
        )
        assert result.answers == expected
        assert result.attempts >= 2
        assert any("WorkerCrashError" in line for line in result.failure_log)
        deadline = time.monotonic() + 15.0
        while own_cluster.worker_count() < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert own_cluster.worker_count() == 2
        snapshot = own_cluster.transport_snapshot()
        reconnects = sum(
            w.get("reconnects", 0) for w in snapshot["workers"].values()
        )
        assert reconnects >= 1

    @pytest.mark.parametrize(
        "plan",
        [
            pytest.param(
                FaultPlan(delay_link="0->1", delay_link_seconds=0.02),
                id="slow-hop",
            ),
            pytest.param(
                FaultPlan(duplicate_link="0->1", duplicate_count=3),
                id="at-least-once",
            ),
        ],
    )
    def test_benign_link_faults_leave_the_fixpoint_unchanged(
        self, shared_cluster, expected, plan
    ):
        """A slow hop or duplicated row batches must be absorbed, not
        retried: delay only reorders wall-clock, and row re-delivery is
        idempotent under monotone set semantics."""
        result = evaluate_cluster(
            make_program(),
            client=shared_cluster,
            fault_plan=plan,
            timeout=60,
        )
        assert result.answers == expected
        assert result.attempts == 1
        assert not result.failure_log


class TestTransportAccounting:
    def test_result_carries_wire_counters(self, shared_cluster, expected):
        result = evaluate_cluster(
            make_program(), client=shared_cluster, timeout=60
        )
        assert result.answers == expected
        assert result.workers == 2
        assert set(result.transport) == {"worker-0", "worker-1"}
        for counters in result.transport.values():
            assert counters["bytes_in"] > 0
            assert counters["bytes_out"] > 0
        assert result.bytes_on_wire > 0
        assert "wire:" in result.summary()

    def test_client_stats_reports_the_whole_cluster(self, shared_cluster):
        stats = shared_cluster.stats()
        assert stats["registered"] == 2
        assert stats["jobs_dispatched"] >= 1
        assert set(stats["workers"]) == {"worker-0", "worker-1"}


class TestAnnouncedManager:
    """The --cluster-listen path: the evaluating process owns the manager
    and remote ``repro worker --connect`` processes dial in."""

    def test_session_announces_and_remote_workers_dial_in(self, expected):
        import multiprocessing as mp

        from repro.cluster.worker import worker_main
        from repro.session import Session

        session = Session(
            make_program(),
            runtime="cluster",
            cluster_listen="127.0.0.1:0",
            workers=2,
            timeout=60,
        )
        processes = []
        try:
            address = session.cluster_listen_address
            context = mp.get_context("spawn")
            for index in range(2):
                process = context.Process(
                    target=worker_main,
                    args=(address,),
                    kwargs={"name": f"dialin-{index}"},
                    daemon=True,
                )
                process.start()
                processes.append(process)
            answers = session.query("anc(0, Z)")
            assert answers == expected
            assert session.last_result.workers == 2
            assert set(session.last_result.transport) == {
                "dialin-0",
                "dialin-1",
            }
        finally:
            session.close()
            for process in processes:
                process.join(timeout=10)
                if process.is_alive():  # pragma: no cover - cleanup only
                    process.kill()

    def test_evaluate_cluster_listen_waits_then_tears_down(self, expected):
        import multiprocessing as mp

        from repro.cluster.manager import ManagerThread
        from repro.cluster.worker import worker_main

        # The announce address must be known before workers can dial, so
        # bind a throwaway manager first to claim a free port.
        probe = ManagerThread("127.0.0.1", 0).start()
        address = probe.address
        probe.stop()

        context = mp.get_context("spawn")
        process = context.Process(
            target=worker_main,
            args=(address,),
            kwargs={"name": "dialin-0", "reconnect_backoff": 0.1},
            daemon=True,
        )
        process.start()
        try:
            result = evaluate_cluster(
                make_program(), listen=address, timeout=60
            )
            assert result.answers == expected
            assert result.workers == 1
        finally:
            process.join(timeout=10)
            if process.is_alive():
                process.kill()

    def test_listen_and_address_are_mutually_exclusive(self):
        from repro.session import Session

        with pytest.raises(ValueError, match="mutually exclusive"):
            evaluate_cluster(
                make_program(), address="127.0.0.1:1", listen="127.0.0.1:2"
            )
        with pytest.raises(ValueError, match="mutually exclusive"):
            Session(
                make_program(),
                runtime="cluster",
                cluster_address="127.0.0.1:1",
                cluster_listen="127.0.0.1:2",
            )

    def test_listen_times_out_without_workers(self):
        from repro.cluster import ClusterError

        with pytest.raises(ClusterError, match="workers registered"):
            evaluate_cluster(
                make_program(), listen="127.0.0.1:0", timeout=1.0
            )
