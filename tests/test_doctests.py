"""Run the doctest examples embedded in user-facing docstrings."""

import doctest

import repro
import repro.session


def test_package_quickstart_doctest():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted >= 1
    assert results.failed == 0


def test_session_doctest():
    results = doctest.testmod(repro.session, verbose=False)
    assert results.attempted >= 1
    assert results.failed == 0
