"""Unit tests for the columnar batch representation (PR 8).

The kernels lean on exact contracts here: single-position keys are bare
values, multi-position keys tuples, and the *empty* position tuple keys
every row to ``()`` — returning ``[]`` instead silently truncates the
``zip(rows, keys, suffixes)`` kernel loops (a real bug this suite
regression-pins).  The numpy promotion must be invisible: every
operation returns the same logical values with and without the ``fast``
extra, which the ``REPRO_NO_NUMPY`` escape hatch checks in-process via a
subprocess.
"""

import os
import subprocess
import sys

from repro.network.messages import ColumnBatch

ROWS = [(1, "a", 10), (2, "b", 20), (1, "a", 30)]


class TestColumnBatch:
    def test_columns_transpose(self):
        cb = ColumnBatch(ROWS)
        assert cb.columns == ((1, 2, 1), ("a", "b", "a"), (10, 20, 30))
        assert cb.column(1) == ("a", "b", "a")
        assert len(cb) == 3

    def test_empty_batch(self):
        cb = ColumnBatch([])
        assert cb.columns == ()
        assert cb.keys((0,)) == []
        assert cb.project((0, 1)) == []
        assert cb.distinct_keys((0,)) == 0

    def test_single_position_keys_are_bare_values(self):
        cb = ColumnBatch(ROWS)
        assert list(cb.keys((0,))) == [1, 2, 1]

    def test_multi_position_keys_are_tuples(self):
        cb = ColumnBatch(ROWS)
        assert list(cb.keys((0, 1))) == [(1, "a"), (2, "b"), (1, "a")]

    def test_empty_positions_key_every_row_to_nullary(self):
        # Regression: [] here truncated the kernels' zip() loops to nothing.
        cb = ColumnBatch(ROWS)
        assert cb.keys(()) == [(), (), ()]
        assert cb.project(()) == [(), (), ()]

    def test_project_single_position_boxes_one_tuples(self):
        cb = ColumnBatch(ROWS)
        assert cb.project((2,)) == [(10,), (20,), (30,)]

    def test_project_multi_position(self):
        cb = ColumnBatch(ROWS)
        assert cb.project((2, 0)) == [(10, 1), (20, 2), (30, 1)]

    def test_group_builds_hash_index_once(self):
        cb = ColumnBatch(ROWS)
        index = cb.group((0,))
        assert index == {1: [(1, "a", 10), (1, "a", 30)], 2: [(2, "b", 20)]}
        assert cb.group((0, 1)) == {
            (1, "a"): [(1, "a", 10), (1, "a", 30)],
            (2, "b"): [(2, "b", 20)],
        }

    def test_distinct_keys(self):
        cb = ColumnBatch(ROWS)
        assert cb.distinct_keys((0,)) == 2
        assert cb.distinct_keys((2,)) == 3
        assert cb.distinct_keys((0, 1)) == 2

    def test_array_promotion_round_trips(self):
        # Int columns may promote to numpy; values must be unchanged.
        cb = ColumnBatch(ROWS)
        assert list(cb.array(0)) == [1, 2, 1]
        assert list(cb.array(1)) == ["a", "b", "a"]  # mixed stays plain

    def test_mixed_type_column_distinct(self):
        cb = ColumnBatch([(1,), ("x",), (1,)])
        assert cb.distinct_keys((0,)) == 2


def test_no_numpy_escape_hatch_is_equivalent():
    """The whole contract holds with numpy forced off (pure-python leg)."""
    code = (
        "from repro.network.messages import ColumnBatch\n"
        "from repro import _numpy\n"
        "assert _numpy.np is None, 'REPRO_NO_NUMPY was ignored'\n"
        "cb = ColumnBatch([(1, 'a', 10), (2, 'b', 20), (1, 'a', 30)])\n"
        "assert list(cb.keys((0,))) == [1, 2, 1]\n"
        "assert cb.keys(()) == [(), (), ()]\n"
        "assert cb.project((2,)) == [(10,), (20,), (30,)]\n"
        "assert cb.distinct_keys((0,)) == 2\n"
        "assert list(cb.array(0)) == [1, 2, 1]\n"
        "print('ok')\n"
    )
    env = dict(os.environ, REPRO_NO_NUMPY="1")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.environ.get("PYTHONPATH"), "src") if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"
