"""Engine-level tests: end-to-end evaluation, statistics, configurations."""

import pytest

from repro.baselines import naive
from repro.core.parser import parse_program
from repro.core.sips import all_free_sip, left_to_right_sip
from repro.network.engine import MessagePassingEngine, evaluate
from repro.network.scheduler import MessageBudgetExceeded
from repro.network.tracing import MessageTrace
from repro.workloads import facts_from_tables, program_p1

from tests.helpers import oracle_answers, with_tables


class TestBasicEvaluation:
    def test_p1_answers(self, p1_small):
        result = evaluate(p1_small)
        assert result.answers == oracle_answers(p1_small)
        assert result.completed

    def test_ancestor_chain(self, ancestor_chain):
        result = evaluate(ancestor_chain)
        assert result.answers == {(i,) for i in range(1, 12)}

    def test_empty_edb(self):
        program = program_p1().with_facts([])
        result = evaluate(program)
        assert result.answers == set()
        assert result.completed

    def test_no_matching_tuples(self):
        program = with_tables(program_p1(), {"r": [(5, 6)], "q": [(6, 7)]})
        result = evaluate(program)  # query constant 'a' unreachable
        assert result.answers == set()
        assert result.completed

    def test_nonrecursive_program(self):
        program = parse_program(
            """
            goal(X, Z) <- a(X, Y), b(Y, Z).
            a(1, 2).  a(3, 4).  b(2, 9).  b(4, 8).
            """
        )
        result = evaluate(program)
        assert result.answers == {(1, 9), (3, 8)}
        # No recursion: no strong components, no protocol traffic.
        assert result.protocol_messages == 0
        assert result.protocol_rounds == 0

    def test_unit_rules(self):
        program = parse_program(
            """
            goal(X) <- p(a, X).
            p(X, Y) <- e(X, Y).
            p(a, direct).
            e(a, b).
            """
        )
        assert evaluate(program).answers == {("b",), ("direct",)}

    def test_multiple_query_rules(self):
        program = parse_program(
            """
            goal(X) <- a(X).
            goal(X) <- b(X).
            a(1).  b(2).
            """
        )
        assert evaluate(program).answers == {(1,), (2,)}

    def test_constants_inside_rule_bodies(self):
        program = parse_program(
            """
            goal(X) <- p(X).
            p(X) <- e(k, X).
            e(k, 1).  e(j, 2).
            """
        )
        assert evaluate(program).answers == {(1,)}


class TestConfigurations:
    def test_all_sips_agree(self, p1_small, tc_random):
        for program in (p1_small, tc_random):
            expected = oracle_answers(program)
            for sip in (None, all_free_sip, left_to_right_sip):
                kwargs = {} if sip is None else {"sip_factory": sip}
                assert evaluate(program, **kwargs).answers == expected

    @pytest.mark.parametrize("seed", [1, 2, 3, 10, 99])
    def test_random_delivery_orders_agree(self, p1_small, seed):
        expected = oracle_answers(p1_small)
        result = evaluate(p1_small, seed=seed)
        assert result.answers == expected
        assert not result.protocol_violations

    def test_message_budget(self, tc_random):
        with pytest.raises(MessageBudgetExceeded):
            evaluate(tc_random, max_messages=20)

    def test_trace_hook(self, p1_small):
        trace = MessageTrace(limit=1000)
        engine = MessagePassingEngine(p1_small, trace=trace)
        engine.run()
        assert trace.messages
        rendered = trace.render(engine.graph)
        assert "relation request" in rendered
        assert "tuple" in rendered


class TestStatistics:
    def test_sideways_reduces_materialization(self):
        # The central efficiency claim: class "d" restriction keeps
        # intermediate relations smaller than the all-free variant.
        from repro.workloads import chain_edges

        program = with_tables(
            parse_program(
                """
                goal(Z) <- t(0, Z).
                t(X, Y) <- e(X, Y).
                t(X, Y) <- e(X, U), t(U, Y).
                """
            ),
            {"e": chain_edges(16)},
        )
        greedy = evaluate(program)
        free = evaluate(program, sip_factory=all_free_sip)
        assert greedy.answers == free.answers
        assert greedy.tuples_stored <= free.tuples_stored

    def test_protocol_accounting_present_for_recursion(self, p1_small):
        result = evaluate(p1_small)
        assert result.protocol_rounds >= 2
        assert result.protocol_conclusions >= 1
        assert result.protocol_messages > 0

    def test_db_counters(self, p1_small):
        result = evaluate(p1_small)
        assert result.db_indexed_lookups + result.db_scans > 0
        assert result.db_rows_retrieved > 0

    def test_tuples_by_node_labels(self, p1_small):
        result = evaluate(p1_small)
        assert result.tuples_by_node
        assert all(isinstance(k, str) for k in result.tuples_by_node)

    def test_summary_renders(self, p1_small):
        text = evaluate(p1_small).summary()
        assert "answers" in text and "messages" in text

    def test_node_table_renders(self, p1_small):
        text = evaluate(p1_small).node_table(top=5)
        assert "msgs-in" in text
        assert "p(" in text
        assert len(text.splitlines()) <= 6

    def test_trivial_relay_saves_storage(self, p1_small):
        # §3.1: trivial goal nodes (one in-edge, one out-edge) are exempt
        # from storing their temporary relations.
        from repro.network.engine import MessagePassingEngine
        from repro.network.nodes import GoalNodeProcess

        engine = MessagePassingEngine(p1_small)
        exempt = [
            p
            for p in engine.processes.values()
            if isinstance(p, GoalNodeProcess) and p.trivial_relay
        ]
        assert exempt, "P1's top goal node is trivial"
        with_opt = engine.run()
        without_opt = evaluate(p1_small, trivial_relay=False)
        assert with_opt.answers == without_opt.answers
        assert with_opt.tuples_stored < without_opt.tuples_stored

    def test_no_protocol_violations_across_seeds(self, tc_random):
        for seed in (None, 5, 6):
            result = evaluate(tc_random, seed=seed)
            assert result.protocol_violations == []


class TestDistributionProperties:
    def test_driver_gets_end_exactly_after_all_answers(self, p1_small):
        # The driver's completion flag implies the full answer set arrived.
        result = evaluate(p1_small)
        assert result.completed
        assert result.answers == oracle_answers(p1_small)

    def test_goal_node_serves_separate_streams(self):
        # P1's p(V^d, Z^f) node serves two cyclic customers; per-stream
        # bookkeeping must keep them independent (exercised end-to-end).
        program = with_tables(
            program_p1(),
            {"r": [("a", 1), (1, 2), (2, 3), (3, 4)], "q": [(1, 1), (2, 2), (1, 2)]},
        )
        result = evaluate(program)
        assert result.answers == oracle_answers(program)

    def test_specialized_rule_heads(self):
        # Rule heads with constants and repeated variables under d-requests.
        program = parse_program(
            """
            goal(Z) <- p(a, Z).
            p(X, Y) <- q(X, Y).
            q(X, X) <- loopy(X).
            q(a, special) <- trigger(a).
            loopy(a).  loopy(b).  trigger(a).
            """
        )
        assert evaluate(program).answers == {("a",), ("special",)}
