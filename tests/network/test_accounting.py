"""Per-query accounting regressions: node tuple attribution and db deltas."""

from repro.core.parser import parse_program
from repro.network.engine import MessagePassingEngine, evaluate
from repro.relational.database import Database

# A ground recursive goal: the subgoal t(c1) inside the second rule is a
# variant of its ancestor goal t(c1), producing a cyclic node whose label
# equals the ancestor's — two distinct nodes, one label.
GROUND_RECURSION = """
t(X) <- base(X).
t(X) <- link(X), t(X).
base(c1). link(c1).
?- t(c1).
"""


def _tuples_invariant(result):
    """Sum over the by-node map must reach the stored-tuple total."""
    return (
        sum(result.tuples_by_node.values())
        == result.tuples_stored - result.envs_materialized
    )


class TestTuplesByNode:
    def test_duplicate_labels_aggregate_instead_of_overwrite(self):
        program = parse_program(GROUND_RECURSION)
        engine = MessagePassingEngine(program)
        result = engine.run()
        labels = [
            engine.graph.node_label(node_id)
            for node_id in list(engine.graph.goal_nodes)
            + list(engine.graph.rule_nodes)
        ]
        assert labels.count("t(c1^c)") == 2  # the scenario is real
        assert result.answers == {()}
        # Both same-label nodes store one tuple each; the overwrite bug
        # reported 1 here instead of 2.
        assert result.tuples_by_node["t(c1^c)"] == 2
        assert _tuples_invariant(result)

    def test_invariant_holds_with_coalesce(self):
        program = parse_program(GROUND_RECURSION)
        result = evaluate(program, coalesce=True)
        assert result.answers == {()}
        assert _tuples_invariant(result)

    def test_invariant_on_recursive_workload_both_modes(self):
        from repro.workloads import ancestor_program, chain_edges, facts_from_tables

        program = ancestor_program(0).with_facts(
            facts_from_tables({"par": chain_edges(13)})
        )
        for coalesce in (False, True):
            result = evaluate(program, coalesce=coalesce)
            assert len(result.answers) == 12
            assert _tuples_invariant(result)

    def test_node_table_consistent_with_by_node_map(self):
        program = parse_program(GROUND_RECURSION)
        result = evaluate(program)
        table = result.node_table(top=20)
        assert "t(c1^c)" in table


class TestSharedDatabaseDeltas:
    KB = """
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, U), anc(U, Y).
    ?- anc(ann, Z).
    """
    FACTS = "par(ann, bob).  par(bob, cal).  par(cal, dee)."

    def _program(self):
        return parse_program(self.KB + self.FACTS)

    def test_two_runs_against_one_database_report_deltas(self):
        program = self._program()
        database = Database.from_facts(program.facts)
        first = MessagePassingEngine(program, database=database).run()
        second = MessagePassingEngine(program, database=database).run()
        assert first.answers == second.answers
        # Per-query deltas: identical work both times, not cumulative.
        assert (second.db_scans, second.db_indexed_lookups, second.db_rows_retrieved) == (
            first.db_scans,
            first.db_indexed_lookups,
            first.db_rows_retrieved,
        )
        assert first.db_scans + first.db_indexed_lookups > 0
        # The shared database's own counters do accumulate.
        assert database.indexed_lookups == 2 * first.db_indexed_lookups
        assert database.scans == 2 * first.db_scans
        assert database.rows_retrieved == 2 * first.db_rows_retrieved

    def test_fresh_database_matches_shared_database_deltas(self):
        program = self._program()
        fresh = MessagePassingEngine(program).run()
        database = Database.from_facts(program.facts)
        MessagePassingEngine(program, database=database).run()
        shared = MessagePassingEngine(program, database=database).run()
        assert (fresh.db_scans, fresh.db_indexed_lookups, fresh.db_rows_retrieved) == (
            shared.db_scans,
            shared.db_indexed_lookups,
            shared.db_rows_retrieved,
        )


class TestPrebuiltGraph:
    def test_engine_accepts_prebuilt_graph(self):
        from repro.core.rulegoal import build_rule_goal_graph
        from repro.core.sips import greedy_sip

        program = parse_program(
            TestSharedDatabaseDeltas.KB + TestSharedDatabaseDeltas.FACTS
        )
        graph = build_rule_goal_graph(program, greedy_sip)
        baseline = evaluate(program)
        engine = MessagePassingEngine(program, graph=graph)
        assert engine.graph is graph
        result = engine.run()
        assert result.answers == baseline.answers

    def test_one_graph_many_engines(self):
        from repro.core.rulegoal import build_rule_goal_graph
        from repro.core.sips import greedy_sip

        program = parse_program(
            TestSharedDatabaseDeltas.KB + TestSharedDatabaseDeltas.FACTS
        )
        graph = build_rule_goal_graph(program, greedy_sip)
        database = Database.from_facts(program.facts)
        answers = [
            MessagePassingEngine(program, graph=graph, database=database).run().answers
            for _ in range(3)
        ]
        assert answers[0] == answers[1] == answers[2] == {("bob",), ("cal",), ("dee",)}
