"""Unit tests for node-process building blocks: streams, shapes, EDB leaves."""

import pytest

from repro.core.adornment import AdornedAtom
from repro.core.atoms import atom
from repro.core.terms import Variable
from repro.network.messages import RelationRequest, TupleMessage, TupleRequest
from repro.network.nodes import (
    ConsumerStream,
    EdbLeafProcess,
    FeederStream,
    _RowShape,
)
from repro.network.scheduler import Scheduler
from repro.relational.database import Database

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestStreams:
    def test_consumer_owes_end(self):
        stream = ConsumerStream(consumer_id=1, wants_all=True)
        assert not stream.owes_end
        stream.last_seq_received = 0
        assert stream.owes_end
        stream.last_seq_ended = 0
        assert not stream.owes_end

    def test_feeder_caught_up(self):
        stream = FeederStream(producer_id=2, is_feeder=True)
        assert stream.caught_up  # nothing sent yet
        assert stream.next_seq() == 0
        assert not stream.caught_up
        stream.last_upto_ended = 0
        assert stream.caught_up

    def test_feeder_sequence_numbers_increment(self):
        stream = FeederStream(producer_id=2, is_feeder=True)
        assert [stream.next_seq() for _ in range(3)] == [0, 1, 2]


class TestRowShape:
    def test_non_e_positions(self):
        a = AdornedAtom(atom("p", "k", X, Y, Z), ("c", "d", "e", "f"))
        shape = _RowShape(a)
        assert shape.non_e == (0, 1, 3)
        assert shape.d_positions == (1,)
        # Row ("k", x, z): the d value sits at row index 1.
        assert shape.binding_of(("k", 5, 9)) == (5,)

    def test_all_free(self):
        a = AdornedAtom(atom("p", X, Y), ("f", "f"))
        shape = _RowShape(a)
        assert shape.non_e == (0, 1)
        assert shape.binding_of((1, 2)) == ()


class Sink:
    """Collects messages addressed to it."""

    def __init__(self, node_id=99):
        self.node_id = node_id
        self.rows = []
        self.ends = []

    def handle(self, message, network):
        if isinstance(message, TupleMessage):
            self.rows.append(message.row)
        else:
            self.ends.append(message)

    def on_idle_check(self, network):
        pass


def leaf_fixture(adorned, rows):
    db = Database.from_tuples({adorned.predicate: rows})
    leaf = EdbLeafProcess(1, adorned, db)
    sink = Sink()
    leaf.add_consumer(99, wants_all=not adorned.dynamic_positions)
    scheduler = Scheduler()
    scheduler.register(leaf)
    scheduler.register(sink)
    return leaf, sink, scheduler


class TestEdbLeaf:
    def test_full_scan_on_relation_request(self):
        adorned = AdornedAtom(atom("e", X, Y), ("f", "f"))
        leaf, sink, scheduler = leaf_fixture(adorned, [(1, 2), (3, 4)])
        scheduler.send(RelationRequest(99, 1, adorned.adornment))
        scheduler.run()
        assert sorted(sink.rows) == [(1, 2), (3, 4)]
        assert len(sink.ends) == 1  # end after the scan

    def test_constant_filter(self):
        adorned = AdornedAtom(atom("e", "a", Y), ("c", "f"))
        leaf, sink, scheduler = leaf_fixture(adorned, [("a", 1), ("b", 2), ("a", 3)])
        scheduler.send(RelationRequest(99, 1, adorned.adornment))
        scheduler.run()
        assert sorted(sink.rows) == [("a", 1), ("a", 3)]

    def test_tuple_request_semijoin(self):
        adorned = AdornedAtom(atom("e", X, Y), ("d", "f"))
        leaf, sink, scheduler = leaf_fixture(adorned, [(1, 2), (1, 3), (2, 4)])
        scheduler.send(RelationRequest(99, 1, adorned.adornment))
        scheduler.send(TupleRequest(99, 1, (1,), 1))
        scheduler.run()
        assert sorted(sink.rows) == [(1, 2), (1, 3)]

    def test_repeated_variable_equality(self):
        adorned = AdornedAtom(atom("e", X, X), ("f", "f"))
        leaf, sink, scheduler = leaf_fixture(adorned, [(1, 1), (1, 2), (3, 3)])
        scheduler.send(RelationRequest(99, 1, adorned.adornment))
        scheduler.run()
        assert sorted(sink.rows) == [(1, 1), (3, 3)]

    def test_existential_positions_projected_and_deduplicated(self):
        # e(X^f, W^e): one row per distinct X even with many W partners.
        W = Variable("W")
        adorned = AdornedAtom(atom("e", X, W), ("f", "e"))
        leaf, sink, scheduler = leaf_fixture(adorned, [(1, 10), (1, 20), (2, 30)])
        scheduler.send(RelationRequest(99, 1, adorned.adornment))
        scheduler.run()
        assert sorted(sink.rows) == [(1,), (2,)]

    def test_overlapping_tuple_requests_not_resent(self):
        adorned = AdornedAtom(atom("e", X, Y), ("d", "f"))
        leaf, sink, scheduler = leaf_fixture(adorned, [(1, 2)])
        scheduler.send(RelationRequest(99, 1, adorned.adornment))
        scheduler.send(TupleRequest(99, 1, (1,), 1))
        scheduler.send(TupleRequest(99, 1, (1,), 2))
        scheduler.run()
        assert sink.rows == [(1, 2)]  # per-stream dedup
        # And the final end covers the latest request.
        assert sink.ends[-1].upto == 2

    def test_inconsistent_binding_with_constant_ignored(self):
        adorned = AdornedAtom(atom("e", "a", Y), ("c", "f"))
        db = Database.from_tuples({"e": [("a", 1)]})
        leaf = EdbLeafProcess(1, adorned, db)
        # Force a d-position artificially via a tuple request on position 0:
        # the shape has no d positions, so binding is empty; nothing breaks.
        sink = Sink()
        leaf.add_consumer(99, wants_all=True)
        scheduler = Scheduler()
        scheduler.register(leaf)
        scheduler.register(sink)
        scheduler.send(RelationRequest(99, 1, adorned.adornment))
        scheduler.run()
        assert sink.rows == [("a", 1)]
