"""Tests for packaged tuple requests (footnote 2 of Section 3.1)."""

import pytest

from repro.baselines import naive
from repro.core.parser import parse_program
from repro.network.engine import MessagePassingEngine, evaluate
from repro.network.messages import PackagedTupleRequest, TupleRequest
from repro.workloads import (
    chain_edges,
    cycle_edges,
    facts_from_tables,
    nonlinear_tc_program,
    program_p1,
)

from tests.helpers import oracle_answers, with_tables


def fanout_program(width: int = 32):
    src = [("k", f"y{i}") for i in range(width)]
    dst = [(f"y{i}", f"z{i}") for i in range(width)]
    return parse_program(
        "goal(Z) <- p(k, Z). p(X, Z) <- src(X, Y), dst(Y, Z)."
    ).with_facts(facts_from_tables({"src": src, "dst": dst}))


class TestPackagingCorrectness:
    @pytest.mark.parametrize("seed", [None, 4, 19])
    def test_p1(self, p1_small, seed):
        result = evaluate(p1_small, package_requests=True, seed=seed)
        assert result.answers == oracle_answers(p1_small)
        assert result.completed
        assert result.protocol_violations == []

    def test_recursive_cycles(self):
        program = with_tables(nonlinear_tc_program(0), {"e": cycle_edges(7)})
        result = evaluate(program, package_requests=True)
        assert result.answers == oracle_answers(program)

    def test_combined_with_coalescing(self, p1_small):
        result = evaluate(p1_small, package_requests=True, coalesce=True)
        assert result.answers == oracle_answers(p1_small)
        assert result.protocol_violations == []

    def test_fanout(self):
        program = fanout_program()
        assert (
            evaluate(program, package_requests=True).answers
            == oracle_answers(program)
        )


class TestPackagingMechanics:
    def test_packages_actually_form(self):
        program = fanout_program(16)
        result = evaluate(program, package_requests=True)
        assert result.stats.by_kind.get("PackagedTupleRequest", 0) >= 1

    def test_fanout_collapses_to_one_package(self):
        program = fanout_program(64)
        plain = evaluate(program)
        packed = evaluate(program, package_requests=True)
        assert plain.stats.by_kind.get("TupleRequest", 0) >= 64
        assert packed.stats.by_kind.get("PackagedTupleRequest", 0) <= 3

    def test_large_package_served_by_one_scan(self):
        program = fanout_program(64)
        packed = evaluate(program, package_requests=True)
        assert packed.db_scans >= 1
        assert packed.db_indexed_lookups <= 2

    def test_sequence_accounting_covers_packages(self):
        # Every feeder stream must still be caught up at the end.
        engine = MessagePassingEngine(fanout_program(), package_requests=True)
        engine.run()
        for process in engine.processes.values():
            for stream in process.feeders.values():
                if stream.is_feeder:
                    assert stream.caught_up

    def test_no_packages_when_disabled(self, p1_small):
        result = evaluate(p1_small)
        assert result.stats.by_kind.get("PackagedTupleRequest", 0) == 0

    def test_buffer_blocks_idleness(self):
        # A node holding buffered requests must not report empty queues.
        from repro.network.nodes import GoalNodeProcess
        from repro.core.adornment import AdornedAtom
        from repro.core.atoms import atom
        from repro.core.terms import Variable

        node = GoalNodeProcess(1, AdornedAtom(atom("p", Variable("X")), ("d",)))
        node.package_requests = True
        node._request_buffer[2] = [(1,)]

        class FakeNet:
            def pending_for(self, node_id):
                return 0

        assert not node.empty_queues(FakeNet())
