"""Unit tests for provenance atom display and Derivation utilities."""

import pytest

from repro.core.adornment import AdornedAtom
from repro.core.atoms import atom
from repro.core.terms import Variable
from repro.network.provenance import Derivation, _display_atom

X, Y, W = Variable("X"), Variable("Y"), Variable("W")


class TestDisplayAtom:
    def test_plain_positions(self):
        adorned = AdornedAtom(atom("p", X, Y), ("d", "f"))
        assert _display_atom(adorned, ("a", 7)) == "p(a, 7)"

    def test_existential_positions_show_underscore(self):
        adorned = AdornedAtom(atom("p", X, W, Y), ("d", "e", "f"))
        # The row omits the existential column.
        assert _display_atom(adorned, ("a", 7)) == "p(a, _, 7)"

    def test_constant_positions(self):
        adorned = AdornedAtom(atom("p", "k", Y), ("c", "f"))
        assert _display_atom(adorned, ("k", 9)) == "p(k, 9)"

    def test_zero_arity(self):
        adorned = AdornedAtom(atom("flag"), ())
        assert _display_atom(adorned, ()) == "flag()"


class TestDerivationUtilities:
    def build(self):
        leaf_a = Derivation("e(1, 2)", "fact")
        leaf_b = Derivation("e(2, 3)", "fact")
        inner = Derivation("t(1, 3)", "rule", rule="t(X,Y) <- ...", children=(leaf_a, leaf_b))
        return Derivation("goal(3)", "rule", rule="goal(Z) <- ...", children=(inner,))

    def test_facts_left_to_right(self):
        assert self.build().facts() == ["e(1, 2)", "e(2, 3)"]

    def test_depth(self):
        assert self.build().depth() == 3
        assert Derivation("e(1)", "fact").depth() == 1

    def test_render_marks_kinds(self):
        text = self.build().render()
        assert text.count("[EDB fact]") == 2
        assert text.count("[by ") == 2
        # Indentation deepens per level.
        lines = text.splitlines()
        assert lines[1].startswith("  ") and lines[2].startswith("    ")
