"""Unit tests for the message vocabulary."""

from repro.network.messages import (
    COMPUTATION_TYPES,
    PROTOCOL_TYPES,
    ComponentDone,
    EndConfirmed,
    EndMessage,
    EndNegative,
    EndNudge,
    EndRequest,
    RelationRequest,
    TupleMessage,
    TupleRequest,
)


class TestMessageShape:
    def test_kind_tags(self):
        assert TupleMessage(0, 1, (1,)).kind() == "TupleMessage"
        assert EndRequest(0, 1, 3).kind() == "EndRequest"

    def test_messages_are_immutable_and_hashable(self):
        a = TupleRequest(0, 1, (5,), 2)
        b = TupleRequest(0, 1, (5,), 2)
        assert a == b and len({a, b}) == 1

    def test_relation_request_carries_adornment(self):
        # "identifies the classes of the arguments" (Section 3.1)
        msg = RelationRequest(0, 1, ("c", "d", "f"))
        assert msg.adornment == ("c", "d", "f")

    def test_tuple_request_binding_and_seq(self):
        msg = TupleRequest(3, 4, ("a", 7), 12)
        assert msg.binding == ("a", 7) and msg.seq == 12

    def test_end_carries_upto(self):
        assert EndMessage(0, 1, 5).upto == 5


class TestTypePartitions:
    def test_partition_is_disjoint_and_complete(self):
        assert not set(COMPUTATION_TYPES) & set(PROTOCOL_TYPES)
        from repro.network.messages import PackagedTupleRequest

        all_types = {
            RelationRequest,
            TupleRequest,
            PackagedTupleRequest,
            TupleMessage,
            EndMessage,
            EndRequest,
            EndNegative,
            EndConfirmed,
            ComponentDone,
            EndNudge,
        }
        assert set(COMPUTATION_TYPES) | set(PROTOCOL_TYPES) == all_types

    def test_protocol_round_ids(self):
        for cls in (EndRequest, EndNegative, EndConfirmed):
            assert cls(0, 1, 9).round_id == 9
