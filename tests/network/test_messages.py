"""Unit tests for the message vocabulary."""

from repro.network.messages import (
    COMPUTATION_TYPES,
    PROTOCOL_TYPES,
    ComponentDone,
    EndConfirmed,
    EndMessage,
    EndNegative,
    EndNudge,
    EndRequest,
    MessageBatch,
    PackagedTupleRequest,
    RelationRequest,
    TupleMessage,
    TupleRequest,
    TupleSet,
    coalesce_batch,
    coalesce_tuple_requests,
    logical_size,
)


class TestMessageShape:
    def test_kind_tags(self):
        assert TupleMessage(0, 1, (1,)).kind() == "TupleMessage"
        assert EndRequest(0, 1, 3).kind() == "EndRequest"

    def test_messages_are_immutable_and_hashable(self):
        a = TupleRequest(0, 1, (5,), 2)
        b = TupleRequest(0, 1, (5,), 2)
        assert a == b and len({a, b}) == 1

    def test_relation_request_carries_adornment(self):
        # "identifies the classes of the arguments" (Section 3.1)
        msg = RelationRequest(0, 1, ("c", "d", "f"))
        assert msg.adornment == ("c", "d", "f")

    def test_tuple_request_binding_and_seq(self):
        msg = TupleRequest(3, 4, ("a", 7), 12)
        assert msg.binding == ("a", 7) and msg.seq == 12

    def test_end_carries_upto(self):
        assert EndMessage(0, 1, 5).upto == 5


class TestTypePartitions:
    def test_partition_is_disjoint_and_complete(self):
        assert not set(COMPUTATION_TYPES) & set(PROTOCOL_TYPES)
        from repro.network.messages import PackagedTupleRequest

        all_types = {
            RelationRequest,
            TupleRequest,
            PackagedTupleRequest,
            TupleMessage,
            TupleSet,
            EndMessage,
            EndRequest,
            EndNegative,
            EndConfirmed,
            ComponentDone,
            EndNudge,
        }
        assert set(COMPUTATION_TYPES) | set(PROTOCOL_TYPES) == all_types

    def test_protocol_round_ids(self):
        for cls in (EndRequest, EndNegative, EndConfirmed):
            assert cls(0, 1, 9).round_id == 9

    def test_batch_is_transport_only(self):
        # The envelope is invisible to node logic; it must never count as a
        # computation or protocol message.
        assert MessageBatch not in COMPUTATION_TYPES
        assert MessageBatch not in PROTOCOL_TYPES


class TestMessageBatch:
    def test_len_and_origin(self):
        batch = MessageBatch(2, (TupleMessage(0, 1, (1,)), EndMessage(0, 1, 3)))
        assert len(batch) == 2 and batch.origin == 2


class TestCoalesceTupleRequests:
    def test_adjacent_same_channel_requests_become_one_package(self):
        msgs = [
            TupleRequest(0, 1, ("a",), 1),
            TupleRequest(0, 1, ("b",), 2),
            TupleRequest(0, 1, ("c",), 3),
        ]
        out = coalesce_tuple_requests(msgs)
        assert out == [PackagedTupleRequest(0, 1, (("a",), ("b",), ("c",)), 3)]

    def test_package_seq_is_last_member_seq(self):
        # One end message covers the whole package (footnote 2), so the
        # package must carry the *last* member's sequence number.
        out = coalesce_tuple_requests(
            [TupleRequest(0, 1, ("a",), 5), TupleRequest(0, 1, ("b",), 9)]
        )
        assert out[0].seq == 9

    def test_singleton_run_stays_a_tuple_request(self):
        msgs = [TupleRequest(0, 1, ("a",), 1)]
        assert coalesce_tuple_requests(msgs) == msgs

    def test_channel_change_breaks_the_run(self):
        msgs = [
            TupleRequest(0, 1, ("a",), 1),
            TupleRequest(0, 2, ("b",), 1),
            TupleRequest(0, 1, ("c",), 2),
        ]
        out = coalesce_tuple_requests(msgs)
        # Different receivers — nothing merges, order untouched.
        assert out == msgs

    def test_interleaved_message_breaks_the_run(self):
        # FIFO per channel: a non-request between two requests of the same
        # channel pins their relative order, so they must not merge across it.
        msgs = [
            TupleRequest(0, 1, ("a",), 1),
            EndMessage(2, 1, 0),
            TupleRequest(0, 1, ("b",), 2),
        ]
        out = coalesce_tuple_requests(msgs)
        assert out == msgs

    def test_non_request_messages_pass_through_in_order(self):
        msgs = [
            RelationRequest(0, 1, ("d", "f")),
            TupleRequest(0, 1, ("a",), 1),
            TupleRequest(0, 1, ("b",), 2),
            EndRequest(3, 1, 1),
        ]
        out = coalesce_tuple_requests(msgs)
        assert out[0] == msgs[0]
        assert out[1] == PackagedTupleRequest(0, 1, (("a",), ("b",)), 2)
        assert out[2] == msgs[3]

    def test_empty_input(self):
        assert coalesce_tuple_requests([]) == []


class TestTupleSetShape:
    def test_rows_are_a_frozenset(self):
        ts = TupleSet(0, 1, frozenset({(1,), (2,)}))
        assert ts.rows == {(1,), (2,)}
        assert ts.kind() == "TupleSet"

    def test_logical_weight_is_row_count(self):
        assert TupleSet(0, 1, frozenset({(1,), (2,), (3,)})).logical() == 3
        assert logical_size(TupleSet(0, 1, frozenset({(1,)}))) == 1
        assert logical_size(TupleMessage(0, 1, (1,))) == 1
        assert logical_size(EndMessage(0, 1, 4)) == 1

    def test_batch_logical_size_sums_members(self):
        batch = MessageBatch(
            0,
            (
                TupleMessage(0, 1, (1,)),
                TupleSet(0, 1, frozenset({(2,), (3,)})),
                EndMessage(0, 1, 2),
            ),
        )
        assert logical_size(batch) == 4

    def test_tuple_set_is_hashable_and_value_equal(self):
        a = TupleSet(0, 1, frozenset({(1,), (2,)}))
        b = TupleSet(0, 1, frozenset({(2,), (1,)}))
        assert a == b and len({a, b}) == 1


class TestCoalesceBatch:
    """Edge cases of the generalized batch coalescer (requests AND answers)."""

    def test_empty_batch(self):
        assert coalesce_batch([]) == []

    def test_single_request_run_stays_a_tuple_request(self):
        msgs = [TupleRequest(0, 1, ("a",), 1)]
        assert coalesce_batch(msgs) == msgs

    def test_single_tuple_message_stays_per_row(self):
        msgs = [TupleMessage(0, 1, (1,))]
        assert coalesce_batch(msgs) == msgs

    def test_adjacent_tuple_messages_merge_into_a_set(self):
        msgs = [TupleMessage(0, 1, (1,)), TupleMessage(0, 1, (2,))]
        out = coalesce_batch(msgs)
        assert out == [TupleSet(0, 1, frozenset({(1,), (2,)}))]

    def test_tuple_set_runs_union(self):
        msgs = [
            TupleSet(0, 1, frozenset({(1,), (2,)})),
            TupleMessage(0, 1, (3,)),
            TupleSet(0, 1, frozenset({(3,), (4,)})),
        ]
        out = coalesce_batch(msgs)
        assert out == [TupleSet(0, 1, frozenset({(1,), (2,), (3,), (4,)}))]

    def test_interleaved_channels_do_not_merge(self):
        msgs = [
            TupleMessage(0, 1, (1,)),
            TupleMessage(0, 2, (2,)),
            TupleMessage(0, 1, (3,)),
        ]
        assert coalesce_batch(msgs) == msgs

    def test_interleaved_protocol_message_breaks_the_run(self):
        msgs = [
            TupleMessage(0, 1, (1,)),
            EndMessage(2, 1, 0),
            TupleMessage(0, 1, (2,)),
        ]
        assert coalesce_batch(msgs) == msgs

    def test_all_duplicate_bindings_dedup_to_one(self):
        # A package whose bindings all duplicate keeps one copy (first
        # occurrence) and still carries the last member's seq.
        msgs = [
            TupleRequest(0, 1, ("a",), 1),
            TupleRequest(0, 1, ("a",), 2),
            TupleRequest(0, 1, ("a",), 3),
        ]
        out = coalesce_batch(msgs)
        assert out == [PackagedTupleRequest(0, 1, (("a",),), 3)]

    def test_duplicate_rows_dedup_in_the_set(self):
        msgs = [
            TupleMessage(0, 1, (7,)),
            TupleMessage(0, 1, (7,)),
            TupleMessage(0, 1, (8,)),
        ]
        out = coalesce_batch(msgs)
        assert out == [TupleSet(0, 1, frozenset({(7,), (8,)}))]

    def test_tuple_sets_false_leaves_rows_alone(self):
        # The request-only mode is exactly the footnote-2 coalescer.
        msgs = [
            TupleMessage(0, 1, (1,)),
            TupleMessage(0, 1, (2,)),
            TupleRequest(0, 2, ("a",), 1),
            TupleRequest(0, 2, ("b",), 2),
        ]
        out = coalesce_batch(msgs, tuple_sets=False)
        assert out[:2] == msgs[:2]
        assert out[2] == PackagedTupleRequest(0, 2, (("a",), ("b",)), 2)

    def test_mixed_requests_then_rows_on_one_channel(self):
        # A channel switch from requests to rows is a run break even though
        # sender/receiver match.
        msgs = [
            TupleRequest(0, 1, ("a",), 1),
            TupleRequest(0, 1, ("b",), 2),
            TupleMessage(0, 1, (1,)),
            TupleMessage(0, 1, (2,)),
        ]
        out = coalesce_batch(msgs)
        assert out == [
            PackagedTupleRequest(0, 1, (("a",), ("b",)), 2),
            TupleSet(0, 1, frozenset({(1,), (2,)})),
        ]
