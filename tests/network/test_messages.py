"""Unit tests for the message vocabulary."""

from repro.network.messages import (
    COMPUTATION_TYPES,
    PROTOCOL_TYPES,
    ComponentDone,
    EndConfirmed,
    EndMessage,
    EndNegative,
    EndNudge,
    EndRequest,
    MessageBatch,
    PackagedTupleRequest,
    RelationRequest,
    TupleMessage,
    TupleRequest,
    coalesce_tuple_requests,
)


class TestMessageShape:
    def test_kind_tags(self):
        assert TupleMessage(0, 1, (1,)).kind() == "TupleMessage"
        assert EndRequest(0, 1, 3).kind() == "EndRequest"

    def test_messages_are_immutable_and_hashable(self):
        a = TupleRequest(0, 1, (5,), 2)
        b = TupleRequest(0, 1, (5,), 2)
        assert a == b and len({a, b}) == 1

    def test_relation_request_carries_adornment(self):
        # "identifies the classes of the arguments" (Section 3.1)
        msg = RelationRequest(0, 1, ("c", "d", "f"))
        assert msg.adornment == ("c", "d", "f")

    def test_tuple_request_binding_and_seq(self):
        msg = TupleRequest(3, 4, ("a", 7), 12)
        assert msg.binding == ("a", 7) and msg.seq == 12

    def test_end_carries_upto(self):
        assert EndMessage(0, 1, 5).upto == 5


class TestTypePartitions:
    def test_partition_is_disjoint_and_complete(self):
        assert not set(COMPUTATION_TYPES) & set(PROTOCOL_TYPES)
        from repro.network.messages import PackagedTupleRequest

        all_types = {
            RelationRequest,
            TupleRequest,
            PackagedTupleRequest,
            TupleMessage,
            EndMessage,
            EndRequest,
            EndNegative,
            EndConfirmed,
            ComponentDone,
            EndNudge,
        }
        assert set(COMPUTATION_TYPES) | set(PROTOCOL_TYPES) == all_types

    def test_protocol_round_ids(self):
        for cls in (EndRequest, EndNegative, EndConfirmed):
            assert cls(0, 1, 9).round_id == 9

    def test_batch_is_transport_only(self):
        # The envelope is invisible to node logic; it must never count as a
        # computation or protocol message.
        assert MessageBatch not in COMPUTATION_TYPES
        assert MessageBatch not in PROTOCOL_TYPES


class TestMessageBatch:
    def test_len_and_origin(self):
        batch = MessageBatch(2, (TupleMessage(0, 1, (1,)), EndMessage(0, 1, 3)))
        assert len(batch) == 2 and batch.origin == 2


class TestCoalesceTupleRequests:
    def test_adjacent_same_channel_requests_become_one_package(self):
        msgs = [
            TupleRequest(0, 1, ("a",), 1),
            TupleRequest(0, 1, ("b",), 2),
            TupleRequest(0, 1, ("c",), 3),
        ]
        out = coalesce_tuple_requests(msgs)
        assert out == [PackagedTupleRequest(0, 1, (("a",), ("b",), ("c",)), 3)]

    def test_package_seq_is_last_member_seq(self):
        # One end message covers the whole package (footnote 2), so the
        # package must carry the *last* member's sequence number.
        out = coalesce_tuple_requests(
            [TupleRequest(0, 1, ("a",), 5), TupleRequest(0, 1, ("b",), 9)]
        )
        assert out[0].seq == 9

    def test_singleton_run_stays_a_tuple_request(self):
        msgs = [TupleRequest(0, 1, ("a",), 1)]
        assert coalesce_tuple_requests(msgs) == msgs

    def test_channel_change_breaks_the_run(self):
        msgs = [
            TupleRequest(0, 1, ("a",), 1),
            TupleRequest(0, 2, ("b",), 1),
            TupleRequest(0, 1, ("c",), 2),
        ]
        out = coalesce_tuple_requests(msgs)
        # Different receivers — nothing merges, order untouched.
        assert out == msgs

    def test_interleaved_message_breaks_the_run(self):
        # FIFO per channel: a non-request between two requests of the same
        # channel pins their relative order, so they must not merge across it.
        msgs = [
            TupleRequest(0, 1, ("a",), 1),
            EndMessage(2, 1, 0),
            TupleRequest(0, 1, ("b",), 2),
        ]
        out = coalesce_tuple_requests(msgs)
        assert out == msgs

    def test_non_request_messages_pass_through_in_order(self):
        msgs = [
            RelationRequest(0, 1, ("d", "f")),
            TupleRequest(0, 1, ("a",), 1),
            TupleRequest(0, 1, ("b",), 2),
            EndRequest(3, 1, 1),
        ]
        out = coalesce_tuple_requests(msgs)
        assert out[0] == msgs[0]
        assert out[1] == PackagedTupleRequest(0, 1, (("a",), ("b",)), 2)
        assert out[2] == msgs[3]

    def test_empty_input(self):
        assert coalesce_tuple_requests([]) == []
