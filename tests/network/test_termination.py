"""Unit tests for the Fig-2 distributed termination protocol in isolation.

A synthetic strong component of stub nodes is wired to a real scheduler; the
stubs' "busy" state is controlled by hand (and by injected work messages) so
the protocol's two-wave behavior can be probed precisely.
"""

import pytest

from repro.network.messages import (
    EndConfirmed,
    EndNegative,
    EndRequest,
    TupleMessage,
)
from repro.network.scheduler import Scheduler
from repro.network.termination import TerminationProtocol


class StubNode:
    """A protocol-only node: work arrives as TupleMessage, rest is protocol."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.protocol = None
        self.busy = False
        self.concluded = 0
        self.work_seen = 0

    def empty_queues(self, network):
        return not self.busy and network.pending_for(self.node_id) == 0

    def on_conclude(self, network):
        self.concluded += 1

    def handle(self, message, network):
        if isinstance(message, TupleMessage):
            self.protocol.on_work()
            self.work_seen += 1
            return
        if isinstance(message, EndRequest):
            self.protocol.handle_end_request(message, network)
        elif isinstance(message, EndNegative):
            self.protocol.handle_end_negative(message, network)
        elif isinstance(message, EndConfirmed):
            self.protocol.handle_end_confirmed(message, network)

    def on_idle_check(self, network):
        # Mirror the engine: a leader only probes while it still owes an end
        # to its customer (here: until the first conclusion).
        if self.protocol.is_leader:
            self.protocol.maybe_initiate(network, self.concluded == 0)


def build_component(tree: dict[int, list[int]], leader: int = 0, seed=None):
    """Wire a stub component with the given BFST children map."""
    scheduler = Scheduler(seed=seed)
    parents: dict[int, int] = {}
    for parent, kids in tree.items():
        for kid in kids:
            parents[kid] = parent
    nodes = {}
    for node_id in tree:
        node = StubNode(node_id)
        node.protocol = TerminationProtocol(
            node_id=node_id,
            is_leader=node_id == leader,
            bfst_parent=parents.get(node_id),
            bfst_children=tuple(tree.get(node_id, ())),
            empty_queues=node.empty_queues,
            on_conclude=node.on_conclude,
        )
        nodes[node_id] = node
        scheduler.register(node)
    return scheduler, nodes


CHAIN = {0: [1], 1: [2], 2: []}
STAR = {0: [1, 2, 3], 1: [], 2: [], 3: []}


class TestQuiescentComponent:
    def test_concludes_in_two_waves_on_chain(self):
        scheduler, nodes = build_component(CHAIN)
        nodes[0].on_idle_check(scheduler)  # leader notices it is idle
        scheduler.run()
        assert nodes[0].concluded == 1
        assert nodes[0].protocol.rounds_started == 2

    def test_concludes_on_star(self):
        scheduler, nodes = build_component(STAR)
        nodes[0].on_idle_check(scheduler)
        scheduler.run()
        assert nodes[0].concluded == 1

    def test_leaves_answer_first_request_negative(self):
        # Round 1 must come back negative (leaf idleness reaches only 1).
        scheduler, nodes = build_component(CHAIN)
        nodes[0].on_idle_check(scheduler)
        negatives = []
        confirmations = []
        while True:
            msg = scheduler.step()
            if msg is None:
                break
            if isinstance(msg, EndNegative):
                negatives.append(msg)
            if isinstance(msg, EndConfirmed):
                confirmations.append(msg)
        assert negatives and confirmations
        # All negatives belong to round 1, all confirmations to round 2.
        assert {m.round_id for m in negatives} == {1}
        assert {m.round_id for m in confirmations} == {2}

    def test_no_initiation_without_pending_customer(self):
        scheduler, nodes = build_component(CHAIN)
        nodes[0].protocol.maybe_initiate(scheduler, has_pending_customer=False)
        assert scheduler.in_flight() == 0

    def test_single_conclusion_then_silence(self):
        scheduler, nodes = build_component(CHAIN)

        def idle_check_done(network):
            if nodes[0].concluded == 0:
                nodes[0].protocol.maybe_initiate(network, True)

        nodes[0].on_idle_check = idle_check_done
        nodes[0].on_idle_check(scheduler)
        scheduler.run()
        assert nodes[0].concluded == 1


class TestBusyNodes:
    def test_busy_member_blocks_conclusion(self):
        # With a permanently busy member the leader probes forever (the
        # protocol cannot know the member will never finish); bound the run
        # by steps and verify no conclusion ever happens.
        scheduler, nodes = build_component(CHAIN)
        nodes[2].busy = True  # never idle
        nodes[0].on_idle_check(scheduler)
        for _ in range(500):
            if scheduler.step() is None:
                break
        assert nodes[0].concluded == 0
        assert nodes[0].protocol.rounds_started > 2  # it kept probing

    def test_work_between_waves_forces_another_round(self):
        # Inject work at a leaf in the middle of the protocol: idleness must
        # reset and the component must need extra rounds before concluding.
        scheduler, nodes = build_component(CHAIN)
        nodes[0].on_idle_check(scheduler)
        injected = False
        while True:
            msg = scheduler.step()
            if msg is None:
                break
            if (
                not injected
                and isinstance(msg, EndRequest)
                and msg.receiver == 2
            ):
                # During round 1, slip a tuple into node 2's queue.
                scheduler.send(TupleMessage(1, 2, ("late",)))
                injected = True
        assert nodes[2].work_seen == 1
        assert nodes[0].concluded == 1
        assert nodes[0].protocol.rounds_started >= 3

    def test_conclusion_requires_full_period_idleness(self):
        # A node that was busy at the first request of a wave pair cannot
        # confirm that wave; conclusion slips at least one round.
        scheduler, nodes = build_component(STAR)
        nodes[3].busy = True

        def release_after_round(network):
            if nodes[0].protocol.rounds_started >= 1:
                nodes[3].busy = False
            nodes[0].protocol.maybe_initiate(network, nodes[0].concluded == 0)

        nodes[0].on_idle_check = release_after_round
        nodes[0].on_idle_check(scheduler)
        scheduler.run()
        assert nodes[0].concluded == 1
        assert nodes[0].protocol.rounds_started >= 2


class TestTheorem31Soundness:
    """If the leader concludes, every node was idle for a full period."""

    @pytest.mark.parametrize("seed", [None, 1, 2, 3, 17])
    def test_conclusion_implies_quiescence(self, seed):
        scheduler, nodes = build_component({0: [1, 2], 1: [3], 2: [], 3: []}, seed=seed)

        def check_conclude(network):
            nodes[0].concluded += 1
            for node in nodes.values():
                assert node.empty_queues(network), "concluded while busy"
            assert network.in_flight() == 0 or all(
                not isinstance(m, TupleMessage) for _, _, m in network._heap
            )

        nodes[0].protocol.on_conclude = check_conclude
        nodes[0].on_idle_check(scheduler)
        scheduler.run()
        assert nodes[0].concluded == 1

    def test_idleness_counter_semantics(self):
        scheduler, nodes = build_component(CHAIN)
        protocol = nodes[2].protocol
        assert protocol.idleness == 0
        protocol.on_work()
        assert protocol.idleness == 0
        nodes[0].on_idle_check(scheduler)
        scheduler.run()
        # After two idle waves the leaf reached idleness 2.
        assert protocol.idleness >= 2
