"""Tests for answer provenance (proof trees)."""

import pytest

from repro.core.parser import parse_program
from repro.network.engine import MessagePassingEngine
from repro.network.provenance import Derivation, ProvenanceError
from repro.session import Session
from repro.workloads import chain_edges, cycle_edges, facts_from_tables, program_p1

from tests.helpers import with_tables


def run_with_provenance(program, **kwargs):
    engine = MessagePassingEngine(program, provenance=True, **kwargs)
    result = engine.run()
    return engine, result


def edb_facts(program):
    return {f"{f.predicate}({', '.join(str(v) for v in f.ground_tuple())})"
            for f in program.facts}


class TestProofTrees:
    def test_base_case_is_one_fact(self):
        program = parse_program(
            "goal(Z) <- p(a, Z). p(X, Y) <- r(X, Y). r(a, b)."
        )
        engine, result = run_with_provenance(program)
        derivation = engine.explain(("b",))
        assert derivation.kind == "rule"
        assert derivation.facts() == ["r(a, b)"]
        assert derivation.depth() == 3  # goal rule -> p rule -> fact

    def test_recursive_derivation_through_cycle_edges(self, p1_small):
        engine, result = run_with_provenance(p1_small)
        for row in result.answers:
            derivation = engine.explain(row)
            assert derivation.atom == f"goal({row[0]})"
            assert derivation.depth() >= 3

    def test_all_leaves_are_real_edb_facts(self, p1_small):
        engine, result = run_with_provenance(p1_small)
        valid = edb_facts(p1_small)
        for row in result.answers:
            for leaf in engine.explain(row).facts():
                assert leaf in valid

    def test_deep_chain_derivation_depth_scales(self):
        program = with_tables(
            parse_program(
                """
                goal(Z) <- t(0, Z).
                t(X, Y) <- e(X, Y).
                t(X, Y) <- e(X, U), t(U, Y).
                """
            ),
            {"e": chain_edges(10)},
        )
        engine, result = run_with_provenance(program)
        deepest = max(engine.explain(row).depth() for row in result.answers)
        assert deepest >= 10

    def test_cyclic_data_well_founded(self):
        # Recursion over a data cycle: proofs must still bottom out.
        program = with_tables(
            parse_program(
                """
                goal(Z) <- t(0, Z).
                t(X, Y) <- e(X, Y).
                t(X, Y) <- t(X, U), t(U, Y).
                """
            ),
            {"e": cycle_edges(5)},
        )
        engine, result = run_with_provenance(program)
        for row in result.answers:
            derivation = engine.explain(row)
            assert all(leaf.startswith("e(") for leaf in derivation.facts())

    def test_render_is_indented_tree(self, p1_small):
        engine, result = run_with_provenance(p1_small)
        text = engine.explain(sorted(result.answers)[0]).render()
        assert "[EDB fact]" in text
        assert "[by " in text
        assert text.splitlines()[0].startswith("goal(")

    def test_coalesced_mode_supported(self, p1_small):
        engine, result = run_with_provenance(p1_small, coalesce=True)
        for row in result.answers:
            assert engine.explain(row).facts()


class TestErrors:
    def test_requires_flag(self, p1_small):
        engine = MessagePassingEngine(p1_small)
        engine.run()
        with pytest.raises(ProvenanceError):
            engine.explain(("1",))

    def test_non_answer_rejected(self, p1_small):
        engine, result = run_with_provenance(p1_small)
        with pytest.raises(ProvenanceError):
            engine.explain(("nonsense",))


class TestSessionExplain:
    def test_explain_last_query(self):
        session = Session(
            """
            anc(X, Y) <- par(X, Y).
            anc(X, Y) <- par(X, U), anc(U, Y).
            par(ann, bob).  par(bob, cal).
            """,
            provenance=True,
        )
        answers = session.query("anc(ann, Z)")
        assert ("cal",) in answers
        derivation = session.explain(("cal",))
        assert "par(ann, bob)" in derivation.facts()
        assert "par(bob, cal)" in derivation.facts()

    def test_explain_before_query_raises(self):
        session = Session("p(X) <- e(X). e(1).", provenance=True)
        with pytest.raises(RuntimeError):
            session.explain((1,))
