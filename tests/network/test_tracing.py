"""Tests for the message-trace utility."""

from repro.network.engine import MessagePassingEngine
from repro.network.messages import EndRequest, TupleMessage
from repro.network.tracing import MessageTrace

from tests.helpers import with_tables
from repro.workloads import program_p1


def run_traced(program, **trace_kwargs):
    trace = MessageTrace(**trace_kwargs)
    engine = MessagePassingEngine(program, trace=trace)
    result = engine.run()
    return trace, engine, result


class TestMessageTrace:
    def test_records_every_message_by_default(self, p1_small):
        trace, engine, result = run_traced(p1_small)
        # The trace sees physical deliveries (a TupleSet is one entry).
        assert len(trace.messages) == result.physical_messages
        assert trace.dropped == 0

    def test_limit_caps_and_counts_dropped(self, p1_small):
        trace, engine, result = run_traced(p1_small, limit=10)
        assert len(trace.messages) == 10
        assert trace.dropped == result.physical_messages - 10
        assert "further messages" in trace.render(engine.graph)

    def test_tuple_sets_traced_as_single_entries(self):
        from repro.core.parser import parse_program
        from repro.workloads import facts_from_tables

        program = parse_program("goal(X, Y) <- e(X, Y).").with_facts(
            facts_from_tables({"e": [(i, i + 1) for i in range(8)]})
        )
        trace, engine, result = run_traced(program)
        assert result.stats.tuple_sets > 0
        assert len(trace.messages) == result.physical_messages
        assert result.total_messages > result.physical_messages
        text = trace.render(engine.graph)
        assert "tuple set (" in text and "rows)" in text

    def test_protocol_filter(self, p1_small):
        trace, engine, _ = run_traced(p1_small, include_protocol=False)
        assert not any(isinstance(m, EndRequest) for m in trace.messages)
        assert any(isinstance(m, TupleMessage) for m in trace.messages)

    def test_render_with_graph_labels(self, p1_small):
        trace, engine, _ = run_traced(p1_small, limit=50)
        text = trace.render(engine.graph)
        assert "p(" in text
        assert "driver" in text
        assert "relation request" in text

    def test_render_without_graph_uses_ids(self, p1_small):
        trace, engine, _ = run_traced(p1_small, limit=5)
        text = trace.render()
        assert "p(" not in text.split("\n")[0]

    def test_all_message_kinds_describable(self, p1_small):
        trace, engine, _ = run_traced(p1_small)
        text = trace.render(engine.graph)
        for marker in ("tuple", "end", "relation request"):
            assert marker in text


class TestActivityTimeline:
    def test_rows_per_receiver_plus_protocol(self, p1_small):
        trace, engine, result = run_traced(p1_small)
        text = trace.activity_timeline(engine.graph, buckets=40)
        assert "[protocol]" in text
        assert "driver" in text
        # Every line is a fixed-width sparkline between pipes.
        bars = [l for l in text.splitlines() if "|" in l]
        widths = {l.split("|")[1] for l in bars}
        assert len({len(w) for w in widths}) == 1

    def test_protocol_bursts_after_computation(self, p1_small):
        trace, engine, _ = run_traced(p1_small)
        text = trace.activity_timeline(engine.graph, buckets=20)
        protocol_line = next(l for l in text.splitlines() if "[protocol]" in l)
        spark = protocol_line.split("|")[1]
        # Protocol activity reaches the final bucket (the concluding waves).
        assert spark.rstrip(" ")[-1] != " "

    def test_empty_trace(self):
        from repro.network.tracing import MessageTrace

        assert "no messages" in MessageTrace().activity_timeline()

    def test_buckets_clamped(self, p1_small):
        trace, engine, _ = run_traced(p1_small, limit=5)
        text = trace.activity_timeline(engine.graph, buckets=500)
        assert "|" in text
