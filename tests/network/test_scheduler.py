"""Unit tests for the discrete-event scheduler: FIFO, determinism, budgets."""

import pytest

from repro.network.messages import Message, TupleMessage
from repro.network.scheduler import MessageBudgetExceeded, Scheduler


class Recorder:
    """A minimal process that records deliveries and can relay."""

    def __init__(self, node_id, relay_to=None, network_hook=None):
        self.node_id = node_id
        self.received = []
        self.relay_to = relay_to
        self.network_hook = network_hook

    def handle(self, message, network):
        self.received.append(message)
        if self.relay_to is not None:
            network.send(TupleMessage(self.node_id, self.relay_to, message.row))
        if self.network_hook:
            self.network_hook(self, message, network)

    def on_idle_check(self, network):
        pass


def build(n=3, seed=None, **kwargs):
    scheduler = Scheduler(seed=seed, **kwargs)
    nodes = [Recorder(i) for i in range(n)]
    for node in nodes:
        scheduler.register(node)
    return scheduler, nodes


class TestDelivery:
    def test_fifo_per_channel_default(self):
        scheduler, nodes = build()
        for i in range(10):
            scheduler.send(TupleMessage(0, 1, (i,)))
        scheduler.run()
        assert [m.row for m in nodes[1].received] == [(i,) for i in range(10)]

    def test_fifo_per_channel_with_random_latency(self):
        scheduler, nodes = build(seed=1234, n=2)
        for i in range(50):
            scheduler.send(TupleMessage(0, 1, (i,)))
        scheduler.run()
        assert [m.row for m in nodes[1].received] == [(i,) for i in range(50)]

    def test_seeded_runs_are_deterministic(self):
        orders = []
        for _ in range(2):
            scheduler, nodes = build(seed=7)
            # interleave two channels
            for i in range(10):
                scheduler.send(TupleMessage(0, 2, ("a", i)))
                scheduler.send(TupleMessage(1, 2, ("b", i)))
            scheduler.run()
            orders.append([m.row for m in nodes[2].received])
        assert orders[0] == orders[1]

    def test_seed_changes_interleaving(self):
        def run(seed):
            scheduler, nodes = build(seed=seed)
            for i in range(20):
                scheduler.send(TupleMessage(0, 2, ("a", i)))
                scheduler.send(TupleMessage(1, 2, ("b", i)))
            scheduler.run()
            return [m.row for m in nodes[2].received]

        assert run(1) != run(2)  # overwhelmingly likely by construction

    def test_cascading_sends_are_delivered(self):
        scheduler, nodes = build()
        nodes[0].relay_to = 1
        nodes[1].relay_to = 2
        scheduler.send(TupleMessage(2, 0, ("ping",)))
        scheduler.run()
        assert [m.row for m in nodes[2].received] == [("ping",)]

    def test_unknown_receiver_rejected(self):
        scheduler, _ = build()
        with pytest.raises(KeyError):
            scheduler.send(TupleMessage(0, 99, ()))

    def test_duplicate_registration_rejected(self):
        scheduler, nodes = build()
        with pytest.raises(ValueError):
            scheduler.register(nodes[0])


class TestIntrospection:
    def test_pending_for(self):
        scheduler, nodes = build()
        scheduler.send(TupleMessage(0, 1, ()))
        scheduler.send(TupleMessage(0, 1, ()))
        assert scheduler.pending_for(1) == 2
        scheduler.step()
        assert scheduler.pending_for(1) == 1

    def test_in_flight_oracle(self):
        scheduler, _ = build()
        assert scheduler.in_flight() == 0
        scheduler.send(TupleMessage(0, 1, ()))
        assert scheduler.in_flight() == 1

    def test_step_returns_none_when_drained(self):
        scheduler, _ = build()
        assert scheduler.step() is None

    def test_stats_by_kind_and_receiver(self):
        scheduler, nodes = build()
        scheduler.send(TupleMessage(0, 1, ()))
        scheduler.send(TupleMessage(0, 2, ()))
        stats = scheduler.run()
        assert stats.delivered_total == 2
        assert stats.by_kind == {"TupleMessage": 2}
        assert stats.by_receiver == {1: 1, 2: 1}
        assert stats.computation_messages == 2
        assert stats.protocol_messages == 0


class TestBudget:
    def test_budget_guard_fires(self):
        scheduler, nodes = build(max_messages=10)
        # A message ping-pong that never stops.
        nodes[0].relay_to = 1
        nodes[1].relay_to = 0
        scheduler.send(TupleMessage(1, 0, ("x",)))
        with pytest.raises(MessageBudgetExceeded):
            scheduler.run()

    def test_budget_guard_fires_under_step(self):
        # step() must enforce the same budget as run(): a step-driven loop
        # (tracing tools, fine-grained tests) over a livelocked network
        # previously ran unbounded.
        scheduler, nodes = build(max_messages=10)
        nodes[0].relay_to = 1
        nodes[1].relay_to = 0
        scheduler.send(TupleMessage(1, 0, ("x",)))
        with pytest.raises(MessageBudgetExceeded):
            for _ in range(1000):
                if scheduler.step() is None:
                    break

    def test_step_budget_counts_match_run(self):
        scheduler, nodes = build(max_messages=10)
        nodes[0].relay_to = 1
        nodes[1].relay_to = 0
        scheduler.send(TupleMessage(1, 0, ("x",)))
        with pytest.raises(MessageBudgetExceeded):
            while True:
                scheduler.step()
        assert scheduler.stats.delivered_total == 10

    def test_trace_hook_sees_every_delivery(self):
        seen = []
        scheduler = Scheduler(trace=seen.append)
        node = Recorder(0)
        scheduler.register(node)
        scheduler.send(TupleMessage(0, 0, (1,)))
        scheduler.run()
        assert len(seen) == 1
