"""White-box tests of the rule node's incremental join pipeline."""

import pytest

from repro.core.adornment import AdornedAtom
from repro.core.parser import parse_rule
from repro.core.sips import greedy_sip, adorn_body
from repro.core.terms import Variable
from repro.network.messages import RelationRequest, TupleMessage, TupleRequest
from repro.network.nodes import RuleNodeProcess
from repro.network.scheduler import Scheduler


class Probe:
    """Observes everything a node under test sends to a given id."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.tuples = []
        self.requests = []
        self.other = []

    def handle(self, message, network):
        if isinstance(message, TupleMessage):
            self.tuples.append(message.row)
        elif isinstance(message, TupleRequest):
            self.requests.append(message.binding)
        else:
            self.other.append(message)

    def on_idle_check(self, network):
        pass


def build_rule_node(rule_text, head_adornment, parent_adornment=None):
    """A RuleNodeProcess wired to probe parents/children; returns all parts."""
    from repro.core.atoms import Atom

    rule = parse_rule(rule_text)
    head = AdornedAtom(rule.head, head_adornment)
    if parent_adornment is None:
        parent = AdornedAtom(rule.head, head_adornment)
    else:
        # The parent goal is its own (generic) atom: the rule head may be a
        # specialization of it, exactly as in the real graph.
        generic = Atom(
            rule.head.predicate,
            tuple(Variable(f"P{i}") for i in range(rule.head.arity)),
        )
        parent = AdornedAtom(generic, parent_adornment)
    sip = greedy_sip(rule, head)
    adorned = adorn_body(sip)
    child_ids = tuple(100 + i for i in range(len(rule.body)))
    node = RuleNodeProcess(1, rule, head, parent, sip.order, adorned, child_ids)
    scheduler = Scheduler()
    parent_probe = Probe(0)
    node.add_consumer(0, wants_all=not parent.dynamic_positions)
    scheduler.register(parent_probe)
    scheduler.register(node)
    child_probes = {}
    for child_id in child_ids:
        probe = Probe(child_id)
        child_probes[child_id] = probe
        node.add_feeder(child_id, is_feeder=True)
        scheduler.register(probe)
    return node, scheduler, parent_probe, child_probes, adorned


class TestStagePlans:
    def test_stage_vars_accumulate(self):
        node, *_ = build_rule_node(
            "p(X, Z) <- a(X, Y), b(Y, Z).", ("d", "f")
        )
        assert node.stage0_vars == (Variable("X"),)
        assert set(node.stages[0].env_vars) == {Variable("X"), Variable("Y")}
        assert set(node.stages[1].env_vars) == {
            Variable("X"), Variable("Y"), Variable("Z"),
        }

    def test_shared_keys_between_stages(self):
        node, *_ = build_rule_node(
            "p(X, Z) <- a(X, Y), b(Y, Z).", ("d", "f")
        )
        assert node.stages[1].shared_with_prev == (Variable("Y"),)

    def test_d_sources_resolved(self):
        node, *_ = build_rule_node(
            "p(X, Z) <- a(X, Y), b(Y, Z).", ("d", "f")
        )
        # b's first argument Y is class d, fed from the stage-1 env.
        kinds = [k for k, _ in node.stages[1].d_var_sources]
        assert kinds == ["env"]

    def test_constant_subgoal_position_excluded_from_requests(self):
        # A constant argument is class "c", not "d": it is filtered at the
        # child (EDB leaf / goal node), never shipped in tuple requests.
        node, *_ = build_rule_node(
            "p(X, Z) <- a(X, Y), b(k, Y, Z).", ("d", "f")
        )
        b_stage = next(s for s in node.stages if s.subgoal_index == 1)
        assert b_stage.adorned.adornment[0] == "c"
        assert all(kind == "env" for kind, _ in b_stage.d_var_sources)
        assert len(b_stage.d_var_sources) == 1  # just Y


class TestPipelineFlow:
    def test_tuples_flow_through_stages(self):
        node, scheduler, parent, children, adorned = build_rule_node(
            "p(X, Z) <- a(X, Y), b(Y, Z).", ("d", "f")
        )
        scheduler.send(RelationRequest(0, 1, ("d", "f")))
        scheduler.send(TupleRequest(0, 1, ("x1",), 1))
        scheduler.run()
        # The request for a's d-binding went out.
        assert children[100].requests == [("x1",)]
        # a answers: (x1, y1)
        scheduler.send(TupleMessage(100, 1, ("x1", "y1")))
        scheduler.run()
        assert children[101].requests == [("y1",)]
        # b answers: (y1, z1) — the head row appears at the parent.
        scheduler.send(TupleMessage(101, 1, ("y1", "z1")))
        scheduler.run()
        assert parent.tuples == [("x1", "z1")]

    def test_arrival_order_does_not_matter(self):
        # b's tuple arrives before a's: the join must still fire.
        node, scheduler, parent, children, _ = build_rule_node(
            "p(X, Z) <- a(X, Y), b(Y, Z).", ("d", "f")
        )
        scheduler.send(RelationRequest(0, 1, ("d", "f")))
        scheduler.send(TupleRequest(0, 1, ("x1",), 1))
        scheduler.run()
        scheduler.send(TupleMessage(101, 1, ("y1", "z1")))  # early b tuple
        scheduler.run()
        assert parent.tuples == []
        scheduler.send(TupleMessage(100, 1, ("x1", "y1")))
        scheduler.run()
        assert parent.tuples == [("x1", "z1")]

    def test_duplicate_tuples_ignored(self):
        node, scheduler, parent, children, _ = build_rule_node(
            "p(X, Z) <- a(X, Y), b(Y, Z).", ("d", "f")
        )
        scheduler.send(RelationRequest(0, 1, ("d", "f")))
        scheduler.send(TupleRequest(0, 1, ("x1",), 1))
        for _ in range(3):
            scheduler.send(TupleMessage(100, 1, ("x1", "y1")))
            scheduler.send(TupleMessage(101, 1, ("y1", "z1")))
        scheduler.run()
        assert parent.tuples == [("x1", "z1")]
        assert children[101].requests == [("y1",)]

    def test_duplicate_head_requests_ignored(self):
        node, scheduler, parent, children, _ = build_rule_node(
            "p(X, Z) <- a(X, Y), b(Y, Z).", ("d", "f")
        )
        scheduler.send(RelationRequest(0, 1, ("d", "f")))
        scheduler.send(TupleRequest(0, 1, ("x1",), 1))
        scheduler.send(TupleRequest(0, 1, ("x1",), 2))
        scheduler.run()
        assert children[100].requests == [("x1",)]

    def test_head_constant_clash_produces_nothing(self):
        # Rule head p(a, Z): a request for X = b cannot match.
        node, scheduler, parent, children, _ = build_rule_node(
            "p(a, Z) <- r(a, Z).", ("c", "f"), parent_adornment=("d", "f")
        )
        scheduler.send(RelationRequest(0, 1, ("d", "f")))
        scheduler.send(TupleRequest(0, 1, ("b",), 1))
        scheduler.run()
        assert children[100].requests == []
        assert parent.tuples == []

    def test_repeated_head_variable_requires_equal_binding(self):
        node, scheduler, parent, children, _ = build_rule_node(
            "p(X, X) <- r(X).", ("d", "d")
        )
        scheduler.send(RelationRequest(0, 1, ("d", "d")))
        scheduler.send(TupleRequest(0, 1, ("v", "w"), 1))  # v != w: no-op
        scheduler.send(TupleRequest(0, 1, ("v", "v"), 2))
        scheduler.run()
        assert children[100].requests == [("v",)]

    def test_bodiless_rule_emits_head_directly(self):
        node, scheduler, parent, children, _ = build_rule_node(
            "p(a, b).", ("c", "c"), parent_adornment=("d", "f")
        )
        scheduler.send(RelationRequest(0, 1, ("d", "f")))
        scheduler.send(TupleRequest(0, 1, ("a",), 1))
        scheduler.run()
        assert parent.tuples == [("a", "b")]

    def test_existential_subgoal_positions_not_in_env(self):
        # W is existential in a(X, Y, W): rows arrive without the W column.
        node, scheduler, parent, children, adorned = build_rule_node(
            "p(X, Y) <- a(X, Y, W).", ("d", "f")
        )
        assert adorned[0].adornment == ("d", "f", "e")
        scheduler.send(RelationRequest(0, 1, ("d", "f")))
        scheduler.send(TupleRequest(0, 1, ("x1",), 1))
        scheduler.run()
        scheduler.send(TupleMessage(100, 1, ("x1", "y1")))  # two columns only
        scheduler.run()
        assert parent.tuples == [("x1", "y1")]

    def test_three_way_join_with_branching_flow(self):
        node, scheduler, parent, children, _ = build_rule_node(
            "p(X, Z) <- a(X, Y, V), b(Y, U), c(V, U, Z).", ("d", "f")
        )
        scheduler.send(RelationRequest(0, 1, ("d", "f")))
        scheduler.send(TupleRequest(0, 1, ("x",), 1))
        scheduler.run()
        scheduler.send(TupleMessage(100, 1, ("x", "y", "v")))
        scheduler.run()
        scheduler.send(TupleMessage(101, 1, ("y", "u")))
        scheduler.run()
        scheduler.send(TupleMessage(102, 1, ("v", "u", "z")))
        scheduler.run()
        assert parent.tuples == [("x", "z")]
