"""Tests for set-at-a-time evaluation: TupleSet emission and bulk kernels.

The tentpole invariants:

* answers are identical with and without tuple sets (the per-tuple path is
  the oracle-checked baseline);
* a ``TupleSet`` weighs ``len(rows)`` logical tuples in every counter that
  meant "tuples" before (``delivered_total``, per-receiver, computation),
  while ``physical_total`` counts deliveries;
* the bulk join kernels probe each stage index once per *distinct* join key
  per batch, so ``join_lookups`` can only shrink relative to per-tuple;
* provenance survives the bulk paths row by row.
"""

import pytest

from repro.core.parser import parse_program
from repro.network.engine import MessagePassingEngine, evaluate
from repro.network.messages import TupleSet
from repro.workloads import (
    chain_edges,
    cycle_edges,
    facts_from_tables,
    left_recursive_tc_program,
    nonlinear_tc_program,
    nonrecursive_join_program,
    pair_table,
    program_p1,
    same_generation_program,
    tree_parent_edges,
)

from tests.helpers import with_tables


def fan_out_program(rows=12):
    """One EDB scan that answers with many rows at once."""
    return parse_program("goal(X, Y) <- e(X, Y).").with_facts(
        facts_from_tables({"e": [(i, i + 1) for i in range(rows)]})
    )


def join_heavy_program():
    """A three-way join whose middle stages see duplicate join keys."""
    return with_tables(
        nonrecursive_join_program(),
        {
            "a": pair_table(6, 6, 24, seed=5),
            "b": pair_table(6, 6, 24, seed=6),
            "c": pair_table(6, 6, 24, seed=7),
        },
    )


WORKLOADS = {
    "p1": lambda: with_tables(
        program_p1(),
        {"r": [("a", 1), (1, 2), (2, 3)], "q": [(1, 2), (2, 3), (3, 1)]},
    ),
    "fan-out": fan_out_program,
    "tc-left-rec": lambda: with_tables(
        left_recursive_tc_program(0), {"e": chain_edges(10)}
    ),
    "tc-nonlinear": lambda: with_tables(
        nonlinear_tc_program(0), {"e": cycle_edges(6)}
    ),
    "same-gen": lambda: with_tables(
        same_generation_program(4), {"par": tree_parent_edges(3, 2)}
    ),
    "join": join_heavy_program,
}


class TestAnswerParity:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_same_answers_with_and_without_sets(self, name):
        program = WORKLOADS[name]()
        with_sets = evaluate(program, tuple_sets=True)
        without = evaluate(program, tuple_sets=False)
        assert with_sets.answers == without.answers
        assert with_sets.completed and without.completed

    @pytest.mark.parametrize("package", [False, True])
    def test_parity_composes_with_request_packaging(self, package):
        program = join_heavy_program()
        with_sets = evaluate(program, tuple_sets=True, package_requests=package)
        without = evaluate(program, tuple_sets=False, package_requests=package)
        assert with_sets.answers == without.answers


class TestEmissionDiscipline:
    def test_off_switch_means_zero_sets(self):
        for make in WORKLOADS.values():
            result = evaluate(make(), tuple_sets=False)
            assert result.stats.tuple_sets == 0
            assert "TupleSet" not in result.stats.by_kind

    def test_fan_out_scan_is_one_physical_delivery(self):
        result = evaluate(fan_out_program(12), tuple_sets=True)
        assert result.stats.tuple_sets > 0
        # The 12-row scan answer travels as sets, not 12 tuple messages.
        assert result.physical_messages < result.total_messages

    def test_single_row_emissions_stay_tuple_messages(self):
        # One matching fact per lookup: nothing to package, the per-tuple
        # path must be taken verbatim even with the knob on.
        program = parse_program("goal(Y) <- e(a, Y).").with_facts(
            facts_from_tables({"e": [("a", "b")]})
        )
        result = evaluate(program, tuple_sets=True)
        assert result.stats.tuple_sets == 0
        assert result.answers == {("b",)}


class TestLogicalAccounting:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_logical_equals_physical_plus_extra_rows(self, name):
        # Each TupleSet adds len(rows) to the logical total but 1 to the
        # physical total, so the difference is exactly rows-minus-sets.
        stats = evaluate(WORKLOADS[name](), tuple_sets=True).stats
        assert (
            stats.delivered_total - stats.physical_total
            == stats.tuple_set_rows - stats.tuple_sets
        )

    def test_per_receiver_counters_are_weighted(self):
        stats = evaluate(fan_out_program(12), tuple_sets=True).stats
        assert sum(stats.by_receiver.values()) == stats.delivered_total
        assert sum(stats.sets_by_receiver.values()) == stats.tuple_sets

    def test_max_messages_budget_is_logical(self):
        # A tiny logical budget must trip even when everything ships as a
        # handful of physical sets.
        from repro.network.scheduler import MessageBudgetExceeded

        program = fan_out_program(40)
        with pytest.raises(MessageBudgetExceeded):
            evaluate(program, tuple_sets=True, max_messages=10)


class TestBulkJoinKernels:
    def test_join_lookups_never_exceed_per_tuple(self):
        program = join_heavy_program()
        bulk = evaluate(program, tuple_sets=True)
        per_tuple = evaluate(program, tuple_sets=False)
        assert bulk.answers == per_tuple.answers
        assert bulk.join_lookups <= per_tuple.join_lookups

    def test_distinct_key_probing_on_recursion(self):
        program = with_tables(left_recursive_tc_program(0), {"e": chain_edges(12)})
        bulk = evaluate(program, tuple_sets=True)
        per_tuple = evaluate(program, tuple_sets=False)
        assert bulk.answers == per_tuple.answers
        assert bulk.join_lookups <= per_tuple.join_lookups


class TestProvenanceUnderSets:
    @pytest.mark.parametrize("name", ["fan-out", "tc-nonlinear", "join"])
    def test_every_answer_explainable(self, name):
        program = WORKLOADS[name]()
        engine = MessagePassingEngine(program, provenance=True, tuple_sets=True)
        result = engine.run()
        assert result.stats.tuple_sets > 0, "workload should exercise sets"
        valid = {
            f"{f.predicate}({', '.join(str(v) for v in f.ground_tuple())})"
            for f in program.facts
        }
        for row in result.answers:
            derivation = engine.explain(row)
            for leaf in derivation.facts():
                assert leaf in valid


class TestReporting:
    def test_summary_and_node_table_mention_sets(self):
        result = evaluate(fan_out_program(12), tuple_sets=True)
        summary = result.summary()
        assert "tuple sets:" in summary
        assert "logical in" in summary
        assert "sets-in" in result.node_table()

    def test_trace_sees_whole_sets(self):
        from repro.network.tracing import MessageTrace

        trace = MessageTrace()
        engine = MessagePassingEngine(fan_out_program(8), trace=trace)
        result = engine.run()
        traced_sets = [m for m in trace.messages if isinstance(m, TupleSet)]
        assert len(traced_sets) == result.stats.tuple_sets
