"""White-box tests of goal-node and cyclic-node stream behavior."""

import pytest

from repro.core.adornment import AdornedAtom
from repro.core.atoms import atom
from repro.core.terms import Variable
from repro.network.messages import (
    EndMessage,
    RelationRequest,
    TupleMessage,
    TupleRequest,
)
from repro.network.nodes import CyclicNodeProcess, GoalNodeProcess
from repro.network.scheduler import Scheduler

X, Y = Variable("X"), Variable("Y")


class Probe:
    """Records whatever reaches it, by type."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.tuples = []
        self.requests = []
        self.relation_requests = []
        self.ends = []

    def handle(self, message, network):
        if isinstance(message, TupleMessage):
            self.tuples.append(message.row)
        elif isinstance(message, TupleRequest):
            self.requests.append(message.binding)
        elif isinstance(message, RelationRequest):
            self.relation_requests.append(message)
        elif isinstance(message, EndMessage):
            self.ends.append(message)

    def on_idle_check(self, network):
        pass


def goal_fixture(adornment=("d", "f"), consumers=(50,), children=(100, 101)):
    node = GoalNodeProcess(1, AdornedAtom(atom("p", X, Y), adornment))
    scheduler = Scheduler()
    scheduler.register(node)
    probes = {}
    wants_all = "d" not in adornment
    for cid in consumers:
        probe = Probe(cid)
        probes[cid] = probe
        node.add_consumer(cid, wants_all)
        scheduler.register(probe)
    for child in children:
        probe = Probe(child)
        probes[child] = probe
        node.add_feeder(child, is_feeder=True)
        scheduler.register(probe)
    return node, scheduler, probes


class TestGoalNodeStreams:
    def test_relation_request_propagates_once(self):
        node, scheduler, probes = goal_fixture()
        scheduler.send(RelationRequest(50, 1, ("d", "f")))
        scheduler.run()
        assert len(probes[100].relation_requests) == 1
        assert len(probes[101].relation_requests) == 1
        # A second consumer's relation request must not re-propagate.
        node.add_consumer(51, wants_all=False)
        probe51 = Probe(51)
        scheduler.register(probe51)
        scheduler.send(RelationRequest(51, 1, ("d", "f")))
        scheduler.run()
        assert len(probes[100].relation_requests) == 1

    def test_tuple_requests_forwarded_to_all_children_once(self):
        node, scheduler, probes = goal_fixture()
        scheduler.send(RelationRequest(50, 1, ("d", "f")))
        scheduler.send(TupleRequest(50, 1, ("k",), 1))
        scheduler.send(TupleRequest(50, 1, ("k",), 2))  # duplicate binding
        scheduler.run()
        assert probes[100].requests == [("k",)]
        assert probes[101].requests == [("k",)]

    def test_answers_filtered_per_stream_binding(self):
        node, scheduler, probes = goal_fixture(consumers=(50, 51))
        scheduler.send(RelationRequest(50, 1, ("d", "f")))
        scheduler.send(RelationRequest(51, 1, ("d", "f")))
        scheduler.send(TupleRequest(50, 1, ("k1",), 1))
        scheduler.send(TupleRequest(51, 1, ("k2",), 1))
        scheduler.run()
        scheduler.send(TupleMessage(100, 1, ("k1", "v1")))
        scheduler.send(TupleMessage(100, 1, ("k2", "v2")))
        scheduler.run()
        # Each consumer sees only the rows matching its own requests.
        assert probes[50].tuples == [("k1", "v1")]
        assert probes[51].tuples == [("k2", "v2")]

    def test_replay_for_late_binding(self):
        node, scheduler, probes = goal_fixture()
        scheduler.send(RelationRequest(50, 1, ("d", "f")))
        scheduler.send(TupleRequest(50, 1, ("k1",), 1))
        scheduler.run()
        scheduler.send(TupleMessage(100, 1, ("k2", "v2")))  # unrequested row
        scheduler.run()
        assert probes[50].tuples == []
        scheduler.send(TupleRequest(50, 1, ("k2",), 2))  # late interest
        scheduler.run()
        assert probes[50].tuples == [("k2", "v2")]

    def test_duplicate_answers_dropped(self):
        node, scheduler, probes = goal_fixture()
        scheduler.send(RelationRequest(50, 1, ("d", "f")))
        scheduler.send(TupleRequest(50, 1, ("k",), 1))
        scheduler.run()
        for _ in range(3):
            scheduler.send(TupleMessage(100, 1, ("k", "v")))
            scheduler.send(TupleMessage(101, 1, ("k", "v")))
        scheduler.run()
        assert probes[50].tuples == [("k", "v")]
        assert node.tuples_stored == 1

    def test_end_emission_after_feeders_caught_up(self):
        node, scheduler, probes = goal_fixture()
        scheduler.send(RelationRequest(50, 1, ("d", "f")))
        scheduler.send(TupleRequest(50, 1, ("k",), 1))
        scheduler.run()
        assert probes[50].ends == []  # children have not ended
        scheduler.send(EndMessage(100, 1, 1))
        scheduler.send(EndMessage(101, 1, 1))
        scheduler.run()
        assert len(probes[50].ends) == 1
        assert probes[50].ends[0].upto == 1

    def test_wants_all_streams_get_everything(self):
        node, scheduler, probes = goal_fixture(adornment=("f", "f"))
        scheduler.send(RelationRequest(50, 1, ("f", "f")))
        scheduler.run()
        scheduler.send(TupleMessage(100, 1, ("a", 1)))
        scheduler.send(TupleMessage(100, 1, ("b", 2)))
        scheduler.run()
        assert sorted(probes[50].tuples) == [("a", 1), ("b", 2)]


class TestCyclicNode:
    def build(self):
        node = CyclicNodeProcess(2, AdornedAtom(atom("p", X, Y), ("d", "f")), ancestor_id=1)
        scheduler = Scheduler()
        scheduler.register(node)
        ancestor = Probe(1)
        parent = Probe(60)
        node.add_feeder(1, is_feeder=False)
        node.add_consumer(60, wants_all=False)
        scheduler.register(ancestor)
        scheduler.register(parent)
        return node, scheduler, ancestor, parent

    def test_requests_relayed_to_ancestor(self):
        node, scheduler, ancestor, parent = self.build()
        scheduler.send(RelationRequest(60, 2, ("d", "f")))
        scheduler.send(TupleRequest(60, 2, ("k",), 1))
        scheduler.run()
        assert len(ancestor.relation_requests) == 1
        assert ancestor.requests == [("k",)]

    def test_rows_relayed_and_deduplicated(self):
        node, scheduler, ancestor, parent = self.build()
        scheduler.send(RelationRequest(60, 2, ("d", "f")))
        scheduler.send(TupleRequest(60, 2, ("k",), 1))
        scheduler.run()
        scheduler.send(TupleMessage(1, 2, ("k", "v")))
        scheduler.send(TupleMessage(1, 2, ("k", "v")))
        scheduler.run()
        assert parent.tuples == [("k", "v")]

    def test_no_ends_from_cyclic_nodes(self):
        # Cyclic nodes live inside strong components: ends are the leader's.
        node, scheduler, ancestor, parent = self.build()
        node.sc_members = frozenset({1, 2, 60})
        scheduler.send(RelationRequest(60, 2, ("d", "f")))
        scheduler.run()
        assert parent.ends == []
