"""Importable helper functions shared across test modules."""

from __future__ import annotations

from repro.baselines import naive
from repro.core.program import Program
from repro.workloads import facts_from_tables


def with_tables(program: Program, tables: dict) -> Program:
    """Attach ``{predicate: rows}`` tables to a program as its EDB."""
    return program.with_facts(facts_from_tables(tables))


def oracle_answers(program: Program) -> set[tuple]:
    """The reference answer set (naive minimum-model evaluation)."""
    return naive.goal_answers(program)
