"""Unit tests for Program: validation, dependency analysis, recursion classes."""

import pytest

from repro.core.atoms import atom
from repro.core.parser import parse_program, parse_rule
from repro.core.program import Program, ProgramError, strongly_connected_components
from repro.workloads import (
    ancestor_program,
    mutual_recursion_program,
    nonlinear_tc_program,
    nonrecursive_join_program,
    program_p1,
)


class TestValidation:
    def test_nonground_fact_rejected(self):
        from repro.core.terms import Variable

        with pytest.raises(ProgramError):
            Program([], [atom("e", Variable("X"))])

    def test_goal_in_edb_rejected(self):
        with pytest.raises(ProgramError):
            Program([], [atom("goal", "a")])

    def test_goal_in_body_rejected(self):
        with pytest.raises(ProgramError):
            Program([parse_rule("p(X) <- goal(X).")])

    def test_unsafe_rule_rejected(self):
        with pytest.raises(ProgramError):
            Program([parse_rule("p(X, Y) <- e(X, X).")])

    def test_edb_head_rejected(self):
        with pytest.raises(ProgramError):
            Program([parse_rule("e(X, Y) <- f(X, Y).")], [atom("e", 1, 2)])

    def test_valid_program_passes(self):
        program = program_p1()
        program.validate()  # must not raise


class TestViews:
    def test_idb_edb_partition(self):
        program = program_p1()
        assert program.idb_predicates == {"goal", "p"}
        assert program.is_edb("r") and program.is_edb("q")
        assert not program.is_edb("p")

    def test_query_vs_pidb(self):
        program = program_p1()
        assert len(program.query_rules) == 1
        assert len(program.pidb_rules) == 2

    def test_rules_for(self):
        program = program_p1()
        assert len(program.rules_for("p")) == 2
        assert program.rules_for("nope") == []

    def test_constants_gathers_edb_and_idb(self):
        program = parse_program("goal(X) <- p(b, X). p(X, Y) <- e(X, Y). e(1, 2).")
        assert program.constants() == {"b", 1, 2}

    def test_with_facts_replaces_edb(self):
        program = program_p1().with_facts([atom("r", "a", "z")])
        assert len(program.facts) == 1


class TestSccs:
    def test_simple_cycle(self):
        sccs = strongly_connected_components({"a": {"b"}, "b": {"a"}})
        assert {frozenset(c) for c in sccs} == {frozenset({"a", "b"})}

    def test_reverse_topological_order(self):
        # a -> b -> c: c's component must come before a's.
        sccs = strongly_connected_components({"a": {"b"}, "b": {"c"}})
        order = [next(iter(c)) for c in sccs]
        assert order.index("c") < order.index("a")

    def test_self_loop_is_single_component(self):
        sccs = strongly_connected_components({"a": {"a"}})
        assert sccs == [{"a"}]

    def test_isolated_successors_included(self):
        sccs = strongly_connected_components({"a": {"b"}})
        nodes = set().union(*sccs)
        assert nodes == {"a", "b"}

    def test_deep_chain_no_recursion_error(self):
        graph = {str(i): {str(i + 1)} for i in range(5000)}
        sccs = strongly_connected_components(graph)
        assert len(sccs) == 5001


class TestRecursionClasses:
    def test_nonrecursive(self):
        program = nonrecursive_join_program()
        assert not program.is_recursive()
        assert program.is_linear()

    def test_linear_recursion(self):
        program = ancestor_program()
        assert program.is_recursive()
        assert program.is_linear()
        assert program.recursive_predicates() == {"anc"}

    def test_nonlinear_recursion(self):
        program = nonlinear_tc_program()
        assert program.is_recursive()
        assert not program.is_linear()
        assert len(program.nonlinear_rules()) == 1

    def test_p1_is_nonlinear(self):
        # P1's recursive rule has two recursive p subgoals.
        assert not program_p1().is_linear()

    def test_mutual_recursion_detected(self):
        program = mutual_recursion_program()
        assert program.recursive_predicates() == {"oddp", "evenp"}
        # One recursive subgoal per rule: still linear.
        assert program.is_linear()

    def test_goal_not_recursive(self):
        assert "goal" not in program_p1().recursive_predicates()
