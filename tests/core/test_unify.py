"""Unit tests for unification, matching, variants, and renaming apart."""

import pytest

from repro.core.atoms import atom
from repro.core.terms import Constant, FreshVariables, Variable
from repro.core.unify import (
    Substitution,
    is_variant,
    match,
    rename_apart,
    unify,
    variant_renaming,
)

X, Y, Z, U, V = (Variable(n) for n in "XYZUV")


class TestSubstitution:
    def test_resolve_unbound(self):
        assert Substitution().resolve(X) == X

    def test_bind_and_apply(self):
        s = Substitution()
        s.bind(X, Constant(1))
        assert s.apply(atom("p", X, Y)) == atom("p", 1, Y)

    def test_bind_keeps_solved_form(self):
        s = Substitution()
        s.bind(X, Y)
        s.bind(Y, Constant(3))
        # X must now resolve to 3, not to Y.
        assert s.resolve(X) == Constant(3)

    def test_bind_self_is_noop(self):
        s = Substitution()
        s.bind(X, X)
        assert len(s) == 0

    def test_is_renaming(self):
        assert Substitution({X: Y, Z: U}).is_renaming()
        assert not Substitution({X: Y, Z: Y}).is_renaming()  # not injective
        assert not Substitution({X: Constant(1)}).is_renaming()

    def test_equality(self):
        assert Substitution({X: Y}) == Substitution({X: Y})
        assert Substitution({X: Y}) != Substitution({X: Z})


class TestUnify:
    def test_identical_atoms(self):
        s = unify(atom("p", X, Y), atom("p", X, Y))
        assert s is not None and len(s) == 0

    def test_variable_against_constant(self):
        s = unify(atom("p", X), atom("p", "a"))
        assert s is not None and s.resolve(X) == Constant("a")

    def test_constant_clash(self):
        assert unify(atom("p", "a"), atom("p", "b")) is None

    def test_predicate_mismatch(self):
        assert unify(atom("p", X), atom("q", X)) is None

    def test_arity_mismatch(self):
        assert unify(atom("p", X), atom("p", X, Y)) is None

    def test_variable_chains(self):
        # p(X, X) with p(Y, a): X and Y both become a.
        s = unify(atom("p", X, X), atom("p", Y, "a"))
        assert s is not None
        assert s.resolve(X) == Constant("a")
        assert s.resolve(Y) == Constant("a")

    def test_repeated_variable_clash(self):
        assert unify(atom("p", X, X), atom("p", "a", "b")) is None

    def test_mgu_makes_atoms_equal(self):
        a = atom("p", X, Y, "c")
        b = atom("p", "a", Z, Z)
        s = unify(a, b)
        assert s is not None
        assert s.apply(a) == s.apply(b)

    def test_result_is_most_general(self):
        # Unifying p(X, Y) with p(U, V) should not introduce constants.
        s = unify(atom("p", X, Y), atom("p", U, V))
        assert s is not None and s.is_renaming()


class TestVariants:
    def test_renamed_is_variant(self):
        assert is_variant(atom("p", X, Y), atom("p", U, V))

    def test_repeated_pattern_must_match(self):
        assert not is_variant(atom("p", X, X), atom("p", U, V))
        assert is_variant(atom("p", X, X), atom("p", V, V))

    def test_constants_must_match_exactly(self):
        assert is_variant(atom("p", "a", X), atom("p", "a", Y))
        assert not is_variant(atom("p", "a", X), atom("p", "b", Y))

    def test_variable_vs_constant_not_variant(self):
        assert not is_variant(atom("p", X), atom("p", "a"))

    def test_variant_renaming_is_bijection(self):
        renaming = variant_renaming(atom("p", X, Y, X), atom("p", U, V, U))
        assert renaming == {X: U, Y: V}

    def test_non_injective_rejected(self):
        # p(X, Y) -> p(U, U) maps two variables onto one.
        assert variant_renaming(atom("p", X, Y), atom("p", U, U)) is None

    def test_variant_is_symmetric(self):
        a, b = atom("p", X, Y, "k"), atom("p", V, Z, "k")
        assert is_variant(a, b) and is_variant(b, a)


class TestMatch:
    def test_simple_match(self):
        s = match(atom("e", X, Y), atom("e", 1, 2))
        assert s is not None
        assert s.resolve(X) == Constant(1) and s.resolve(Y) == Constant(2)

    def test_constant_positions_checked(self):
        assert match(atom("e", "a", X), atom("e", "b", 2)) is None
        assert match(atom("e", "a", X), atom("e", "a", 2)) is not None

    def test_repeated_variables_checked(self):
        assert match(atom("e", X, X), atom("e", 1, 2)) is None
        assert match(atom("e", X, X), atom("e", 1, 1)) is not None

    def test_predicate_and_arity(self):
        assert match(atom("e", X), atom("f", 1)) is None
        assert match(atom("e", X), atom("e", 1, 2)) is None


class TestRenameApart:
    def test_fresh_variables_everywhere(self):
        fresh = FreshVariables()
        atoms, renaming = rename_apart([atom("p", X, Y), atom("q", Y, Z)], fresh)
        new_vars = set()
        for a in atoms:
            new_vars |= a.variable_set()
        assert new_vars.isdisjoint({X, Y, Z})
        assert len(renaming) == 3

    def test_shared_variables_stay_shared(self):
        fresh = FreshVariables()
        atoms, _ = rename_apart([atom("p", X, Y), atom("q", Y)], fresh)
        # The Y occurrences must map to the same fresh variable.
        assert atoms[0].args[1] == atoms[1].args[0]

    def test_structure_preserved(self):
        fresh = FreshVariables()
        atoms, _ = rename_apart([atom("p", X, "a", X)], fresh)
        assert atoms[0].repetition_pattern() == atom("p", X, "a", X).repetition_pattern()
