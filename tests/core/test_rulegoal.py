"""Unit tests for rule/goal graph construction (Section 2) — including the
exact structure of Fig 1 and the Theorem 2.1 termination guarantees."""

import pytest

from repro.core.adornment import AdornedAtom, CONSTANT, DYNAMIC, FREE, initial_goal_adornment
from repro.core.atoms import atom
from repro.core.parser import parse_program
from repro.core.rulegoal import (
    GraphSizeExceeded,
    build_basic_rule_goal_graph,
    build_rule_goal_graph,
)
from repro.core.sips import all_free_sip
from repro.workloads import (
    ancestor_program,
    mutual_recursion_program,
    nonrecursive_join_program,
    program_p1,
)


@pytest.fixture
def fig1_graph():
    """The greedy information-passing rule/goal graph for P1 (Fig 1)."""
    return build_rule_goal_graph(program_p1())


class TestFigure1:
    def test_root_is_goal_predicate(self, fig1_graph):
        root = fig1_graph.goal_nodes[fig1_graph.root]
        assert root.predicate == "goal"
        assert root.adorned.adornment == (FREE,)

    def _goal_labels(self, graph):
        return {
            (g.predicate, "".join(g.adorned.adornment), g.kind)
            for g in graph.goal_nodes.values()
        }

    def test_node_inventory_matches_figure(self, fig1_graph):
        labels = self._goal_labels(fig1_graph)
        # Fig 1 (plus the trivial goal level): p appears with cf (root call),
        # df (recursive call); q is an EDB leaf with df; r with cf and df.
        assert ("p", "cf", "idb") in labels
        assert ("p", "df", "idb") in labels
        assert ("p", "cf", "cyclic") in labels
        assert ("p", "df", "cyclic") in labels
        assert ("q", "df", "edb") in labels
        assert ("r", "cf", "edb") in labels
        assert ("r", "df", "edb") in labels

    def test_counts_match_figure(self, fig1_graph):
        # 2 (goal level) + 13 (Fig 1 proper): see the worked example.
        assert len(fig1_graph.goal_nodes) == 10
        assert len(fig1_graph.rule_nodes) == 5
        cyclic = [g for g in fig1_graph.goal_nodes.values() if g.kind == "cyclic"]
        assert len(cyclic) == 3

    def test_cycle_edges_target_correct_ancestors(self, fig1_graph):
        for goal in fig1_graph.goal_nodes.values():
            if goal.kind != "cyclic":
                continue
            ancestor = fig1_graph.goal_nodes[goal.cycle_source]
            assert (
                ancestor.adorned.variant_signature()
                == goal.adorned.variant_signature()
            )
            assert ancestor.id in goal.ancestors

    def test_recursive_df_node_serves_two_cyclic_variants(self, fig1_graph):
        # p(V^d, Z^f) supplies tuples to p(V^d, Y^f) and p(W^d, Z^f).
        df_nodes = [
            g
            for g in fig1_graph.goal_nodes.values()
            if g.predicate == "p"
            and g.kind == "idb"
            and "".join(g.adorned.adornment) == "df"
        ]
        assert len(df_nodes) == 1
        assert len(df_nodes[0].cycle_targets) == 2

    def test_graph_size_independent_of_edb(self):
        small = build_rule_goal_graph(
            program_p1().with_facts([atom("r", "a", "b")])
        )
        big_facts = [atom("r", i, i + 1) for i in range(500)]
        big = build_rule_goal_graph(program_p1().with_facts(big_facts))
        assert small.size() == big.size()  # Theorem 2.1


class TestStrongComponents:
    def test_two_components_in_fig1(self, fig1_graph):
        components = fig1_graph.strong_components()
        assert len(components) == 2

    def test_leaders_are_goal_nodes_with_outside_parents(self, fig1_graph):
        for info in fig1_graph.strong_components():
            assert fig1_graph.is_goal(info.leader)
            parent = fig1_graph.dfs_parent(info.leader)
            assert parent not in info.members

    def test_bfst_spans_component(self, fig1_graph):
        for info in fig1_graph.strong_components():
            reached = {info.leader}
            frontier = [info.leader]
            while frontier:
                node = frontier.pop()
                for child in info.bfst_children.get(node, ()):
                    assert child not in reached
                    reached.add(child)
                    frontier.append(child)
            assert reached == set(info.members)

    def test_feeders_and_customers(self, fig1_graph):
        for info in fig1_graph.strong_components():
            leader = info.leader
            customers = fig1_graph.customers(leader)
            assert customers, "a leader must have an external customer"
            for member in info.members:
                for feeder in fig1_graph.feeders(member):
                    assert feeder not in info.members

    def test_nonrecursive_program_has_no_components(self):
        graph = build_rule_goal_graph(nonrecursive_join_program())
        assert graph.strong_components() == []

    def test_mutual_recursion_single_component(self):
        graph = build_rule_goal_graph(mutual_recursion_program(0))
        components = graph.strong_components()
        assert len(components) == 1
        predicates = {
            graph.goal_nodes[m].predicate
            for m in components[0].members
            if graph.is_goal(m)
        }
        assert {"oddp", "evenp"} <= predicates


class TestConstruction:
    def test_edb_subgoals_stay_leaves(self, fig1_graph):
        for goal in fig1_graph.goal_nodes.values():
            if goal.kind == "edb":
                assert goal.rule_children == []

    def test_rule_head_unifies_with_parent_goal(self, fig1_graph):
        from repro.core.unify import unify

        for rule_node in fig1_graph.rule_nodes.values():
            parent = fig1_graph.goal_nodes[rule_node.parent]
            assert unify(rule_node.rule.head, parent.adorned.atom) is not None

    def test_rule_copies_are_renamed_apart(self, fig1_graph):
        # Variables a rule copy introduces (i.e. not inherited from its parent
        # goal through unification) must be globally unique across rule nodes.
        seen: set = set()
        for rule_node in fig1_graph.rule_nodes.values():
            parent = fig1_graph.goal_nodes[rule_node.parent]
            introduced = rule_node.rule.variables() - parent.adorned.atom.variable_set()
            assert seen.isdisjoint(introduced)
            seen |= introduced

    def test_constant_clash_prunes_rule(self):
        # Rule heads p(a,...) and p(b,...): the goal p(a, Z) matches only one.
        program = parse_program(
            """
            goal(Z) <- p(a, Z).
            p(a, X) <- e(X).
            p(b, X) <- f(X).
            """
        )
        graph = build_rule_goal_graph(program)
        p_goal = next(
            g for g in graph.goal_nodes.values() if g.predicate == "p"
        )
        assert len(p_goal.rule_children) == 1

    def test_left_recursion_terminates(self):
        program = parse_program(
            """
            goal(Z) <- t(a, Z).
            t(X, Y) <- t(X, U), e(U, Y).
            t(X, Y) <- e(X, Y).
            """
        )
        graph = build_rule_goal_graph(program)
        assert graph.size() > 0  # construction itself must terminate

    def test_repeated_variable_goal_patterns(self):
        # Thm 2.1's technicality: p(X, X, Z) vs p(V, V, V) nodes coexist.
        program = parse_program(
            """
            goal(Z) <- p(Z, Z, Z).
            p(X, X, Z) <- p(X, Y, Z), e(Y, X).
            p(X, Y, Z) <- e(X, Y), e(Y, Z).
            """
        )
        graph = build_rule_goal_graph(program)
        patterns = {
            g.adorned.atom.repetition_pattern()
            for g in graph.goal_nodes.values()
            if g.predicate == "p"
        }
        assert len(patterns) >= 2

    def test_missing_query_rule_raises(self):
        program = parse_program("p(X, Y) <- e(X, Y).", validate=False)
        with pytest.raises(ValueError):
            build_rule_goal_graph(program)

    def test_query_goal_override(self):
        program = ancestor_program(0)
        goal = initial_goal_adornment(atom("anc", 0, Variable_Z()))
        graph = build_rule_goal_graph(program, query_goal=goal)
        assert graph.goal_nodes[graph.root].predicate == "anc"

    def test_max_nodes_guard(self):
        with pytest.raises(GraphSizeExceeded):
            build_rule_goal_graph(program_p1(), max_nodes=3)

    def test_basic_graph_has_no_d_arguments(self):
        graph = build_basic_rule_goal_graph(ancestor_program(0))
        for goal in graph.goal_nodes.values():
            assert DYNAMIC not in goal.adorned.adornment

    def test_pretty_renders_every_reachable_node(self, fig1_graph):
        text = fig1_graph.pretty()
        assert "cycle from" in text
        assert "[EDB]" in text
        assert "p(" in text and "q(" in text and "r(" in text

    def test_dot_export(self, fig1_graph):
        dot = fig1_graph.to_dot()
        assert dot.startswith("digraph")
        # Every node declared; cycle edges dashed; components clustered.
        for node_id in list(fig1_graph.goal_nodes) + list(fig1_graph.rule_nodes):
            assert f"n{node_id} " in dot
        assert "style=dashed" in dot
        assert dot.count("subgraph cluster_") == 2
        assert dot.rstrip().endswith("}")

    def test_depths_increase_down_the_tree(self, fig1_graph):
        for rule_node in fig1_graph.rule_nodes.values():
            parent = fig1_graph.goal_nodes[rule_node.parent]
            assert rule_node.depth == parent.depth + 1
            for child in rule_node.subgoal_children:
                assert fig1_graph.goal_nodes[child].depth == rule_node.depth + 1


def Variable_Z():
    from repro.core.terms import Variable

    return Variable("Z")
