"""Unit tests for the monotone flow property, qual-tree SIPs, and Theorem 4.2
composition — Example 4.1 (Figs 3 & 4), Example 4.2, and Fig 5."""

import pytest

from repro.core.adornment import AdornedAtom, DYNAMIC, FREE
from repro.core.monotone import (
    HEAD_LABEL,
    compose_qual_trees,
    evaluation_hypergraph,
    extend_adorned,
    extend_rule,
    has_monotone_flow,
    qual_tree_sip,
    recursive_leaf_subgoals,
    rule_qual_tree,
    subgoal_label,
)
from repro.core.parser import parse_rule
from repro.core.sips import adorn_body, is_greedy
from repro.core.terms import FreshVariables, Variable
from repro.workloads import adorned_head_df, rule_r1, rule_r2, rule_r3


class TestEvaluationHypergraph:
    def test_head_edge_is_bound_variables_only(self):
        rule = rule_r1()
        h = evaluation_hypergraph(rule, adorned_head_df(rule))
        assert h.edges[HEAD_LABEL] == frozenset({Variable("X")})

    def test_subgoal_edges_hold_all_their_variables(self):
        rule = rule_r2()
        h = evaluation_hypergraph(rule, adorned_head_df(rule))
        assert h.edges[subgoal_label(0)] == frozenset(
            {Variable("X"), Variable("Y"), Variable("V")}
        )

    def test_constants_are_not_vertices(self):
        rule = parse_rule("p(X, Z) <- a(X, k), b(k, Z).")
        h = evaluation_hypergraph(rule, adorned_head_df(rule))
        assert h.vertices() == {Variable("X"), Variable("Z")}

    def test_mismatched_head_rejected(self):
        rule = rule_r1()
        other = parse_rule("p(A, B) <- a(A, B).")
        with pytest.raises(ValueError):
            evaluation_hypergraph(rule, adorned_head_df(other))


class TestExample41:
    """R1 and R2 have the monotone flow property; R3 does not."""

    def test_r1_monotone(self):
        assert has_monotone_flow(rule_r1(), adorned_head_df(rule_r1()))

    def test_r2_monotone_fig3(self):
        assert has_monotone_flow(rule_r2(), adorned_head_df(rule_r2()))

    def test_r3_not_monotone_fig4(self):
        assert not has_monotone_flow(rule_r3(), adorned_head_df(rule_r3()))

    def test_r3_cycle_involves_y_v_w(self):
        rule = rule_r3()
        result = evaluation_hypergraph(rule, adorned_head_df(rule)).gyo_reduction()
        assert not result.acyclic
        core = {v.name for v in result.cyclic_core_vertices()}
        assert core == {"Y", "V", "W"}

    def test_r3_has_no_qual_tree(self):
        assert rule_qual_tree(rule_r3(), adorned_head_df(rule_r3())) is None
        assert qual_tree_sip(rule_r3(), adorned_head_df(rule_r3())) is None

    def test_binding_pattern_matters(self):
        # With BOTH head arguments free, even R1's hypergraph gains an empty
        # head edge but stays acyclic; with both bound it is acyclic too —
        # while a genuinely cyclic body stays cyclic for every pattern.
        rule = rule_r3()
        both_free = AdornedAtom(rule.head, (FREE, FREE))
        assert not has_monotone_flow(rule, both_free)


class TestExample42:
    """The qual tree of R2 with p(X^d, Z^f) and its induced greedy SIP."""

    def setup_method(self):
        self.rule = rule_r2()
        self.head = adorned_head_df(self.rule)
        self.tree = rule_qual_tree(self.rule, self.head)

    def test_tree_shape(self):
        # head - a; a - b, a - c; b - e; c - d  (Example 4.2's picture).
        parents = self.tree.parent_map()
        assert parents[subgoal_label(0)] == HEAD_LABEL  # a under the head
        assert parents[subgoal_label(1)] == subgoal_label(0)  # b under a
        assert parents[subgoal_label(2)] == subgoal_label(0)  # c under a
        assert parents[subgoal_label(3)] == subgoal_label(2)  # d under c
        assert parents[subgoal_label(4)] == subgoal_label(1)  # e under b

    def test_tree_satisfies_property(self):
        assert self.tree.satisfies_qual_tree_property()

    def test_directed_tree_gives_greedy_sip(self):
        # Theorem 4.1 for the worked example.
        sip = qual_tree_sip(self.rule, self.head)
        assert sip is not None
        assert is_greedy(sip)

    def test_sip_adornments_follow_the_flow(self):
        sip = qual_tree_sip(self.rule, self.head)
        adorned = adorn_body(sip)
        # a(X^d,Y^f,V^f), b(Y^d,U^f), c(V^d,T^f), d(T^d), e(U^d,Z^f).
        assert [a.adornment_string() for a in adorned] == [
            "dff",
            "df",
            "df",
            "d",
            "df",
        ]

    def test_independent_branches_do_not_bind_each_other(self):
        sip = qual_tree_sip(self.rule, self.head)
        # b and c are in different branches: no arc between them.
        for arc in sip.arcs:
            assert {arc.source, arc.target} != {1, 2}


class TestExtendRule:
    def test_resolution_replaces_subgoal_in_place(self):
        upper = parse_rule("p(X, Z) <- a(X, Y), q(Y, Z).")
        lower = parse_rule("q(S, T) <- b(S, W), c(W, T).")
        ext = extend_rule(upper, 1, lower)
        assert [s.predicate for s in ext.rule.body] == ["a", "b", "c"]
        assert ext.rule.head.predicate == "p"

    def test_unification_applied(self):
        upper = parse_rule("p(X, Z) <- q(X, Z).")
        lower = parse_rule("q(a, T) <- b(T).")
        ext = extend_rule(upper, 0, lower)
        # X must have been bound to the constant a.
        from repro.core.terms import Constant

        assert ext.rule.head.args[0] == Constant("a")

    def test_non_unifiable_raises(self):
        upper = parse_rule("p(X) <- q(a, X).")
        lower = parse_rule("q(b, T) <- c(T).")
        with pytest.raises(ValueError):
            extend_rule(upper, 0, lower)

    def test_index_maps(self):
        upper = parse_rule("p(X, Z) <- a(X, Y), q(Y, Z), d(Z).")
        lower = parse_rule("q(S, T) <- b(S, W), c(W, T).")
        ext = extend_rule(upper, 1, lower)
        assert ext.extended_index(0) == 0
        assert ext.extended_index(2) == 3
        assert ext.lower_extended_index(0) == 1
        assert ext.lower_extended_index(1) == 2
        with pytest.raises(ValueError):
            ext.extended_index(1)

    def test_variables_renamed_apart(self):
        upper = parse_rule("p(X, Z) <- q(X, Z).")
        lower = parse_rule("q(X, Z) <- b(X, W), c(W, Z).")  # clashing names
        ext = extend_rule(upper, 0, lower)
        # W must not collide with upper's variables; the body joins properly.
        assert len(ext.rule.body) == 2
        assert ext.rule.is_safe()


class TestTheorem42:
    """Qual trees compose under resolution on a leaf subgoal (Fig 5)."""

    def test_chain_composition(self):
        upper = parse_rule("p(X, Z) <- a(X, Y), q(Y, Z).")
        lower = parse_rule("q(S, T) <- b(S, W), c(W, T).")
        head = adorned_head_df(upper)
        ext, tree = compose_qual_trees(upper, head, 1, lower)
        assert tree.is_tree()
        assert tree.satisfies_qual_tree_property()

    def test_composed_tree_matches_extended_hypergraph(self):
        upper = parse_rule("p(X, Z) <- a(X, Y), q(Y, Z).")
        lower = parse_rule("q(S, T) <- b(S, W), c(W, T).")
        ext, tree = compose_qual_trees(upper, adorned_head_df(upper), 1, lower)
        hyper = evaluation_hypergraph(ext.rule, ext.head)
        assert dict(tree.nodes) == dict(hyper.edges)

    def test_recursive_self_composition(self):
        # The interesting case of §4.2: resolve a rule's recursive subgoal
        # with (a copy of) the rule itself.
        rule = parse_rule("p(X, Z) <- a(X, Y), p(Y, Z).")
        head = adorned_head_df(rule)
        ext, tree = compose_qual_trees(rule, head, 1, rule)
        assert tree.satisfies_qual_tree_property()
        assert [s.predicate for s in ext.rule.body] == ["a", "a", "p"]
        # The extension still has the monotone flow property...
        assert has_monotone_flow(ext.rule, ext.head)
        # ...and its recursive subgoal is again a qual tree leaf, so the
        # property transmits to ALL recursive extensions.
        assert recursive_leaf_subgoals(ext.rule, ext.head) == [2]

    def test_non_leaf_subgoal_rejected(self):
        # In R2's tree, subgoal a (g0) is internal.
        rule = rule_r2()
        lower = parse_rule("a(S, T, U) <- x(S, T), y(T, U).")
        with pytest.raises(ValueError):
            compose_qual_trees(rule, adorned_head_df(rule), 0, lower)

    def test_cyclic_upper_rejected(self):
        lower = parse_rule("e(S, T) <- x(S, T).")
        with pytest.raises(ValueError):
            compose_qual_trees(rule_r3(), adorned_head_df(rule_r3()), 4, lower)

    def test_cyclic_lower_rejected(self):
        upper = parse_rule("p(X, Z) <- a(X, Y), q(Y, Z).")
        cyclic_lower = parse_rule(
            "q(S, T) <- u(S, B), v(B, C), w(C, S), x(S, T)."
        )
        # u/v/w form a cycle on S, B, C under head q(S^d, T^f).
        with pytest.raises(ValueError):
            compose_qual_trees(upper, adorned_head_df(upper), 1, cyclic_lower)

    def test_composition_with_branching_lower(self):
        upper = parse_rule("p(X, Z) <- a(X, Y), q(Y, Z).")
        lower = rule_r2().substitute({})  # R2 defines p; rename predicate q
        from repro.core.atoms import Atom
        from repro.core.rules import Rule

        lower = Rule(Atom("q", lower.head.args), lower.body)
        ext, tree = compose_qual_trees(upper, adorned_head_df(upper), 1, lower)
        assert tree.is_tree()
        assert tree.satisfies_qual_tree_property()
        assert len(ext.rule.body) == 1 + 5


class TestRecursiveLeafSubgoals:
    def test_linear_tail_recursion(self):
        rule = parse_rule("p(X, Z) <- a(X, Y), p(Y, Z).")
        assert recursive_leaf_subgoals(rule, adorned_head_df(rule)) == [1]

    def test_non_monotone_has_none(self):
        assert recursive_leaf_subgoals(rule_r3(), adorned_head_df(rule_r3())) == []

    def test_nonrecursive_rule_has_none(self):
        assert recursive_leaf_subgoals(rule_r1(), adorned_head_df(rule_r1())) == []
