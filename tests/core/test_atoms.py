"""Unit tests for atoms: structure, substitution, repetition patterns."""

import pytest

from repro.core.atoms import Atom, atom
from repro.core.terms import Constant, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestConstruction:
    def test_atom_helper_coerces(self):
        a = atom("p", X, "a", 3)
        assert a.args == (X, Constant("a"), Constant(3))

    def test_zero_arity(self):
        a = atom("flag")
        assert a.arity == 0
        assert str(a) == "flag"

    def test_rejects_non_terms(self):
        with pytest.raises(TypeError):
            Atom("p", ("raw",))  # type: ignore[arg-type]

    def test_rejects_empty_predicate(self):
        with pytest.raises(ValueError):
            Atom("", ())

    def test_str(self):
        assert str(atom("p", X, "a")) == "p(X, a)"


class TestStructure:
    def test_variables_in_order_with_repeats(self):
        a = atom("p", X, Y, X)
        assert a.variables() == [X, Y, X]
        assert a.variable_set() == {X, Y}

    def test_constants(self):
        a = atom("p", "a", X, 3)
        assert a.constants() == [Constant("a"), Constant(3)]

    def test_is_ground(self):
        assert atom("p", "a", 1).is_ground()
        assert not atom("p", "a", X).is_ground()

    def test_ground_tuple(self):
        assert atom("p", "a", 1).ground_tuple() == ("a", 1)

    def test_ground_tuple_raises_on_variables(self):
        with pytest.raises(ValueError):
            atom("p", X).ground_tuple()


class TestRepetitionPattern:
    def test_distinct_variables(self):
        assert atom("p", X, Y, Z).repetition_pattern() == (0, 1, 2)

    def test_repeated_variable(self):
        assert atom("p", X, X, Z).repetition_pattern() == (0, 0, 2)

    def test_all_same(self):
        assert atom("p", X, X, X).repetition_pattern() == (0, 0, 0)

    def test_theorem21_technicality(self):
        # p(X, X, Z) and p(V, V, V) must not look alike (Thm 2.1 proof).
        V = Variable("V")
        assert (
            atom("p", X, X, Z).repetition_pattern()
            != atom("p", V, V, V).repetition_pattern()
        )

    def test_renaming_invariance(self):
        U, W = Variable("U"), Variable("W")
        assert (
            atom("p", X, Y, X).repetition_pattern()
            == atom("p", U, W, U).repetition_pattern()
        )

    def test_constants_numbered_by_first_occurrence(self):
        a = atom("p", "a", X, "b", "a")
        assert a.repetition_pattern() == (-1, 1, -2, -1)


class TestSubstitution:
    def test_substitute_variable(self):
        a = atom("p", X, Y)
        assert a.substitute({X: Constant(1)}) == atom("p", 1, Y)

    def test_substitute_to_variable(self):
        a = atom("p", X, Y)
        assert a.substitute({X: Y}) == atom("p", Y, Y)

    def test_no_change_returns_self(self):
        a = atom("p", X)
        assert a.substitute({Y: Constant(1)}) is a

    def test_constants_untouched(self):
        a = atom("p", "a", X)
        out = a.substitute({X: Constant("b")})
        assert out == atom("p", "a", "b")

    def test_atoms_hashable_and_iterable(self):
        a = atom("p", X, "a")
        assert list(a) == [X, Constant("a")]
        assert len({a, atom("p", X, "a")}) == 1
