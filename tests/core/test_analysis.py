"""Tests for the whole-program static analysis module."""

import pytest

from repro.core.analysis import analyze
from repro.core.parser import parse_program
from repro.workloads import (
    ancestor_program,
    nonrecursive_join_program,
    program_p1,
    rule_r3,
)


class TestPredicateClassification:
    def test_p1(self):
        report = analyze(program_p1())
        by_name = {p.name: p for p in report.predicates}
        assert by_name["p"].kind == "idb"
        assert by_name["p"].recursive and not by_name["p"].linear
        assert by_name["q"].kind == "edb"
        assert not by_name["goal"].recursive

    def test_query_induced_adornments(self):
        report = analyze(program_p1())
        by_name = {p.name: p for p in report.predicates}
        assert set(by_name["p"].adornments) == {"cf", "df"}
        assert by_name["q"].adornments == ("df",)

    def test_linear_recursion_flag(self):
        report = analyze(ancestor_program(0))
        by_name = {p.name: p for p in report.predicates}
        assert by_name["anc"].recursive and by_name["anc"].linear


class TestRuleNodeReports:
    def test_p1_rules_all_monotone_and_greedy(self):
        report = analyze(program_p1())
        assert all(r.monotone_flow for r in report.rule_nodes)
        assert all(r.sip_is_greedy for r in report.rule_nodes)
        assert report.warnings == ()

    def test_distinct_binding_patterns_reported_separately(self):
        report = analyze(program_p1())
        recursive_reports = [
            r for r in report.rule_nodes if r.rule.count("p(") >= 3
        ]
        assert {r.head_adornment for r in recursive_reports} == {"cf", "df"}

    def test_non_monotone_rule_warned(self):
        r3 = rule_r3()
        program = parse_program(
            """
            goal(Z) <- p(x0, Z).
            p(X, Z) <- a(X, Y, V), b(Y, W, U), c(V, W, T), d(T), e(U, Z).
            """
        )
        report = analyze(program)
        assert any("monotone flow" in w for w in report.warnings)
        bad = [r for r in report.rule_nodes if not r.monotone_flow]
        assert bad and set(bad[0].cyclic_core)

    def test_cartesian_stage_warned(self):
        program = parse_program(
            """
            goal(X, Y) <- left(X), right(Y).
            left(X) <- a(X).
            right(Y) <- b(Y).
            """
        )
        report = analyze(program)
        assert any("cartesian" in w for w in report.warnings)

    def test_existential_positions_counted(self):
        program = parse_program(
            "goal(X) <- p(X). p(X) <- e(X, W)."
        )
        report = analyze(program)
        rule = next(r for r in report.rule_nodes if "e(" in r.rule)
        assert rule.existential_positions == 1


class TestGraphAndComponents:
    def test_component_summary(self):
        report = analyze(program_p1())
        assert len(report.components) == 2
        assert {c.size for c in report.components} == {3, 4}
        assert all("p(" in c.leader for c in report.components)

    def test_nonrecursive_has_no_components(self):
        report = analyze(nonrecursive_join_program())
        assert report.components == ()

    def test_render_contains_all_sections(self):
        text = analyze(program_p1()).render()
        for section in ("PREDICATES", "RULE/GOAL GRAPH", "RULES"):
            assert section in text

    def test_render_includes_warnings_section_when_present(self):
        program = parse_program(
            "goal(X, Y) <- a(X), b(Y). a(1). b(2)."
        )
        text = analyze(program).render()
        assert "WARNINGS" in text
