"""Unit tests for the cost-based join planner (PR 8).

The planner's contract splits three ways: the *model* side (observed
sizes replace the ignorance prior, chosen orders are the ranked
cheapest), the *decision* side (wide/empty bodies fall back to the
greedy structural order, duplicate instantiations are recorded once),
and the *caching* side (the size fingerprint buckets at order-of-
magnitude resolution, and the graph-cache key changes exactly when the
planner inputs could change a plan).
"""

import math

import pytest

from repro.core.adornment import AdornedAtom
from repro.core.costmodel import CostModel
from repro.core.parser import parse_program
from repro.core.planner import CostPlanner, size_fingerprint
from repro.core.rulegoal import graph_cache_key, rule_set_fingerprint
from repro.core.sips import greedy_sip
from repro.relational.database import Database
from repro.session import Session


def rule_and_head(source, pattern):
    program = parse_program(source, validate=False)
    rule = program.rules[0]
    return rule, AdornedAtom(rule.head, tuple(pattern))


class TestSizeFingerprint:
    def test_buckets_at_order_of_magnitude(self):
        assert size_fingerprint({"e": math.log10(30)}) == (("e", 1),)
        assert size_fingerprint({"e": math.log10(3000)}) == (("e", 3),)

    def test_sorted_and_stable(self):
        fp = size_fingerprint({"b": 1.0, "a": 2.0})
        assert fp == (("a", 2), ("b", 1))

    def test_small_growth_keeps_the_bucket(self):
        # log10(200)=2.30 and log10(300)=2.48 both round to 2: a handful
        # of facts must not churn the graph cache.
        assert size_fingerprint({"e": math.log10(200)}) == size_fingerprint(
            {"e": math.log10(300)}
        )


class TestCostModelObservedSizes:
    def test_observed_size_replaces_prior(self):
        model = CostModel(log_sizes={"e": 2.0})
        assert model.base_log_size("e") == 2.0
        assert model.base_log_size("unknown") == math.log10(model.base_size)
        assert model.base_log_size() == math.log10(model.base_size)

    def test_selection_shrinks_observed_size(self):
        model = CostModel(alpha=0.5, log_sizes={"e": 4.0})
        assert model.selected_log_size(1, "e") == pytest.approx(2.0)
        assert model.selected_log_size(2, "e") == pytest.approx(1.0)


class TestCostPlanner:
    def test_from_database_harvests_nonempty_relations(self):
        db = Database.from_facts(
            parse_program("e(1, 2). e(2, 3). big(1).", validate=False).facts
        )
        planner = CostPlanner.from_database(db)
        assert planner.model.log_sizes["e"] == pytest.approx(math.log10(2))
        assert planner.report.fingerprint == size_fingerprint(
            planner.model.log_sizes
        )

    def test_reorders_a_skewed_body(self):
        # Source order starts from the huge free-free subgoal; the model,
        # told big is 1e5 and pick is 1e0, starts from pick.
        rule, head = rule_and_head(
            "ans(X) <- big(X, Y), pick(Y).", "f"
        )
        model = CostModel(log_sizes={"big": 5.0, "pick": 0.5})
        planner = CostPlanner(model)
        strategy = planner.plan_rule(rule, head)
        [plan] = planner.report.plans
        assert plan.planned
        assert plan.chosen.order == (1, 0)
        assert plan.reordered
        assert plan.source_order_rank > 0
        assert strategy.order == (1, 0)

    def test_uniform_sizes_keep_source_order(self):
        rule, head = rule_and_head("p(X, Y) <- e(X, U), e(U, Y).", "df")
        planner = CostPlanner(CostModel(log_sizes={"e": 3.0}))
        planner.plan_rule(rule, head)
        [plan] = planner.report.plans
        assert plan.chosen.order == (0, 1)
        assert not plan.reordered

    def test_wide_body_falls_back_to_greedy(self):
        body = ", ".join(f"e(X{i}, X{i + 1})" for i in range(8))
        rule, head = rule_and_head(f"p(X0, X8) <- {body}.", "df")
        planner = CostPlanner(CostModel())
        strategy = planner.plan_rule(rule, head)
        [plan] = planner.report.plans
        assert not plan.planned
        assert plan.ranked == ()
        assert strategy.order == greedy_sip(rule, head).order

    def test_duplicate_instantiations_recorded_once(self):
        rule, head = rule_and_head("p(X, Y) <- e(X, U), e(U, Y).", "df")
        planner = CostPlanner(CostModel())
        planner.plan_rule(rule, head)
        planner.plan_rule(rule, head)
        assert len(planner.report.plans) == 1

    def test_report_renders(self):
        rule, head = rule_and_head(
            "ans(X) <- big(X, Y), pick(Y).", "f"
        )
        planner = CostPlanner(
            CostModel(log_sizes={"big": 5.0, "pick": 0.5}),
            fingerprint=(("big", 5), ("pick", 1)),
        )
        planner.plan_rule(rule, head)
        text = planner.report.render()
        assert "1 rules planned, 1 reordered" in text
        assert "big≈1e5" in text
        assert "bound=" in text  # per-stage estimates are included
        assert planner.report.oneline() == "cost (1 rules planned, 1 reordered)"


class TestGraphCacheKey:
    RULES = "t(X, Y) <- e(X, Y).\nt(X, Y) <- e(X, U), t(U, Y)."

    def atoms(self):
        return parse_program("?- t(0, Z).", validate=False).query_rules[0].body

    def test_static_planner_keeps_legacy_keys(self):
        fp = rule_set_fingerprint(parse_program(self.RULES).rules)
        legacy = graph_cache_key(fp, self.atoms(), greedy_sip, False)
        explicit = graph_cache_key(
            fp, self.atoms(), greedy_sip, False,
            planner="static", size_fingerprint=(("e", 3),),
        )
        assert legacy == explicit  # static plans never read the sizes

    def test_cost_planner_keys_on_the_fingerprint(self):
        fp = rule_set_fingerprint(parse_program(self.RULES).rules)
        small = graph_cache_key(
            fp, self.atoms(), greedy_sip, False,
            planner="cost", size_fingerprint=(("e", 2),),
        )
        big = graph_cache_key(
            fp, self.atoms(), greedy_sip, False,
            planner="cost", size_fingerprint=(("e", 3),),
        )
        static = graph_cache_key(fp, self.atoms(), greedy_sip, False)
        assert small != big
        assert small != static

    def test_session_replans_after_magnitude_growth(self):
        src = self.RULES + "\n" + " ".join(f"e({i}, {i + 1})." for i in range(5))
        session = Session(src, planner="cost")
        session.query("t(0, Z)")
        first_misses = session.cache_stats().misses
        session.query("t(0, W)")  # same variant: cached graph reused
        assert session.cache_stats().hits >= 1
        # Disconnected filler pushes e two magnitude buckets up.
        session.add_facts(
            " ".join(f"e({1000 + i}, {1001 + i})." for i in range(300))
        )
        session.query("t(0, Z)")
        assert session.cache_stats().misses > first_misses

    def test_session_static_planner_ignores_growth(self):
        src = self.RULES + "\n" + " ".join(f"e({i}, {i + 1})." for i in range(5))
        session = Session(src)  # planner="static"
        session.query("t(0, Z)")
        misses = session.cache_stats().misses
        session.add_facts(
            " ".join(f"e({1000 + i}, {1001 + i})." for i in range(300))
        )
        session.query("t(0, Z)")
        assert session.cache_stats().misses == misses  # still a cache hit

    def test_session_result_carries_the_plan(self):
        src = self.RULES + "\n" + " ".join(f"e({i}, {i + 1})." for i in range(5))
        session = Session(src, planner="cost")
        session.query("t(0, Z)")
        assert session.last_result.plan is not None
        assert "rules planned" in session.last_result.plan.oneline()
        session.query("t(0, W)")  # cache hit: plan rides on the cached graph
        assert session.last_result.graph_cache_hit
        assert session.last_result.plan is not None

    def test_session_rejects_unknown_planner(self):
        with pytest.raises(ValueError):
            Session("e(1, 2).", planner="wat")
