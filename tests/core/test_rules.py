"""Unit tests for rules: safety, variables, renaming, singletons."""

import pytest

from repro.core.atoms import atom
from repro.core.parser import parse_rule
from repro.core.rules import Rule
from repro.core.terms import FreshVariables, Variable

X, Y, Z, U = (Variable(n) for n in "XYZU")


class TestBasics:
    def test_fact(self):
        r = Rule(atom("p", "a", "b"))
        assert r.is_fact
        assert str(r) == "p(a, b)."

    def test_str_rule(self):
        r = parse_rule("p(X, Y) <- e(X, Y).")
        assert str(r) == "p(X, Y) <- e(X, Y)."

    def test_variables(self):
        r = parse_rule("p(X, Y) <- e(X, U), f(U, Y).")
        assert r.variables() == {X, Y, U}
        assert r.body_variables() == {X, U, Y}

    def test_predicates(self):
        r = parse_rule("p(X, Y) <- e(X, U), f(U, Y).")
        assert r.predicates() == {"p", "e", "f"}
        assert r.body_predicates() == {"e", "f"}

    def test_rejects_non_atoms(self):
        with pytest.raises(TypeError):
            Rule("p(X)")  # type: ignore[arg-type]


class TestSafety:
    def test_safe_rule(self):
        assert parse_rule("p(X, Y) <- e(X, Y).").is_safe()

    def test_unsafe_head_variable(self):
        assert not parse_rule("p(X, Y) <- e(X, X).").is_safe()

    def test_ground_fact_is_safe(self):
        assert Rule(atom("p", "a")).is_safe()

    def test_nonground_fact_is_unsafe(self):
        assert not Rule(atom("p", X)).is_safe()


class TestSingletons:
    def test_singleton_detection(self):
        # U occurs once; X, Y occur in head and body.
        r = parse_rule("p(X, Y) <- e(X, Y, U).")
        assert r.singleton_variables() == {Variable("U")}

    def test_join_variable_not_singleton(self):
        r = parse_rule("p(X, Y) <- e(X, U), f(U, Y).")
        assert r.singleton_variables() == set()

    def test_head_variable_not_singleton_when_in_body(self):
        r = parse_rule("p(X) <- e(X).")
        assert r.singleton_variables() == set()

    def test_repeated_within_one_atom_not_singleton(self):
        r = parse_rule("p(X) <- e(X), f(U, U).")
        assert r.singleton_variables() == set()


class TestRenameApart:
    def test_all_new_variables(self):
        r = parse_rule("p(X, Y) <- e(X, U), p(U, Y).")
        fresh = FreshVariables()
        renamed = r.rename_apart(fresh)
        assert renamed.variables().isdisjoint(r.variables())

    def test_sharing_preserved(self):
        r = parse_rule("p(X, Y) <- e(X, U), p(U, Y).")
        renamed = r.rename_apart(FreshVariables())
        # U links body atoms 0 and 1 before and after renaming.
        assert renamed.body[0].args[1] == renamed.body[1].args[0]
        assert renamed.head.args[0] == renamed.body[0].args[0]

    def test_substitute(self):
        r = parse_rule("p(X, Y) <- e(X, Y).")
        from repro.core.terms import Constant

        out = r.substitute({X: Constant(1)})
        assert out.head == atom("p", 1, Y)
        assert out.body[0] == atom("e", 1, Y)

    def test_rules_hashable(self):
        a = parse_rule("p(X) <- e(X).")
        b = parse_rule("p(X) <- e(X).")
        assert len({a, b}) == 1
