"""Unit tests for SIP strategies: greedy, left-to-right, all-free, adornment."""

import pytest

from repro.core.adornment import AdornedAtom, CONSTANT, DYNAMIC, EXISTENTIAL, FREE
from repro.core.parser import parse_rule
from repro.core.sips import (
    HEAD,
    SipArc,
    SipStrategy,
    adorn_body,
    all_free_sip,
    greedy_sip,
    is_greedy,
    left_to_right_sip,
    sip_from_order,
)
from repro.core.terms import Variable

X, Y, Z, U, V = (Variable(n) for n in "XYZUV")


def df_head(rule):
    """Adorn a binary head (d, f) — Example 4.1's binding pattern."""
    return AdornedAtom(rule.head, (DYNAMIC, FREE))


class TestGreedyOnPaperExample:
    """Example 2.1's recursive rule: p(X,Y) <- p(X,U), q(U,V), p(V,Y)."""

    def setup_method(self):
        self.rule = parse_rule("p(X, Y) <- p(X, U), q(U, V), p(V, Y).")
        self.head = df_head(self.rule)
        self.sip = greedy_sip(self.rule, self.head)

    def test_order_matches_figure_1(self):
        # "p(X,U) -> q(U,V) -> p(V,Y)" — left to right here.
        assert self.sip.order == (0, 1, 2)

    def test_adornments_match_figure_1(self):
        adorned = adorn_body(self.sip)
        assert [a.adornment_string() for a in adorned] == ["df", "df", "df"]

    def test_arcs_carry_the_flow(self):
        # U flows from subgoal 0 to subgoal 1; V from 1 to 2; X from the head.
        arcs = {(a.source, a.target): set(a.variables) for a in self.sip.arcs}
        assert arcs[(HEAD, 0)] == {X}
        assert arcs[(0, 1)] == {U}
        assert arcs[(1, 2)] == {V}

    def test_greedy_check(self):
        assert is_greedy(self.sip)


class TestGreedyChoices:
    def test_prefers_bound_subgoal_regardless_of_position(self):
        # With X bound, c(X, U) has 1 bound argument vs 0 for the others.
        rule = parse_rule("p(X, Z) <- a(U, W), b(W, Z), c(X, U).")
        sip = greedy_sip(rule, df_head(rule))
        assert sip.order == (2, 0, 1)

    def test_leftmost_tie_break(self):
        rule = parse_rule("p(X, Z) <- a(X, U), b(X, Z), c(U, Z).")
        sip = greedy_sip(rule, df_head(rule))
        assert sip.order[0] == 0  # a and b tie at 1 bound arg; leftmost wins

    def test_constants_count_as_bound(self):
        rule = parse_rule("p(X, Z) <- a(U, Z), b(k, m, U).")
        sip = greedy_sip(rule, df_head(rule))
        # b has two constants bound (2) vs a's 0 (X doesn't occur in a).
        assert sip.order[0] == 1

    def test_greedy_is_always_greedy(self):
        for text in [
            "p(X, Z) <- a(X, Y), b(Y, U), c(U, Z).",
            "p(X, Z) <- a(X, Y, V), b(Y, U), c(V, T), d(T), e(U, Z).",
            "p(X, Z) <- a(X, Y, V), b(Y, W, U), c(V, W, T), d(T), e(U, Z).",
        ]:
            rule = parse_rule(text)
            assert is_greedy(greedy_sip(rule, df_head(rule))), text

    def test_left_to_right_not_always_greedy(self):
        rule = parse_rule("p(X, Z) <- a(U, W), b(W, Z), c(X, U).")
        assert not is_greedy(left_to_right_sip(rule, df_head(rule)))


class TestAdornBody:
    def test_constant_is_c(self):
        rule = parse_rule("p(X, Z) <- a(k, X, Z).")
        adorned = adorn_body(greedy_sip(rule, df_head(rule)))
        assert adorned[0].adornment == (CONSTANT, DYNAMIC, FREE)

    def test_singleton_is_existential(self):
        rule = parse_rule("p(X, Z) <- a(X, Z, W).")
        adorned = adorn_body(greedy_sip(rule, df_head(rule)))
        assert adorned[0].adornment == (DYNAMIC, FREE, EXISTENTIAL)

    def test_head_existential_propagates_to_single_occurrence(self):
        rule = parse_rule("p(X, Y) <- a(X, Y).")
        head = AdornedAtom(rule.head, (DYNAMIC, EXISTENTIAL))
        adorned = adorn_body(greedy_sip(rule, head))
        assert adorned[0].adornment == (DYNAMIC, EXISTENTIAL)

    def test_head_existential_join_variable_stays_join(self):
        # Y is existential in the head but joins two subgoals: its value is
        # still needed internally, so the producer occurrence is "f".
        rule = parse_rule("p(X, Y) <- a(X, Y), b(Y).")
        head = AdornedAtom(rule.head, (DYNAMIC, EXISTENTIAL))
        adorned = adorn_body(greedy_sip(rule, head))
        assert adorned[0].adornment == (DYNAMIC, FREE)
        assert adorned[1].adornment == (DYNAMIC,)

    def test_all_free_has_no_sideways_bindings(self):
        rule = parse_rule("p(X, Z) <- a(X, Y), b(Y, U), c(U, Z).")
        adorned = adorn_body(all_free_sip(rule, df_head(rule)))
        # Only head bindings apply: X is d in a; every join variable stays f.
        assert [a.adornment_string() for a in adorned] == ["df", "ff", "ff"]

    def test_free_head_variable_becomes_d_downstream(self):
        # Z is a head "f" variable occurring in two subgoals: the second
        # occurrence receives bindings from the first (see the qual-tree SIP
        # discussion — head-f variables are not pinned to "f" everywhere).
        rule = parse_rule("p(X, Z) <- a(X, Z), b(Z, X).")
        adorned = adorn_body(greedy_sip(rule, df_head(rule)))
        assert adorned[0].adornment == (DYNAMIC, FREE)
        assert adorned[1].adornment == (DYNAMIC, DYNAMIC)


class TestStrategyValidation:
    def test_order_must_be_permutation(self):
        rule = parse_rule("p(X, Z) <- a(X, Z).")
        with pytest.raises(ValueError):
            SipStrategy(rule, df_head(rule), (), (0, 0))

    def test_arcs_must_agree_with_order(self):
        rule = parse_rule("p(X, Z) <- a(X, U), b(U, Z).")
        arc = SipArc(1, 0, frozenset({U}))
        with pytest.raises(ValueError):
            SipStrategy(rule, df_head(rule), (arc,), (0, 1))

    def test_sip_graph_acyclic(self):
        rule = parse_rule("p(X, Z) <- a(X, U), b(U, Z).")
        sip = greedy_sip(rule, df_head(rule))
        assert sip.is_acyclic()

    def test_bound_variables_at(self):
        rule = parse_rule("p(X, Z) <- a(X, U), b(U, Z).")
        sip = greedy_sip(rule, df_head(rule))
        assert sip.bound_variables_at(1) == {U}

    def test_empty_body(self):
        rule = parse_rule("p(a, b).")
        sip = greedy_sip(rule, AdornedAtom(rule.head, (CONSTANT, CONSTANT)))
        assert sip.order == ()
        assert adorn_body(sip) == []


class TestSipFromOrder:
    def test_custom_order(self):
        rule = parse_rule("p(X, Z) <- a(X, U), b(U, Z).")
        sip = sip_from_order(rule, df_head(rule), [1, 0])
        adorned = adorn_body(sip)
        # b evaluated first: U free there, then a gets U dynamically.
        assert adorned[1].adornment == (FREE, FREE)
        assert adorned[0].adornment == (DYNAMIC, DYNAMIC)

    def test_arc_sources_are_producers(self):
        rule = parse_rule("p(X, Z) <- a(X, U), b(U, V), c(V, Z).")
        sip = sip_from_order(rule, df_head(rule), [0, 1, 2])
        sources = {a.target: a.source for a in sip.arcs if a.target == 2}
        assert sources[2] == 1  # V produced by subgoal 1
