"""Unit tests for the Prolog-style parser."""

import pytest

from repro.core.parser import (
    ParseError,
    parse_atom,
    parse_program,
    parse_rule,
    parse_term,
    query_to_rule,
)
from repro.core.rules import GOAL_PREDICATE
from repro.core.terms import Constant, Variable


class TestTerms:
    def test_variable(self):
        assert parse_term("X") == Variable("X")
        assert parse_term("_tmp") == Variable("_tmp")

    def test_lowercase_constant(self):
        assert parse_term("ann") == Constant("ann")

    def test_integer(self):
        assert parse_term("42") == Constant(42)
        assert parse_term("-7") == Constant(-7)

    def test_quoted_strings(self):
        assert parse_term("'New York'") == Constant("New York")
        assert parse_term('"O\'Hare"') == Constant("O'Hare")

    def test_escaped_quote(self):
        assert parse_term(r"'it\'s'") == Constant("it's")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_term("X Y")


class TestAtoms:
    def test_simple(self):
        a = parse_atom("p(X, a, 3)")
        assert a.predicate == "p"
        assert a.args == (Variable("X"), Constant("a"), Constant(3))

    def test_zero_arity(self):
        assert parse_atom("flag").arity == 0

    def test_uppercase_predicate_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("P(x)")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse_atom("p(X, Y")

    def test_missing_comma(self):
        with pytest.raises(ParseError):
            parse_atom("p(X Y)")


class TestRules:
    def test_both_arrows(self):
        r1 = parse_rule("p(X) <- e(X).")
        r2 = parse_rule("p(X) :- e(X).")
        assert r1 == r2

    def test_fact(self):
        r = parse_rule("e(a, b).")
        assert r.is_fact and r.head.is_ground()

    def test_multi_subgoal(self):
        r = parse_rule("p(X, Y) <- p(X, U), q(U, V), p(V, Y).")
        assert len(r.body) == 3

    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_rule("p(X) <- e(X)")

    def test_error_reports_position(self):
        with pytest.raises(ParseError) as err:
            parse_program("p(X) <- e(X).\nq(&).")
        assert err.value.line == 2


class TestPrograms:
    def test_p1_from_paper(self):
        program = parse_program(
            """
            % Example 2.1
            goal(Z) <- p(a, Z).
            p(X, Y) <- p(X, U), q(U, V), p(V, Y).
            p(X, Y) <- r(X, Y).
            r(a, b).  q(b, c).
            """
        )
        assert len(program.rules) == 3
        assert len(program.facts) == 2
        assert program.edb_predicates >= {"r", "q"}
        assert program.idb_predicates == {GOAL_PREDICATE, "p"}

    def test_comments_both_styles(self):
        program = parse_program("# one\n% two\ne(a, b).")
        assert len(program.facts) == 1

    def test_query_desugaring(self):
        program = parse_program(
            """
            p(X, Y) <- e(X, Y).
            e(a, b).
            ?- p(a, Z).
            """
        )
        (query,) = program.query_rules
        assert query.head.predicate == GOAL_PREDICATE
        assert query.head.args == (Variable("Z"),)

    def test_query_variable_order_is_first_occurrence(self):
        rule = query_to_rule(
            [parse_atom("p(Y, X)"), parse_atom("q(X, W)")]
        )
        assert [v.name for v in rule.head.args] == ["Y", "X", "W"]

    def test_ground_unit_clause_for_idb_predicate(self):
        # p has rules, so p(a, b). must become an IDB unit rule, not an EDB fact.
        program = parse_program(
            """
            goal(X) <- p(a, X).
            p(X, Y) <- e(X, Y).
            p(a, b).
            e(b, c).
            """
        )
        assert all(f.predicate != "p" for f in program.facts)
        assert len(program.rules_for("p")) == 2

    def test_empty_program(self):
        program = parse_program("")
        assert program.rules == () and program.facts == ()

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_program("p(X) <- e(X). $$")
