"""Unit tests for terms: variables, constants, fresh-variable factories."""

import pytest

from repro.core.terms import Constant, FreshVariables, Variable, term_from_value


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hashable(self):
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_str(self):
        assert str(Variable("Ans0")) == "Ans0"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_repr_roundtrip_info(self):
        assert "X" in repr(Variable("X"))


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant(2)

    def test_value_type_matters(self):
        assert Constant(1) != Constant("1")

    def test_distinct_from_variable(self):
        assert Constant("X") != Variable("X")

    def test_hashable(self):
        assert len({Constant("a"), Constant("a"), Constant("b")}) == 2

    def test_str(self):
        assert str(Constant("ann")) == "ann"
        assert str(Constant(42)) == "42"


class TestTermFromValue:
    def test_passthrough_variable(self):
        v = Variable("X")
        assert term_from_value(v) is v

    def test_passthrough_constant(self):
        c = Constant(3)
        assert term_from_value(c) is c

    def test_wraps_raw_values(self):
        assert term_from_value(7) == Constant(7)
        assert term_from_value("abc") == Constant("abc")

    def test_uppercase_string_stays_constant(self):
        # Strings that look like variables are still constants.
        assert term_from_value("X") == Constant("X")


class TestFreshVariables:
    def test_fresh_are_distinct(self):
        factory = FreshVariables()
        names = {factory.fresh().name for _ in range(100)}
        assert len(names) == 100

    def test_hint_preserved(self):
        factory = FreshVariables()
        v = factory.fresh("X")
        assert v.name.startswith("X#")

    def test_hint_strips_prior_suffix(self):
        factory = FreshVariables()
        first = factory.fresh("X")
        second = factory.fresh(first.name)
        assert second.name.startswith("X#")
        assert second != first

    def test_rename_all_is_deterministic(self):
        variables = {Variable("B"), Variable("A"), Variable("C")}
        r1 = FreshVariables().rename_all(variables)
        r2 = FreshVariables().rename_all(variables)
        assert {v.name for v in r1} == {"A", "B", "C"}
        assert [r1[Variable(n)].name for n in "ABC"] == [
            r2[Variable(n)].name for n in "ABC"
        ]

    def test_rename_all_injective(self):
        factory = FreshVariables()
        renaming = factory.rename_all([Variable("X"), Variable("Y")])
        assert len(set(renaming.values())) == 2
