"""Unit tests for hypergraphs, GYO reduction, and qual trees (Section 4.1)."""

import pytest

from repro.core.hypergraph import Hypergraph, QualTree


class TestGyoReduction:
    def test_single_edge_is_acyclic(self):
        assert Hypergraph({"a": {"X", "Y"}}).is_acyclic()

    def test_empty_edge_is_acyclic(self):
        assert Hypergraph({"a": set()}).is_acyclic()

    def test_chain_is_acyclic(self):
        h = Hypergraph({"a": {"X", "Y"}, "b": {"Y", "Z"}, "c": {"Z", "W"}})
        assert h.is_acyclic()

    def test_triangle_is_cyclic(self):
        # The classic 3-cycle: pairwise overlapping binary edges.
        h = Hypergraph({"a": {"X", "Y"}, "b": {"Y", "Z"}, "c": {"Z", "X"}})
        assert not h.is_acyclic()

    def test_triangle_with_covering_edge_is_acyclic(self):
        # Adding {X,Y,Z} absorbs the cycle (α-acyclicity is not hereditary).
        h = Hypergraph(
            {
                "a": {"X", "Y"},
                "b": {"Y", "Z"},
                "c": {"Z", "X"},
                "big": {"X", "Y", "Z"},
            }
        )
        assert h.is_acyclic()

    def test_star_is_acyclic(self):
        h = Hypergraph({"hub": {"X", "Y", "Z"}, "a": {"X"}, "b": {"Y"}, "c": {"Z"}})
        assert h.is_acyclic()

    def test_duplicate_vertex_sets_allowed(self):
        h = Hypergraph({"a": {"X", "Y"}, "b": {"X", "Y"}})
        assert h.is_acyclic()

    def test_residual_of_cyclic_graph_names_the_core(self):
        h = Hypergraph(
            {"a": {"X", "Y"}, "b": {"Y", "Z"}, "c": {"Z", "X"}, "d": {"X", "W"}}
        )
        result = h.gyo_reduction()
        assert not result.acyclic
        assert result.cyclic_core_vertices() == {"X", "Y", "Z"}

    def test_disconnected_components(self):
        # Two disjoint edges: rule 1 empties both, rule 2 merges — acyclic.
        h = Hypergraph({"a": {"X"}, "b": {"Y"}})
        assert h.is_acyclic()

    def test_reduction_deterministic(self):
        h = Hypergraph({"a": {"X", "Y"}, "b": {"Y", "Z"}, "c": {"Z", "W"}})
        r1 = h.gyo_reduction()
        r2 = Hypergraph({"a": {"X", "Y"}, "b": {"Y", "Z"}, "c": {"Z", "W"}}).gyo_reduction()
        assert r1.tree_edges == r2.tree_edges

    def test_qual_tree_refused_for_cyclic(self):
        h = Hypergraph({"a": {"X", "Y"}, "b": {"Y", "Z"}, "c": {"Z", "X"}})
        with pytest.raises(ValueError):
            h.gyo_reduction().qual_tree("a")

    def test_vertices(self):
        h = Hypergraph({"a": {"X", "Y"}, "b": {"Z"}})
        assert h.vertices() == {"X", "Y", "Z"}


def chain_tree() -> QualTree:
    h = Hypergraph({"head": {"X"}, "a": {"X", "Y"}, "b": {"Y", "Z"}})
    return h.gyo_reduction().qual_tree("head")


class TestQualTree:
    def test_is_tree(self):
        assert chain_tree().is_tree()

    def test_parent_map_rooted_at_head(self):
        parents = chain_tree().parent_map()
        assert parents["a"] == "head"
        assert parents["b"] == "a"
        assert "head" not in parents

    def test_children_map(self):
        children = chain_tree().children_map()
        assert children["head"] == ["a"]
        assert children["a"] == ["b"]
        assert children["b"] == []

    def test_path(self):
        tree = chain_tree()
        assert tree.path("head", "b") == ["head", "a", "b"]
        assert tree.path("b", "b") == ["b"]

    def test_leaves_exclude_root(self):
        assert chain_tree().leaves() == ["b"]

    def test_qual_tree_property_holds_for_gyo_output(self):
        assert chain_tree().satisfies_qual_tree_property()

    def test_qual_tree_property_violation_detected(self):
        # Hand-build a tree where Y skips a node on the a—c path.
        nodes = {
            "a": frozenset({"X", "Y"}),
            "b": frozenset({"X"}),
            "c": frozenset({"Y"}),
        }
        adjacency = {"a": {"b"}, "b": {"a", "c"}, "c": {"b"}}
        tree = QualTree(nodes, adjacency, "a")
        assert not tree.satisfies_qual_tree_property()

    def test_unknown_root_rejected(self):
        with pytest.raises(ValueError):
            QualTree({"a": frozenset()}, {"a": set()}, "zzz")

    def test_disconnected_is_not_tree(self):
        nodes = {"a": frozenset({"X"}), "b": frozenset({"Y"}), "c": frozenset({"Z"})}
        tree = QualTree(nodes, {"a": {"b"}, "b": {"a"}, "c": set()}, "a")
        assert not tree.is_tree()

    def test_gyo_qual_trees_always_satisfy_property(self):
        # A bushier example: R2's hypergraph shape.
        h = Hypergraph(
            {
                "head": {"X"},
                "a": {"X", "Y", "V"},
                "b": {"Y", "U"},
                "c": {"V", "T"},
                "d": {"T"},
                "e": {"U", "Z"},
            }
        )
        result = h.gyo_reduction()
        assert result.acyclic
        tree = result.qual_tree("head")
        assert tree.is_tree()
        assert tree.satisfies_qual_tree_property()
