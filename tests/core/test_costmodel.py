"""Unit tests for the Section 4.3 cost model."""

import math

import pytest

from repro.core.adornment import AdornedAtom, DYNAMIC, FREE
from repro.core.costmodel import CostModel, best_order, rank_orders
from repro.core.monotone import qual_tree_sip
from repro.core.parser import parse_rule
from repro.workloads import adorned_head_df, rule_r1, rule_r2, rule_r3


class TestModelArithmetic:
    def test_selection_reduces_log_by_alpha(self):
        model = CostModel(alpha=0.3, base_size=10**6)
        assert model.selected_log_size(0) == pytest.approx(6.0)
        assert model.selected_log_size(1) == pytest.approx(1.8)
        assert model.selected_log_size(2) == pytest.approx(0.54)

    def test_join_is_cross_product_cut_per_pair(self):
        model = CostModel(alpha=0.5, base_size=10**4)
        # Two 10^4 relations, one join pair: (4+4)*0.5 = 4 → 10^4 rows.
        assert model.join_log_size(4.0, 4.0, 1) == pytest.approx(4.0)
        # No pairs: the full cross product.
        assert model.join_log_size(4.0, 4.0, 0) == pytest.approx(8.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CostModel(alpha=1.5)
        with pytest.raises(ValueError):
            CostModel(base_size=0.5)


class TestOrderEstimates:
    def test_r1_natural_flow_is_cheapest(self):
        # R1: a(X,Y), b(Y,U), c(U,Z) with X bound — the flow X→Y→U→Z.
        rule = rule_r1()
        best = best_order(rule, adorned_head_df(rule))
        assert best.order == (0, 1, 2)

    def test_reverse_order_is_much_worse(self):
        rule = rule_r1()
        ranked = rank_orders(rule, adorned_head_df(rule))
        by_order = {e.order: e.total_cost for e in ranked}
        assert by_order[(2, 1, 0)] > 100 * by_order[(0, 1, 2)]

    def test_stage_accounting(self):
        rule = rule_r1()
        est = CostModel().estimate_order(rule, adorned_head_df(rule), (0, 1, 2))
        assert len(est.stages) == 3
        # Each stage of the natural flow has exactly one bound argument.
        assert [s.bound_arguments for s in est.stages] == [1, 1, 1]
        assert [s.join_pairs for s in est.stages] == [1, 1, 1]
        assert est.total_cost == pytest.approx(sum(s.stage_cost for s in est.stages))

    def test_peak_tracks_largest_intermediate(self):
        rule = rule_r1()
        model = CostModel()
        good = model.estimate_order(rule, adorned_head_df(rule), (0, 1, 2))
        bad = model.estimate_order(rule, adorned_head_df(rule), (2, 0, 1))
        assert bad.peak_log_size > good.peak_log_size

    def test_qual_tree_sip_is_model_optimal_for_r2(self):
        # The §4.3 conjecture, checked on the worked example: the qual-tree
        # order's model cost equals the best over all 120 permutations.
        rule = rule_r2()
        head = adorned_head_df(rule)
        sip = qual_tree_sip(rule, head)
        model = CostModel()
        sip_cost = model.estimate_sip(sip).total_cost
        optimal = best_order(rule, head, model).total_cost
        assert sip_cost == pytest.approx(optimal)

    def test_r3_parallel_branches_cost_more_than_sequential(self):
        # R3: evaluating b before c (not sharing W) vs interleaving.
        rule = rule_r3()
        head = adorned_head_df(rule)
        model = CostModel()
        ranked = rank_orders(rule, head, model)
        # The best order must evaluate b and c adjacently so the W pair
        # reduces the intermediate; orders putting e between them lose.
        best = ranked[0].order
        b_pos, c_pos = best.index(1), best.index(2)
        assert abs(b_pos - c_pos) == 1

    def test_empty_body_rejected(self):
        rule = parse_rule("p(a, b).")
        with pytest.raises(ValueError):
            best_order(rule, AdornedAtom(rule.head, ("c", "c")))

    def test_estimates_are_deterministic_and_sorted(self):
        rule = rule_r1()
        ranked = rank_orders(rule, adorned_head_df(rule))
        costs = [e.total_cost for e in ranked]
        assert costs == sorted(costs)
        assert len(ranked) == math.factorial(3)
