"""Unit tests for the four binding classes and adorned atoms."""

import pytest

from repro.core.adornment import (
    CONSTANT,
    DYNAMIC,
    EXISTENTIAL,
    FREE,
    AdornedAtom,
    head_bound_variables,
    initial_goal_adornment,
)
from repro.core.atoms import atom
from repro.core.terms import Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestConstruction:
    def test_valid(self):
        a = AdornedAtom(atom("p", "a", X), (CONSTANT, FREE))
        assert a.adornment == ("c", "f")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AdornedAtom(atom("p", X), ("f", "f"))

    def test_constant_requires_c(self):
        with pytest.raises(ValueError):
            AdornedAtom(atom("p", "a"), ("f",))

    def test_c_requires_constant(self):
        with pytest.raises(ValueError):
            AdornedAtom(atom("p", X), ("c",))

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            AdornedAtom(atom("p", X), ("x",))

    def test_str_superscripts(self):
        a = AdornedAtom(atom("p", "a", Z), (CONSTANT, FREE))
        assert str(a) == "p(a^c, Z^f)"


class TestPositions:
    def setup_method(self):
        self.a = AdornedAtom(
            atom("p", "k", X, Y, Z), (CONSTANT, DYNAMIC, EXISTENTIAL, FREE)
        )

    def test_bound_positions(self):
        assert self.a.bound_positions == (0, 1)

    def test_dynamic_positions(self):
        assert self.a.dynamic_positions == (1,)

    def test_free_positions(self):
        assert self.a.free_positions == (3,)

    def test_existential_positions(self):
        assert self.a.existential_positions == (2,)

    def test_output_positions_exclude_c_and_e(self):
        assert self.a.output_positions == (1, 3)

    def test_bound_and_free_variables(self):
        assert self.a.bound_variables() == {X}
        assert self.a.free_variables() == {Z}


class TestVariantSignature:
    def test_variants_share_signature(self):
        a = AdornedAtom(atom("p", "a", X), (CONSTANT, FREE))
        b = AdornedAtom(atom("p", "a", Z), (CONSTANT, FREE))
        assert a.variant_signature() == b.variant_signature()

    def test_different_constant_differs(self):
        a = AdornedAtom(atom("p", "a", X), (CONSTANT, FREE))
        b = AdornedAtom(atom("p", "b", X), (CONSTANT, FREE))
        assert a.variant_signature() != b.variant_signature()

    def test_different_classes_differ(self):
        # Fig 1: p(a^c, Z^f) cannot serve p(V^d, Z^f) — classes must match.
        a = AdornedAtom(atom("p", X, Y), (DYNAMIC, FREE))
        b = AdornedAtom(atom("p", X, Y), (FREE, FREE))
        assert a.variant_signature() != b.variant_signature()

    def test_repetition_pattern_in_signature(self):
        a = AdornedAtom(atom("p", X, X, Z), (FREE, FREE, FREE))
        b = AdornedAtom(atom("p", X, Y, Z), (FREE, FREE, FREE))
        assert a.variant_signature() != b.variant_signature()

    def test_theorem21_pattern_case(self):
        V = Variable("V")
        a = AdornedAtom(atom("p", X, X, Z), (FREE, FREE, FREE))
        b = AdornedAtom(atom("p", V, V, V), (FREE, FREE, FREE))
        assert a.variant_signature() != b.variant_signature()


class TestInitialGoal:
    def test_constants_c_variables_f(self):
        a = initial_goal_adornment(atom("p", "a", Z))
        assert a.adornment == (CONSTANT, FREE)

    def test_existential_marking(self):
        a = initial_goal_adornment(atom("p", X, Y), existential=[Y])
        assert a.adornment == (FREE, EXISTENTIAL)

    def test_head_bound_variables(self):
        a = AdornedAtom(atom("p", X, Y), (DYNAMIC, FREE))
        assert head_bound_variables(a) == {X}

    def test_head_bound_ignores_free(self):
        a = initial_goal_adornment(atom("p", X, Y))
        assert head_bound_variables(a) == set()
