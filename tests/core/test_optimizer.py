"""Unit tests for the statistics-driven SIP optimizer (§3.1 extension)."""

import pytest

from repro.baselines import naive
from repro.core.adornment import AdornedAtom, DYNAMIC, FREE
from repro.core.optimizer import CardinalityModel, EdbStatistics, statistics_sip
from repro.core.parser import parse_program, parse_rule
from repro.core.sips import greedy_sip
from repro.network.engine import evaluate
from repro.relational.database import Database
from repro.workloads import facts_from_tables


def make_stats(tables):
    return EdbStatistics.from_database(Database.from_tuples(tables))


class TestEdbStatistics:
    def test_cardinality_and_distinct(self):
        stats = make_stats({"e": [(1, 2), (1, 3), (2, 3)]})
        assert stats.cardinality("e") == 3
        assert stats.distinct("e", 0) == 2
        assert stats.distinct("e", 1) == 2

    def test_defaults_for_unknown_predicate(self):
        stats = EdbStatistics(default_cardinality=77, default_distinct=9)
        assert stats.cardinality("idb_pred") == 77
        assert stats.distinct("idb_pred", 0) == 9

    def test_distinct_floor_is_one(self):
        stats = make_stats({"e": []})
        assert stats.distinct("e", 0) >= 1

    def test_position_out_of_range_uses_default(self):
        stats = make_stats({"e": [(1,)]})
        assert stats.distinct("e", 5) == stats.default_distinct


class TestCardinalityModel:
    def test_bound_positions_increase_selectivity(self):
        stats = make_stats({"e": [(i, i % 3) for i in range(30)]})
        model = CardinalityModel(stats)
        rule = parse_rule("p(X, Y) <- e(X, Y).")
        from repro.core.terms import Variable

        X = Variable("X")
        free = model.subgoal_rows_per_binding(rule.body[0], set())
        bound = model.subgoal_rows_per_binding(rule.body[0], {X})
        assert bound < free

    def test_best_order_prefers_small_selective_relations(self):
        # tiny has 2 rows; big has 500: with X bound in both, tiny first.
        tables = {
            "tiny": [(0, 1), (1, 2)],
            "big": [(i % 20, i) for i in range(500)],
        }
        model = CardinalityModel(make_stats(tables))
        rule = parse_rule("p(X, Z) <- big(X, U), tiny(X, W), out(W, U, Z).")
        head = AdornedAtom(rule.head, (DYNAMIC, FREE))
        order = model.best_order(rule, head)
        assert order.index(1) < order.index(0)  # tiny before big

    def test_empty_body(self):
        model = CardinalityModel(make_stats({}))
        rule = parse_rule("p(a, b).")
        assert model.best_order(rule, AdornedAtom(rule.head, ("c", "c"))) == ()

    def test_wide_rule_uses_greedy_fallback(self):
        subgoals = ", ".join(f"e{i}(X, Y{i})" for i in range(9))
        rule = parse_rule(f"p(X, Z) <- {subgoals}, last(Y0, Z).")
        model = CardinalityModel(make_stats({}))
        head = AdornedAtom(rule.head, (DYNAMIC, FREE))
        order = model.best_order(rule, head, exhaustive_limit=7)
        assert sorted(order) == list(range(10))


class TestStatisticsSipEndToEnd:
    def build(self):
        # `probe` is tiny and sharply restricts Y; greedy's structural score
        # ties probe and hay (1 bound argument each) and picks hay (leftmost).
        text = """
        goal(Z) <- p(k0, Z).
        p(X, Z) <- hay(X, Y), probe(X, Y), out(Y, Z).
        """
        hay = [(f"k{i % 3}", f"y{i}") for i in range(300)]
        probe = [("k0", "y5"), ("k1", "y6")]
        out = [(f"y{i}", f"z{i}") for i in range(300)]
        tables = {"hay": hay, "probe": probe, "out": out}
        program = parse_program(text).with_facts(facts_from_tables(tables))
        return program, tables

    def test_same_answers_as_greedy(self):
        program, tables = self.build()
        stats = make_stats(tables)
        expected = naive.goal_answers(program)
        assert evaluate(program, sip_factory=statistics_sip(stats)).answers == expected
        assert evaluate(program).answers == expected

    def test_statistics_strategy_does_less_work(self):
        program, tables = self.build()
        stats = make_stats(tables)
        informed = evaluate(program, sip_factory=statistics_sip(stats))
        structural = evaluate(program)
        assert informed.tuples_stored < structural.tuples_stored
        assert informed.db_rows_retrieved < structural.db_rows_retrieved

    def test_recursive_programs_still_correct(self):
        from repro.workloads import nonlinear_tc_program, random_digraph_edges

        edges = random_digraph_edges(10, 28, seed=9) + [(0, 1)]
        program = nonlinear_tc_program(0).with_facts(
            facts_from_tables({"e": edges})
        )
        stats = make_stats({"e": edges})
        result = evaluate(program, sip_factory=statistics_sip(stats))
        assert result.answers == naive.goal_answers(program)
        assert result.protocol_violations == []
