"""Property-based tests of the termination protocol over random trees and
random busy schedules (hypothesis drives the synthetic component harness)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.messages import EndRequest, TupleMessage
from repro.network.scheduler import Scheduler
from repro.network.termination import TerminationProtocol


class StubNode:
    def __init__(self, node_id):
        self.node_id = node_id
        self.protocol = None
        self.pending_work = 0  # decremented as injected work is consumed
        self.concluded = 0

    def empty_queues(self, network):
        return self.pending_work == 0 and network.pending_for(self.node_id) == 0

    def handle(self, message, network):
        if isinstance(message, TupleMessage):
            self.protocol.on_work()
            if self.pending_work:
                self.pending_work -= 1
            return
        if isinstance(message, EndRequest):
            self.protocol.handle_end_request(message, network)
        else:
            from repro.network.messages import EndConfirmed, EndNegative

            if isinstance(message, EndNegative):
                self.protocol.handle_end_negative(message, network)
            elif isinstance(message, EndConfirmed):
                self.protocol.handle_end_confirmed(message, network)

    def on_idle_check(self, network):
        if self.protocol.is_leader:
            self.protocol.maybe_initiate(network, self.concluded == 0)


@st.composite
def random_trees(draw, max_nodes=7):
    """A random rooted tree as a children map {0: [...], ...}."""
    n = draw(st.integers(2, max_nodes))
    children = {i: [] for i in range(n)}
    for node in range(1, n):
        parent = draw(st.integers(0, node - 1))
        children[parent].append(node)
    return children


@st.composite
def component_with_work(draw):
    tree = draw(random_trees())
    nodes = sorted(tree)
    # Work injections: (when-step, node, amount)
    injections = draw(
        st.lists(
            st.tuples(
                st.integers(0, 40),
                st.sampled_from(nodes),
                st.integers(1, 3),
            ),
            max_size=4,
        )
    )
    seed = draw(st.integers(0, 10_000))
    return tree, injections, seed


def build(tree, seed):
    scheduler = Scheduler(seed=seed)
    parents = {}
    for parent, kids in tree.items():
        for kid in kids:
            parents[kid] = parent
    nodes = {}
    for node_id in tree:
        node = StubNode(node_id)
        node.protocol = TerminationProtocol(
            node_id=node_id,
            is_leader=node_id == 0,
            bfst_parent=parents.get(node_id),
            bfst_children=tuple(tree[node_id]),
            empty_queues=node.empty_queues,
            on_conclude=lambda network, n=node: setattr(n, "concluded", n.concluded + 1),
        )
        nodes[node_id] = node
        scheduler.register(node)
    return scheduler, nodes


class TestProtocolProperties:
    @settings(max_examples=120, deadline=None)
    @given(component_with_work())
    def test_protocol_live_under_injected_work(self, case):
        """Liveness under adversarial work arrival.

        Work injected mid-protocol (even between a member's confirmation and
        the leader's conclusion — legal only for *external* requests in the
        real system) must never wedge the protocol: the run drains, the
        leader concludes exactly once (the gate), and all work is consumed.
        The per-instant soundness statement of Theorem 3.1 is validated at
        the engine level, where feeder/request causality is modeled
        (tests/integration/test_termination_protocol.py).
        """
        tree, injections, seed = case
        scheduler, nodes = build(tree, seed)
        leader = nodes[0]
        leader.on_idle_check(scheduler)
        step = 0
        pending = sorted(injections)
        while True:
            while pending and pending[0][0] <= step:
                _, node, amount = pending.pop(0)
                if leader.concluded == 0:
                    nodes[node].pending_work += amount
                    for _ in range(amount):
                        scheduler.send(TupleMessage(99, node, ("w", step)))
                else:
                    pending = []
                    break
            if scheduler.step() is None:
                if pending and leader.concluded == 0:
                    step = pending[0][0]  # jump to the next injection
                    continue
                break
            step += 1
            assert step < 20_000, "protocol failed to converge"
        assert leader.concluded == 1
        assert all(n.pending_work == 0 for n in nodes.values())
        assert scheduler.in_flight() == 0

    @settings(max_examples=120, deadline=None)
    @given(component_with_work())
    def test_no_conclusion_while_pre_wave_work_unconsumed(self, case):
        """Soundness core: work visible before a wave blocks confirmation.

        Any node holding unconsumed work when an end request reaches it must
        answer negative, so a wave that started while work was queued cannot
        be the concluding one.
        """
        tree, injections, seed = case
        scheduler, nodes = build(tree, seed)
        leader = nodes[0]

        def conclude(network):
            leader.concluded += 1
            # No member may have locally-known unconsumed work *that it has
            # already had a chance to report* (i.e. delivered injections).
            for n in nodes.values():
                undelivered = network.pending_for(n.node_id)
                assert n.pending_work <= undelivered, (
                    f"node {n.node_id} confirmed with consumed-visible work"
                )

        leader.protocol.on_conclude = conclude
        leader.on_idle_check(scheduler)
        pending = sorted(injections)
        step = 0
        while True:
            while pending and pending[0][0] <= step and leader.concluded == 0:
                _, node, amount = pending.pop(0)
                nodes[node].pending_work += amount
                for _ in range(amount):
                    scheduler.send(TupleMessage(99, node, ("w", step)))
            if scheduler.step() is None:
                if pending and leader.concluded == 0:
                    step = pending[0][0]
                    continue
                break
            step += 1
            assert step < 20_000
        assert leader.concluded >= 1

    @settings(max_examples=60, deadline=None)
    @given(random_trees(), st.integers(0, 10_000))
    def test_quiet_component_needs_exactly_two_waves(self, tree, seed):
        scheduler, nodes = build(tree, seed)
        nodes[0].on_idle_check(scheduler)
        scheduler.run()
        assert nodes[0].concluded == 1
        assert nodes[0].protocol.rounds_started == 2
