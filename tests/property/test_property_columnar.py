"""Differential property test for the columnar kernels and cost planner.

Random EDB graphs are evaluated under every (columnar, planner)
combination and must agree exactly with the row-kernel static-order
baseline — the kernels and the planner both claim to change *how* a
fixpoint is computed, never *what* it is.  Covers linear, non-linear,
and cyclic (same-generation) recursion shapes, plus delta refresh: a
columnar materialized network absorbing random write batches must track
a cold row-kernel session over the grown base at every round.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.session import Session

SHAPES = {
    "linear": (
        "t(X, Y) <- e(X, Y).\n"
        "t(X, Y) <- e(X, U), t(U, Y).",
        "t(0, Z)",
    ),
    "nonlinear": (
        "t(X, Y) <- e(X, Y).\n"
        "t(X, Y) <- t(X, U), t(U, Y).",
        "t(0, Z)",
    ),
    # Same-generation over a random graph: cyclic through the binary
    # rule's inner recursion; join keys mix constants and variables.
    "samegen": (
        "sg(X, Y) <- e(X, U), e(Y, U).\n"
        "sg(X, Y) <- e(X, U), sg(U, V), e(Y, V).",
        "sg(0, Z)",
    ),
}

edge = st.tuples(st.integers(0, 6), st.integers(0, 6))
edges = st.lists(edge, min_size=1, max_size=12)

COMMON = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def facts_text(batch):
    return " ".join(f"e({a}, {b})." for a, b in batch)


def source(shape, batch):
    rules, _ = SHAPES[shape]
    return rules + "\n" + facts_text(batch)


class TestColumnarPlannerDifferential:
    @settings(**COMMON)
    @given(shape=st.sampled_from(sorted(SHAPES)), initial=edges)
    def test_kernel_and_planner_combos_agree_with_row_baseline(
        self, shape, initial
    ):
        _, query = SHAPES[shape]
        baseline = Session(
            source(shape, initial), columnar=False, planner="static"
        ).query(query)
        for columnar in (True, False):
            for planner in ("static", "cost"):
                session = Session(
                    source(shape, initial), columnar=columnar, planner=planner
                )
                assert session.query(query) == baseline, (
                    f"{shape}: columnar={columnar} planner={planner} diverged"
                )

    @settings(**COMMON)
    @given(
        shape=st.sampled_from(sorted(SHAPES)),
        initial=edges,
        batches=st.lists(edges, min_size=1, max_size=3),
    )
    def test_columnar_delta_refresh_tracks_row_cold_session(
        self, shape, initial, batches
    ):
        rules, query = SHAPES[shape]
        session = Session(source(shape, initial), columnar=True)
        mat = session.materialize(query)
        committed = list(initial)
        for batch in batches:
            session.add_facts(facts_text(batch))
            committed.extend(batch)
            mat.refresh()
            cold = Session(rules, columnar=False)
            cold.add_facts(facts_text(committed))
            assert mat.answers == cold.query(query), (
                f"{shape}: columnar refresh diverged after "
                f"{len(committed)} edges"
            )

    @settings(**COMMON)
    @given(shape=st.sampled_from(sorted(SHAPES)), initial=edges)
    def test_cost_planner_survives_magnitude_growth(self, shape, initial):
        """Growing the EDB past a size bucket re-plans without changing answers."""
        rules, query = SHAPES[shape]
        session = Session(source(shape, initial), planner="cost")
        before = session.query(query)
        cold = Session(source(shape, initial), columnar=False)
        assert before == cold.query(query)
        # Push e past the next order of magnitude with disconnected edges
        # (node ids >= 100 never touch the 0-rooted query).
        filler = [(100 + i, 101 + i) for i in range(60)]
        session.add_facts(" ".join(f"e({a}, {b})." for a, b in filler))
        cold.add_facts(" ".join(f"e({a}, {b})." for a, b in filler))
        assert session.query(query) == cold.query(query)
