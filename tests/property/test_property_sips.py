"""Property-based tests for SIP strategies and Theorem 4.1 (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adornment import AdornedAtom, DYNAMIC, FREE
from repro.core.atoms import Atom
from repro.core.monotone import has_monotone_flow, qual_tree_sip, rule_qual_tree
from repro.core.rules import Rule
from repro.core.sips import (
    adorn_body,
    all_free_sip,
    bound_score,
    greedy_sip,
    is_greedy,
    left_to_right_sip,
    sip_from_order,
)
from repro.core.terms import Variable

VARS = [Variable(f"V{i}") for i in range(8)]


@st.composite
def safe_rules(draw, max_subgoals=5):
    """Random connected, safe, constant-free rules with binary/ternary atoms."""
    n = draw(st.integers(1, max_subgoals))
    produced = [VARS[0]]
    body = []
    for i in range(n):
        shared = draw(st.sampled_from(produced))
        fresh = VARS[(i + 1) % len(VARS)]
        args = [shared, fresh]
        if draw(st.booleans()):
            args.append(draw(st.sampled_from(produced)))
        body.append(Atom(f"e{i}", tuple(args)))
        if fresh not in produced:
            produced.append(fresh)
    head = Rule(Atom("p", (VARS[0], produced[-1])), tuple(body))
    return head


def df(rule: Rule) -> AdornedAtom:
    return AdornedAtom(rule.head, (DYNAMIC, FREE))


class TestStrategyProperties:
    @settings(max_examples=200)
    @given(safe_rules())
    def test_greedy_is_greedy(self, rule):
        assert is_greedy(greedy_sip(rule, df(rule)))

    @settings(max_examples=200)
    @given(safe_rules())
    def test_theorem_41(self, rule):
        head = df(rule)
        if not has_monotone_flow(rule, head):
            return
        sip = qual_tree_sip(rule, head)
        assert sip is not None
        assert is_greedy(sip)

    @settings(max_examples=200)
    @given(safe_rules())
    def test_every_strategy_is_acyclic(self, rule):
        head = df(rule)
        for factory in (greedy_sip, left_to_right_sip, all_free_sip):
            assert factory(rule, head).is_acyclic()

    @settings(max_examples=200)
    @given(safe_rules())
    def test_adornment_classes_are_consistent(self, rule):
        # Whatever the strategy: constants are c, head-bound or fed vars are
        # d, singletons e, and producers f — and every subgoal's "d" variable
        # is bound by the head or an earlier subgoal in the order.
        head = df(rule)
        for factory in (greedy_sip, left_to_right_sip):
            sip = factory(rule, head)
            adorned = adorn_body(sip)
            bound = {rule.head.args[0]}
            for index in sip.order:
                sub = adorned[index]
                for pos in sub.dynamic_positions:
                    term = sub.atom.args[pos]
                    assert term in bound, f"{term} not yet bound at {sub}"
                bound |= sub.atom.variable_set()

    @settings(max_examples=200)
    @given(safe_rules(), st.randoms(use_true_random=False))
    def test_sip_from_any_order_is_valid(self, rule, rng):
        order = list(range(len(rule.body)))
        rng.shuffle(order)
        sip = sip_from_order(rule, df(rule), order)
        assert sip.order == tuple(order)
        adorn_body(sip)  # must not raise

    @settings(max_examples=200)
    @given(safe_rules())
    def test_bound_score_monotone_in_bound_set(self, rule):
        head = df(rule)
        subgoal = rule.body[0]
        small = bound_score(subgoal, set())
        large = bound_score(subgoal, subgoal.variable_set())
        assert small <= large

    @settings(max_examples=150)
    @given(safe_rules())
    def test_qual_tree_property_always_holds_when_monotone(self, rule):
        head = df(rule)
        tree = rule_qual_tree(rule, head)
        if tree is not None:
            assert tree.satisfies_qual_tree_property()
            assert tree.is_tree()
