"""Property-based round-trip tests for the parser and printers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import Atom
from repro.core.parser import parse_program, parse_rule
from repro.core.program import Program
from repro.core.rules import Rule
from repro.core.terms import Constant, Variable

variables = st.sampled_from([Variable(n) for n in ("X", "Y", "Z", "Uv", "W2")])
constants = st.sampled_from(
    [Constant("a"), Constant("bob"), Constant(0), Constant(42), Constant(-3)]
)
terms = st.one_of(variables, constants)
predicates = st.sampled_from(["p", "q", "edge", "r2"])


@st.composite
def atoms(draw, allow_nullary=True):
    arity = draw(st.integers(0 if allow_nullary else 1, 3))
    return Atom(draw(predicates), tuple(draw(terms) for _ in range(arity)))


@st.composite
def safe_rules(draw):
    body = tuple(draw(atoms()) for _ in range(draw(st.integers(1, 3))))
    body_vars = sorted(
        {v for a in body for v in a.variable_set()}, key=lambda v: v.name
    )
    head_arity = draw(st.integers(0, min(3, len(body_vars)) if body_vars else 0))
    head_args = tuple(body_vars[:head_arity])
    return Rule(Atom("h", head_args), body)


class TestRoundTrips:
    @settings(max_examples=200)
    @given(safe_rules())
    def test_rule_print_parse_roundtrip(self, rule):
        assert parse_rule(str(rule)) == rule

    @settings(max_examples=100)
    @given(st.lists(safe_rules(), min_size=1, max_size=5))
    def test_program_roundtrip(self, rules):
        # h-heads only; no facts. Print and reparse the whole program.
        program = Program(rules, [], validate=False)
        reparsed = parse_program(str(program), validate=False)
        assert set(reparsed.rules) == set(rules)

    @settings(max_examples=200)
    @given(atoms(allow_nullary=False))
    def test_ground_fact_roundtrip(self, atom_):
        if not atom_.is_ground():
            return
        program = parse_program(f"{atom_}.", validate=False)
        assert list(program.facts) == [atom_]

    @settings(max_examples=200)
    @given(safe_rules())
    def test_parse_is_stable(self, rule):
        # parse(print(parse(print(r)))) == parse(print(r))
        once = parse_rule(str(rule))
        twice = parse_rule(str(once))
        assert once == twice
