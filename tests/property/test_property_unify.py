"""Property-based tests for unification and variants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import Atom
from repro.core.terms import Constant, FreshVariables, Variable
from repro.core.unify import is_variant, match, rename_apart, unify

variables = st.sampled_from([Variable(n) for n in "XYZUVW"])
constants = st.sampled_from([Constant(v) for v in ("a", "b", 1, 2)])
terms = st.one_of(variables, constants)
predicates = st.sampled_from(["p", "q"])


@st.composite
def atoms(draw, min_arity=0, max_arity=4):
    predicate = draw(predicates)
    arity = draw(st.integers(min_arity, max_arity))
    return Atom(predicate, tuple(draw(terms) for _ in range(arity)))


@st.composite
def ground_atoms(draw, min_arity=0, max_arity=4):
    predicate = draw(predicates)
    arity = draw(st.integers(min_arity, max_arity))
    return Atom(predicate, tuple(draw(constants) for _ in range(arity)))


class TestUnifyProperties:
    @settings(max_examples=200)
    @given(atoms(), atoms())
    def test_mgu_is_a_unifier(self, a, b):
        subst = unify(a, b)
        if subst is not None:
            assert subst.apply(a) == subst.apply(b)

    @settings(max_examples=200)
    @given(atoms(), atoms())
    def test_unify_symmetric_in_success(self, a, b):
        assert (unify(a, b) is None) == (unify(b, a) is None)

    @settings(max_examples=100)
    @given(atoms())
    def test_self_unification_is_empty(self, a):
        subst = unify(a, a)
        assert subst is not None and len(subst) == 0

    @settings(max_examples=200)
    @given(atoms())
    def test_rename_apart_gives_variant(self, a):
        renamed, _ = rename_apart([a], FreshVariables())
        assert is_variant(a, renamed[0])

    @settings(max_examples=200)
    @given(atoms(), atoms())
    def test_variants_unify_with_renaming(self, a, b):
        if is_variant(a, b):
            subst = unify(a, b)
            assert subst is not None
            assert all(isinstance(t, Variable) for _, t in subst.items())

    @settings(max_examples=200)
    @given(atoms())
    def test_variant_reflexive(self, a):
        assert is_variant(a, a)

    @settings(max_examples=200)
    @given(atoms(), atoms())
    def test_variant_symmetric(self, a, b):
        assert is_variant(a, b) == is_variant(b, a)


class TestMatchProperties:
    @settings(max_examples=200)
    @given(atoms(), ground_atoms())
    def test_match_grounds_pattern_to_fact(self, pattern, fact):
        subst = match(pattern, fact)
        if subst is not None:
            assert subst.apply(pattern) == fact

    @settings(max_examples=200)
    @given(ground_atoms())
    def test_ground_atom_matches_itself(self, fact):
        assert match(fact, fact) is not None

    @settings(max_examples=200)
    @given(atoms(), ground_atoms())
    def test_match_implies_unify(self, pattern, fact):
        if match(pattern, fact) is not None:
            assert unify(pattern, fact) is not None
