"""Differential property test for incremental view maintenance.

Random write schedules (batches of random EDB edges) are interleaved
with queries against a *warm* materialization; after every refresh the
answers must equal both a from-scratch cold session over the grown base
and the semi-naive baseline (`repro.baselines.seminaive`) on the full
induced program.  Covers linear, non-linear, and cyclic recursion
shapes — the delta waves in the cyclic shapes can close cycles through
already-converged nodes, which is exactly where a broken semi-naive
re-injection would under-derive.  One deterministic case exercises the
multiprocess runtimes' invalidate-and-recompute path (no warm network
to keep; every post-write query re-derives and must still agree).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import seminaive
from repro.service import SharedSession
from repro.session import Session

SHAPES = {
    "linear": (
        "t(X, Y) <- e(X, Y).\n"
        "t(X, Y) <- e(X, U), t(U, Y).",
        "t(0, Z)",
    ),
    "nonlinear": (
        "t(X, Y) <- e(X, Y).\n"
        "t(X, Y) <- t(X, U), t(U, Y).",
        "t(0, Z)",
    ),
    # Same-generation over a random graph: cyclic through the binary
    # rule's inner recursion, answers can grow non-locally per delta.
    "samegen": (
        "sg(X, Y) <- e(X, U), e(Y, U).\n"
        "sg(X, Y) <- e(X, U), sg(U, V), e(Y, V).",
        "sg(0, Z)",
    ),
}

edge = st.tuples(st.integers(0, 6), st.integers(0, 6))
edges = st.lists(edge, min_size=1, max_size=10)

COMMON = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def facts_text(batch):
    return " ".join(f"e({a}, {b})." for a, b in batch)


def cold_answers(rules, committed, query):
    cold = Session(rules)
    if committed:
        cold.add_facts(facts_text(committed))
    return cold.query(query)


class TestWarmRefreshDifferential:
    @settings(**COMMON)
    @given(
        shape=st.sampled_from(sorted(SHAPES)),
        initial=edges,
        batches=st.lists(edges, min_size=1, max_size=4),
    )
    def test_materialization_tracks_cold_session_and_baseline(
        self, shape, initial, batches
    ):
        rules, query = SHAPES[shape]
        session = Session(rules + "\n" + facts_text(initial))
        mat = session.materialize(query)
        assert mat.answers == cold_answers(rules, initial, query)
        committed = list(initial)
        for batch in batches:
            session.add_facts(facts_text(batch))
            committed.extend(batch)
            mat.refresh()
            expected = cold_answers(rules, committed, query)
            assert mat.answers == expected, (
                f"{shape}: warm refresh diverged after {len(committed)} edges"
            )
            baseline = seminaive.evaluate(session.program_for(query)).answers()
            assert mat.answers == baseline, (
                f"{shape}: warm refresh disagrees with semi-naive baseline"
            )

    @settings(**COMMON)
    @given(
        shape=st.sampled_from(sorted(SHAPES)),
        initial=edges,
        batches=st.lists(edges, min_size=1, max_size=3),
    )
    def test_serving_layer_refresh_tracks_cold_session(
        self, shape, initial, batches
    ):
        rules, query = SHAPES[shape]
        shared = SharedSession(
            rules + "\n" + facts_text(initial), materialize=True
        )
        shared.query(query)  # warm the pool
        committed = list(initial)
        for batch in batches:
            shared.add_facts(facts_text(batch))
            committed.extend(batch)
            outcome = shared.query_detailed(query)
            # The write-path refresh re-stored the entry at the new
            # version — served without evaluation, and still correct.
            assert outcome.answer_cached, f"{shape}: hot entry was purged"
            expected = cold_answers(rules, committed, query)
            assert set(outcome.answers) == expected


class TestMultiprocessInvalidateAndRecompute:
    def test_pool_runtime_write_then_query_parity(self):
        rules, query = SHAPES["linear"]
        initial = [(0, 1), (1, 2), (4, 5)]
        shared = SharedSession(
            rules + "\n" + facts_text(initial),
            materialize=True,  # silently ignored: no warm network to keep
            runtime="pool",
            workers=2,
            timeout=60,
        )
        assert shared.query(query) == cold_answers(rules, initial, query)
        committed = list(initial)
        for batch in [[(2, 3)], [(3, 0), (5, 6)]]:
            shared.add_facts(facts_text(batch))
            committed.extend(batch)
            outcome = shared.query_detailed(query)
            assert not outcome.materialized and not outcome.answer_cached
            assert set(outcome.answers) == cold_answers(
                rules, committed, query
            )
            # The recomputed answers re-populate the cache at the new version.
            assert shared.query_detailed(query).answer_cached
