"""Property-based tests for the relational algebra (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.algebra import antijoin, natural_join, semijoin
from repro.relational.relation import Relation

values = st.integers(0, 5)


@st.composite
def relations(draw, columns):
    n = draw(st.integers(0, 12))
    rows = [tuple(draw(values) for _ in columns) for _ in range(n)]
    return Relation(columns, rows)


AB = ("a", "b")
BC = ("b", "c")


class TestJoinLaws:
    @settings(max_examples=100)
    @given(relations(AB), relations(BC))
    def test_join_commutes_up_to_column_order(self, r, s):
        left = natural_join(r, s)
        right = natural_join(s, r)
        cols = ("a", "b", "c")
        assert left.project(cols) == right.project(cols)

    @settings(max_examples=100)
    @given(relations(AB), relations(BC), relations(("c", "d")))
    def test_join_associates(self, r, s, t):
        cols = ("a", "b", "c", "d")
        one = natural_join(natural_join(r, s), t).project(cols)
        two = natural_join(r, natural_join(s, t)).project(cols)
        assert one == two

    @settings(max_examples=100)
    @given(relations(AB))
    def test_self_join_is_identity(self, r):
        assert natural_join(r, r) == r

    @settings(max_examples=100)
    @given(relations(AB), relations(BC))
    def test_join_rows_come_from_operands(self, r, s):
        out = natural_join(r, s)
        assert set(out.project(AB).rows) <= set(r.rows)
        assert set(out.project(BC).rows) <= set(s.rows)


class TestSemijoinLaws:
    @settings(max_examples=100)
    @given(relations(AB), relations(BC))
    def test_semijoin_is_join_projection(self, r, s):
        assert semijoin(r, s) == natural_join(r, s).project(AB)

    @settings(max_examples=100)
    @given(relations(AB), relations(BC))
    def test_semijoin_shrinks(self, r, s):
        assert set(semijoin(r, s).rows) <= set(r.rows)

    @settings(max_examples=100)
    @given(relations(AB), relations(BC))
    def test_semijoin_idempotent(self, r, s):
        once = semijoin(r, s)
        assert semijoin(once, s) == once

    @settings(max_examples=100)
    @given(relations(AB), relations(BC))
    def test_semi_plus_anti_partition(self, r, s):
        kept = set(semijoin(r, s).rows)
        dropped = set(antijoin(r, s).rows)
        assert kept | dropped == set(r.rows)
        assert not (kept & dropped)

    @settings(max_examples=100)
    @given(relations(AB), relations(BC))
    def test_semijoin_preserves_join_result(self, r, s):
        # Pruning dangling tuples never changes the join — the soundness of
        # sideways information passing in relational terms.
        assert natural_join(semijoin(r, s), s) == natural_join(r, s)


class TestProjectionLaws:
    @settings(max_examples=100)
    @given(relations(AB))
    def test_projection_idempotent(self, r):
        assert r.project(("a",)).project(("a",)) == r.project(("a",))

    @settings(max_examples=100)
    @given(relations(AB))
    def test_full_projection_is_identity(self, r):
        assert r.project(AB) == r

    @settings(max_examples=100)
    @given(relations(AB), relations(AB))
    def test_union_upper_bounds_operands(self, r, s):
        u = r.union(s)
        assert set(r.rows) <= set(u.rows) and set(s.rows) <= set(u.rows)
        assert len(u) <= len(r) + len(s)
