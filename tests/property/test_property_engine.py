"""Property-based end-to-end tests: random programs + EDBs vs the oracle.

Random safe Datalog programs (recursion included) over random small EDBs are
evaluated by the message-passing engine under every SIP strategy and random
delivery orders; the answers must always equal the naive minimum model's
goal relation, the run must complete, and the termination protocol must
never conclude early.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import naive
from repro.core.atoms import Atom
from repro.core.program import Program
from repro.core.rules import Rule
from repro.core.sips import all_free_sip, left_to_right_sip
from repro.core.terms import Constant, Variable
from repro.network.engine import evaluate

X, Y, Z, U = (Variable(n) for n in "XYZU")
VARS = [X, Y, Z, U]

idb_preds = st.sampled_from(["p", "s"])
edb_preds = st.sampled_from(["e", "f"])
domain = st.integers(0, 4)


@st.composite
def body_atoms(draw):
    kind = draw(st.integers(0, 3))
    if kind == 0:
        pred = draw(idb_preds)
        arity = 2
    else:
        pred = draw(edb_preds)
        # EDB relations also appear as unary/ternary views of the pairs.
        arity = draw(st.sampled_from([2, 2, 2, 1, 3]))
        if arity == 1:
            pred = "u"
        elif arity == 3:
            pred = "t3"
    args = tuple(
        draw(st.one_of(st.sampled_from(VARS), domain.map(Constant)))
        for _ in range(arity)
    )
    return Atom(pred, args)


@st.composite
def rules(draw):
    head_pred = draw(idb_preds)
    head_vars = draw(st.permutations(VARS))[:2]
    head = Atom(head_pred, tuple(head_vars))
    body = [draw(body_atoms()) for _ in range(draw(st.integers(1, 3)))]
    # Enforce safety: any head variable missing from the body is grounded
    # by appending an EDB subgoal over the head variables.
    body_vars = set()
    for sub in body:
        body_vars |= sub.variable_set()
    if not head.variable_set() <= body_vars:
        body.append(Atom("e", tuple(head_vars)))
    return Rule(head, tuple(body))


@st.composite
def programs(draw):
    rule_list = [draw(rules()) for _ in range(draw(st.integers(1, 3)))]
    # Ensure p has at least one non-recursive rule so answers can exist.
    rule_list.append(Rule(Atom("p", (X, Y)), (Atom("e", (X, Y)),)))
    query = Rule(Atom("goal", (Z,)), (Atom("p", (Constant(0), Z)),))
    rule_list.append(query)
    facts = []
    for pred in ("e", "f"):
        n = draw(st.integers(0, 8))
        for _ in range(n):
            facts.append(
                Atom(pred, (Constant(draw(domain)), Constant(draw(domain))))
            )
    for _ in range(draw(st.integers(0, 4))):
        facts.append(Atom("u", (Constant(draw(domain)),)))
    for _ in range(draw(st.integers(0, 4))):
        facts.append(
            Atom(
                "t3",
                (Constant(draw(domain)), Constant(draw(domain)), Constant(draw(domain))),
            )
        )
    return Program(rule_list, facts)


COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestEngineAgainstOracle:
    @settings(**COMMON)
    @given(programs())
    def test_greedy_matches_oracle(self, program):
        expected = naive.goal_answers(program)
        result = evaluate(program)
        assert result.answers == expected
        assert result.completed
        assert result.protocol_violations == []

    @settings(**COMMON)
    @given(programs())
    def test_all_free_matches_oracle(self, program):
        assert evaluate(program, sip_factory=all_free_sip).answers == naive.goal_answers(program)

    @settings(**COMMON)
    @given(programs(), st.integers(0, 10_000))
    def test_random_delivery_matches_oracle(self, program, seed):
        result = evaluate(program, seed=seed)
        assert result.answers == naive.goal_answers(program)
        assert result.protocol_violations == []

    @settings(**COMMON)
    @given(programs())
    def test_left_to_right_matches_oracle(self, program):
        assert (
            evaluate(program, sip_factory=left_to_right_sip).answers
            == naive.goal_answers(program)
        )

    @settings(**COMMON)
    @given(programs())
    def test_coalesced_matches_oracle(self, program):
        result = evaluate(program, coalesce=True)
        assert result.answers == naive.goal_answers(program)
        assert result.completed
        assert result.protocol_violations == []

    @settings(**COMMON)
    @given(programs())
    def test_packaged_matches_oracle(self, program):
        result = evaluate(program, package_requests=True)
        assert result.answers == naive.goal_answers(program)
        assert result.protocol_violations == []

    @settings(**COMMON)
    @given(programs(), st.integers(0, 10_000))
    def test_all_modes_combined(self, program, seed):
        result = evaluate(program, coalesce=True, package_requests=True, seed=seed)
        assert result.answers == naive.goal_answers(program)
        assert result.completed
        assert result.protocol_violations == []
