"""Property-based tests for GYO reduction and qual trees (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypergraph import Hypergraph

vertices = st.sampled_from(list("VWXYZABC"))


@st.composite
def hypergraphs(draw, max_edges=6, max_edge_size=4):
    n = draw(st.integers(1, max_edges))
    edges = {}
    for i in range(n):
        size = draw(st.integers(0, max_edge_size))
        edges[f"h{i}"] = frozenset(draw(vertices) for _ in range(size))
    return Hypergraph(edges)


class TestGyoProperties:
    @settings(max_examples=150)
    @given(hypergraphs())
    def test_reduction_is_deterministic(self, h):
        a = h.gyo_reduction()
        b = Hypergraph(dict(h.edges)).gyo_reduction()
        assert a.acyclic == b.acyclic and a.tree_edges == b.tree_edges

    @settings(max_examples=150)
    @given(hypergraphs())
    def test_acyclic_iff_residual_empty(self, h):
        result = h.gyo_reduction()
        if result.acyclic:
            assert len(result.residual) == 1
            assert not next(iter(result.residual.values()))
        else:
            assert result.cyclic_core_vertices()

    @settings(max_examples=150)
    @given(hypergraphs())
    def test_covering_edge_makes_acyclic(self, h):
        # Adding a hyperedge containing every vertex always yields an
        # acyclic hypergraph (it absorbs everything).
        edges = dict(h.edges)
        edges["cover"] = frozenset(h.vertices())
        assert Hypergraph(edges).is_acyclic()

    @settings(max_examples=150)
    @given(hypergraphs())
    def test_qual_tree_property_whenever_acyclic(self, h):
        result = h.gyo_reduction()
        if not result.acyclic:
            return
        root = sorted(h.edges, key=str)[0]
        tree = result.qual_tree(root)
        assert tree.is_tree()
        assert tree.satisfies_qual_tree_property()

    @settings(max_examples=150)
    @given(hypergraphs())
    def test_tree_edge_count(self, h):
        result = h.gyo_reduction()
        if result.acyclic:
            assert len(result.tree_edges) == len(h.edges) - 1

    @settings(max_examples=100)
    @given(hypergraphs(max_edges=4))
    def test_duplicating_an_edge_preserves_acyclicity(self, h):
        result = h.is_acyclic()
        edges = dict(h.edges)
        first = sorted(edges, key=str)[0]
        edges["dup"] = edges[first]
        assert Hypergraph(edges).is_acyclic() == result
