"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.program import Program
from repro.workloads import (
    ancestor_program,
    chain_edges,
    nonlinear_tc_program,
    program_p1,
    random_digraph_edges,
)

from tests.helpers import oracle_answers, with_tables


@pytest.fixture
def p1_small() -> Program:
    """Program P1 over a small hand-built EDB with a reachable cycle."""
    return with_tables(
        program_p1(),
        {"r": [("a", 1), (1, 2), (2, 3)], "q": [(1, 2), (2, 3), (3, 1)]},
    )


@pytest.fixture
def ancestor_chain() -> Program:
    """Linear ancestor over a 12-element chain."""
    return with_tables(ancestor_program(0), {"par": chain_edges(12)})


@pytest.fixture
def tc_random() -> Program:
    """Nonlinear transitive closure over a random 15-vertex digraph."""
    edges = random_digraph_edges(15, 40, seed=2)
    return with_tables(nonlinear_tc_program(edges[0][0]), {"e": edges})
