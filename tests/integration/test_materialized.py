"""Materialized queries: warm networks, delta refresh, lifecycle.

The tentpole contract: ``Session.materialize`` retains the evaluated
network after its fixpoint; each committed ``add_facts`` feeds delta
tuples to every live materialization and ``refresh()`` re-runs monotone
propagation to convergence, so answers after any write sequence equal a
cold evaluation against the grown base (classic semi-naive soundness).
``add_rules`` with new rules invalidates — the network embeds the IDB
fingerprint.
"""

import pytest

from repro.core.program import ProgramError
from repro.session import (
    MaterializedQueryClosed,
    PreparedQuery,
    Session,
)

BASE = """
anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, U), anc(U, Y).
par(ann, bob).  par(bob, cal).
"""


def cold_answers(session, query):
    """From-scratch evaluation via a fresh session over the same base."""
    fresh = Session(
        "", sip_factory=session.sip_factory, coalesce=session.coalesce
    )
    fresh.add_rules(session.rules)
    fresh.add_facts(session.facts)
    return fresh.query(query)


class TestPreparedQuery:
    def test_prepare_is_idempotent(self):
        s = Session(BASE)
        prepared = s.prepare("anc(ann, Z)")
        assert isinstance(prepared, PreparedQuery)
        assert s.prepare(prepared) is prepared

    def test_prepared_key_matches_cache_key(self):
        s = Session(BASE)
        prepared = s.prepare("anc(ann, Z)")
        assert prepared.key == s.cache_key_for("anc(ann, Z)")
        # Variant queries share the key (Theorem 2.1 signature).
        assert s.cache_key_for(prepared) == s.cache_key_for("anc(ann, W)")

    def test_prepared_query_evaluates_identically(self):
        s = Session(BASE)
        prepared = s.prepare("anc(ann, Z)")
        assert s.query(prepared) == s.query("anc(ann, Z)")

    def test_prepare_rejects_goal_predicate(self):
        s = Session(BASE)
        with pytest.raises(ProgramError):
            s.prepare("goal(X)")

    def test_stale_fingerprint_recomputes_key(self):
        s = Session(BASE)
        prepared = s.prepare("anc(ann, Z)")
        s.add_rules("anc2(X, Y) <- anc(X, Y).")
        # The old key was computed against the old IDB fingerprint; the
        # session must not trust it, and evaluation must still work.
        assert s.cache_key_for(prepared) == s.cache_key_for("anc(ann, Z)")
        assert s.query(prepared) == {("bob",), ("cal",)}


class TestMaterializedLifecycle:
    def test_initial_answers_match_plain_query(self):
        s = Session(BASE)
        mat = s.materialize("anc(ann, Z)")
        assert mat.answers == s.query("anc(ann, Z)")
        assert not mat.stale
        assert mat.version == s.db_version

    def test_refresh_without_writes_is_a_noop(self):
        s = Session(BASE)
        mat = s.materialize("anc(ann, Z)")
        result = mat.result
        assert mat.refresh() is result
        assert mat.refreshes == 0

    def test_add_facts_marks_stale_and_refresh_converges(self):
        s = Session(BASE)
        mat = s.materialize("anc(ann, Z)")
        s.add_facts("par(cal, dee). par(dee, eve).")
        assert mat.stale
        result = mat.refresh()
        assert result.incremental
        assert not mat.stale
        assert mat.version == s.db_version
        assert mat.answers == {("bob",), ("cal",), ("dee",), ("eve",)}
        assert mat.answers == cold_answers(s, "anc(ann, Z)")

    def test_multiple_write_batches_coalesce_into_one_refresh(self):
        s = Session(BASE)
        mat = s.materialize("anc(ann, Z)")
        s.add_facts("par(cal, dee).")
        s.add_facts("par(dee, eve).")
        s.add_facts("par(eve, fay).")
        mat.refresh()
        assert mat.refreshes == 1  # one wave over the merged delta
        assert mat.answers == cold_answers(s, "anc(ann, Z)")

    def test_delta_creating_cycle_converges(self):
        s = Session(BASE)
        mat = s.materialize("anc(ann, Z)")
        s.add_facts("par(cal, ann).")  # closes a cycle through the root
        mat.refresh()
        assert mat.answers == cold_answers(s, "anc(ann, Z)")
        assert ("ann",) in mat.answers

    def test_irrelevant_delta_changes_nothing(self):
        s = Session(BASE)
        mat = s.materialize("anc(ann, Z)")
        before = set(mat.answers)
        s.add_facts("par(zoe, zed).")  # unreachable from ann
        mat.refresh()
        assert mat.answers == before
        assert mat.answers == cold_answers(s, "anc(ann, Z)")

    def test_add_rules_facts_only_feeds_delta(self):
        s = Session(BASE)
        mat = s.materialize("anc(ann, Z)")
        s.add_rules("par(cal, dee).")  # facts-only: network stays valid
        assert not mat.closed and mat.stale
        mat.refresh()
        assert ("dee",) in mat.answers

    def test_add_rules_with_rules_closes(self):
        s = Session(BASE)
        mat = s.materialize("anc(ann, Z)")
        s.add_rules("anc2(X, Y) <- anc(X, Y).")
        assert mat.closed
        with pytest.raises(MaterializedQueryClosed):
            mat.refresh()

    def test_close_is_idempotent_and_detaches(self):
        s = Session(BASE)
        mat = s.materialize("anc(ann, Z)")
        mat.close()
        mat.close()
        s.add_facts("par(cal, dee).")  # must not reach the closed instance
        assert not mat.stale

    def test_dropping_the_handle_releases_registration(self):
        s = Session(BASE)
        mat = s.materialize("anc(ann, Z)")
        assert len(s._materialized) == 1
        del mat
        import gc

        gc.collect()
        s.add_facts("par(cal, dee).")  # no live materialization to feed
        assert len(s._materialized) == 0

    def test_multiprocess_runtime_rejected(self):
        s = Session(BASE, runtime="pool")
        with pytest.raises(ValueError, match="simulator"):
            s.materialize("anc(ann, Z)")

    def test_two_materializations_fed_independently(self):
        s = Session(BASE)
        down = s.materialize("anc(ann, Z)")
        up = s.materialize("anc(X, cal)")
        s.add_facts("par(cal, dee).")
        down.refresh()
        up.refresh()
        assert down.answers == cold_answers(s, "anc(ann, Z)")
        assert up.answers == cold_answers(s, "anc(X, cal)")


class TestIncrementalResultAccounting:
    def test_refresh_is_cheaper_than_cold_evaluation(self):
        edges = [f"par(n{i}, n{i + 1})." for i in range(120)]
        s = Session(
            "anc(X, Y) <- par(X, Y).\n"
            "anc(X, Y) <- par(X, U), anc(U, Y).\n" + "\n".join(edges)
        )
        mat = s.materialize("anc(n0, Z)")
        s.add_facts("par(n120, n121).")
        refreshed = mat.refresh()
        cold = s.run_query("anc(n0, Z)")
        assert refreshed.answers == cold.answers
        # The wave's message count must reflect only the delta work.
        assert refreshed.total_messages < cold.total_messages / 5

    def test_refresh_result_reports_incremental_flag(self):
        s = Session(BASE)
        mat = s.materialize("anc(ann, Z)")
        assert not mat.result.incremental
        s.add_facts("par(cal, dee).")
        assert mat.refresh().incremental
