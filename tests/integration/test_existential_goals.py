"""End-to-end tests of class "e" at the top level.

Section 2.2: a goal ``p(X^f, Y^e)`` "can be satisfied by producing one tuple
for each unique X even though there may be many Y values that go with a
given X" — the existential class buys projection early, and its values are
never transmitted.
"""

import pytest

from repro.core.adornment import initial_goal_adornment
from repro.core.atoms import atom
from repro.core.parser import parse_program
from repro.core.terms import Variable
from repro.network.engine import MessagePassingEngine, evaluate
from repro.workloads import facts_from_tables

X, Y = Variable("X"), Variable("Y")


def build_program():
    # p(X, Y): X has few values, each with many Y partners.
    rows = [(f"x{i % 3}", f"y{j}") for i in range(3) for j in range(20)]
    return parse_program(
        """
        goal(X, Y) <- p(X, Y).
        p(X, Y) <- e(X, Y).
        """
    ).with_facts(facts_from_tables({"e": rows}))


class TestExistentialGoal:
    def test_one_tuple_per_unique_x(self):
        program = build_program()
        goal = initial_goal_adornment(atom("goal", X, Y), existential=[Y])
        result = evaluate(program, query_goal=goal)
        # Answers carry only the non-existential column.
        assert result.answers == {("x0",), ("x1",), ("x2",)}

    def test_fewer_tuples_transmitted_than_full_query(self):
        program = build_program()
        goal_e = initial_goal_adornment(atom("goal", X, Y), existential=[Y])
        goal_f = initial_goal_adornment(atom("goal", X, Y))
        existential = evaluate(program, query_goal=goal_e)
        full = evaluate(program, query_goal=goal_f)
        assert len(full.answers) == 60
        assert len(existential.answers) == 3
        # "possibly permitting greater efficiency": fewer logical tuples
        # transmitted (per-row TupleMessages plus rows carried in TupleSets).
        def tuples_sent(result):
            stats = result.stats
            return stats.by_kind.get("TupleMessage", 0) + stats.tuple_set_rows

        assert tuples_sent(existential) < tuples_sent(full)

    def test_existential_correctness_with_recursion(self):
        program = parse_program(
            """
            goal(X, Y) <- t(X, Y).
            t(X, Y) <- e(X, Y).
            t(X, Y) <- e(X, U), t(U, Y).
            """
        ).with_facts(facts_from_tables({"e": [(0, 1), (1, 2), (2, 3)]}))
        goal = initial_goal_adornment(atom("goal", X, Y), existential=[Y])
        result = evaluate(program, query_goal=goal)
        # Sources that reach anything: 0, 1, 2.
        assert result.answers == {(0,), (1,), (2,)}
        assert result.completed
