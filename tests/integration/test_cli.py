"""Tests for the command-line interface."""

import sys

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "anc.dl"
    path.write_text(
        """
        goal(Z) <- anc(ann, Z).
        anc(X, Y) <- par(X, Y).
        anc(X, Y) <- par(X, U), anc(U, Y).
        par(ann, bob).  par(bob, cal).  par(cal, dee).
        """
    )
    return str(path)


class TestRun:
    def test_prints_answers(self, program_file, capsys):
        assert main(["run", program_file]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert sorted(out) == ["bob", "cal", "dee"]

    def test_stats_to_stderr(self, program_file, capsys):
        main(["run", program_file, "--stats"])
        captured = capsys.readouterr()
        assert "messages" in captured.err
        assert "messages" not in captured.out

    def test_query_override(self, program_file, capsys):
        main(["run", program_file, "--query", "anc(bob, Z)"])
        out = capsys.readouterr().out.strip().splitlines()
        assert sorted(out) == ["cal", "dee"]

    def test_sip_choice(self, program_file, capsys):
        main(["run", program_file, "--sip", "all-free"])
        out = capsys.readouterr().out.strip().splitlines()
        assert sorted(out) == ["bob", "cal", "dee"]

    def test_seeded_delivery(self, program_file, capsys):
        main(["run", program_file, "--seed", "9"])
        out = capsys.readouterr().out.strip().splitlines()
        assert sorted(out) == ["bob", "cal", "dee"]

    def test_coalesce_and_package_flags(self, program_file, capsys):
        main(["run", program_file, "--coalesce", "--package"])
        out = capsys.readouterr().out.strip().splitlines()
        assert sorted(out) == ["bob", "cal", "dee"]


@pytest.mark.skipif(
    sys.platform not in ("linux", "darwin"), reason="fork start method required"
)
class TestRunSupervised:
    def test_pool_runtime_with_retries(self, program_file, capsys):
        assert main(["run", program_file, "--runtime", "pool",
                     "--workers", "2", "--retries", "2", "--stats"]) == 0
        captured = capsys.readouterr()
        assert sorted(captured.out.strip().splitlines()) == ["bob", "cal", "dee"]
        assert "attempts: 1; degraded: False" in captured.err

    def test_crash_summary_on_recovered_query(self, program_file, capsys, monkeypatch):
        # Inject a first-attempt kill via the environment (the no-code chaos
        # path); the retry recovers and the CLI must say so on stderr even
        # without --stats.
        monkeypatch.setenv(
            "REPRO_FAULTS",
            '{"kill_worker": 0, "kill_after": 2, "only_attempt": 1}',
        )
        assert main(["run", program_file, "--runtime", "pool",
                     "--workers", "2", "--retries", "2"]) == 0
        captured = capsys.readouterr()
        assert sorted(captured.out.strip().splitlines()) == ["bob", "cal", "dee"]
        assert "recovered by retry after 2 attempt(s)" in captured.err
        assert "WorkerCrashError" in captured.err

    def test_degraded_summary_on_fallback(self, program_file, capsys, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", '{"kill_worker": 0, "kill_after": 2}'
        )
        assert main(["run", program_file, "--runtime", "pool", "--workers", "2",
                     "--retries", "2", "--fallback", "inprocess"]) == 0
        captured = capsys.readouterr()
        assert sorted(captured.out.strip().splitlines()) == ["bob", "cal", "dee"]
        assert "degraded to the in-process runtime" in captured.err


class TestGraph:
    def test_prints_rule_goal_graph(self, program_file, capsys):
        assert main(["graph", program_file]) == 0
        out = capsys.readouterr().out
        assert "anc(" in out
        assert "cycle from" in out
        assert "strong component" in out

    def test_dot_output(self, program_file, capsys):
        assert main(["graph", program_file, "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph") and out.rstrip().endswith("}")

    def test_coalesced_graph(self, program_file, capsys):
        assert main(["graph", program_file, "--coalesce"]) == 0
        assert "shared node" in capsys.readouterr().out


class TestTrace:
    def test_prints_message_trace(self, program_file, capsys):
        assert main(["trace", program_file, "--limit", "50"]) == 0
        out = capsys.readouterr().out
        assert "relation request" in out
        assert "answers" in out

    def test_no_protocol_flag(self, program_file, capsys):
        main(["trace", program_file, "--no-protocol"])
        out = capsys.readouterr().out
        assert "end request" not in out


class TestAnalyze:
    def test_report_printed(self, program_file, capsys):
        assert main(["analyze", program_file]) == 0
        out = capsys.readouterr().out
        assert "PREDICATES" in out
        assert "linear recursive" in out
        assert "monotone flow: YES" in out

    def test_analyze_with_query_override(self, program_file, capsys):
        main(["analyze", program_file, "--query", "anc(X, dee)"])
        out = capsys.readouterr().out
        assert "anc" in out


class TestBenchSession:
    def test_reports_cache_hits_and_timing(self, program_file, capsys):
        assert main(["bench-session", program_file, "--repeat", "5"]) == 0
        out = capsys.readouterr().out
        assert "hits=4 misses=1" in out
        assert "first query (cache miss)" in out
        assert "caching speedup" in out

    def test_no_compare_skips_uncached_run(self, program_file, capsys):
        assert main(["bench-session", program_file, "--repeat", "3", "--no-compare"]) == 0
        out = capsys.readouterr().out
        assert "uncached" not in out

    def test_query_override(self, program_file, capsys):
        main(["bench-session", program_file, "--repeat", "2", "--no-compare",
              "--query", "anc(bob, Z)"])
        out = capsys.readouterr().out
        assert "anc(bob, Z)" in out
        assert "answers: 2" in out

    def test_missing_query_errors(self, tmp_path, capsys):
        path = tmp_path / "noquery.dl"
        path.write_text("p(X) <- e(X). e(1).")
        assert main(["bench-session", str(path), "--no-compare"]) == 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_sip_rejected(self, program_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", program_file, "--sip", "bogus"])


class TestServeParser:
    def test_serve_defaults(self, program_file):
        args = build_parser().parse_args(["serve", program_file])
        assert args.func.__name__ == "_cmd_serve"
        assert args.host == "127.0.0.1"
        assert args.port == 7464
        assert args.max_concurrent == 4
        assert args.max_queue == 16
        assert args.deadline == 30.0
        assert args.drain_timeout == 10.0
        assert args.eval_runtime == "simulator"
        assert args.cache_size == 64

    def test_serve_flags_parse(self, program_file):
        args = build_parser().parse_args(
            ["serve", program_file, "--port", "0", "--max-concurrent", "8",
             "--max-queue", "0", "--deadline", "5", "--eval-runtime", "pool",
             "--workers", "2", "--cache-size", "16"]
        )
        assert args.port == 0
        assert args.max_concurrent == 8
        assert args.max_queue == 0
        assert args.deadline == 5.0
        assert args.eval_runtime == "pool"
        assert args.workers == 2
        assert args.cache_size == 16

    def test_serve_rejects_unknown_runtime(self, program_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", program_file, "--eval-runtime", "bogus"]
            )
