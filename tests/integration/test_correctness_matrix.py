"""The correctness matrix: every evaluator × every program shape × EDBs.

All evaluators must agree with the naive minimum-model oracle on the goal
relation.  This is the package's master equivalence test.
"""

import pytest

from repro.baselines import bruteforce, naive, seminaive, topdown
from repro.core.sips import all_free_sip, left_to_right_sip
from repro.network.engine import evaluate
from repro.runtime import evaluate_async
from repro.workloads import (
    ancestor_program,
    bill_of_materials_program,
    bom_tables,
    chain_edges,
    cycle_edges,
    grid_edges,
    left_recursive_tc_program,
    mutual_recursion_program,
    nonlinear_tc_program,
    nonrecursive_join_program,
    pair_table,
    program_p1,
    p1_tables,
    random_digraph_edges,
    same_generation_program,
    tree_parent_edges,
)

from tests.helpers import with_tables


def matrix_programs():
    """(name, program) pairs covering all recursion shapes and data shapes."""
    cases = []
    cases.append(
        ("p1/hand", with_tables(program_p1(), {
            "r": [("a", 1), (1, 2), (2, 3)],
            "q": [(1, 2), (2, 3), (3, 1)],
        }))
    )
    cases.append(("p1/random", with_tables(program_p1(), p1_tables(12, 0.5, seed=7))))
    cases.append(
        ("ancestor/chain", with_tables(ancestor_program(0), {"par": chain_edges(10)}))
    )
    cases.append(
        ("ancestor/tree", with_tables(ancestor_program(1), {"par": [
            (child, parent) for child, parent in tree_parent_edges(3, 2)
        ]}))
    )
    edges = random_digraph_edges(10, 25, seed=13)
    cases.append(("tc/nonlinear", with_tables(nonlinear_tc_program(edges[0][0]), {"e": edges})))
    cases.append(("tc/left-rec", with_tables(left_recursive_tc_program(0), {"e": chain_edges(9)})))
    cases.append(("tc/cycle", with_tables(nonlinear_tc_program(0), {"e": cycle_edges(7)})))
    cases.append(("tc/grid", with_tables(left_recursive_tc_program(0), {"e": grid_edges(3, 3)})))
    cases.append(
        ("same-gen", with_tables(same_generation_program(4), {"par": tree_parent_edges(3, 2)}))
    )
    cases.append(
        ("mutual", with_tables(mutual_recursion_program(0), {"e": chain_edges(8)}))
    )
    cases.append(
        ("nonrec-join", with_tables(nonrecursive_join_program(), {
            "a": pair_table(6, 6, 14, seed=1),
            "b": pair_table(6, 6, 14, seed=2),
            "c": pair_table(6, 6, 14, seed=3),
        }))
    )
    cases.append(
        ("bom", with_tables(bill_of_materials_program(), bom_tables(4, 3, 5, seed=2)))
    )
    return cases


CASES = matrix_programs()
IDS = [name for name, _ in CASES]


@pytest.fixture(scope="module")
def oracles():
    return {name: naive.goal_answers(program) for name, program in CASES}


@pytest.mark.parametrize(("name", "program"), CASES, ids=IDS)
class TestEvaluatorMatrix:
    def test_message_engine_greedy(self, name, program, oracles):
        result = evaluate(program)
        assert result.answers == oracles[name]
        assert result.completed
        assert result.protocol_violations == []

    def test_message_engine_all_free(self, name, program, oracles):
        assert evaluate(program, sip_factory=all_free_sip).answers == oracles[name]

    def test_message_engine_left_to_right(self, name, program, oracles):
        assert evaluate(program, sip_factory=left_to_right_sip).answers == oracles[name]

    def test_message_engine_random_delivery(self, name, program, oracles):
        assert evaluate(program, seed=42).answers == oracles[name]

    def test_asyncio_runtime(self, name, program, oracles):
        assert evaluate_async(program).answers == oracles[name]

    def test_seminaive(self, name, program, oracles):
        assert seminaive.evaluate(program).answers() == oracles[name]

    def test_topdown(self, name, program, oracles):
        assert topdown.evaluate(program).answers() == oracles[name]

    def test_bruteforce(self, name, program, oracles):
        try:
            result = bruteforce.evaluate(program, max_instances=400_000)
        except RuntimeError:
            pytest.skip("instantiation volume beyond the test budget")
        assert result.answers() == oracles[name]
