"""Runtime parity: every runtime, every workload, every knob — same answers.

The five runtimes (deterministic simulator, asyncio tasks, one-OS-process-
per-node, pooled shard workers with batched channels, and TCP cluster
workers behind a manager) execute byte-for-byte the same node logic over
different channel fabrics.  This matrix pins the only property that
justifies having five of them: the fabric is invisible — for every
workload shape in :mod:`repro.workloads.programs` and every combination of
the coalesce / package-requests / tuple-sets knobs and the pool batch
size, all runtimes must produce exactly the simulator's (= the naive
oracle's) answer set.

The cluster column additionally pins the *logical* accounting: per-stream
dedup makes the set of tuple rows each stream carries a property of the
least fixpoint, not of scheduling, so the cluster's ``logical_tuple_rows``
must equal the simulator's TupleMessage + TupleSet row total exactly.
(Protocol-wave and end-message counts legitimately vary with timing and
are not compared.)

Each test arms a ``SIGALRM`` watchdog: a hung distributed run must fail the
test, not the whole suite (the process runtimes also carry their own
``timeout=`` as a second line of defense).
"""

import signal
import sys

import pytest

from repro.baselines import naive
from repro.network.engine import evaluate
from repro.runtime import evaluate_async, evaluate_multiprocessing, evaluate_pool
from repro.workloads import (
    ancestor_program,
    bill_of_materials_program,
    bom_tables,
    chain_edges,
    cycle_edges,
    left_recursive_tc_program,
    mutual_recursion_program,
    nonlinear_tc_program,
    nonrecursive_join_program,
    pair_table,
    program_p1,
    random_digraph_edges,
    same_generation_program,
    tree_parent_edges,
)

from tests.helpers import with_tables

pytestmark = pytest.mark.skipif(
    sys.platform not in ("linux", "darwin"),
    reason="process runtimes need the fork start method",
)

#: Every program factory in repro.workloads.programs, with data small enough
#: that the slowest runtime (per-node mp: ~a dozen OS processes + a Manager
#: broker per run) stays well under the watchdog.
CASES = {
    "p1": lambda: with_tables(program_p1(), {
        "r": [("a", 1), (1, 2), (2, 3)],
        "q": [(1, 2), (2, 3), (3, 1)],
    }),
    "ancestor": lambda: with_tables(
        ancestor_program(0), {"par": chain_edges(8)}
    ),
    "tc-left-rec": lambda: with_tables(
        left_recursive_tc_program(0), {"e": chain_edges(8)}
    ),
    "tc-nonlinear": lambda: with_tables(
        nonlinear_tc_program(0), {"e": cycle_edges(6)}
    ),
    "tc-random": lambda: with_tables(
        nonlinear_tc_program(random_digraph_edges(8, 16, seed=13)[0][0]),
        {"e": random_digraph_edges(8, 16, seed=13)},
    ),
    "same-gen": lambda: with_tables(
        same_generation_program(4), {"par": tree_parent_edges(3, 2)}
    ),
    "mutual": lambda: with_tables(
        mutual_recursion_program(0), {"e": chain_edges(7)}
    ),
    "nonrec-join": lambda: with_tables(nonrecursive_join_program(), {
        "a": pair_table(5, 5, 10, seed=1),
        "b": pair_table(5, 5, 10, seed=2),
        "c": pair_table(5, 5, 10, seed=3),
    }),
    "bom": lambda: with_tables(
        bill_of_materials_program(), bom_tables(4, 3, 5, seed=2)
    ),
}

#: (coalesce, package_requests, tuple_sets, columnar, planner) combinations.
#: Tuple sets and the columnar kernels are on by default, so the interesting
#: extra rows are the per-tuple baseline, the row-kernel baseline, their
#: interaction with request packaging, and the cost planner (which changes
#: subgoal orders, i.e. the graph itself, and must still converge on the
#: oracle's answers).
KNOBS = [
    pytest.param(False, False, True, True, "static", id="plain"),
    pytest.param(False, False, False, True, "static", id="no-tuple-sets"),
    pytest.param(False, False, True, False, "static", id="row-kernels"),
    pytest.param(True, False, True, True, "static", id="coalesce"),
    pytest.param(False, True, True, True, "static", id="package"),
    pytest.param(False, True, False, True, "static", id="package+no-tuple-sets"),
    pytest.param(False, True, True, False, "static", id="package+row-kernels"),
    pytest.param(True, True, True, True, "static", id="coalesce+package"),
    pytest.param(False, False, True, True, "cost", id="cost-planner"),
    pytest.param(False, True, True, False, "cost", id="cost-planner+row-kernels"),
]

BATCH_SIZES = (1, 64)


@pytest.fixture(autouse=True)
def watchdog():
    """Per-test SIGALRM timeout (the environment has no pytest-timeout).

    Platforms without SIGALRM (Windows) skip cleanly rather than running
    unguarded: a hung process runtime would otherwise stall the whole job.
    """
    if not hasattr(signal, "SIGALRM"):
        pytest.skip("platform lacks SIGALRM; parity watchdog unavailable")

    def on_alarm(signum, frame):
        raise TimeoutError("parity test exceeded its per-test timeout")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(90)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="module")
def oracles():
    """The naive minimum-model answers, computed once per workload."""
    return {name: naive.goal_answers(make()) for name, make in CASES.items()}


@pytest.fixture(scope="module")
def cluster():
    """One localhost 2-worker cluster shared by every cluster-column test.

    Module-scoped deliberately: registration, handshake, and connection
    reuse across many jobs is exactly what a long-lived deployment does,
    and starting a fresh harness per matrix cell would dominate runtime.
    """
    from repro.cluster import ClusterHarness

    harness = ClusterHarness(workers=2)
    harness.start()
    client = harness.client()
    try:
        yield client
    finally:
        harness.stop()


@pytest.mark.parametrize("coalesce,package,tuple_sets,columnar,planner", KNOBS)
@pytest.mark.parametrize("name", sorted(CASES))
class TestRuntimeParity:
    def test_simulator_and_asyncio(
        self, name, coalesce, package, tuple_sets, columnar, planner, oracles
    ):
        program = CASES[name]()
        expected = oracles[name]
        sim = evaluate(
            program,
            coalesce=coalesce,
            package_requests=package,
            tuple_sets=tuple_sets,
            columnar=columnar,
            planner=planner,
        )
        assert sim.answers == expected, f"{name}: simulator diverged"
        run = evaluate_async(
            program,
            coalesce=coalesce,
            package_requests=package,
            tuple_sets=tuple_sets,
            columnar=columnar,
            planner=planner,
            timeout=60,
        )
        assert run.answers == expected, f"{name}: asyncio diverged"

    def test_multiprocessing(
        self, name, coalesce, package, tuple_sets, columnar, planner, oracles
    ):
        program = CASES[name]()
        run = evaluate_multiprocessing(
            program,
            coalesce=coalesce,
            package_requests=package,
            tuple_sets=tuple_sets,
            columnar=columnar,
            planner=planner,
            timeout=60,
        )
        assert run.answers == oracles[name], f"{name}: per-node mp diverged"

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_pool(
        self, name, coalesce, package, tuple_sets, columnar, planner,
        batch_size, oracles,
    ):
        program = CASES[name]()
        run = evaluate_pool(
            program,
            workers=2,
            batch_size=batch_size,
            coalesce=coalesce,
            package_requests=package,
            tuple_sets=tuple_sets,
            columnar=columnar,
            planner=planner,
            timeout=60,
        )
        assert run.answers == oracles[name], (
            f"{name}: pool diverged (batch_size={batch_size})"
        )

    def test_cluster(
        self, name, coalesce, package, tuple_sets, columnar, planner,
        oracles, cluster,
    ):
        from repro.cluster import evaluate_cluster

        program = CASES[name]()
        knobs = dict(
            coalesce=coalesce,
            package_requests=package,
            tuple_sets=tuple_sets,
            columnar=columnar,
            planner=planner,
        )
        sim = evaluate(program, **knobs)
        assert sim.answers == oracles[name], f"{name}: simulator diverged"
        run = evaluate_cluster(program, client=cluster, timeout=60, **knobs)
        assert run.answers == oracles[name], f"{name}: cluster diverged"
        # The runtime-invariant accounting slice (see module docstring).
        sim_rows = (
            sim.stats.by_kind.get("TupleMessage", 0) + sim.stats.tuple_set_rows
        )
        assert run.logical_tuple_rows == sim_rows, (
            f"{name}: cluster logical tuple rows {run.logical_tuple_rows} "
            f"!= simulator {sim_rows}"
        )
