"""Answer streaming, the cylinder workload, and API-quality gates."""

import inspect

import pytest

from repro.baselines import naive
from repro.network.engine import MessagePassingEngine, evaluate
from repro.workloads import cylinder_edges, facts_from_tables, nonlinear_tc_program

from tests.helpers import oracle_answers, with_tables


class TestAnswerStreaming:
    def test_stream_sees_every_answer_once(self, p1_small):
        streamed = []
        engine = MessagePassingEngine(p1_small, on_answer=streamed.append)
        result = engine.run()
        assert sorted(streamed) == sorted(result.answers)
        assert len(streamed) == len(set(streamed))

    def test_answers_arrive_before_completion(self, p1_small):
        order = []
        engine = MessagePassingEngine(p1_small, on_answer=lambda r: order.append("answer"))
        engine.driver.on_complete = lambda: order.append("end")
        engine.run()
        assert order[-1] == "end"
        assert order.count("end") == 1
        assert all(entry == "answer" for entry in order[:-1])

    def test_incremental_consumption(self, ancestor_chain):
        # "Processes do not block, waiting for complete answers" — the
        # driver-side view: answers trickle in over many delivery steps.
        seen_at = []
        engine = MessagePassingEngine(
            ancestor_chain,
            on_answer=lambda r: seen_at.append(engine.scheduler.stats.delivered_total),
        )
        engine.run()
        assert len(set(seen_at)) > 1  # not all in one burst


class TestCylinderWorkload:
    def test_shape(self):
        edges = cylinder_edges(3, 4)
        # 3 rings of 4 edges + 2 levels of 4 rungs.
        assert len(edges) == 3 * 4 + 2 * 4
        # ring edges wrap
        assert (3, 0) in edges

    def test_reachability_over_cylinder(self):
        program = with_tables(
            nonlinear_tc_program(0), {"e": cylinder_edges(3, 5)}
        )
        result = evaluate(program)
        assert result.answers == oracle_answers(program)
        # Everything in ring 0 and below is reachable from vertex 0.
        assert len(result.answers) == 15
        assert result.protocol_violations == []


class TestApiQuality:
    """Docstring coverage gates for the public API."""

    def _public_members(self, module):
        for name in getattr(module, "__all__", []):
            yield name, getattr(module, name)

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.core",
            "repro.core.adornment",
            "repro.core.analysis",
            "repro.core.costmodel",
            "repro.core.hypergraph",
            "repro.core.monotone",
            "repro.core.optimizer",
            "repro.core.parser",
            "repro.core.program",
            "repro.core.rulegoal",
            "repro.core.sips",
            "repro.baselines.magic",
            "repro.baselines.naive",
            "repro.network.engine",
            "repro.network.messages",
            "repro.network.nodes",
            "repro.network.provenance",
            "repro.network.scheduler",
            "repro.network.termination",
            "repro.relational.algebra",
            "repro.relational.csvio",
            "repro.relational.relation",
            "repro.relational.yannakakis",
            "repro.runtime.asyncio_engine",
            "repro.session",
            "repro.workloads.generators",
            "repro.workloads.programs",
        ],
    )
    def test_module_and_public_members_documented(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
        for name, member in self._public_members(module):
            if not (inspect.isclass(member) or inspect.isroutine(member)):
                continue  # constants and typing aliases
            assert inspect.getdoc(member), f"{module_name}.{name} undocumented"

    def test_public_classes_document_their_methods(self):
        from repro.network.nodes import NodeProcess
        from repro.relational.relation import Relation

        for cls in (NodeProcess, Relation):
            for name, member in vars(cls).items():
                if name.startswith("_") or not callable(member):
                    continue
                assert inspect.getdoc(member), f"{cls.__name__}.{name} undocumented"
