"""Session-level caching: graph reuse, invalidation, atomicity, accounting."""

import pytest

from repro.core.atoms import atom
from repro.core.program import ProgramError
from repro.session import Session

KB = """
anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, U), anc(U, Y).
par(ann, bob).  par(bob, cal).  par(cal, dee).
"""

ANSWERS = {("bob",), ("cal",), ("dee",)}


@pytest.fixture
def session():
    return Session(KB)


class TestGraphCacheHits:
    def test_first_query_misses_then_hits(self, session):
        assert session.query("anc(ann, Z)") == ANSWERS
        assert session.last_result.graph_cache_hit is False
        assert session.query("anc(ann, Z)") == ANSWERS
        assert session.last_result.graph_cache_hit is True
        stats = session.cache_stats()
        assert stats.hits == 1 and stats.misses == 1 and stats.size == 1

    def test_hit_reuses_the_same_graph_object(self, session):
        session.query("anc(ann, Z)")
        first_graph = session.last_result.graph
        session.query("anc(ann, Z)")
        assert session.last_result.graph is first_graph

    def test_variant_query_hits_despite_renamed_variable(self, session):
        answers = session.query("anc(ann, Z)")
        assert session.query("anc(ann, W)") == answers
        assert session.last_result.graph_cache_hit is True

    def test_different_constant_misses(self, session):
        session.query("anc(ann, Z)")
        session.query("anc(bob, Z)")
        assert session.last_result.graph_cache_hit is False
        assert session.cache_stats().size == 2

    def test_different_adornment_misses(self, session):
        session.query("anc(ann, Z)")  # cf
        session.query("anc(X, Y)")  # ff
        assert session.last_result.graph_cache_hit is False

    def test_conjunctive_variant_signature(self, session):
        answers = session.query("anc(ann, Z), par(Z, dee)")
        assert session.query("anc(ann, Q), par(Q, dee)") == answers
        assert session.last_result.graph_cache_hit is True
        # Breaking the shared-variable pattern is a different query.
        session.query("anc(ann, Q), par(R, dee)")
        assert session.last_result.graph_cache_hit is False

    def test_cache_disabled_with_size_zero(self):
        session = Session(KB, graph_cache_size=0)
        session.query("anc(ann, Z)")
        session.query("anc(ann, Z)")
        assert session.last_result.graph_cache_hit is False
        stats = session.cache_stats()
        assert stats.hits == 0 and stats.size == 0

    def test_coalesced_sessions_cache_too(self):
        session = Session(KB, coalesce=True)
        assert session.query("anc(ann, Z)") == ANSWERS
        assert session.query("anc(ann, Z)") == ANSWERS
        assert session.last_result.graph_cache_hit is True

    def test_repeated_queries_skip_graph_construction(self, monkeypatch):
        import repro.session as session_module

        calls = []
        original = session_module.build_rule_goal_graph

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(session_module, "build_rule_goal_graph", counting)
        session = Session(KB)
        for _ in range(5):
            assert session.query("anc(ann, Z)") == ANSWERS
        assert len(calls) == 1


class TestInvalidation:
    def test_add_rules_flushes_graph_cache(self, session):
        session.query("anc(ann, Z)")
        assert session.cache_stats().size == 1
        session.add_rules("sib(X, Y) <- par(P, X), par(P, Y).")
        assert session.cache_stats().size == 0
        session.query("anc(ann, Z)")
        assert session.last_result.graph_cache_hit is False

    def test_add_facts_keeps_graph_and_refreshes_answers(self, session):
        session.query("anc(ann, Z)")
        cached_graph = session.last_result.graph
        session.add_facts([atom("par", "dee", "eli")])
        answers = session.query("anc(ann, Z)")
        assert answers == ANSWERS | {("eli",)}
        assert session.last_result.graph_cache_hit is True
        assert session.last_result.graph is cached_graph

    def test_add_facts_grows_shared_database_incrementally(self, session):
        db = session.database
        session.query("anc(ann, Z)")
        before = len(db.relation("par"))
        session.add_facts([atom("par", "dee", "eli")])
        assert session.database is db  # same object, not a rebuild
        assert len(db.relation("par")) == before + 1

    def test_lru_eviction_under_small_capacity(self):
        session = Session(KB, graph_cache_size=2)
        session.query("anc(ann, Z)")
        session.query("anc(bob, Z)")
        session.query("anc(cal, Z)")  # evicts the ann-graph
        stats = session.cache_stats()
        assert stats.evictions == 1 and stats.size == 2
        session.query("anc(ann, Z)")  # rebuilt: it was evicted
        assert session.last_result.graph_cache_hit is False
        session.query("anc(cal, Z)")  # recent entry is still cached
        assert session.last_result.graph_cache_hit is True


class TestAtomicMutation:
    def test_add_rules_failure_leaves_session_unchanged(self, session):
        rules_before = session.rules
        facts_before = session.facts
        db_rows_before = session.database.total_rows()
        with pytest.raises(ProgramError):
            session.add_rules("bad(X, Y) <- par(X, X). extra(a, b).")
        assert session.rules == rules_before
        assert session.facts == facts_before  # the 'extra' fact did not leak
        assert session.database.total_rows() == db_rows_before
        assert "extra" not in session.database

    def test_add_rules_failure_keeps_graph_cache(self, session):
        session.query("anc(ann, Z)")
        with pytest.raises(ProgramError):
            session.add_rules("bad(X, Y) <- par(X, X).")
        session.query("anc(ann, Z)")
        assert session.last_result.graph_cache_hit is True

    def test_add_rules_with_facts_commits_both(self, session):
        session.add_rules("lives(ann, york).")
        assert session.ask("lives(ann, york)")
        assert "lives" in session.database

    def test_add_facts_rejects_idb_predicate(self, session):
        with pytest.raises(ProgramError):
            session.add_facts([atom("anc", "x", "y")])
        assert "anc" not in session.database

    def test_add_facts_rejects_nonground_batch_atomically(self, session):
        from repro.core.atoms import Atom
        from repro.core.terms import Variable

        bad = Atom("par", (Variable("X"), Variable("Y")))
        before = session.database.total_rows()
        with pytest.raises(ProgramError):
            session.add_facts([atom("par", "dee", "eli"), bad])
        assert session.database.total_rows() == before
        assert ("dee",) not in session.query("par(X, eli)")

    def test_add_facts_arity_mismatch_is_atomic(self, session):
        before = session.database.total_rows()
        with pytest.raises(ValueError):
            session.add_facts([atom("par", "x", "y"), atom("par", "z")])
        assert session.database.total_rows() == before

    def test_add_facts_accepts_program_text(self, session):
        session.add_facts("par(dee, eli).  par(eli, fay).")
        assert ("fay",) in session.query("anc(ann, Z)")

    def test_add_facts_rejects_rules_in_text(self, session):
        before = session.database.total_rows()
        with pytest.raises(ProgramError, match="facts only"):
            session.add_facts("par(dee, eli).  anc(X, Y) <- par(Y, X).")
        assert session.database.total_rows() == before


class TestPerQueryAccounting:
    def test_db_counters_are_per_query_deltas(self, session):
        session.query("anc(ann, Z)")
        first = session.last_result
        session.query("anc(ann, Z)")
        second = session.last_result
        # Identical queries do identical database work; cumulative counters
        # would make the second result roughly double the first.
        assert (second.db_scans, second.db_indexed_lookups, second.db_rows_retrieved) == (
            first.db_scans,
            first.db_indexed_lookups,
            first.db_rows_retrieved,
        )
        assert first.db_indexed_lookups + first.db_scans > 0

    def test_session_database_counters_accumulate(self, session):
        session.query("anc(ann, Z)")
        after_one = session.database.counters()
        session.query("anc(ann, Z)")
        after_two = session.database.counters()
        assert after_two > after_one

    def test_cache_stats_surfaced_in_result_and_summary(self, session):
        session.query("anc(ann, Z)")
        result = session.last_result
        assert result.cache_stats is not None
        assert result.cache_stats.misses == 1
        assert "graph cache: miss" in result.summary()
        session.query("anc(ann, Z)")
        assert "graph cache: hit" in session.last_result.summary()


class TestCacheCorrectness:
    """Cached graphs must never change answers — spot-check across modes."""

    @pytest.mark.parametrize(
        "kwargs",
        [{}, {"coalesce": True}, {"package_requests": True}],
        ids=["default", "coalesce", "package"],
    )
    def test_cached_equals_uncached_answers(self, kwargs):
        cached = Session(KB, **kwargs)
        uncached = Session(KB, graph_cache_size=0, **kwargs)
        queries = ["anc(ann, Z)", "anc(X, dee)", "anc(X, Y)", "anc(ann, Z)"]
        for query in queries:
            assert cached.query(query) == uncached.query(query)
        assert cached.last_result.graph_cache_hit is True

    def test_seeded_queries_reuse_graph(self, session):
        baseline = session.query("anc(ann, Z)")
        for seed in range(3):
            assert session.query("anc(ann, Z)", seed=seed) == baseline
            assert session.last_result.graph_cache_hit is True


class TestGraphCacheThreadSafety:
    """The LRU is shared across serving threads; counters must stay exact."""

    def test_concurrent_get_put_preserve_counter_invariants(self):
        import threading

        from repro.cache import GraphCache

        cache = GraphCache(capacity=8)
        lookups_per_thread = 2000

        def hammer(worker):
            for i in range(lookups_per_thread):
                key = (worker * 7 + i) % 16  # 16 keys over 8 slots: evictions
                if cache.get(key) is None:
                    cache.put(key, ("graph", key))

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
            assert not t.is_alive()
        stats = cache.stats()
        assert stats.hits + stats.misses == 8 * lookups_per_thread
        assert stats.size <= stats.capacity
        assert len(list(cache.keys())) == stats.size

    def test_concurrent_clear_never_corrupts(self):
        import threading

        from repro.cache import GraphCache

        cache = GraphCache(capacity=4)
        stop = threading.Event()

        def reader_writer():
            i = 0
            while not stop.is_set():
                cache.put(i % 6, i)
                cache.get((i + 1) % 6)
                i += 1

        def clearer():
            for _ in range(50):
                cache.clear()
            stop.set()

        threads = [threading.Thread(target=reader_writer) for _ in range(4)]
        threads.append(threading.Thread(target=clearer))
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
            assert not t.is_alive()
        stats = cache.stats()
        assert stats.size <= stats.capacity
        assert stats.invalidations >= 0  # snapshot is internally consistent
