"""End-to-end checks of every figure / worked example / theorem in the paper.

Each test class corresponds to one artifact; together they are the "the code
reproduces the paper's own objects" guarantee backing EXPERIMENTS.md.
"""

import pytest

from repro.baselines import naive
from repro.core.adornment import AdornedAtom, DYNAMIC, FREE
from repro.core.costmodel import CostModel, best_order
from repro.core.monotone import (
    HEAD_LABEL,
    compose_qual_trees,
    evaluation_hypergraph,
    has_monotone_flow,
    qual_tree_sip,
    rule_qual_tree,
    subgoal_label,
)
from repro.core.parser import parse_rule
from repro.core.rulegoal import build_rule_goal_graph
from repro.core.sips import adorn_body, greedy_sip, is_greedy
from repro.network.engine import evaluate
from repro.workloads import (
    adorned_head_df,
    program_p1,
    rule_r1,
    rule_r2,
    rule_r3,
)

from tests.helpers import with_tables


class TestFigure1:
    """The greedy information-passing rule/goal graph for P1."""

    def setup_method(self):
        self.graph = build_rule_goal_graph(program_p1(), greedy_sip)

    def test_recursive_rule_adornment_sequence(self):
        # Fig 1's recursive rule node under p(a^c, Z^f):
        # p(a^c, U^f), q(U^d, V^f), p(V^d, Z^f).
        root_p = next(
            g
            for g in self.graph.goal_nodes.values()
            if g.predicate == "p" and g.kind == "idb" and g.adorned.adornment == ("c", "f")
        )
        recursive = next(
            r
            for r in (self.graph.rule_nodes[i] for i in root_p.rule_children)
            if len(r.rule.body) == 3
        )
        assert [a.adornment_string() for a in recursive.adorned_body] == ["cf", "df", "df"]

    def test_first_subgoal_cycles_to_root_p(self):
        # p(a^c, U^f) is a variant of p(a^c, Z^f): a dashed cycle edge.
        cyclic_cf = [
            g
            for g in self.graph.goal_nodes.values()
            if g.kind == "cyclic" and g.adorned.adornment == ("c", "f")
        ]
        assert len(cyclic_cf) == 1
        source = self.graph.goal_nodes[cyclic_cf[0].cycle_source]
        assert source.adorned.adornment == ("c", "f") and source.kind == "idb"

    def test_df_node_supplies_both_recursive_variants(self):
        df_node = next(
            g
            for g in self.graph.goal_nodes.values()
            if g.predicate == "p" and g.kind == "idb" and g.adorned.adornment == ("d", "f")
        )
        # "p(V^d, Z^f) supplies tuples to p(V^d, Y^f) and p(W^d, Z^f)".
        assert len(df_node.cycle_targets) == 2
        for target in df_node.cycle_targets:
            assert self.graph.goal_nodes[target].adorned.adornment == ("d", "f")

    def test_separate_goal_node_for_each_binding_pattern(self):
        # "the goal node p(a^c, Z^f) cannot supply tuples to nodes with
        # different binding patterns, necessitating a separate goal node".
        idb_p = [
            g
            for g in self.graph.goal_nodes.values()
            if g.predicate == "p" and g.kind == "idb"
        ]
        assert {g.adorned.adornment for g in idb_p} == {("c", "f"), ("d", "f")}

    def test_evaluation_follows_the_narrated_flow(self):
        # Example 2.1's narration, executed: with r a chain from a and q
        # connecting chain vertices, answers combine r-steps and q-hops.
        program = with_tables(
            program_p1(),
            {"r": [("a", 1), (1, 2), (2, 3), (3, 4)], "q": [(1, 2), (2, 3)]},
        )
        result = evaluate(program)
        assert result.answers == naive.goal_answers(program)


class TestFigure2Protocol:
    """Fig 2 in vivo: see tests/network/test_termination.py for the unit
    level; here the protocol must conclude exactly once per component on a
    live recursive query and never fire a violation."""

    def test_conclusions_per_component(self):
        program = with_tables(
            program_p1(),
            {"r": [("a", 1), (1, 2)], "q": [(1, 1), (2, 2)]},
        )
        result = evaluate(program)
        components = result.graph.strong_components()
        assert len(components) == 2
        assert result.protocol_conclusions >= len(components)
        assert result.protocol_violations == []

    def test_at_least_two_waves_each(self):
        program = with_tables(
            program_p1(), {"r": [("a", 1)], "q": [(1, 1)]}
        )
        result = evaluate(program)
        assert result.protocol_rounds >= 2 * result.protocol_conclusions


class TestFigure3And4:
    """The hypergraphs of rules R2 (acyclic) and R3 (cyclic)."""

    def test_fig3_r2_hypergraph(self):
        rule = rule_r2()
        h = evaluation_hypergraph(rule, adorned_head_df(rule))
        names = {
            label: {v.name for v in vs} for label, vs in h.edges.items()
        }
        assert names[HEAD_LABEL] == {"X"}
        assert names[subgoal_label(0)] == {"X", "Y", "V"}
        assert names[subgoal_label(1)] == {"Y", "U"}
        assert names[subgoal_label(2)] == {"V", "T"}
        assert names[subgoal_label(3)] == {"T"}
        assert names[subgoal_label(4)] == {"U", "Z"}
        assert h.is_acyclic()

    def test_fig4_r3_hypergraph_cyclic(self):
        rule = rule_r3()
        h = evaluation_hypergraph(rule, adorned_head_df(rule))
        result = h.gyo_reduction()
        assert not result.acyclic
        assert {v.name for v in result.cyclic_core_vertices()} == {"Y", "V", "W"}


class TestExample42AndTheorem41:
    def test_qual_tree_matches_example(self):
        tree = rule_qual_tree(rule_r2(), adorned_head_df(rule_r2()))
        parents = tree.parent_map()
        assert parents[subgoal_label(0)] == HEAD_LABEL
        assert parents[subgoal_label(1)] == subgoal_label(0)
        assert parents[subgoal_label(2)] == subgoal_label(0)
        assert parents[subgoal_label(3)] == subgoal_label(2)
        assert parents[subgoal_label(4)] == subgoal_label(1)

    def test_theorem41_on_paper_rules(self):
        for rule in (rule_r1(), rule_r2()):
            sip = qual_tree_sip(rule, adorned_head_df(rule))
            assert sip is not None and is_greedy(sip)

    def test_theorem41_on_random_acyclic_rules(self):
        # A family of generated chain/star rules — all monotone — must all
        # produce greedy SIPs from their qual trees.
        texts = [
            "p(X, Z) <- a(X, A), b(A, B), c(B, Z).",
            "p(X, Z) <- a(X, A, B), b(A, C), c(B, D), d(C), e(D, Z).",
            "p(X, Z) <- a(X, A), b(X, B), c(A, B, Z).",
            "p(X, Z) <- hub(X, A, B, C), s1(A), s2(B), s3(C, Z).",
        ]
        for text in texts:
            rule = parse_rule(text)
            head = adorned_head_df(rule)
            if not has_monotone_flow(rule, head):
                continue
            sip = qual_tree_sip(rule, head)
            assert sip is not None and is_greedy(sip), text


class TestFigure5:
    """Qual tree composition under resolution (Theorem 4.2)."""

    def test_figure5_shape(self):
        # Fig 5's schematic: upper rule r <- q, s, p ; lower p' <- a, b.
        upper = parse_rule("r(X, Z) <- q(X, Y), s(Y), p(Y, Z).")
        lower = parse_rule("p(S, T) <- a(S, W), b(W, T).")
        head = AdornedAtom(upper.head, (DYNAMIC, FREE))
        ext, tree = compose_qual_trees(upper, head, 2, lower)
        # Extended rule: q, s, a, b.
        assert [g.predicate for g in ext.rule.body] == ["q", "s", "a", "b"]
        assert tree.is_tree()
        assert tree.satisfies_qual_tree_property()
        # And it is a genuine qual tree of the extended rule's hypergraph.
        hyper = evaluation_hypergraph(ext.rule, ext.head)
        assert dict(tree.nodes) == dict(hyper.edges)


class TestSection43CostModel:
    def test_footnote_alpha_example(self):
        model = CostModel(alpha=0.3, base_size=10**6)
        assert model.selected_log_size(1) == pytest.approx(6 * 0.3)
        assert model.selected_log_size(2) == pytest.approx(6 * 0.09)

    def test_conjecture_for_monotone_paper_rules(self):
        # The greedy/qual-tree order attains the model optimum for R1, R2.
        model = CostModel()
        for rule in (rule_r1(), rule_r2()):
            head = adorned_head_df(rule)
            sip = qual_tree_sip(rule, head)
            assert model.estimate_sip(sip).total_cost == pytest.approx(
                best_order(rule, head, model).total_cost
            )
