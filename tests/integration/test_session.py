"""Tests for the Session convenience API."""

import pytest

from repro.core.atoms import atom
from repro.core.program import ProgramError
from repro.session import Session

KB = """
anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, U), anc(U, Y).
par(ann, bob).  par(bob, cal).  par(cal, dee).
"""


@pytest.fixture
def session():
    return Session(KB)


class TestQuery:
    def test_string_query(self, session):
        assert session.query("anc(ann, Z)") == {("bob",), ("cal",), ("dee",)}

    def test_variable_order_first_occurrence(self, session):
        # Answer columns follow first occurrence: for par(Y, X) that is
        # (Y, X) — i.e. the relation's own column order, whatever the names.
        answers = session.query("par(Y, X)")
        assert ("ann", "bob") in answers
        # A query that genuinely reorders: X named second in the atom but
        # first in an earlier atom.
        flipped = session.query("anc(X, dee), par(P, X)")
        assert ("cal", "bob") in flipped

    def test_conjunctive_query(self, session):
        answers = session.query("anc(ann, Z), par(Z, dee)")
        assert answers == {("cal",)}

    def test_atom_query(self, session):
        from repro.core.terms import Variable

        answers = session.query(atom("anc", "bob", Variable("Z")))
        assert answers == {("cal",), ("dee",)}

    def test_ground_query_yields_empty_tuple(self, session):
        assert session.query("anc(ann, dee)") == {()}
        assert session.query("anc(dee, ann)") == set()

    def test_ask(self, session):
        assert session.ask("anc(ann, dee)")
        assert not session.ask("anc(dee, ann)")
        assert session.ask("anc(X, dee)")

    def test_repeated_queries_independent(self, session):
        first = session.query("anc(ann, Z)")
        second = session.query("anc(bob, Z)")
        assert first != second
        assert session.query("anc(ann, Z)") == first

    def test_last_result_exposes_accounting(self, session):
        session.query("anc(ann, Z)")
        assert session.last_result is not None
        assert session.last_result.completed
        assert session.last_result.total_messages > 0


class TestMutation:
    def test_add_facts(self, session):
        session.add_facts([atom("par", "dee", "eli")])
        assert ("eli",) in session.query("anc(ann, Z)")

    def test_add_rules(self, session):
        session.add_rules("sib(X, Y) <- par(P, X), par(P, Y).")
        # par is (parent, child) here: ann's children are just bob, so the
        # only sibling pairs are reflexive.
        assert session.ask("sib(bob, bob)")

    def test_add_rules_with_facts(self, session):
        session.add_rules("lives(ann, york).")
        assert session.ask("lives(ann, york)")

    def test_invalid_added_rule_rejected(self, session):
        with pytest.raises(ProgramError):
            session.add_rules("bad(X, Y) <- par(X, X).")


class TestConfiguration:
    def test_goal_rules_in_source_are_stripped(self):
        session = Session("goal(X) <- e(X). e(1).")
        assert session.query("e(X)") == {(1,)}
        assert all(r.head.predicate != "goal" for r in session.rules)

    def test_program_source(self):
        from repro.core.parser import parse_program

        program = parse_program(KB)
        session = Session(program)
        assert session.ask("anc(ann, cal)")

    def test_modes(self):
        for kwargs in ({"coalesce": True}, {"package_requests": True}):
            session = Session(KB, **kwargs)
            assert session.query("anc(ann, Z)") == {("bob",), ("cal",), ("dee",)}

    def test_seeded_query(self, session):
        assert session.query("anc(ann, Z)", seed=5) == {("bob",), ("cal",), ("dee",)}
