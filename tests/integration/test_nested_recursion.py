"""Stacked and interlocking strong components: recursion feeding recursion.

The reduced rule/goal graph is a DAG of strong components; end messages must
flow bottom-up through it (a component's feeders include lower components'
leaders), and each component runs its own Fig-2 protocol instance.  These
tests pin down that composition.
"""

import pytest

from repro.baselines import naive, seminaive, topdown
from repro.core.parser import parse_program
from repro.network.engine import evaluate
from repro.runtime import evaluate_async
from repro.workloads import chain_edges, cycle_edges, facts_from_tables

STACKED = """
goal(Z) <- p(0, Z).
p(X, Y) <- q(X, Y).
p(X, Y) <- q(X, U), p(U, Y).
q(X, Y) <- e(X, Y).
q(X, Y) <- e(X, U), q(U, Y).
"""

INTERLOCKED = """
goal(Z) <- a(0, Z).
a(X, Y) <- e(X, Y).
a(X, Y) <- b(X, U), a(U, Y).
b(X, Y) <- e(X, Y).
b(X, Y) <- a(X, U), b(U, Y).
"""

TRIPLE = """
goal(Z) <- top(0, Z).
top(X, Y) <- mid(X, Y).
top(X, Y) <- mid(X, U), top(U, Y).
mid(X, Y) <- low(X, Y).
mid(X, Y) <- low(X, U), mid(U, Y).
low(X, Y) <- e(X, Y).
low(X, Y) <- e(X, U), low(U, Y).
"""


def make(text, edges):
    return parse_program(text).with_facts(facts_from_tables({"e": edges}))


CASES = [
    ("stacked/chain", make(STACKED, chain_edges(7))),
    ("stacked/cycle", make(STACKED, cycle_edges(6))),
    ("interlocked", make(INTERLOCKED, chain_edges(6))),
    ("triple-stack", make(TRIPLE, chain_edges(6))),
]
IDS = [n for n, _ in CASES]


@pytest.mark.parametrize(("name", "program"), CASES, ids=IDS)
class TestNestedComponents:
    def test_engine_matches_oracle(self, name, program):
        expected = naive.goal_answers(program)
        result = evaluate(program)
        assert result.answers == expected
        assert result.completed
        assert result.protocol_violations == []

    @pytest.mark.parametrize("seed", [7, 101])
    def test_random_delivery(self, name, program, seed):
        result = evaluate(program, seed=seed)
        assert result.answers == naive.goal_answers(program)
        assert result.protocol_violations == []

    def test_coalesced(self, name, program):
        result = evaluate(program, coalesce=True)
        assert result.answers == naive.goal_answers(program)
        assert result.protocol_violations == []

    def test_asyncio(self, name, program):
        assert evaluate_async(program).answers == naive.goal_answers(program)

    def test_baselines_agree(self, name, program):
        expected = naive.goal_answers(program)
        assert seminaive.evaluate(program).answers() == expected
        assert topdown.evaluate(program).answers() == expected


class TestComponentStructure:
    def test_stacked_components_are_disjoint_and_ordered(self):
        program = CASES[0][1]
        result = evaluate(program)
        infos = result.graph.strong_components()
        # q's components feed p's components, never vice versa: every feeder
        # of a member of a p-component is not inside any q-component above it.
        members = [info.members for info in infos]
        for a in members:
            for b in members:
                if a is not b:
                    assert not (a & b)

    def test_each_component_concludes(self):
        program = CASES[3][1]  # triple stack
        result = evaluate(program)
        assert result.protocol_conclusions >= len(result.graph.strong_components())

    def test_triple_stack_has_at_least_three_components(self):
        result = evaluate(CASES[3][1])
        assert len(result.graph.strong_components()) >= 3
