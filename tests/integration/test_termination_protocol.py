"""Theorem 3.1 validated in vivo: the protocol vs the global oracle.

The engine's ``validate_protocol`` hook checks the "only if" direction — at
every conclusion, every strong-component member must be idle and no
computation message in flight.  The "if" direction is liveness: whenever the
component genuinely finishes, the leader must eventually conclude (observed
as the run draining with the driver completed).  Both are exercised under
adversarial random delivery latencies.
"""

import pytest

from repro.baselines import naive
from repro.network.engine import MessagePassingEngine, evaluate
from repro.workloads import (
    chain_edges,
    cycle_edges,
    mutual_recursion_program,
    nonlinear_tc_program,
    program_p1,
    random_digraph_edges,
    same_generation_program,
    tree_parent_edges,
)

from tests.helpers import with_tables

RECURSIVE_CASES = [
    ("p1", with_tables(program_p1(), {
        "r": [("a", 1), (1, 2), (2, 3)], "q": [(1, 2), (2, 3), (3, 1)],
    })),
    ("tc-cycle", with_tables(nonlinear_tc_program(0), {"e": cycle_edges(8)})),
    ("tc-dense", with_tables(
        nonlinear_tc_program(0),
        {"e": random_digraph_edges(9, 30, seed=21) + [(0, 1)]},
    )),
    ("mutual", with_tables(mutual_recursion_program(0), {"e": chain_edges(9)})),
    ("same-gen", with_tables(same_generation_program(5), {"par": tree_parent_edges(3, 2)})),
]
IDS = [name for name, _ in RECURSIVE_CASES]


@pytest.mark.parametrize(("name", "program"), RECURSIVE_CASES, ids=IDS)
@pytest.mark.parametrize("seed", [None, 3, 17, 404])
class TestTheorem31:
    def test_soundness_and_liveness(self, name, program, seed):
        result = evaluate(program, seed=seed)
        # Liveness: the network drained and the driver got its end message.
        assert result.completed
        # Soundness: no conclusion fired while work remained (oracle check).
        assert result.protocol_violations == []
        # And the computation was actually correct and complete.
        assert result.answers == naive.goal_answers(program)
        # Every strong component concluded at least once.
        assert result.protocol_conclusions >= len(result.graph.strong_components())


class TestProtocolShape:
    def test_two_wave_minimum(self):
        # A conclusion always needs at least two end-request waves (leaves
        # answer the first request negative by construction).
        program = RECURSIVE_CASES[0][1]
        result = evaluate(program)
        assert result.protocol_rounds >= 2 * result.protocol_conclusions

    def test_protocol_traffic_scales_with_component_size(self):
        small = with_tables(nonlinear_tc_program(0), {"e": cycle_edges(4)})
        large = with_tables(nonlinear_tc_program(0), {"e": cycle_edges(12)})
        r_small = evaluate(small)
        r_large = evaluate(large)
        # Same graph (EDB-independent), but more work => more probing waves.
        assert r_large.protocol_messages >= r_small.protocol_messages

    def test_no_protocol_without_recursion(self):
        from repro.workloads import nonrecursive_join_program, pair_table

        program = with_tables(
            nonrecursive_join_program(),
            {"a": pair_table(5, 5, 10, 1), "b": pair_table(5, 5, 10, 2),
             "c": pair_table(5, 5, 10, 3)},
        )
        result = evaluate(program)
        assert result.protocol_messages == 0

    def test_ends_cover_all_requests(self):
        # After a run, every feeder stream at every process is caught up.
        program = RECURSIVE_CASES[0][1]
        engine = MessagePassingEngine(program)
        engine.run()
        for process in engine.processes.values():
            for stream in process.feeders.values():
                if stream.is_feeder:
                    assert stream.caught_up, (
                        f"stream {stream.producer_id}->{process.node_id} not ended"
                    )
