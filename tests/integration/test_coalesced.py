"""Tests for coalesced rule/goal graphs — §2.2's single-processor variant.

"Several nodes in the graph may have identical predicates and binding
patterns.  For single processor computation it is probably desirable to
coalesce such nodes (thereby introducing cross and forward edges)."  With
coalescing, the strong-component leader must "propagate the end message
around the strong component, as other nodes may have customers"
(footnote 4) — here realized by the ComponentDone wave.
"""

import pytest

from repro.baselines import naive
from repro.core.rulegoal import build_rule_goal_graph
from repro.network.engine import MessagePassingEngine, evaluate
from repro.workloads import (
    chain_edges,
    cycle_edges,
    mutual_recursion_program,
    nonlinear_tc_program,
    program_p1,
    random_digraph_edges,
    same_generation_program,
    tree_parent_edges,
)

from tests.helpers import oracle_answers, with_tables


def cases():
    return [
        ("p1", with_tables(program_p1(), {
            "r": [("a", 1), (1, 2), (2, 3)], "q": [(1, 2), (2, 3), (3, 1)],
        })),
        ("tc", with_tables(nonlinear_tc_program(0), {"e": cycle_edges(8)})),
        ("mutual", with_tables(mutual_recursion_program(0), {"e": chain_edges(8)})),
        ("same-gen", with_tables(same_generation_program(5), {
            "par": tree_parent_edges(3, 2)})),
    ]


class TestCoalescedGraphStructure:
    def test_p1_graph_shrinks(self):
        plain = build_rule_goal_graph(program_p1())
        merged = build_rule_goal_graph(program_p1(), coalesce=True)
        assert merged.size() < plain.size()
        assert merged.coalesced

    def test_no_cyclic_selection_nodes(self):
        merged = build_rule_goal_graph(program_p1(), coalesce=True)
        assert all(g.kind != "cyclic" for g in merged.goal_nodes.values())

    def test_signatures_unique(self):
        merged = build_rule_goal_graph(program_p1(), coalesce=True)
        signatures = [
            g.adorned.variant_signature() for g in merged.goal_nodes.values()
        ]
        assert len(signatures) == len(set(signatures))

    def test_shared_node_serves_both_recursive_subgoals(self):
        # In coalesced P1 the recursive rule's two p subgoals resolve to the
        # same goal node — the hardest wiring case.
        merged = build_rule_goal_graph(program_p1(), coalesce=True)
        doubled = [
            r
            for r in merged.rule_nodes.values()
            if len(r.subgoal_children) != len(set(r.subgoal_children))
        ]
        assert doubled

    def test_components_have_leaders_and_spanning_trees(self):
        merged = build_rule_goal_graph(program_p1(), coalesce=True)
        for info in merged.strong_components():
            reached = {info.leader}
            frontier = [info.leader]
            while frontier:
                node = frontier.pop()
                for child in info.bfst_children.get(node, ()):
                    assert child not in reached
                    reached.add(child)
                    frontier.append(child)
            assert reached == set(info.members)

    def test_pretty_handles_sharing(self):
        merged = build_rule_goal_graph(program_p1(), coalesce=True)
        text = merged.pretty()
        assert "shared node" in text


@pytest.mark.parametrize(("name", "program"), cases(), ids=[n for n, _ in cases()])
class TestCoalescedCorrectness:
    def test_matches_oracle(self, name, program):
        result = evaluate(program, coalesce=True)
        assert result.answers == oracle_answers(program)
        assert result.completed
        assert result.protocol_violations == []

    @pytest.mark.parametrize("seed", [2, 31])
    def test_random_delivery(self, name, program, seed):
        result = evaluate(program, coalesce=True, seed=seed)
        assert result.answers == oracle_answers(program)
        assert result.protocol_violations == []

    def test_cheaper_than_uncoalesced(self, name, program):
        plain = evaluate(program)
        merged = evaluate(program, coalesce=True)
        assert merged.graph.size() <= plain.graph.size()
        assert merged.total_messages <= plain.total_messages


class TestComponentDonePropagation:
    def test_every_member_catches_up(self):
        program = cases()[0][1]
        engine = MessagePassingEngine(program, coalesce=True)
        engine.run()
        for process in engine.processes.values():
            for stream in process.feeders.values():
                if stream.is_feeder:
                    assert stream.caught_up

    def test_cached_replay_still_gets_an_end(self):
        # A second query wave against the same component: requests answered
        # from cache must still receive ends (the EndNudge path).
        edges = random_digraph_edges(8, 20, seed=5) + [(0, 1)]
        program = with_tables(nonlinear_tc_program(0), {"e": edges})
        result = evaluate(program, coalesce=True)
        assert result.completed
        assert result.answers == oracle_answers(program)
