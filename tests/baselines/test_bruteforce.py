"""Unit tests for the brute-force ground-instantiation baseline (§1.1)."""

import pytest

from repro.baselines import bruteforce, naive
from repro.core.parser import parse_program
from repro.workloads import chain_edges

from tests.helpers import with_tables


def tc_program(n):
    return with_tables(
        parse_program(
            """
            goal(X, Y) <- t(X, Y).
            t(X, Y) <- e(X, Y).
            t(X, Y) <- t(X, U), e(U, Y).
            """
        ),
        {"e": chain_edges(n)},
    )


class TestCorrectness:
    def test_agrees_with_oracle(self):
        program = tc_program(5)
        assert bruteforce.evaluate(program).facts == naive.evaluate(program).facts

    def test_constants_from_rules_included(self):
        program = parse_program(
            "goal(X) <- p(X). p(k) <- e(k). e(k)."
        )
        result = bruteforce.evaluate(program)
        assert result.answers() == {("k",)}

    def test_empty_edb(self):
        program = parse_program("goal(X) <- e(X).")
        assert bruteforce.evaluate(program).answers() == set()


class TestCostGrowth:
    def test_ground_instance_count_formula(self):
        program = tc_program(4)  # constants 0..3
        n = len(program.constants())
        # goal rule: 2 vars; t<-e: 2 vars; t<-t,e: 3 vars.
        assert bruteforce.ground_instance_count(program) == n**2 + n**2 + n**3

    def test_instances_grow_as_n_to_the_t(self):
        small = bruteforce.evaluate(tc_program(4))
        large = bruteforce.evaluate(tc_program(8))
        # Dominant term is n^3: doubling n should ~8x the instances.
        ratio = large.ground_instances / small.ground_instances
        assert 6 <= ratio <= 10

    def test_budget_guard(self):
        with pytest.raises(RuntimeError):
            bruteforce.evaluate(tc_program(30), max_instances=1000)
