"""Direct tests for the shared backtracking matcher."""

import pytest

from repro.baselines.common import apply_bindings, enumerate_matches
from repro.core.atoms import atom
from repro.core.parser import parse_rule
from repro.core.terms import Variable

X, Y, U = Variable("X"), Variable("Y"), Variable("U")


class TestEnumerateMatches:
    def setup_method(self):
        self.facts = {
            "e": {(1, 2), (2, 3), (1, 3)},
            "f": {(3, "z")},
        }

    def test_single_subgoal(self):
        body = (atom("e", X, Y),)
        envs = list(enumerate_matches(body, self.facts))
        assert len(envs) == 3

    def test_join_across_subgoals(self):
        body = (atom("e", X, Y), atom("f", Y, U))
        envs = list(enumerate_matches(body, self.facts))
        assert len(envs) == 2  # (1,3,z) and (2,3,z)
        assert all(env[U] == "z" for env in envs)

    def test_constant_filter(self):
        body = (atom("e", 1, Y),)
        envs = list(enumerate_matches(body, self.facts))
        assert {env[Y] for env in envs} == {2, 3}

    def test_repeated_variable(self):
        facts = {"g": {(1, 1), (1, 2)}}
        envs = list(enumerate_matches((atom("g", X, X),), facts))
        assert len(envs) == 1 and envs[0][X] == 1

    def test_empty_body_yields_once(self):
        envs = list(enumerate_matches((), self.facts))
        assert envs == [{}]

    def test_restrict_first_limits_one_position(self):
        body = (atom("e", X, Y), atom("f", Y, U))
        envs = list(
            enumerate_matches(body, self.facts, start=0, restrict_first={(1, 3)})
        )
        assert len(envs) == 1 and envs[0][X] == 1

    def test_start_reorders_evaluation(self):
        body = (atom("e", X, Y), atom("f", Y, U))
        # Starting from subgoal 1 with a restriction must still be complete.
        envs = list(
            enumerate_matches(body, self.facts, start=1, restrict_first={(3, "z")})
        )
        assert len(envs) == 2

    def test_initial_bindings_respected(self):
        body = (atom("e", X, Y),)
        envs = list(enumerate_matches(body, self.facts, bindings={X: 1}))
        assert {env[Y] for env in envs} == {2, 3}

    def test_arity_mismatch_rows_skipped(self):
        facts = {"e": {(1, 2), (1, 2, 3)}}
        envs = list(enumerate_matches((atom("e", X, Y),), facts))
        assert len(envs) == 1

    def test_unknown_predicate_yields_nothing(self):
        assert list(enumerate_matches((atom("zzz", X),), self.facts)) == []


class TestApplyBindings:
    def test_grounds_atom(self):
        row = apply_bindings(atom("p", X, "k", Y), {X: 1, Y: 2})
        assert row == (1, "k", 2)

    def test_incomplete_bindings_give_none(self):
        assert apply_bindings(atom("p", X, Y), {X: 1}) is None

    def test_ground_atom_needs_no_bindings(self):
        assert apply_bindings(atom("p", "a", 7), {}) == ("a", 7)
