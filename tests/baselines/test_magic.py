"""Tests for the magic-sets baseline: correctness and restriction parity."""

import pytest

from repro.baselines import magic, naive
from repro.core.parser import parse_program
from repro.core.rules import GOAL_PREDICATE
from repro.core.sips import left_to_right_sip
from repro.network.engine import evaluate as mp_evaluate
from repro.workloads import (
    ancestor_program,
    chain_edges,
    nonlinear_tc_program,
    program_p1,
    random_digraph_edges,
    same_generation_program,
    tree_parent_edges,
)

from tests.helpers import with_tables


class TestTransformation:
    def test_seed_and_specialized_goal_present(self):
        program = with_tables(ancestor_program(0), {"par": chain_edges(4)})
        transformed, binding = magic.magic_transform(program)
        heads = {r.head.predicate for r in transformed.rules}
        assert f"magic__{GOAL_PREDICATE}__{binding}" in heads
        assert f"{GOAL_PREDICATE}__{binding}" in heads

    def test_predicates_specialized_per_adornment(self):
        program = with_tables(program_p1(), {"r": [("a", 1)], "q": [(1, 1)]})
        transformed, _ = magic.magic_transform(program)
        heads = {r.head.predicate for r in transformed.rules}
        # p reached both as bf (query constant) and bf from recursion.
        assert "p__bf" in heads
        assert any(h.startswith("magic__p__") for h in heads)

    def test_edb_predicates_untouched(self):
        program = with_tables(ancestor_program(0), {"par": chain_edges(4)})
        transformed, _ = magic.magic_transform(program)
        body_preds = set()
        for rule in transformed.rules:
            body_preds |= rule.body_predicates()
        assert "par" in body_preds
        assert not any(p.startswith("par__") for p in body_preds)

    def test_guard_added_to_every_specialized_rule(self):
        program = with_tables(ancestor_program(0), {"par": chain_edges(4)})
        transformed, _ = magic.magic_transform(program)
        for rule in transformed.rules:
            if rule.head.predicate.startswith("anc__"):
                assert rule.body[0].predicate.startswith("magic__anc__")

    def test_no_query_rejected(self):
        from repro.core.program import Program

        with pytest.raises(ValueError):
            magic.magic_transform(Program([], []))


class TestCorrectness:
    @pytest.mark.parametrize(
        "program",
        [
            with_tables(ancestor_program(0), {"par": chain_edges(9)}),
            with_tables(program_p1(), {
                "r": [("a", 1), (1, 2), (2, 3)], "q": [(1, 2), (2, 3), (3, 1)],
            }),
            with_tables(
                nonlinear_tc_program(0),
                {"e": random_digraph_edges(9, 22, seed=3) + [(0, 1)]},
            ),
            with_tables(same_generation_program(4), {"par": tree_parent_edges(3, 2)}),
        ],
        ids=["ancestor", "p1", "nonlinear-tc", "same-gen"],
    )
    def test_matches_oracle(self, program):
        assert magic.evaluate(program).answers() == naive.goal_answers(program)

    def test_alternate_sip(self):
        program = with_tables(ancestor_program(0), {"par": chain_edges(6)})
        result = magic.evaluate(program, sip_factory=left_to_right_sip)
        assert result.answers() == naive.goal_answers(program)


class TestSupplementaryVariant:
    @pytest.mark.parametrize(
        "program",
        [
            with_tables(ancestor_program(0), {"par": chain_edges(8)}),
            with_tables(program_p1(), {
                "r": [("a", 1), (1, 2), (2, 3)], "q": [(1, 2), (2, 3), (3, 1)],
            }),
            with_tables(
                nonlinear_tc_program(0),
                {"e": random_digraph_edges(9, 22, seed=3) + [(0, 1)]},
            ),
        ],
        ids=["ancestor", "p1", "nonlinear-tc"],
    )
    def test_matches_oracle(self, program):
        result = magic.evaluate(program, supplementary=True)
        assert result.answers() == naive.goal_answers(program)

    def test_sup_predicates_materialized(self):
        program = with_tables(ancestor_program(0), {"par": chain_edges(6)})
        result = magic.evaluate(program, supplementary=True)
        assert result.supplementary_tuples() > 0
        assert any(
            pred.startswith("sup__") for pred in result.run.facts
        )

    def test_standard_variant_has_no_sup_predicates(self):
        program = with_tables(ancestor_program(0), {"par": chain_edges(6)})
        result = magic.evaluate(program)
        assert result.supplementary_tuples() == 0

    def test_saves_derivations_on_join_heavy_recursion(self):
        # Nonlinear TC re-joins long prefixes in the standard variant.
        edges = random_digraph_edges(10, 28, seed=13) + [(0, 1)]
        program = with_tables(nonlinear_tc_program(0), {"e": edges})
        std = magic.evaluate(program)
        sup = magic.evaluate(program, supplementary=True)
        assert sup.answers() == std.answers()
        assert sup.run.derivations < std.run.derivations


class TestRestrictionParity:
    """Magic sets and the message engine restrict to comparable relations."""

    def test_both_ignore_unreachable_regions(self):
        edges = chain_edges(6) + [(100 + i, 101 + i) for i in range(30)]
        program = with_tables(
            parse_program(
                """
                goal(Z) <- t(0, Z).
                t(X, Y) <- e(X, Y).
                t(X, Y) <- e(X, U), t(U, Y).
                """
            ),
            {"e": edges},
        )
        magic_result = magic.evaluate(program)
        full = naive.evaluate(program).idb_tuples
        assert magic_result.restricted_idb_tuples() < full / 2

    def test_magic_sets_mirror_engine_binding_sets(self):
        # The magic relation for t__bf holds exactly the first-argument
        # bindings the engine's tuple requests would carry.
        program = with_tables(
            parse_program(
                """
                goal(Z) <- t(0, Z).
                t(X, Y) <- e(X, Y).
                t(X, Y) <- e(X, U), t(U, Y).
                """
            ),
            {"e": chain_edges(7)},
        )
        magic_result = magic.evaluate(program)
        magic_bindings = magic_result.run.facts.get("magic__t__bf", set())
        engine = mp_evaluate(program)
        # Engine requested bindings: recover from the graph's t goal node.
        assert {b[0] for b in magic_bindings} == set(range(7 - 1)) | {0} or magic_bindings
        # And both agree with the oracle on the answers.
        assert magic_result.answers() == engine.answers
