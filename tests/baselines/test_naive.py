"""Unit tests for the naive bottom-up oracle."""

from repro.baselines import naive
from repro.core.parser import parse_program
from repro.workloads import chain_edges, program_p1

from tests.helpers import with_tables


class TestFixpoint:
    def test_nonrecursive(self):
        program = parse_program(
            "goal(X, Z) <- a(X, Y), b(Y, Z). a(1, 2). b(2, 3)."
        )
        result = naive.evaluate(program)
        assert result.answers() == {(1, 3)}

    def test_transitive_closure(self):
        program = with_tables(
            parse_program(
                """
                goal(X, Y) <- t(X, Y).
                t(X, Y) <- e(X, Y).
                t(X, Y) <- e(X, U), t(U, Y).
                """
            ),
            {"e": chain_edges(5)},
        )
        result = naive.evaluate(program)
        expected = {(i, j) for i in range(5) for j in range(i + 1, 5)}
        assert result.answers() == expected

    def test_edb_facts_included_in_model(self):
        program = parse_program("goal(X) <- e(X). e(1).")
        model = naive.minimum_model(program)
        assert model["e"] == {(1,)}

    def test_iterations_count_chain_depth(self):
        # A k-chain linear closure needs about k iterations to converge.
        program = with_tables(
            parse_program(
                """
                goal(Y) <- t(0, Y).
                t(X, Y) <- e(X, Y).
                t(X, Y) <- t(X, U), e(U, Y).
                """
            ),
            {"e": chain_edges(8)},
        )
        result = naive.evaluate(program)
        assert result.iterations >= 7

    def test_derivations_exceed_facts_for_recursion(self):
        # Naive evaluation rediscovers old facts every round.
        program = with_tables(
            parse_program(
                """
                goal(X, Y) <- t(X, Y).
                t(X, Y) <- e(X, Y).
                t(X, Y) <- t(X, U), e(U, Y).
                """
            ),
            {"e": chain_edges(6)},
        )
        result = naive.evaluate(program)
        assert result.derivations > result.idb_tuples

    def test_empty_program(self):
        program = parse_program("goal(X) <- e(X).")
        assert naive.goal_answers(program) == set()

    def test_cyclic_data_terminates(self):
        program = with_tables(
            parse_program(
                """
                goal(X, Y) <- t(X, Y).
                t(X, Y) <- e(X, Y).
                t(X, Y) <- t(X, U), e(U, Y).
                """
            ),
            {"e": [(0, 1), (1, 2), (2, 0)]},
        )
        result = naive.evaluate(program)
        assert result.answers() == {(i, j) for i in range(3) for j in range(3)}

    def test_idb_tuple_count(self):
        program = parse_program("goal(X) <- e(X). e(1). e(2).")
        result = naive.evaluate(program)
        # goal(1), goal(2) — the only IDB tuples.
        assert result.idb_tuples == 2
