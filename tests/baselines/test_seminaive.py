"""Unit tests for semi-naive evaluation: equivalence to naive, less rework."""

import pytest

from repro.baselines import naive, seminaive
from repro.core.parser import parse_program
from repro.workloads import (
    chain_edges,
    mutual_recursion_program,
    nonlinear_tc_program,
    program_p1,
    random_digraph_edges,
    same_generation_program,
    tree_parent_edges,
)

from tests.helpers import with_tables


def tc_program():
    return parse_program(
        """
        goal(X, Y) <- t(X, Y).
        t(X, Y) <- e(X, Y).
        t(X, Y) <- t(X, U), e(U, Y).
        """
    )


class TestEquivalenceToOracle:
    @pytest.mark.parametrize(
        "edges",
        [
            chain_edges(8),
            [(0, 1), (1, 2), (2, 0)],  # a cycle
            random_digraph_edges(10, 25, seed=4),
        ],
    )
    def test_transitive_closure(self, edges):
        program = with_tables(tc_program(), {"e": edges})
        assert seminaive.evaluate(program).facts == naive.evaluate(program).facts

    def test_p1(self):
        program = with_tables(
            program_p1(), {"r": [("a", 1), (1, 2)], "q": [(1, 2), (2, 1)]}
        )
        assert seminaive.evaluate(program).answers() == naive.goal_answers(program)

    def test_nonlinear(self):
        edges = random_digraph_edges(9, 20, seed=8)
        program = with_tables(nonlinear_tc_program(edges[0][0]), {"e": edges})
        assert seminaive.evaluate(program).answers() == naive.goal_answers(program)

    def test_mutual_recursion(self):
        program = with_tables(mutual_recursion_program(0), {"e": chain_edges(7)})
        assert seminaive.evaluate(program).answers() == naive.goal_answers(program)

    def test_same_generation(self):
        program = with_tables(
            same_generation_program(3), {"par": tree_parent_edges(3, 2)}
        )
        assert seminaive.evaluate(program).answers() == naive.goal_answers(program)


class TestEfficiency:
    def test_fewer_derivations_than_naive(self):
        program = with_tables(tc_program(), {"e": chain_edges(12)})
        fast = seminaive.evaluate(program)
        slow = naive.evaluate(program)
        assert fast.derivations < slow.derivations

    def test_derivation_growth_linear_in_chain(self):
        # For a chain, semi-naive derivations stay near the output size,
        # while naive's are quadratic in iterations.
        small = with_tables(tc_program(), {"e": chain_edges(8)})
        large = with_tables(tc_program(), {"e": chain_edges(16)})
        r_small = seminaive.evaluate(small)
        r_large = seminaive.evaluate(large)
        # Outputs grow ~4x (quadratic in n); derivations must not blow up
        # beyond a constant factor of that.
        assert r_large.derivations <= 8 * max(1, r_small.derivations)

    def test_empty_delta_terminates_immediately(self):
        program = parse_program("goal(X) <- e(X).")
        result = seminaive.evaluate(program)
        assert result.answers() == set()
        assert result.iterations <= 2
