"""Unit tests for the tabled top-down baseline (QSQR-style)."""

import pytest

from repro.baselines import naive, topdown
from repro.core.parser import parse_program
from repro.workloads import (
    chain_edges,
    left_recursive_tc_program,
    nonlinear_tc_program,
    program_p1,
    random_digraph_edges,
)

from tests.helpers import with_tables


class TestCorrectness:
    def test_simple_join(self):
        program = parse_program(
            "goal(X, Z) <- a(X, Y), b(Y, Z). a(1, 2). b(2, 3)."
        )
        assert topdown.evaluate(program).answers() == {(1, 3)}

    def test_right_recursion(self):
        program = with_tables(
            parse_program(
                """
                goal(Z) <- t(0, Z).
                t(X, Y) <- e(X, Y).
                t(X, Y) <- e(X, U), t(U, Y).
                """
            ),
            {"e": chain_edges(7)},
        )
        assert topdown.evaluate(program).answers() == naive.goal_answers(program)

    def test_left_recursion_terminates(self):
        # Plain Prolog loops here; tabling must not (Section 1.2's point).
        program = with_tables(left_recursive_tc_program(0), {"e": chain_edges(7)})
        assert topdown.evaluate(program).answers() == naive.goal_answers(program)

    def test_nonlinear_recursion(self):
        edges = random_digraph_edges(8, 18, seed=11)
        program = with_tables(nonlinear_tc_program(edges[0][0]), {"e": edges})
        assert topdown.evaluate(program).answers() == naive.goal_answers(program)

    def test_p1(self):
        program = with_tables(
            program_p1(), {"r": [("a", 1), (1, 2), (2, 3)], "q": [(1, 2), (2, 3), (3, 1)]}
        )
        assert topdown.evaluate(program).answers() == naive.goal_answers(program)

    def test_cyclic_data(self):
        program = with_tables(
            left_recursive_tc_program(0), {"e": [(0, 1), (1, 0)]}
        )
        assert topdown.evaluate(program).answers() == {(0,), (1,)}


class TestRelevance:
    def test_tables_keyed_by_call_pattern(self):
        program = with_tables(
            parse_program(
                """
                goal(Z) <- t(0, Z).
                t(X, Y) <- e(X, Y).
                t(X, Y) <- e(X, U), t(U, Y).
                """
            ),
            {"e": chain_edges(6)},
        )
        result = topdown.evaluate(program)
        patterns = {pattern for (pred, pattern) in result.tables if pred == "t"}
        # Every t call has its first argument bound.
        assert all(p[0] is not None for p in patterns)

    def test_relevant_tuples_smaller_than_full_model(self):
        # Querying from one vertex of a two-component graph should not
        # materialize the other component's closure.
        edges = chain_edges(6) + [(100 + i, 101 + i) for i in range(6)]
        program = with_tables(
            parse_program(
                """
                goal(Z) <- t(0, Z).
                t(X, Y) <- e(X, Y).
                t(X, Y) <- e(X, U), t(U, Y).
                """
            ),
            {"e": edges},
        )
        result = topdown.evaluate(program)
        full_model = naive.evaluate(program).idb_tuples
        assert result.relevant_tuples() < full_model

    def test_passes_bounded(self):
        program = with_tables(left_recursive_tc_program(0), {"e": chain_edges(5)})
        result = topdown.evaluate(program)
        assert result.passes < 100
        assert result.rule_applications > 0
