"""The serving metrics registry: counters, histograms, snapshots."""

import json
import threading

import pytest

from repro.service import Counter, Histogram, MetricsRegistry
from repro.service.metrics import DEFAULT_LATENCY_BUCKETS


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("requests")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_never_decreases(self):
        c = Counter("requests")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_concurrent_increments_all_land(self):
        c = Counter("hammered")

        def hammer():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)
        assert snap["buckets"] == {"0.1": 1, "1.0": 3, "10.0": 4, "+Inf": 5}

    def test_quantile_interpolates_within_the_crossing_bucket(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            h.observe(1.5)  # all in the (1, 2] bucket
        p50 = h.quantile(0.5)
        assert 1.0 < p50 <= 2.0

    def test_quantile_overflow_clamps_to_largest_finite_bound(self):
        h = Histogram("lat", buckets=(1.0,))
        for _ in range(10):
            h.observe(100.0)
        assert h.quantile(0.99) == 1.0

    def test_quantile_empty_and_bad_q(self):
        h = Histogram("lat", buckets=(1.0,))
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_rejects_empty_or_duplicate_buckets(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=())
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(1.0, 1.0))

    def test_default_buckets_span_protocol_to_deadline(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 120.0


class TestHistogramQuantileEdges:
    """Boundary regressions: empty, single sample, exact edges, overflow."""

    def test_single_sample_stays_inside_its_bucket(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe(1.5)
        for q in (0.01, 0.5, 0.9, 0.99, 1.0):
            assert 1.0 <= h.quantile(q) <= 2.0, q

    def test_rank_exactly_at_a_bucket_boundary(self):
        # 10 samples in (0,1], 10 in (1,2]: the 0.5 rank (=10) lands
        # exactly on the first bucket's cumulative edge and must come
        # from that bucket, not spill into the next.
        h = Histogram("lat", buckets=(1.0, 2.0))
        for _ in range(10):
            h.observe(0.5)
        for _ in range(10):
            h.observe(1.5)
        assert h.quantile(0.5) == 1.0  # exact at the edge
        assert 1.0 < h.quantile(0.75) <= 2.0

    def test_quantile_skips_empty_leading_buckets(self):
        # All mass in the last finite bucket: low quantiles must not be
        # interpolated out of the empty buckets below it.
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(7):
            h.observe(3.0)
        assert 2.0 <= h.quantile(0.01) <= 4.0
        assert 2.0 <= h.quantile(0.99) <= 4.0

    def test_all_samples_in_overflow_bucket(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        for _ in range(5):
            h.observe(99.0)
        for q in (0.01, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 2.0  # clamped lower bound, never 0

    def test_q_of_one_is_the_maximum_bucket(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe(0.5)
        h.observe(3.5)
        assert 2.0 <= h.quantile(1.0) <= 4.0

    def test_float_rank_wobble_is_clamped_to_the_bucket(self):
        # 0.3 * 10 = 3.0000000000000004 in floats; the estimate must
        # still land inside the crossing bucket's [lower, upper].
        h = Histogram("lat", buckets=(0.1, 0.2, 0.4))
        for _ in range(3):
            h.observe(0.15)
        for _ in range(7):
            h.observe(0.3)
        q = h.quantile(0.3)
        assert 0.1 <= q <= 0.2

    def test_snapshot_quantiles_agree_with_snapshot_buckets(self):
        # The old bug: snapshot() recomputed quantiles under a second
        # lock acquisition, so a racing observe() could push p99 outside
        # the bucket counts the same snapshot reported.  Hammer it.
        h = Histogram("lat", buckets=(0.001, 0.01, 0.1, 1.0))
        stop = threading.Event()

        def observer():
            value = 0.0005
            while not stop.is_set():
                h.observe(value)
                value = 0.5 if value == 0.0005 else 0.0005

        t = threading.Thread(target=observer)
        t.start()
        try:
            for _ in range(300):
                snap = h.snapshot()
                count = snap["count"]
                assert snap["buckets"]["+Inf"] == count
                if count:
                    # p99's bucket must hold >= 99% of the snapshot count.
                    p99 = snap["p99"]
                    covered = 0
                    for bound_repr, cumulative in snap["buckets"].items():
                        if bound_repr != "+Inf" and float(bound_repr) >= p99:
                            covered = cumulative
                            break
                    assert covered >= 0.99 * count - 1
        finally:
            stop.set()
            t.join(5)
            assert not t.is_alive()


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("x")
        b = registry.counter("x")
        assert a is b
        h1 = registry.histogram("y")
        h2 = registry.histogram("y")
        assert h1 is h2

    def test_name_kind_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.histogram("x")
        registry.histogram("y")
        with pytest.raises(ValueError):
            registry.counter("y")

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.histogram("b").observe(0.42)
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["counters"]["a"] == 3
        assert snap["histograms"]["b"]["count"] == 1

    def test_concurrent_creation_yields_one_instrument(self):
        registry = MetricsRegistry()
        seen = []

        def create():
            seen.append(registry.counter("shared"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in seen}) == 1
