"""DurableStore: bootstrap, replay, torn tails, compaction, crash drills.

The recovery contract under test: every *acknowledged* mutation survives
a hard kill (append-before-ack), a torn final record is dropped
silently, and damage anywhere else raises rather than serving a hole.
"""

import json
import os

import pytest

from repro.service import DurableStore, LogCorruptionError, LogLockedError, SharedSession
from repro.service.persistence import LOG_NAME, SNAPSHOT_NAME, fact_from_wire, fact_to_wire
from repro.session import Session

BASE = """
anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, U), anc(U, Y).
par(ann, bob).  par(bob, cal).
"""


def log_lines(store):
    if not os.path.exists(store.log_path):
        return []
    with open(store.log_path, "rb") as handle:
        return [line for line in handle.read().split(b"\n") if line.strip()]


class TestFactWire:
    def test_round_trip_plain_and_quoted_constants(self):
        session = Session('p(ann, 3). p("weird str", 4). p(bob, -1).')
        for fact in session.facts:
            assert fact_from_wire(fact_to_wire(fact)) == fact

    def test_wire_form_is_json_native(self):
        session = Session('p("has, comma", 3).')
        wire = fact_to_wire(session.facts[0])
        assert json.loads(json.dumps(wire)) == wire


class TestBootstrapAndReplay:
    def test_bootstrap_writes_snapshot_zero(self, tmp_path):
        store = DurableStore(tmp_path)
        assert not store.has_state()
        session, report = store.restore(BASE)
        assert report.bootstrapped and not report.snapshot_loaded
        assert store.has_state()
        assert session.query("anc(ann, Z)") == {("bob",), ("cal",)}
        # The seed itself is durable: a second store needs no source.
        again, report2 = DurableStore(tmp_path).restore()
        assert not report2.bootstrapped and report2.snapshot_loaded
        assert again.query("anc(ann, Z)") == {("bob",), ("cal",)}

    def test_restore_without_state_or_source_raises(self, tmp_path):
        with pytest.raises(ValueError):
            DurableStore(tmp_path).restore()

    def test_acknowledged_writes_replay_after_hard_kill(self, tmp_path):
        store = DurableStore(tmp_path)
        session, _ = store.restore(BASE)
        session.add_facts("par(cal, dee).")
        store.record("add_facts", "par(cal, dee).")
        session.add_rules("desc(X, Y) <- anc(Y, X).")
        store.record("add_rules", "desc(X, Y) <- anc(Y, X).")
        # Hard kill: no close(), no compaction — just reopen the directory.
        restored, report = DurableStore(tmp_path).restore()
        assert report.records_replayed == 2 and report.torn_tail_dropped == 0
        assert restored.query("anc(ann, Z)") == session.query("anc(ann, Z)")
        assert restored.query("desc(dee, ann)") == {()}
        assert restored.db_version == session.db_version

    def test_structured_fact_payloads_replay(self, tmp_path):
        store = DurableStore(tmp_path)
        session, _ = store.restore('p("weird str", 3).')
        extra = Session('p("a, b", 9).').facts
        session.add_facts(extra)
        store.record("add_facts", extra)
        restored, _ = DurableStore(tmp_path).restore()
        assert restored.query("p(X, Y)") == session.query("p(X, Y)")

    def test_torn_final_record_is_dropped_and_truncated(self, tmp_path):
        store = DurableStore(tmp_path)
        session, _ = store.restore(BASE)
        session.add_facts("par(cal, dee).")
        store.record("add_facts", "par(cal, dee).")
        store.close()
        # Simulate a crash mid-append: half a JSON object, no newline.
        with open(store.log_path, "ab") as handle:
            handle.write(b'{"seq": 2, "op": "add_fa')
        restored, report = DurableStore(tmp_path).restore()
        assert report.records_replayed == 1
        assert report.torn_tail_dropped == 1
        assert restored.query("anc(ann, Z)") == {("bob",), ("cal",), ("dee",)}
        # The tail was truncated away: a further reopen sees a clean log.
        _, report2 = DurableStore(tmp_path).restore()
        assert report2.torn_tail_dropped == 0

    def test_unterminated_but_parseable_tail_is_treated_as_torn(self, tmp_path):
        store = DurableStore(tmp_path)
        session, _ = store.restore(BASE)
        session.add_facts("par(cal, dee).")
        store.record("add_facts", "par(cal, dee).")
        store.close()
        # A record that parses but lost its newline commit marker.
        with open(store.log_path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            handle.truncate()  # chop the final \n
        _, report = DurableStore(tmp_path).restore()
        assert report.torn_tail_dropped == 1
        assert report.records_replayed == 0

    def test_mid_log_damage_raises(self, tmp_path):
        store = DurableStore(tmp_path)
        session, _ = store.restore(BASE)
        for fact in ("par(cal, dee).", "par(dee, eve)."):
            session.add_facts(fact)
            store.record("add_facts", fact)
        store.close()
        lines = log_lines(store)
        assert len(lines) == 2
        with open(store.log_path, "wb") as handle:
            handle.write(b"garbage not json\n" + lines[1] + b"\n")
        with pytest.raises(LogCorruptionError):
            DurableStore(tmp_path).restore()

    def test_sequence_gap_raises(self, tmp_path):
        store = DurableStore(tmp_path)
        session, _ = store.restore(BASE)
        for fact in ("par(cal, dee).", "par(dee, eve)."):
            session.add_facts(fact)
            store.record("add_facts", fact)
        store.close()
        lines = log_lines(store)
        with open(store.log_path, "wb") as handle:
            handle.write(lines[1] + b"\n")  # record 1 missing
        with pytest.raises(LogCorruptionError):
            DurableStore(tmp_path).restore()

    def test_damaged_snapshot_raises(self, tmp_path):
        store = DurableStore(tmp_path)
        store.restore(BASE)
        with open(store.snapshot_path, "w") as handle:
            handle.write("{not json")
        with pytest.raises(LogCorruptionError):
            DurableStore(tmp_path).restore()

    def test_unknown_snapshot_format_raises(self, tmp_path):
        store = DurableStore(tmp_path)
        store.restore(BASE)
        with open(store.snapshot_path) as handle:
            snapshot = json.load(handle)
        snapshot["format"] = 99
        with open(store.snapshot_path, "w") as handle:
            json.dump(snapshot, handle)
        with pytest.raises(LogCorruptionError):
            DurableStore(tmp_path).restore()


class TestCompaction:
    def test_compaction_truncates_log_and_preserves_state(self, tmp_path):
        store = DurableStore(tmp_path, snapshot_every=3)
        session, _ = store.restore("t(X, Y) <- e(X, Y). t(X, Y) <- t(X, U), e(U, Y). e(0, 1).")
        for nxt in range(2, 6):
            fact = f"e({nxt - 1}, {nxt})."
            session.add_facts(fact)
            store.record("add_facts", fact)
            if store.should_compact():
                store.compact(session)
        assert store.snapshots_written >= 2  # bootstrap + at least one compaction
        assert len(log_lines(store)) < 4  # log was truncated mid-run
        restored, report = DurableStore(tmp_path).restore()
        assert restored.query("t(0, Z)") == session.query("t(0, Z)")
        assert report.records_skipped == 0

    def test_crash_between_snapshot_and_truncate_replays_clean(self, tmp_path):
        store = DurableStore(tmp_path)
        session, _ = store.restore(BASE)
        session.add_facts("par(cal, dee).")
        store.record("add_facts", "par(cal, dee).")
        # Crash signature: new snapshot written, log NOT yet truncated.
        store._write_snapshot(session, seq=store.seq)
        store.close()
        assert len(log_lines(store)) == 1  # the already-absorbed record remains
        restored, report = DurableStore(tmp_path).restore()
        assert report.records_skipped == 1 and report.records_replayed == 0
        assert restored.query("anc(ann, Z)") == session.query("anc(ann, Z)")

    def test_restore_compacts_an_oversized_log(self, tmp_path):
        store = DurableStore(tmp_path, snapshot_every=2)
        session, _ = store.restore(BASE)
        for name in ("dee", "eve", "fay"):
            fact = f"par(cal, {name})."
            session.add_facts(fact)
            store.record("add_facts", fact)
        store.close()  # crash-loop shape: 3 records, never compacted
        store2 = DurableStore(tmp_path, snapshot_every=2)
        _, report = store2.restore()
        assert report.records_replayed == 3
        assert len(log_lines(store2)) == 0  # boot compacted the backlog

    def test_fsync_batching_counts(self, tmp_path):
        eager = DurableStore(tmp_path / "eager")
        session, _ = eager.restore(BASE)
        for i in range(3):
            eager.record("add_facts", f"par(cal, p{i}).")
        assert eager.fsyncs == 3  # interval 0: every record synced
        lazy = DurableStore(tmp_path / "lazy", fsync_interval=60.0)
        lazy.restore(BASE)
        for i in range(3):
            lazy.record("add_facts", f"par(cal, p{i}).")
        assert lazy.fsyncs <= 1  # group commit window still open
        lazy.sync()
        assert lazy.fsyncs >= 1

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            DurableStore(tmp_path, snapshot_every=0)
        with pytest.raises(ValueError):
            DurableStore(tmp_path, fsync_interval=-1.0)
        store = DurableStore(tmp_path)
        with pytest.raises(ValueError):
            store.record("drop_table", "oops")


class TestSharedSessionDurability:
    def test_shared_session_writes_land_in_the_log(self, tmp_path):
        store = DurableStore(tmp_path)
        session, _ = store.restore(BASE)
        shared = SharedSession(session=session, store=store)
        shared.add_facts("par(cal, dee).")
        shared.add_rules("desc(X, Y) <- anc(Y, X).")
        answers = shared.query("anc(ann, Z)")
        shared_version = shared.db_version
        store.close()
        restored, report = DurableStore(tmp_path).restore()
        assert report.records_replayed == 2
        assert restored.query("anc(ann, Z)") == answers
        assert restored.query("desc(dee, ann)") == {()}
        assert restored.db_version == shared_version

    def test_rejected_writes_are_not_logged(self, tmp_path):
        store = DurableStore(tmp_path)
        session, _ = store.restore(BASE)
        shared = SharedSession(session=session, store=store)
        with pytest.raises(Exception):
            shared.add_facts("anc(x, y).")  # IDB predicate: rejected
        assert store.appends == 0
        assert len(log_lines(store)) == 0

    def test_no_op_writes_are_not_logged(self, tmp_path):
        store = DurableStore(tmp_path)
        session, _ = store.restore(BASE)
        shared = SharedSession(session=session, store=store)
        version = shared.db_version
        shared.add_facts("")  # empty batch: commits nothing
        shared.add_rules("")
        assert shared.db_version == version
        assert store.appends == 0

    def test_shared_session_compacts_at_threshold(self, tmp_path):
        store = DurableStore(tmp_path, snapshot_every=2)
        session, _ = store.restore(BASE)
        shared = SharedSession(session=session, store=store)
        for name in ("dee", "eve", "fay", "gus"):
            shared.add_facts(f"par(cal, {name}).")
        assert store.snapshots_written >= 2  # bootstrap + in-band compaction
        assert shared.stats()["persistence"]["snapshots_written"] >= 2
        restored, _ = DurableStore(tmp_path).restore()
        assert restored.query("anc(ann, Z)") == shared.query("anc(ann, Z)")

    def test_stats_surface_persistence_section(self, tmp_path):
        store = DurableStore(tmp_path)
        session, _ = store.restore(BASE)
        shared = SharedSession(session=session, store=store)
        shared.add_facts("par(cal, dee).")
        stats = shared.stats()
        assert stats["persistence"]["appends"] == 1
        assert stats["persistence"]["replay"]["bootstrapped"] is True
        assert json.dumps(stats)  # whole payload stays JSON-safe


class TestSingleWriterLock:
    """The O_EXCL pidfile: one data directory, one appending store."""

    def test_second_writer_is_refused(self, tmp_path):
        first = DurableStore(tmp_path)
        session, _ = first.restore(BASE)
        session.add_facts("par(cal, dee).")
        first.record("add_facts", "par(cal, dee).")  # takes the lock lazily
        assert first.locked
        second = DurableStore(tmp_path)
        with pytest.raises(LogLockedError):
            second.acquire_lock()
        with pytest.raises(LogLockedError):
            second.record("add_facts", "par(cal, eve).")
        # Releasing the lock hands the directory to the next writer.
        first.close()
        assert not first.locked
        second.acquire_lock()
        assert second.locked
        second.close()

    def test_eager_acquire_is_idempotent(self, tmp_path):
        store = DurableStore(tmp_path)
        store.restore(BASE)
        store.acquire_lock()
        store.acquire_lock()  # no-op, not an error
        assert store.locked
        store.close()

    def test_stale_lock_from_dead_pid_is_stolen(self, tmp_path):
        import subprocess
        import sys

        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()  # reaped: the pid no longer names a live process
        store = DurableStore(tmp_path)
        store.restore(BASE)
        with open(store.lock_path, "w") as handle:
            handle.write(f"{probe.pid}\n")
        store.acquire_lock()  # hard-killed predecessor: steal, don't fail
        assert store.locked
        store.close()

    def test_read_only_store_never_locks_or_appends(self, tmp_path):
        writer = DurableStore(tmp_path)
        session, _ = writer.restore(BASE)
        session.add_facts("par(cal, dee).")
        writer.record("add_facts", "par(cal, dee).")
        follower = DurableStore(tmp_path, read_only=True)
        restored, _ = follower.restore()
        assert restored.query("anc(ann, Z)") == {("bob",), ("cal",), ("dee",)}
        with pytest.raises(LogLockedError):
            follower.acquire_lock()
        with pytest.raises(LogLockedError):
            follower.record("add_facts", "par(cal, eve).")
        with pytest.raises(LogLockedError):
            follower.compact(restored)
        assert writer.locked  # the follower never disturbed the writer
        writer.close()

    def test_read_only_restore_leaves_torn_tail_on_disk(self, tmp_path):
        writer = DurableStore(tmp_path)
        session, _ = writer.restore(BASE)
        session.add_facts("par(cal, dee).")
        writer.record("add_facts", "par(cal, dee).")
        writer.sync()
        # A torn tail as seen mid-append by a concurrent follower read.
        with open(writer.log_path, "ab") as handle:
            handle.write(b'{"seq": 2, "op": "add_fa')
        size_before = os.path.getsize(writer.log_path)
        follower = DurableStore(tmp_path, read_only=True)
        _, report = follower.restore()
        assert report.torn_tail_dropped == 1
        # Dropped in memory only: the writer's file is not truncated
        # out from under its live append handle.
        assert os.path.getsize(writer.log_path) == size_before

    def test_read_only_cannot_bootstrap(self, tmp_path):
        follower = DurableStore(tmp_path, read_only=True)
        with pytest.raises(ValueError, match="read-only"):
            follower.restore(BASE)

    def test_stats_expose_lock_state(self, tmp_path):
        store = DurableStore(tmp_path)
        store.restore(BASE)
        assert store.stats()["locked"] is False
        store.acquire_lock()
        assert store.stats()["locked"] is True
        assert store.stats()["read_only"] is False
        store.close()
