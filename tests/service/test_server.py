"""The asyncio query server: round trips, typed edge cases, no wedging.

Every test runs a real server (ephemeral port, background thread) and a
real TCP client.  The edge-case matrix is the satellite contract:
malformed JSON, unknown op, oversized request, client disconnect
mid-evaluation, deadline exceeded, and admission-queue-full rejection —
each must answer a *typed* error payload (or close cleanly) and leave
the server serving the next request.
"""

import asyncio
import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.service import (
    QueryServer,
    ServerConfig,
    ServerThread,
    ServiceClient,
    ServiceClientError,
    SharedSession,
)

BASE = """
anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, U), anc(U, Y).
par(ann, bob).  par(bob, cal).  par(cal, dee).
"""

ANC_ANN = {("bob",), ("cal",), ("dee",)}


@pytest.fixture()
def service():
    shared = SharedSession(BASE)
    thread = ServerThread(shared, ServerConfig(max_concurrent=2, max_queue=2))
    port = thread.start()
    yield shared, port
    thread.stop()


def raw_exchange(port, *lines):
    """Send raw bytes lines; return the decoded response per line."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        file = sock.makefile("rwb")
        replies = []
        for line in lines:
            file.write(line if line.endswith(b"\n") else line + b"\n")
            file.flush()
            replies.append(json.loads(file.readline()))
        return replies


def slow_evaluations(shared, delay):
    original = shared.session.run_query

    def slowed(query, seed=None):
        time.sleep(delay)
        return original(query, seed)

    shared.session.run_query = slowed


class TestRoundTrips:
    def test_query_ask_and_ping(self, service):
        _, port = service
        with ServiceClient(port=port) as client:
            assert client.ping()
            reply = client.query("anc(ann, Z)")
            assert set(reply.answers) == ANC_ANN
            assert reply.shared == 1 and not reply.coalesced
            assert client.ask("anc(ann, dee)") is True
            assert client.ask("anc(dee, ann)") is False

    def test_writes_are_visible_to_later_queries(self, service):
        _, port = service
        with ServiceClient(port=port) as client:
            client.add_facts("par(dee, eve).")
            assert ("eve",) in client.query("anc(ann, Z)").answers
            client.add_rules("desc(X, Y) <- anc(Y, X).")
            assert client.ask("desc(eve, ann)")

    def test_stats_snapshot_shape(self, service):
        _, port = service
        with ServiceClient(port=port) as client:
            client.query("anc(ann, Z)")
            stats = client.stats()
        assert stats["metrics"]["counters"]["queries_total"] >= 1
        assert stats["metrics"]["histograms"]["evaluation_seconds"]["count"] >= 1
        assert stats["session"]["graph_cache"]["capacity"] > 0
        assert stats["server"]["max_concurrent"] == 2
        assert stats["server"]["draining"] is False

    def test_one_connection_many_requests(self, service):
        _, port = service
        with ServiceClient(port=port) as client:
            for _ in range(5):
                assert set(client.query("anc(ann, Z)").answers) == ANC_ANN
            assert client.query("anc(ann, Z)").cache_hit


class TestProtocolEdgeCases:
    def test_malformed_json_then_connection_still_works(self, service):
        _, port = service
        bad, good = raw_exchange(
            port,
            b"this is not json",
            b'{"id": 2, "op": "ping"}',
        )
        assert bad["ok"] is False
        assert bad["error"]["type"] == "bad_request"
        assert good == {"id": 2, "ok": True, "op": "ping"}

    def test_non_object_and_missing_op(self, service):
        _, port = service
        array, missing = raw_exchange(port, b"[1, 2]", b'{"id": 9}')
        assert array["error"]["type"] == "bad_request"
        assert missing["error"]["type"] == "bad_request"
        assert missing["id"] == 9  # id echoed even on failure

    def test_unknown_op_is_typed(self, service):
        _, port = service
        (reply,) = raw_exchange(port, b'{"id": 1, "op": "frobnicate"}')
        assert reply["error"]["type"] == "unknown_op"

    def test_missing_query_field_is_bad_request(self, service):
        _, port = service
        with ServiceClient(port=port) as client:
            with pytest.raises(ServiceClientError) as excinfo:
                client.call("query")
            assert excinfo.value.error_type == "bad_request"
            assert client.ping()  # connection survives

    def test_unparseable_program_is_bad_request(self, service):
        _, port = service
        with ServiceClient(port=port) as client:
            with pytest.raises(ServiceClientError) as excinfo:
                client.query("anc(ann, Z")  # unbalanced paren
            assert excinfo.value.error_type == "bad_request"
            with pytest.raises(ServiceClientError) as excinfo:
                client.add_facts("anc(x, y).")  # IDB predicate
            assert excinfo.value.error_type == "bad_request"
            assert client.ping()

    def test_oversized_request_is_typed_and_closes(self):
        shared = SharedSession(BASE)
        config = ServerConfig(max_request_bytes=200)
        with ServerThread(shared, config) as port:
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                file = sock.makefile("rwb")
                file.write(
                    json.dumps({"op": "query", "query": "x" * 500}).encode() + b"\n"
                )
                file.flush()
                reply = json.loads(file.readline())
                assert reply["error"]["type"] == "oversized"
                assert file.readline() == b""  # framing is gone: closed
            # The server is unharmed for the next connection.
            with ServiceClient(port=port) as client:
                assert client.ping()


class TestAdmissionControl:
    def test_deadline_exceeded_is_typed_and_server_recovers(self, service):
        shared, port = service
        slow_evaluations(shared, delay=1.0)
        with ServiceClient(port=port) as client:
            start = time.monotonic()
            with pytest.raises(ServiceClientError) as excinfo:
                client.query("anc(ann, Z)", timeout=0.2)
            assert excinfo.value.error_type == "deadline_exceeded"
            assert time.monotonic() - start < 0.9  # rejected, not served late
            # Same connection keeps working; the orphaned evaluation's
            # result warms the cache, so this may even coalesce onto it.
            assert set(client.query("anc(ann, Z)", timeout=30).answers) == ANC_ANN

    def test_overload_rejection_when_queue_full(self):
        shared = SharedSession(BASE)
        slow_evaluations(shared, delay=1.5)
        config = ServerConfig(max_concurrent=1, max_queue=0)
        with ServerThread(shared, config) as port:
            # Occupy the only slot with a distinct variant per request so
            # coalescing cannot absorb the burst before admission does.
            busy = ServiceClient(port=port, timeout=30)
            busy.connect()
            import threading

            first_sent = threading.Event()

            def occupy():
                first_sent.set()
                busy.query("anc(ann, Z)")

            t = threading.Thread(target=occupy)
            t.start()
            first_sent.wait(5)
            time.sleep(0.3)  # the slot is now held by the slow evaluation
            with ServiceClient(port=port) as second:
                with pytest.raises(ServiceClientError) as excinfo:
                    second.query("anc(bob, Z)")
                assert excinfo.value.error_type == "overloaded"
                assert "retry" in str(excinfo.value)
            t.join(10)
            assert not t.is_alive()
            busy.close()
            # Once the slot frees, service resumes.
            with ServiceClient(port=port) as third:
                assert set(third.query("anc(ann, Z)").answers) == ANC_ANN
        stats = shared.metrics.snapshot()
        assert stats["counters"]["server_rejections_total"] >= 1

    def test_client_disconnect_mid_evaluation_does_not_wedge(self, service):
        shared, port = service
        slow_evaluations(shared, delay=0.8)
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        sock.sendall(b'{"id": 1, "op": "query", "query": "anc(ann, Z)"}\n')
        time.sleep(0.2)  # evaluation is in flight
        sock.close()  # client gives up
        # The server must absorb the severed connection and keep serving.
        with ServiceClient(port=port, timeout=30) as client:
            assert set(client.query("anc(bob, Z)").answers) == {("cal",), ("dee",)}
        time.sleep(1.0)  # let the orphaned evaluation finish + release its slot
        assert shared.inflight_count() == 0


class TestShutdown:
    def test_shutdown_op_drains_and_refuses_new_connections(self):
        shared = SharedSession(BASE)
        thread = ServerThread(shared)
        port = thread.start()
        with ServiceClient(port=port) as client:
            assert set(client.query("anc(ann, Z)").answers) == ANC_ANN
            reply = client.shutdown()
            assert reply["draining"] is True
        thread._thread.join(15)
        assert not thread._thread.is_alive()
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=2)
        thread.stop()  # idempotent on an already-stopped server

    def test_server_thread_context_manager_stops_cleanly(self):
        import threading

        before = threading.active_count()
        shared = SharedSession(BASE)
        with ServerThread(shared) as port:
            with ServiceClient(port=port) as client:
                assert client.ping()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if threading.active_count() <= before:
                break
            time.sleep(0.05)
        assert threading.active_count() <= before


class TestSignalShutdown:
    """Satellite (b): SIGINT/SIGTERM → graceful drain, twice → force stop.

    These run the server loop on the *main* thread (``asyncio.run`` in
    the test itself) because loop signal handlers can only be installed
    there; clients drive it from side threads.
    """

    def test_sigint_drains_in_flight_evaluation_then_stops(self):
        shared = SharedSession(BASE)
        slow_evaluations(shared, 0.4)
        server = QueryServer(shared, ServerConfig())
        results = {}

        def client_call():
            with ServiceClient(port=server.port) as client:
                results["reply"] = client.query("anc(ann, Z)")

        async def main():
            await server.start()
            assert server.install_signal_handlers()
            worker = threading.Thread(target=client_call)
            worker.start()
            await asyncio.sleep(0.15)  # the evaluation is now in flight
            os.kill(os.getpid(), signal.SIGINT)
            await asyncio.wait_for(server.serve_forever(), timeout=10)
            worker.join(10)
            assert not worker.is_alive()

        asyncio.run(main())
        # The interrupted-mid-evaluation query still got its full answer.
        assert set(results["reply"].answers) == ANC_ANN
        # Clean drain: the executor joined, nothing leaks.
        assert not any(
            t.name.startswith("repro-eval") for t in threading.enumerate()
        )

    def test_sigterm_is_equivalent_to_sigint(self):
        shared = SharedSession(BASE)
        server = QueryServer(shared, ServerConfig())

        async def main():
            await server.start()
            assert server.install_signal_handlers()
            os.kill(os.getpid(), signal.SIGTERM)
            await asyncio.wait_for(server.serve_forever(), timeout=10)

        asyncio.run(main())

    def test_second_signal_abandons_the_drain(self):
        shared = SharedSession(BASE)
        slow_evaluations(shared, 1.5)
        # A huge drain timeout: only the second signal can end this fast.
        server = QueryServer(shared, ServerConfig(drain_timeout=60.0))

        def client_call():
            try:
                with ServiceClient(port=server.port) as client:
                    client.query("anc(ann, Z)")
            except ServiceClientError:
                pass  # the abandoned drain severs the connection

        async def main():
            await server.start()
            assert server.install_signal_handlers()
            worker = threading.Thread(target=client_call)
            worker.start()
            await asyncio.sleep(0.2)  # evaluation in flight
            os.kill(os.getpid(), signal.SIGINT)  # begin graceful drain
            await asyncio.sleep(0.1)
            os.kill(os.getpid(), signal.SIGINT)  # "stop NOW"
            start = time.monotonic()
            await asyncio.wait_for(server.serve_forever(), timeout=5)
            assert time.monotonic() - start < 2.0  # not the 60s drain
            worker.join(10)
            assert not worker.is_alive()

        asyncio.run(main())
        # The orphaned evaluation finishes on its thread; join it so the
        # test leaves no straggler behind.
        server._executor.shutdown(wait=True)

    def test_request_shutdown_is_idempotent_and_retains_its_task(self):
        shared = SharedSession(BASE)
        server = QueryServer(shared, ServerConfig())

        async def main():
            await server.start()
            server.request_shutdown()
            assert server._shutdown_task is not None  # strong ref held
            server.request_shutdown()  # second call: abort path, no error
            await asyncio.wait_for(server.serve_forever(), timeout=10)

        asyncio.run(main())
