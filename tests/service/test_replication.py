"""Replicated serving chaos matrix: the front door must hide everything.

Every test runs a real :class:`ReplicaSet` — replica *processes* behind
the asyncio front door — and drives it through the existing NDJSON
protocol with real TCP clients.  The service-tier chaos matrix mirrors
the runtime one (``tests/runtime/test_fault_tolerance.py``) a level up:
a replica killed, wedged, dropping connections, or answering slowly
under concurrent read+write load must yield

* **answer parity** with a single-process oracle session,
* **zero client-visible read errors** (failover + retries mask faults),
* **write monotonicity**: the log's ``seq`` only grows, and every
  readmitted replica has applied exactly the committed prefix.

Degradation is tested at the bottom: with *no* healthy replica the
front door serves cached answers marked ``stale`` and types everything
else ``degraded`` — never a hang, never a silent wrong answer.
"""

import json
import os
import signal
import socket
import sys
import threading
import time

import pytest

from repro.service import (
    ReplicaConfig,
    ReplicaSetConfig,
    ReplicaSetThread,
    ServiceClient,
    ServiceClientError,
)
from repro.session import Session

pytestmark = pytest.mark.skipif(
    sys.platform not in ("linux", "darwin"), reason="fork start method required"
)

BASE = """
anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, U), anc(U, Y).
par(ann, bob).  par(bob, cal).  par(cal, dee).
"""

ANC_ANN = {("bob",), ("cal",), ("dee",)}

#: Small, impatient tunables so faults are detected and healed in
#: test-sized time; semantics are identical to the defaults.
FAST = dict(
    read_timeout=1.0,
    probe_interval=0.2,
    heartbeat_interval=0.1,
    stall_timeout=0.8,
    health_interval=0.05,
)


def make_set(tmp_path, *, replicas=3, faults=None, monkeypatch=None, **overrides):
    """A running replica set (healthy), its port, and the thread handle."""
    if faults is not None:
        assert monkeypatch is not None
        monkeypatch.setenv("REPRO_SERVICE_FAULTS", json.dumps(faults))
    config = ReplicaSetConfig(replicas=replicas, **{**FAST, **overrides})
    thread = ReplicaSetThread(
        BASE,
        data_dir=str(tmp_path / "data"),
        config=config,
        replica_config=ReplicaConfig(max_concurrent=2, max_queue=8),
    )
    port = thread.start()
    return thread, port


def wait_for(predicate, timeout=20.0, interval=0.05):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def replication_stats(port):
    client = ServiceClient(port=port, timeout=10)
    try:
        return client.stats()["replication"]
    finally:
        client.close()


def all_caught_up(port):
    stats = replication_stats(port)
    return stats["healthy"] == len(stats["replicas"]) and all(
        snap["state"] == "healthy" and snap["applied_seq"] == stats["seq"]
        for snap in stats["replicas"].values()
    )


class _Load:
    """Concurrent readers (and optionally a writer) against the front door."""

    def __init__(self, port, queries, readers=4):
        self.port = port
        self.queries = queries
        self.readers = readers
        self.errors: list = []
        self.served = 0
        self.answers: dict = {}
        self._stop = threading.Event()
        self._threads: list = []
        self._lock = threading.Lock()

    def _reader(self, index):
        client = ServiceClient(port=self.port, timeout=15)
        i = 0
        while not self._stop.is_set():
            query = self.queries[(index + i) % len(self.queries)]
            i += 1
            try:
                reply = client.query(query)
            except Exception as exc:  # noqa: BLE001 - every error is a failure
                self.errors.append(repr(exc))
                continue
            with self._lock:
                self.served += 1
                self.answers[query] = reply.answers
        client.close()

    def __enter__(self):
        self._threads = [
            threading.Thread(target=self._reader, args=(i,)) for i in range(self.readers)
        ]
        for thread in self._threads:
            thread.start()
        return self

    def __exit__(self, *exc_info):
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=30)


class TestParityAndWrites:
    def test_reads_match_the_single_process_oracle(self, tmp_path):
        oracle = Session(BASE)
        thread, port = make_set(tmp_path)
        try:
            client = ServiceClient(port=port, timeout=10)
            for query in ("anc(ann, Z)", "anc(X, dee)", "par(X, Y)"):
                assert set(client.query(query).answers) == oracle.query(query)
            assert client.ask("anc(ann, dee)") is True
            assert client.ping() is True
            client.close()
        finally:
            thread.stop()

    def test_writes_fan_out_log_then_ack(self, tmp_path):
        thread, port = make_set(tmp_path)
        try:
            client = ServiceClient(port=port, timeout=10)
            reply = client.add_facts("par(dee, eve).")
            assert reply["seq"] == 1
            assert reply["replicas_applied"] == 3
            assert set(client.query("anc(ann, Z)").answers) == ANC_ANN | {("eve",)}
            reply = client.add_rules("desc(X, Y) <- anc(Y, X).")
            assert reply["seq"] == 2
            assert client.ask("desc(eve, ann)") is True
            assert all_caught_up(port)
            client.close()
        finally:
            thread.stop()

    def test_rejected_write_is_never_logged(self, tmp_path):
        thread, port = make_set(tmp_path)
        try:
            client = ServiceClient(port=port, timeout=10)
            with pytest.raises(ServiceClientError) as info:
                client.add_facts("this is ((( not datalog")
            assert info.value.error_type == "bad_request"
            stats = replication_stats(port)
            assert stats["seq"] == 0  # nothing reached the log
            assert stats["healthy"] == 3
            assert set(client.query("anc(ann, Z)").answers) == ANC_ANN
            client.close()
        finally:
            thread.stop()

    def test_front_door_speaks_the_protocol_edge_cases(self, tmp_path):
        thread, port = make_set(tmp_path, replicas=2)
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                file = sock.makefile("rwb")

                def exchange(line: bytes) -> dict:
                    file.write(line + b"\n")
                    file.flush()
                    return json.loads(file.readline())

                bad = exchange(b"{not json")
                assert not bad["ok"] and bad["error"]["type"] == "bad_request"
                unknown = exchange(b'{"op": "explode"}')
                assert unknown["error"]["type"] == "unknown_op"
                missing = exchange(b'{"op": "query"}')
                assert missing["error"]["type"] == "bad_request"
                pong = exchange(b'{"id": 9, "op": "ping"}')
                assert pong["ok"] and pong["id"] == 9
        finally:
            thread.stop()


class TestChaosMatrix:
    """kill / wedge / drop / slow — under live read+write load, invisibly."""

    def _run_load(self, port, seconds=2.0):
        queries = ["anc(ann, Z)", "anc(X, dee)", "par(X, Y)", "anc(bob, Z)"]
        with _Load(port, queries) as load:
            time.sleep(seconds)
        return load

    def test_killed_replica_is_invisible_and_readmitted(self, tmp_path, monkeypatch):
        faults = {"kill_replica": "replica-1", "kill_after": 5, "only_ops": ["query"]}
        thread, port = make_set(tmp_path, faults=faults, monkeypatch=monkeypatch)
        try:
            load = self._run_load(port)
            assert load.errors == []
            assert load.served > 20
            assert wait_for(lambda: all_caught_up(port))
            stats = replication_stats(port)
            assert stats["replicas"]["replica-1"]["restarts"] >= 1
            assert stats["restarts"] >= 1
            oracle = Session(BASE)
            for query, answers in load.answers.items():
                assert set(answers) == oracle.query(query)
        finally:
            thread.stop()

    def test_wedged_replica_is_detected_and_restarted(self, tmp_path, monkeypatch):
        faults = {"wedge_replica": "replica-2", "wedge_after": 3, "only_ops": ["query"]}
        thread, port = make_set(tmp_path, faults=faults, monkeypatch=monkeypatch)
        try:
            load = self._run_load(port, seconds=3.0)
            assert load.errors == []
            assert wait_for(lambda: all_caught_up(port))
            stats = replication_stats(port)
            # The wedge froze the heartbeat; the stall detector killed it.
            assert stats["replicas"]["replica-2"]["restarts"] >= 1
        finally:
            thread.stop()

    def test_connection_drops_are_masked_by_failover(self, tmp_path, monkeypatch):
        faults = {
            "drop_replica": "replica-0",
            "drop_after": 2,
            "drop_count": 4,
            "only_ops": ["query"],
        }
        thread, port = make_set(tmp_path, faults=faults, monkeypatch=monkeypatch)
        try:
            load = self._run_load(port)
            assert load.errors == []
            assert wait_for(lambda: all_caught_up(port))
            stats = replication_stats(port)
            assert stats["failovers"] >= 1  # the drops were really retried
        finally:
            thread.stop()

    def test_slow_replica_is_routed_around(self, tmp_path, monkeypatch):
        faults = {
            "delay_replica": "replica-1",
            "delay_seconds": 3.0,
            "delay_after": 2,
            "only_ops": ["query"],
        }
        thread, port = make_set(
            tmp_path, faults=faults, monkeypatch=monkeypatch, read_timeout=0.5
        )
        try:
            load = self._run_load(port, seconds=3.0)
            assert load.errors == []
            assert load.served > 10
            stats = replication_stats(port)
            # Per-attempt timeouts fired and the reads finished elsewhere.
            assert stats["failovers"] >= 1
        finally:
            thread.stop()

    def test_write_monotonicity_across_failover(self, tmp_path):
        thread, port = make_set(tmp_path)
        try:
            queries = ["anc(ann, Z)", "par(X, Y)"]
            accepted = []
            stop_writes = threading.Event()

            def writer():
                client = ServiceClient(port=port, timeout=15)
                i = 0
                while not stop_writes.is_set():
                    i += 1
                    reply = client.add_facts(f"par(dee, w{i}).")
                    accepted.append((reply["seq"], f"w{i}"))
                    time.sleep(0.02)
                client.close()

            with _Load(port, queries) as load:
                writes = threading.Thread(target=writer)
                writes.start()
                time.sleep(0.5)
                victim = thread.replica_set._replicas[0]
                os.kill(victim.process.pid, signal.SIGKILL)
                time.sleep(1.5)
                stop_writes.set()
                writes.join(timeout=30)
            assert load.errors == []
            assert accepted, "the writer never got a write through"
            # seq is strictly monotone in ack order: the log never rewinds.
            seqs = [seq for seq, _ in accepted]
            assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
            # The killed replica comes back with exactly the committed prefix.
            assert wait_for(lambda: all_caught_up(port))
            stats = replication_stats(port)
            assert stats["seq"] == seqs[-1]
            assert stats["replicas"]["replica-0"]["restarts"] >= 1
            # Answer parity with an oracle that saw the same accepted writes.
            oracle = Session(BASE)
            for _, name in accepted:
                oracle.add_facts(f"par(dee, {name}).")
            client = ServiceClient(port=port, timeout=10)
            assert set(client.query("anc(ann, Z)").answers) == oracle.query("anc(ann, Z)")
            client.close()
        finally:
            thread.stop()


class TestDegradedService:
    def test_stale_cache_then_typed_degraded(self, tmp_path, monkeypatch):
        # One replica, killed while serving its second query: the front
        # door is briefly replica-less and must degrade, not hang.
        faults = {"kill_replica": "replica-0", "kill_after": 1, "only_ops": ["query"]}
        thread, port = make_set(
            tmp_path, replicas=1, faults=faults, monkeypatch=monkeypatch
        )
        try:
            client = ServiceClient(port=port, timeout=10)
            warm = client.query("anc(ann, Z)")  # request 1: served, cached
            assert set(warm.answers) == ANC_ANN
            # Request 2 kills the only replica mid-flight; the front door
            # falls back to its own cache of this exact query.
            stale = client.query("anc(ann, Z)")
            assert set(stale.answers) == ANC_ANN
            assert stale.raw.get("stale") is True
            # An uncached read in the replica-less window is typed, fast.
            with pytest.raises(ServiceClientError) as info:
                client.query("anc(bob, Z)")
            assert info.value.error_type == "degraded"
            # The supervisor restarts and readmits; service resumes fully.
            assert wait_for(lambda: all_caught_up(port))
            assert wait_for(
                lambda: self._fresh(port, "anc(bob, Z)") == {("cal",), ("dee",)}
            )
            client.close()
        finally:
            thread.stop()

    @staticmethod
    def _fresh(port, query):
        client = ServiceClient(port=port, timeout=10)
        try:
            reply = client.query(query)
            if reply.raw.get("stale"):
                return None
            return set(reply.answers)
        except ServiceClientError:
            return None
        finally:
            client.close()


class TestClientRetry:
    """The ServiceClient satellite: reconnect + bounded idempotent retry."""

    def test_transport_failures_retry_then_succeed(self):
        client = ServiceClient(port=1, retries=2, backoff=0.0, jitter=0.0)
        attempts = []

        def flaky(op, **fields):
            attempts.append(op)
            if len(attempts) < 3:
                raise ServiceClientError("transport", "injected")
            return {"ok": True, "op": op}

        client._call_once = flaky
        assert client.call("ping")["ok"] is True
        assert len(attempts) == 3
        assert client.transport_retries == 2

    def test_writes_are_not_retried_by_default(self):
        client = ServiceClient(port=1, retries=3, backoff=0.0)
        attempts = []

        def always_down(op, **fields):
            attempts.append(op)
            raise ServiceClientError("transport", "injected")

        client._call_once = always_down
        with pytest.raises(ServiceClientError):
            client.call("add_facts", facts="p(a).")
        assert len(attempts) == 1  # ambiguous write: surfaced, not replayed
        with pytest.raises(ServiceClientError):
            client.call("query", query="p(X)")
        assert len(attempts) == 1 + 4  # idempotent read: 1 + 3 retries

    def test_retry_writes_opts_in(self):
        client = ServiceClient(port=1, retries=1, backoff=0.0, retry_writes=True)
        attempts = []

        def always_down(op, **fields):
            attempts.append(op)
            raise ServiceClientError("transport", "injected")

        client._call_once = always_down
        with pytest.raises(ServiceClientError):
            client.call("add_facts", facts="p(a).")
        assert len(attempts) == 2

    def test_typed_server_errors_are_never_retried(self):
        client = ServiceClient(port=1, retries=3, backoff=0.0)
        attempts = []

        def overloaded(op, **fields):
            attempts.append(op)
            raise ServiceClientError("overloaded", "queue full")

        client._call_once = overloaded
        with pytest.raises(ServiceClientError) as info:
            client.call("query", query="p(X)")
        assert info.value.error_type == "overloaded"
        assert len(attempts) == 1

    def test_refused_connection_is_typed_transport(self):
        # Bind-then-close guarantees a dead port.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(port=dead_port, retries=1, backoff=0.0, jitter=0.0)
        with pytest.raises(ServiceClientError) as info:
            client.ping()
        assert info.value.error_type == "transport"
        assert client.transport_retries == 1

    def test_client_reconnects_through_a_front_door_lifetime(self, tmp_path):
        thread, port = make_set(tmp_path, replicas=2)
        try:
            client = ServiceClient(port=port, timeout=10)
            assert client.ping()
            client.close()  # sever; the next call reconnects lazily
            assert set(client.query("anc(ann, Z)").answers) == ANC_ANN
            client.close()
        finally:
            thread.stop()


class TestReadmissionWarmup:
    """A restarted replica is warmed from the recent-read log before HEALTHY."""

    def test_restarted_replica_is_warmed_before_readmission(
        self, tmp_path, monkeypatch
    ):
        faults = {"kill_replica": "replica-1", "kill_after": 3, "only_ops": ["query"]}
        thread, port = make_set(tmp_path, faults=faults, monkeypatch=monkeypatch)
        try:
            # Concurrent readers populate the recent-read log and trip
            # the kill on replica-1; failover keeps every read answered.
            queries = ["anc(ann, Z)", "anc(X, dee)", "par(X, Y)"]
            with _Load(port, queries) as load:
                time.sleep(2.0)
            assert load.errors == []
            assert wait_for(lambda: all_caught_up(port))
            stats = replication_stats(port)
            snap = stats["replicas"]["replica-1"]
            assert snap["restarts"] >= 1
            # Readmission after the restart replayed the logged reads.
            assert snap["warmups"] >= 1
            assert snap["warmed_queries"] >= 1
            assert stats["warmups"] >= 1
            assert stats["warmup_queries_replayed"] >= 1
            assert stats["recent_reads_logged"] >= 1
        finally:
            thread.stop()

    def test_warm_op_evaluates_without_shipping_rows(self, tmp_path):
        thread, port = make_set(tmp_path)
        try:
            client = ServiceClient(port=port, timeout=10)
            response = client.call("warm", query="anc(ann, Z)")
            assert response["ok"] and response["op"] == "warm"
            assert response["count"] == len(ANC_ANN)
            assert "answers" not in response  # priming ships no rows
            # The replica that served the warm now answers from its caches.
            assert set(client.query("anc(ann, Z)").answers) == ANC_ANN
            client.close()
        finally:
            thread.stop()

    def test_recent_read_log_is_bounded_and_deduped(self, tmp_path):
        thread, port = make_set(tmp_path, warmup_queries=2)
        try:
            client = ServiceClient(port=port, timeout=10)
            for query in ["anc(ann, Z)", "anc(bob, Z)", "par(X, Y)", "anc(ann, Z)"]:
                client.query(query)
                client.query(query)  # repeats dedup, they don't evict
            client.close()
            stats = replication_stats(port)
            assert stats["recent_reads_logged"] == 2
        finally:
            thread.stop()
