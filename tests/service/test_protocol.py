"""The NDJSON wire protocol: framing, validation, typed errors, rows."""

import json

import pytest

from repro.service.protocol import (
    ERROR_TYPES,
    OPS,
    ServiceError,
    decode_request,
    encode,
    error_payload,
    rows_to_wire,
    wire_to_rows,
)


class TestDecodeRequest:
    def test_valid_request_round_trips(self):
        line = encode({"id": 7, "op": "query", "query": "p(X)"})
        request = decode_request(line)
        assert request == {"id": 7, "op": "query", "query": "p(X)"}

    def test_malformed_json_is_bad_request(self):
        with pytest.raises(ServiceError) as excinfo:
            decode_request(b"{nope}")
        assert excinfo.value.error_type == "bad_request"

    def test_non_object_is_bad_request(self):
        with pytest.raises(ServiceError) as excinfo:
            decode_request(b"[1, 2, 3]")
        assert excinfo.value.error_type == "bad_request"

    def test_missing_op_is_bad_request(self):
        with pytest.raises(ServiceError) as excinfo:
            decode_request(b'{"id": 3}')
        assert excinfo.value.error_type == "bad_request"
        assert excinfo.value.request_id == 3  # id still echoed

    def test_unknown_op_is_typed(self):
        with pytest.raises(ServiceError) as excinfo:
            decode_request(b'{"op": "explode"}')
        assert excinfo.value.error_type == "unknown_op"

    def test_oversized_line_is_typed(self):
        line = encode({"op": "query", "query": "x" * 100})
        with pytest.raises(ServiceError) as excinfo:
            decode_request(line, max_bytes=50)
        assert excinfo.value.error_type == "oversized"

    @pytest.mark.parametrize("timeout", [0, -1, "fast", True])
    def test_bad_timeout_is_bad_request(self, timeout):
        line = encode({"op": "ping", "timeout": timeout})
        with pytest.raises(ServiceError) as excinfo:
            decode_request(line)
        assert excinfo.value.error_type == "bad_request"

    def test_every_op_is_accepted(self):
        for op in OPS:
            assert decode_request(encode({"op": op}))["op"] == op


class TestErrorTaxonomy:
    def test_service_error_requires_known_type(self):
        with pytest.raises(ValueError):
            ServiceError("nonsense", "boom")

    def test_payload_shape(self):
        payload = ServiceError("overloaded", "queue full").payload(request_id=4)
        assert payload == {
            "id": 4,
            "ok": False,
            "error": {"type": "overloaded", "message": "queue full"},
        }
        assert payload["error"]["type"] in ERROR_TYPES

    def test_error_payload_helper_matches(self):
        assert error_payload("internal", "x", 1)["error"]["type"] == "internal"


class TestRows:
    def test_round_trip_preserves_primitives(self):
        rows = {(1, "bob"), (2, "cal")}
        assert wire_to_rows(rows_to_wire(rows)) == rows

    def test_wire_rows_are_sorted_and_json_safe(self):
        wire = rows_to_wire({(3,), (1,), (2,)})
        assert wire == sorted(wire, key=repr)
        json.dumps(wire)

    def test_rich_values_stringify(self):
        class Odd:
            def __str__(self):
                return "odd"

        assert rows_to_wire([(Odd(),)]) == [["odd"]]

    def test_empty_and_none(self):
        assert wire_to_rows(None) == set()
        assert wire_to_rows([]) == set()
        assert rows_to_wire([]) == []
