"""Serving-layer view maintenance: warm pools, delta-refreshed cache.

Pins the tentpole serving contract: with ``materialize=True`` the
shared session keeps a bounded pool of warm networks keyed by the
Theorem 2.1 cache key, repeat queries are answered by semi-naive
refresh instead of re-evaluation, and a committed write *re-stores* hot
answer-cache entries under the new ``db_version`` rather than purging
them.  Also pins the satellite bugfix: one parse per served request.
"""

import threading

import repro.session as session_module
from repro.service import SharedSession
from repro.session import Session

BASE = """
anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, U), anc(U, Y).
par(ann, bob).  par(bob, cal).  par(cal, dee).
"""


def run_threads(n, fn):
    errors = []
    results = [None] * n

    def wrap(i):
        try:
            results[i] = fn(i)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [threading.Thread(target=wrap, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
        assert not t.is_alive(), "worker thread wedged"
    if errors:
        raise errors[0]
    return results


class TestOneParsePerRequest:
    def test_query_detailed_parses_exactly_once(self, monkeypatch):
        shared = SharedSession(BASE)
        counter = {"parses": 0}
        real = session_module._parse_query_atoms

        def counting(query):
            counter["parses"] += 1
            return real(query)

        monkeypatch.setattr(session_module, "_parse_query_atoms", counting)
        shared.query_detailed("anc(ann, Z)")
        assert counter["parses"] == 1
        # The answer-cache hit path must not parse more than once either.
        shared.query_detailed("anc(ann, Z)")
        assert counter["parses"] == 2

    def test_materialized_path_parses_exactly_once(self, monkeypatch):
        shared = SharedSession(BASE, materialize=True)
        counter = {"parses": 0}
        real = session_module._parse_query_atoms

        def counting(query):
            counter["parses"] += 1
            return real(query)

        monkeypatch.setattr(session_module, "_parse_query_atoms", counting)
        shared.query_detailed("anc(ann, Z)")
        assert counter["parses"] == 1


class TestWarmPool:
    def test_first_query_materializes_then_serves_from_cache(self):
        shared = SharedSession(BASE, materialize=True)
        first = shared.query_detailed("anc(ann, Z)")
        assert first.materialized and not first.answer_cached
        repeat = shared.query_detailed("anc(ann, Z)")
        assert repeat.answer_cached
        assert shared.stats()["materialized"]["materializations"] == 1

    def test_write_refreshes_hot_entry_instead_of_purging(self):
        shared = SharedSession(BASE, materialize=True)
        shared.query("anc(ann, Z)")
        shared.add_facts("par(dee, eve).")
        outcome = shared.query_detailed("anc(ann, Z)")
        # Pre-tentpole this was a forced miss + full re-evaluation.
        assert outcome.answer_cached
        assert ("eve",) in {tuple(r) for r in outcome.answers}
        stats = shared.stats()
        assert stats["materialized"]["delta_refreshes"] == 1
        assert stats["materialized"]["answer_refreshes"] == 1

    def test_refreshed_answers_match_cold_session(self):
        shared = SharedSession(BASE, materialize=True)
        shared.query("anc(ann, Z)")
        writes = ["par(dee, eve).", "par(eve, fay).", "par(cal, ann)."]
        for batch in writes:
            shared.add_facts(batch)
            warm = shared.query("anc(ann, Z)")
            cold = Session(BASE)
            for committed in writes[: writes.index(batch) + 1]:
                cold.add_facts(committed)
            assert warm == cold.query("anc(ann, Z)")

    def test_cold_keys_fall_back_to_invalidation(self):
        shared = SharedSession(BASE, materialize=True, materialize_pool=1)
        shared.query("anc(ann, Z)")  # warm
        shared.query("anc(bob, Z)")  # evicts ann's network (pool=1)
        shared.add_facts("par(dee, eve).")
        hot = shared.query_detailed("anc(bob, Z)")
        assert hot.answer_cached  # refreshed across the write
        cold = shared.query_detailed("anc(ann, Z)")
        assert not cold.answer_cached  # invalidated, re-materialized
        assert cold.materialized
        assert ("eve",) in {tuple(r) for r in cold.answers}

    def test_pool_is_bounded_lru(self):
        shared = SharedSession(BASE, materialize=True, materialize_pool=2)
        for q in ("anc(ann, Z)", "anc(bob, Z)", "anc(cal, Z)"):
            shared.query(q)
        assert shared.stats()["materialized"]["pool_size"] == 2

    def test_add_rules_invalidates_pool_then_rematerializes(self):
        shared = SharedSession(BASE, materialize=True)
        shared.query("anc(ann, Z)")
        shared.add_rules("anc2(X, Y) <- anc(X, Y).")
        assert shared.stats()["materialized"]["pool_size"] == 0
        outcome = shared.query_detailed("anc(ann, Z)")
        assert outcome.materialized and not outcome.answer_cached
        assert outcome.answers == frozenset({("bob",), ("cal",), ("dee",)})

    def test_facts_only_add_rules_keeps_networks_warm(self):
        shared = SharedSession(BASE, materialize=True)
        shared.query("anc(ann, Z)")
        shared.add_rules("par(dee, eve).")
        outcome = shared.query_detailed("anc(ann, Z)")
        assert outcome.answer_cached
        assert ("eve",) in {tuple(r) for r in outcome.answers}

    def test_materialize_ignored_for_multiprocess_runtime(self):
        shared = SharedSession(BASE, materialize=True, runtime="pool")
        assert shared.stats()["materialized"] == {"enabled": False}

    def test_concurrent_readers_and_writer_stay_consistent(self):
        shared = SharedSession(BASE, materialize=True)
        shared.query("anc(ann, Z)")
        barrier = threading.Barrier(7, timeout=10)

        def writer(_):
            barrier.wait()
            shared.add_facts("par(dee, eve). par(eve, fay).")
            return None

        def reader(_):
            barrier.wait()
            return shared.query_detailed("anc(ann, Z)")

        results = run_threads(
            7, lambda i: writer(i) if i == 0 else reader(i)
        )
        final = shared.query("anc(ann, Z)")
        cold = Session(BASE)
        cold.add_facts("par(dee, eve). par(eve, fay).")
        assert final == cold.query("anc(ann, Z)")
        before = frozenset({("bob",), ("cal",), ("dee",)})
        for outcome in results[1:]:
            # Every reader sees either the pre- or post-write fixpoint.
            assert outcome.answers in (before, frozenset(final))

    def test_variant_queries_share_one_warm_network(self):
        shared = SharedSession(BASE, materialize=True)
        shared.query("anc(ann, Z)")
        shared.query("anc(ann, W)")  # same Theorem 2.1 key
        assert shared.stats()["materialized"]["materializations"] == 1
