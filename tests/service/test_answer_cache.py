"""The versioned answer cache: unit bounds + concurrency soundness.

Unit tests pin the LRU/byte-budget mechanics; the integration tests pin
the serving-layer contract from the issue: entries keyed by
``(graph_cache_key, db_version)`` never serve a pre-write answer set
after ``add_facts`` commits, even when the write interleaves with
concurrent evaluations of the same query.
"""

import threading
import time

import pytest

from repro.service import AnswerCache, SharedSession
from repro.service.answer_cache import estimate_answer_bytes
from repro.session import Session

BASE = """
anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, U), anc(U, Y).
par(ann, bob).  par(bob, cal).  par(cal, dee).
"""


def run_threads(n, fn):
    errors = []
    results = [None] * n

    def wrap(i):
        try:
            results[i] = fn(i)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [threading.Thread(target=wrap, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
        assert not t.is_alive(), "worker thread wedged"
    if errors:
        raise errors[0]
    return results


class TestAnswerCacheUnit:
    def test_get_miss_then_put_then_hit(self):
        cache = AnswerCache(capacity=4)
        answers = frozenset({("a",), ("b",)})
        assert cache.get("k", 0) is None
        cache.put("k", 0, answers, elapsed=0.25)
        entry = cache.get("k", 0)
        assert entry is not None and entry.answers == answers
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)
        assert stats.seconds_saved == pytest.approx(0.25)

    def test_version_mismatch_is_a_miss(self):
        cache = AnswerCache(capacity=4)
        cache.put("k", 3, frozenset({("a",)}))
        assert cache.get("k", 4) is None  # post-write version: stale entry hidden
        assert cache.get("k", 2) is None

    def test_lru_eviction_by_count(self):
        cache = AnswerCache(capacity=2)
        for i in range(3):
            cache.put(f"k{i}", 0, frozenset({(i,)}))
        assert cache.get("k0", 0) is None  # oldest evicted
        assert cache.get("k2", 0) is not None
        assert cache.stats().evictions == 1

    def test_lookup_refreshes_recency(self):
        cache = AnswerCache(capacity=2)
        cache.put("k0", 0, frozenset({(0,)}))
        cache.put("k1", 0, frozenset({(1,)}))
        cache.get("k0", 0)  # k0 becomes most-recent
        cache.put("k2", 0, frozenset({(2,)}))
        assert cache.get("k0", 0) is not None
        assert cache.get("k1", 0) is None

    def test_byte_budget_evicts_and_oversized_sets_are_not_stored(self):
        small = frozenset({("x",)})
        big = frozenset({(f"row-{i}", i) for i in range(64)})
        budget = estimate_answer_bytes(big) + estimate_answer_bytes(small) // 2
        cache = AnswerCache(capacity=100, max_bytes=budget)
        cache.put("small", 0, small)
        cache.put("big", 0, big)  # over budget together: small is evicted
        assert cache.get("big", 0) is not None
        assert cache.get("small", 0) is None
        assert cache.stats().bytes <= budget
        # A single set larger than the whole budget is refused outright.
        tiny = AnswerCache(capacity=100, max_bytes=estimate_answer_bytes(big) - 1)
        assert tiny.put("big", 0, big) is None
        assert len(tiny) == 0

    def test_capacity_zero_disables(self):
        cache = AnswerCache(capacity=0)
        assert cache.put("k", 0, frozenset()) is None
        assert cache.get("k", 0) is None
        assert len(cache) == 0

    def test_purge_below_reclaims_only_stale_versions(self):
        cache = AnswerCache(capacity=8)
        cache.put("a", 1, frozenset({(1,)}))
        cache.put("b", 1, frozenset({(1,)}))
        cache.put("c", 2, frozenset({(2,)}))
        assert cache.purge_below(2) == 2
        assert cache.get("c", 2) is not None
        assert cache.stats().invalidations == 2
        assert cache.stats().entries == 1

    def test_clear_and_validation(self):
        cache = AnswerCache(capacity=8)
        cache.put("a", 0, frozenset({(1,)}))
        assert cache.clear() == 1
        assert len(cache) == 0 and cache.nbytes == 0
        with pytest.raises(ValueError):
            AnswerCache(capacity=-1)
        with pytest.raises(ValueError):
            AnswerCache(max_bytes=-1)


class TestSharedSessionAnswerCache:
    def test_repeat_query_is_served_without_evaluation(self):
        shared = SharedSession(BASE)
        evaluations = []
        original = shared.session.run_query

        def counting(query, seed=None):
            evaluations.append(query)
            return original(query, seed)

        shared.session.run_query = counting
        first = shared.query_detailed("anc(ann, Z)")
        second = shared.query_detailed("anc(ann, Z)")
        assert not first.answer_cached and second.answer_cached
        assert second.answers == first.answers
        assert second.db_version == first.db_version
        assert len(evaluations) == 1  # the repeat never reached evaluation
        assert shared.stats()["answer_cache"]["hits"] == 1

    def test_variant_query_shares_the_cached_answer(self):
        shared = SharedSession(BASE)
        shared.query("anc(ann, Z)")
        outcome = shared.query_detailed("anc(ann, W)")  # same Theorem 2.1 key
        assert outcome.answer_cached

    def test_write_invalidates_by_version(self):
        shared = SharedSession(BASE)
        before = shared.query_detailed("anc(ann, Z)")
        shared.add_facts("par(dee, eve).")
        after = shared.query_detailed("anc(ann, Z)")
        assert not after.answer_cached  # version bumped: stale entry unreachable
        assert after.db_version == before.db_version + 1
        assert after.answers > before.answers
        assert shared.stats()["answer_cache"]["invalidations"] >= 1
        # The post-write answer is itself cached under the new version.
        assert shared.query_detailed("anc(ann, Z)").answer_cached

    def test_disabled_cache_still_serves_correctly(self):
        shared = SharedSession(BASE, answer_cache_size=0)
        first = shared.query_detailed("anc(ann, Z)")
        second = shared.query_detailed("anc(ann, Z)")
        assert not second.answer_cached
        assert second.answers == first.answers
        assert shared.stats()["answer_cache"] is None

    def test_interleaved_writes_never_serve_pre_write_answers(self):
        """The issue's soundness matrix: concurrent readers vs add_facts.

        Readers hammer one query while a writer extends the chain.  After
        every commit the writer immediately re-queries: the answer must
        include the just-added edge (a version-stale cache entry would
        serve the pre-write set).  Reader results must always be a closed
        prefix, and post-write answers a superset of pre-write answers.
        """
        chain = "t(X, Y) <- e(X, Y). t(X, Y) <- t(X, U), e(U, Y). e(0, 1)."
        shared = SharedSession(chain)
        stop = threading.Event()
        post_commit = []

        def reader(_):
            seen = []
            while not stop.is_set():
                out = shared.query_detailed("t(0, Z)")
                seen.append((out.db_version, frozenset(out.answers)))
            return seen

        def writer(_):
            for nxt in range(2, 12):
                shared.add_facts(f"e({nxt - 1}, {nxt}).")
                out = shared.query_detailed("t(0, Z)")
                post_commit.append((nxt, frozenset(out.answers)))
                time.sleep(0.005)
            stop.set()
            return []

        results = run_threads(5, lambda i: writer(i) if i == 0 else reader(i))
        # Post-commit reads always include the just-committed edge.
        for nxt, answers in post_commit:
            assert (nxt,) in answers, f"stale answer served after adding edge {nxt}"
        # Reader observations are closed prefixes, monotone in db_version.
        valid = {frozenset((i,) for i in range(1, k + 1)) for k in range(1, 12)}
        by_version = {}
        for seen in results[1:]:
            for version, answers in seen:
                assert answers in valid
                assert by_version.setdefault(version, answers) == answers
        # Higher version => superset (monotone growth, never regression).
        ordered = sorted(by_version.items())
        for (_, a), (_, b) in zip(ordered, ordered[1:]):
            assert a <= b

    def test_concurrent_identical_repeats_all_hit(self):
        shared = SharedSession(BASE)
        shared.query("anc(ann, Z)")  # populate
        barrier = threading.Barrier(6, timeout=5)

        def client(_):
            barrier.wait()
            return shared.query_detailed("anc(ann, Z)")

        outcomes = run_threads(6, client)
        assert all(o.answer_cached for o in outcomes)
        assert shared.stats()["answer_cache"]["hits"] == 6

    def test_cached_answers_match_a_fresh_serial_session(self):
        shared = SharedSession(BASE)
        queries = ["anc(ann, Z)", "anc(bob, Z)", "anc(Q, dee)"]
        for q in queries:
            shared.query(q)
        serial = Session(BASE)
        for q in queries:
            assert shared.query(q) == serial.query(q), q


class TestRenderMemo:
    """`CachedAnswer.render`: race-free memoization + byte accounting."""

    def test_render_computes_once_and_memoizes(self):
        cache = AnswerCache(4, 1 << 20)
        entry = cache.put("k", 0, frozenset({(1,), (2,)}), 0.0)
        calls = []

        def compute(answers):
            calls.append(1)
            return sorted(answers)

        first = entry.render("wire", compute)
        second = entry.render("wire", compute)
        assert first is second
        assert len(calls) == 1

    def test_render_hammer_single_computation(self):
        """N threads racing on a cold memo -> exactly one computation."""
        cache = AnswerCache(4, 1 << 20)
        entry = cache.put("k", 0, frozenset((i,) for i in range(200)), 0.0)
        barrier = threading.Barrier(12, timeout=5)
        calls = []
        lock = threading.Lock()

        def compute(answers):
            with lock:
                calls.append(1)
            time.sleep(0.01)  # widen the old check-then-set race window
            return sorted(answers)

        def client(_):
            barrier.wait()
            return entry.render("wire", compute)

        rendered = run_threads(12, client)
        assert len(calls) == 1, "duplicate render under contention"
        assert all(r is rendered[0] for r in rendered)

    def test_render_kinds_are_independent(self):
        cache = AnswerCache(4, 1 << 20)
        entry = cache.put("k", 0, frozenset({(1,)}), 0.0)
        assert entry.render("wire", sorted) == [(1,)]
        assert entry.render("count", len) == 1

    def test_render_bytes_counted_against_budget(self):
        cache = AnswerCache(8, 1 << 20)
        entry = cache.put("k", 0, frozenset((i,) for i in range(100)), 0.0)
        base_bytes = cache.nbytes
        entry.render("wire", sorted)
        stats = cache.stats()
        assert stats.render_bytes > 0
        assert stats.bytes == base_bytes + stats.render_bytes

    def test_render_bytes_released_on_eviction_and_purge(self):
        cache = AnswerCache(2, 1 << 20)
        a = cache.put("a", 0, frozenset({(1,)}), 0.0)
        a.render("wire", sorted)
        cache.put("b", 0, frozenset({(2,)}), 0.0)
        cache.put("c", 0, frozenset({(3,)}), 0.0)  # evicts "a"
        assert ("a", 0) not in cache
        stats = cache.stats()
        assert stats.render_bytes == 0
        b = cache.put("b", 1, frozenset({(2,)}), 0.0)
        b.render("wire", sorted)
        cache.purge_below(2)
        assert cache.stats().render_bytes == 0
        assert cache.nbytes == 0 or len(cache) > 0

    def test_render_can_push_cache_over_budget_and_evict(self):
        row = tuple(range(64))
        answers = frozenset({row + (i,) for i in range(50)})
        nbytes = estimate_answer_bytes(answers)
        cache = AnswerCache(8, int(nbytes * 1.5))
        entry = cache.put("k", 0, answers, 0.0)
        # A render comparable in size to the answers blows the budget;
        # pre-fix the cache silently held ~2x max_bytes.
        entry.render("wire", lambda a: sorted(a))
        assert cache.nbytes <= cache.max_bytes

    def test_render_after_eviction_charges_nothing(self):
        cache = AnswerCache(1, 1 << 20)
        entry = cache.put("a", 0, frozenset({(1,)}), 0.0)
        cache.put("b", 0, frozenset({(2,)}), 0.0)  # evicts "a"
        entry.render("wire", sorted)  # caller still holds the entry
        assert cache.stats().render_bytes == 0

    def test_unstored_entry_renders_without_cache(self):
        cache = AnswerCache(0)  # disabled: put returns None
        assert cache.put("k", 0, frozenset({(1,)}), 0.0) is None
        from repro.service.answer_cache import CachedAnswer

        entry = CachedAnswer(frozenset({(1,)}), 0, 64, 0.0)
        assert entry.render("wire", sorted) == [(1,)]
