"""Concurrency matrix for SharedSession: locks, coalescing, serial parity.

The satellite contract: N threads issuing overlapping queries (identical
and distinct variants) interleaved with ``add_facts``/``add_rules`` must
(a) answer exactly what a serial run answers, (b) keep cache stats
consistent, and (c) report shared evaluations when identical queries
coalesce.  The coalescing tests make the race window deterministic by
wrapping the wrapped session's ``run_query`` with a short sleep.
"""

import threading
import time

import pytest

from repro.runtime.supervision import EvaluationTimeout, RuntimeFailure
from repro.service import ReadWriteLock, SharedSession
from repro.session import Session

BASE = """
anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, U), anc(U, Y).
par(ann, bob).  par(bob, cal).  par(cal, dee).
par(ann, abe).  par(abe, ada).
"""


def run_threads(n, fn):
    """Start ``n`` threads over ``fn(i)``; surface the first exception."""
    errors = []
    results = [None] * n

    def wrap(i):
        try:
            results[i] = fn(i)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [threading.Thread(target=wrap, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
        assert not t.is_alive(), "worker thread wedged"
    if errors:
        raise errors[0]
    return results


def slow_evaluations(shared, delay=0.25):
    """Widen the coalescing window: every evaluation sleeps first."""
    original = shared.session.run_query

    def slowed(query, seed=None):
        time.sleep(delay)
        return original(query, seed)

    shared.session.run_query = slowed
    return original


class TestReadWriteLock:
    def test_readers_run_concurrently(self):
        rw = ReadWriteLock()
        inside = threading.Barrier(3, timeout=5)

        def reader(_):
            with rw.read_locked():
                inside.wait()  # all three must be inside at once

        run_threads(3, reader)
        assert rw.max_concurrent_readers == 3

    def test_writer_excludes_readers(self):
        rw = ReadWriteLock()
        observed = []
        writing = threading.Event()

        def writer(_):
            with rw.write_locked():
                writing.set()
                time.sleep(0.2)
                observed.append("write-done")

        def reader(_):
            writing.wait(5)
            with rw.read_locked():
                observed.append("read")

        run_threads(3, lambda i: writer(i) if i == 0 else reader(i))
        assert observed[0] == "write-done"

    def test_waiting_writer_blocks_new_readers(self):
        rw = ReadWriteLock()
        first_reader_in = threading.Event()
        release_first_reader = threading.Event()
        order = []

        def long_reader(_):
            with rw.read_locked():
                first_reader_in.set()
                release_first_reader.wait(5)

        def writer(_):
            first_reader_in.wait(5)
            with rw.write_locked():
                order.append("writer")

        def late_reader(_):
            first_reader_in.wait(5)
            time.sleep(0.1)  # arrive after the writer queued
            with rw.read_locked():
                order.append("late-reader")

        t = threading.Thread(target=long_reader, args=(0,))
        t.start()
        first_reader_in.wait(5)
        tw = threading.Thread(target=writer, args=(0,))
        tr = threading.Thread(target=late_reader, args=(0,))
        tw.start()
        time.sleep(0.05)
        tr.start()
        time.sleep(0.2)
        release_first_reader.set()
        for thread in (t, tw, tr):
            thread.join(10)
            assert not thread.is_alive()
        assert order == ["writer", "late-reader"]  # writer preference held


class TestCoalescing:
    def test_identical_concurrent_queries_share_one_evaluation(self):
        shared = SharedSession(BASE)
        serial = Session(BASE).query("anc(ann, Z)")
        slow_evaluations(shared)
        barrier = threading.Barrier(6, timeout=5)

        def client(_):
            barrier.wait()
            return shared.query_detailed("anc(ann, Z)")

        outcomes = run_threads(6, client)
        answer_sets = {frozenset(o.answers) for o in outcomes}
        assert answer_sets == {frozenset(serial)}
        leaders = [o for o in outcomes if not o.coalesced]
        followers = [o for o in outcomes if o.coalesced]
        assert len(leaders) == 1 and len(followers) == 5
        assert all(o.shared == 6 for o in outcomes)
        stats = shared.stats()
        assert stats["shared_evaluations"] == 1
        assert stats["coalesced_joins"] == 5
        assert stats["queries"] == 6

    def test_variant_queries_coalesce_distinct_ones_do_not(self):
        shared = SharedSession(BASE)
        slow_evaluations(shared, delay=0.3)
        barrier = threading.Barrier(3, timeout=5)
        queries = ["anc(ann, Z)", "anc(ann, W)", "anc(bob, Z)"]  # 2 variants + 1

        def client(i):
            barrier.wait()
            return shared.query_detailed(queries[i])

        outcomes = run_threads(3, client)
        by_query = dict(zip(queries, outcomes))
        # The two variants share; the different-constant query does not.
        assert {by_query["anc(ann, Z)"].shared, by_query["anc(ann, W)"].shared} == {2}
        assert by_query["anc(bob, Z)"].shared == 1
        assert shared.stats()["shared_evaluations"] == 1

    def test_sequential_identical_queries_do_not_coalesce(self):
        shared = SharedSession(BASE)
        first = shared.query_detailed("anc(ann, Z)")
        second = shared.query_detailed("anc(ann, Z)")
        assert not first.coalesced and not second.coalesced
        assert first.shared == second.shared == 1
        assert shared.stats()["shared_evaluations"] == 0
        assert second.cache_hit  # across-time reuse is the graph cache's job

    def test_leader_failure_propagates_to_followers(self):
        shared = SharedSession(BASE)

        def explode(query, seed=None):
            time.sleep(0.2)
            raise RuntimeFailure("synthetic evaluation failure")

        shared.session.run_query = explode
        barrier = threading.Barrier(3, timeout=5)

        def client(_):
            barrier.wait()
            with pytest.raises(RuntimeFailure):
                shared.query_detailed("anc(ann, Z)")
            return True

        assert run_threads(3, client) == [True, True, True]
        assert shared.inflight_count() == 0  # the failed entry was reaped

    def test_followers_get_fresh_error_instances_and_session_recovers(self):
        """Regression: N followers must each raise their own typed error.

        The leader's exception used to be re-raised as the *same object*
        from every follower thread (concurrent ``__traceback__``
        mutation); and a failed entry left behind would wedge every
        later identical query.  Both must stay fixed.
        """
        shared = SharedSession(BASE)
        original = shared.session.run_query
        calls = []

        def explode_once(query, seed=None):
            calls.append(1)
            if len(calls) == 1:
                time.sleep(0.2)
                raise RuntimeFailure("synthetic evaluation failure")
            return original(query, seed)

        shared.session.run_query = explode_once
        barrier = threading.Barrier(6, timeout=5)
        raised = []
        raised_lock = threading.Lock()

        def client(_):
            barrier.wait()
            try:
                shared.query_detailed("anc(ann, Z)")
            except RuntimeFailure as exc:
                with raised_lock:
                    raised.append(exc)
                return True
            return False

        assert run_threads(6, client) == [True] * 6
        assert len(raised) == 6
        # One typed failure per caller, every instance distinct.
        assert len({id(exc) for exc in raised}) == 6
        assert {type(exc) for exc in raised} == {RuntimeFailure}
        assert {exc.args for exc in raised} == {("synthetic evaluation failure",)}
        # The failed entry was reaped: the next identical query runs clean.
        assert shared.inflight_count() == 0
        assert shared.query("anc(ann, Z)") == {
            ("bob",), ("cal",), ("dee",), ("abe",), ("ada",),
        }

    def test_base_exception_in_leader_still_releases_followers(self):
        """Even a BaseException (not Exception) must set the done event."""

        class Abort(BaseException):
            pass

        shared = SharedSession(BASE)

        def explode(query, seed=None):
            time.sleep(0.2)
            raise Abort("hard abort")

        shared.session.run_query = explode
        barrier = threading.Barrier(3, timeout=5)

        def client(_):
            barrier.wait()
            with pytest.raises(Abort):
                shared.query_detailed("anc(ann, Z)")
            return True

        assert run_threads(3, client) == [True, True, True]
        assert shared.inflight_count() == 0

    def test_post_write_request_never_joins_a_pre_write_evaluation(self):
        """Regression: coalescing is keyed by (query key, db_version).

        Window under test: the leader has finished evaluating (read lock
        released) but its in-flight entry is still posted; a write
        commits; a new identical request arrives.  With bare-key
        coalescing the new request would join the pre-write evaluation
        and serve answers missing the committed fact.  Version-keyed
        coalescing forces it to lead its own evaluation.  The window is
        made deterministic by delaying the leader's answer-cache store
        (which sits between lock release and the in-flight pop).
        """
        shared = SharedSession(BASE)
        cache = shared.answer_cache
        original_put = cache.put
        leader_past_eval = threading.Event()
        release_leader = threading.Event()

        def slow_put(key, version, answers, elapsed=0.0):
            leader_past_eval.set()
            release_leader.wait(5)
            return original_put(key, version, answers, elapsed)

        cache.put = slow_put
        outcomes = {}

        def leader():
            outcomes["leader"] = shared.query_detailed("anc(ann, Z)")

        t = threading.Thread(target=leader)
        t.start()
        assert leader_past_eval.wait(5)
        cache.put = original_put  # only the first store is delayed
        assert shared.inflight_count() == 1  # entry still posted
        shared.add_facts("par(dee, eve).")  # commits: version bumps
        late = shared.query_detailed("anc(ann, Z)")
        release_leader.set()
        t.join(10)
        assert not t.is_alive()
        # The late request did not coalesce into the stale evaluation...
        assert not late.coalesced and not late.answer_cached
        assert ("eve",) in late.answers
        # ...while the leader still faithfully reports what it read.
        assert ("eve",) not in outcomes["leader"].answers
        assert late.db_version == outcomes["leader"].db_version + 1

    def test_follower_timeout_is_typed(self):
        shared = SharedSession(BASE)
        slow_evaluations(shared, delay=0.6)
        barrier = threading.Barrier(2, timeout=5)

        def leader(_):
            barrier.wait()
            return shared.query_detailed("anc(ann, Z)")

        def impatient(_):
            barrier.wait()
            time.sleep(0.1)  # guarantee join, not leadership
            with pytest.raises(EvaluationTimeout):
                shared.query_detailed("anc(ann, Z)", timeout=0.05)
            return True

        results = run_threads(2, lambda i: leader(i) if i == 0 else impatient(i))
        assert results[1] is True
        assert frozenset(results[0].answers)  # leader unaffected


class TestConcurrencyMatrix:
    def test_distinct_concurrent_queries_match_serial_run(self):
        queries = [
            "anc(ann, Z)",
            "anc(bob, Z)",
            "anc(abe, Z)",
            "anc(cal, Z)",
            "anc(ann, W)",  # variant of the first
            "anc(Q, dee)",
        ]
        serial_session = Session(BASE)
        serial = {q: serial_session.query(q) for q in queries}
        shared = SharedSession(BASE)
        barrier = threading.Barrier(len(queries), timeout=5)

        def client(i):
            barrier.wait()
            return shared.query(queries[i])

        results = run_threads(len(queries), client)
        for query, answers in zip(queries, results):
            assert answers == serial[query], query
        # Cache stats stay consistent: every leader did one graph lookup
        # (answer-cache hits and coalesced joins never reach the graph).
        cache = shared.cache_stats()
        stats = shared.stats()
        assert (
            cache.hits + cache.misses
            == stats["queries"] - stats["coalesced_joins"] - stats["answer_cache"]["hits"]
        )
        assert cache.size <= cache.capacity

    def test_queries_interleaved_with_add_facts_stay_monotone(self):
        chain = "t(X, Y) <- e(X, Y). t(X, Y) <- t(X, U), e(U, Y). e(0, 1)."
        shared = SharedSession(chain)
        stop = threading.Event()
        observed = []
        observed_lock = threading.Lock()

        def reader(_):
            seen = []
            while not stop.is_set():
                seen.append(frozenset(shared.query("t(0, Z)")))
            with observed_lock:
                observed.extend(seen)
            return True

        def writer(_):
            for nxt in range(2, 10):
                shared.add_facts(f"e({nxt - 1}, {nxt}).")
                time.sleep(0.01)
            stop.set()
            return True

        run_threads(4, lambda i: writer(i) if i == 0 else reader(i))
        # Monotone growth: every observation is a closed prefix {1..k}.
        valid = {frozenset((i,) for i in range(1, k + 1)) for k in range(1, 10)}
        assert observed, "readers never completed a query"
        assert set(observed) <= valid
        # And the final state matches a serial session over the final base.
        final = Session(chain)
        final.add_facts(". ".join(f"e({n - 1}, {n})" for n in range(2, 10)) + ".")
        assert shared.query("t(0, Z)") == final.query("t(0, Z)")

    def test_queries_interleaved_with_add_rules(self):
        shared = SharedSession(BASE)
        stop = threading.Event()

        def reader(_):
            count = 0
            while not stop.is_set():
                assert shared.query("anc(ann, Z)")  # must never fail mid-write
                count += 1
            return count

        def writer(_):
            shared.add_rules("desc(X, Y) <- anc(Y, X).")
            time.sleep(0.05)
            shared.add_rules("kin(X, Y) <- anc(X, Y). kin(X, Y) <- desc(X, Y).")
            time.sleep(0.05)
            stop.set()
            return 0

        run_threads(3, lambda i: writer(i) if i == 0 else reader(i))
        assert shared.query("desc(dee, ann)") == {()}
        assert shared.ask("kin(ann, dee)")
        # add_rules flushed the cache; the registry saw both invalidations.
        assert shared.cache_stats().invalidations >= 1
        assert shared.stats()["writes"] == 2
        assert shared.lock.writes_acquired == 2

    def test_rejected_write_leaves_session_intact(self):
        shared = SharedSession(BASE)
        before = shared.query("anc(ann, Z)")
        with pytest.raises(Exception):
            shared.add_facts("anc(x, y).")  # IDB predicate: rejected
        with pytest.raises(Exception):
            shared.add_rules("anc(X) <- par(X, Y), missing(Y, Z)")
        assert shared.query("anc(ann, Z)") == before

    def test_wrapping_an_existing_session(self):
        session = Session(BASE, graph_cache_size=8)
        shared = SharedSession(session=session)
        assert shared.session is session
        assert shared.query("anc(ann, Z)") == {("bob",), ("cal",), ("dee",), ("abe",), ("ada",)}
        with pytest.raises(ValueError):
            SharedSession(BASE, session=session)
        with pytest.raises(ValueError):
            SharedSession()
