"""Tests for the asyncio concurrent runtime: same answers, true concurrency."""

import asyncio

import pytest

from repro.core.sips import all_free_sip
from repro.runtime import evaluate_async, run_async
from repro.workloads import (
    chain_edges,
    mutual_recursion_program,
    nonlinear_tc_program,
    program_p1,
    random_digraph_edges,
)

from tests.helpers import oracle_answers, with_tables


class TestEquivalence:
    def test_p1(self, p1_small):
        result = evaluate_async(p1_small)
        assert result.completed
        assert result.answers == oracle_answers(p1_small)

    def test_nonlinear_tc(self, tc_random):
        result = evaluate_async(tc_random)
        assert result.answers == oracle_answers(tc_random)

    def test_mutual_recursion(self):
        program = with_tables(mutual_recursion_program(0), {"e": chain_edges(8)})
        assert evaluate_async(program).answers == oracle_answers(program)

    def test_all_free_sip(self, p1_small):
        result = evaluate_async(p1_small, sip_factory=all_free_sip)
        assert result.answers == oracle_answers(p1_small)

    def test_repeated_runs_stable(self, p1_small):
        expected = oracle_answers(p1_small)
        for _ in range(5):
            assert evaluate_async(p1_small).answers == expected

    def test_empty_answer_set_completes(self):
        program = with_tables(program_p1(), {"r": [(5, 6)], "q": [(6, 5)]})
        result = evaluate_async(program)
        assert result.completed and result.answers == set()


class TestRuntimeShape:
    def test_one_task_per_node(self, p1_small):
        from repro.network.engine import MessagePassingEngine

        engine = MessagePassingEngine(p1_small)
        expected_tasks = len(engine.processes)
        result = evaluate_async(p1_small)
        assert result.tasks == expected_tasks

    def test_messages_counted(self, p1_small):
        result = evaluate_async(p1_small)
        assert result.messages_sent > 0

    def test_run_async_inside_event_loop(self, p1_small):
        async def main():
            return await run_async(p1_small)

        result = asyncio.run(main())
        assert result.completed

    def test_timeout_raises(self, tc_random):
        with pytest.raises(asyncio.TimeoutError):
            evaluate_async(tc_random, timeout=0.0001)
