"""Tests for the pooled shard-worker runtime with batched channels."""

import sys

import pytest

from repro.network.engine import MessagePassingEngine, assign_shards
from repro.runtime.pool_engine import evaluate_pool
from repro.workloads import (
    ancestor_program,
    chain_edges,
    cycle_edges,
    left_recursive_tc_program,
    mutual_recursion_program,
    nonlinear_tc_program,
    random_digraph_edges,
)

from tests.helpers import oracle_answers, with_tables

pytestmark = pytest.mark.skipif(
    sys.platform not in ("linux", "darwin"), reason="fork start method required"
)


class TestPoolRuntime:
    def test_p1(self, p1_small):
        result = evaluate_pool(p1_small, workers=2, timeout=60)
        assert result.completed
        assert result.answers == oracle_answers(p1_small)
        assert result.workers == 2

    def test_single_worker_degenerates_to_local_delivery(self, p1_small):
        result = evaluate_pool(p1_small, workers=1, timeout=60)
        assert result.answers == oracle_answers(p1_small)
        # One shard: everything is intra-process, nothing crosses a channel.
        assert result.cross_messages == 0
        assert result.cross_batches == 0

    def test_recursive_cycle(self):
        program = with_tables(nonlinear_tc_program(0), {"e": cycle_edges(6)})
        result = evaluate_pool(program, workers=2, timeout=60)
        assert result.answers == oracle_answers(program)

    def test_mutual_recursion(self):
        program = with_tables(mutual_recursion_program(0), {"e": chain_edges(6)})
        result = evaluate_pool(program, workers=3, timeout=60)
        assert result.answers == oracle_answers(program)

    def test_empty_answer_set_still_terminates(self):
        program = with_tables(ancestor_program("nobody"), {"par": chain_edges(4)})
        result = evaluate_pool(program, workers=2, timeout=60)
        assert result.completed and result.answers == set()

    def test_batch_size_one_matches_batch_size_large(self):
        edges = random_digraph_edges(10, 25, seed=13)
        program = with_tables(nonlinear_tc_program(edges[0][0]), {"e": edges})
        expected = oracle_answers(program)
        small = evaluate_pool(program, workers=2, batch_size=1, timeout=60)
        large = evaluate_pool(program, workers=2, batch_size=64, timeout=60)
        assert small.answers == expected
        assert large.answers == expected

    def test_batching_amortizes_queue_operations(self):
        # The point of the envelope: with batch_size > 1 the same traffic
        # must ride in strictly fewer queue operations.
        program = with_tables(
            left_recursive_tc_program(0), {"e": chain_edges(20)}
        )
        unbatched = evaluate_pool(program, workers=2, batch_size=1, timeout=60)
        batched = evaluate_pool(program, workers=2, batch_size=64, timeout=60)
        assert unbatched.answers == batched.answers
        assert unbatched.cross_batches == unbatched.cross_messages
        assert batched.cross_batches < batched.cross_messages
        assert batched.batching_factor > 1.0

    def test_driver_accounting_matches_simulator(self, p1_small):
        engine = MessagePassingEngine(p1_small)
        engine.run()
        stream = engine.driver.feeders[engine.graph.root]
        result = evaluate_pool(p1_small, workers=2, timeout=60)
        assert result.driver_last_seq_sent == stream.last_seq_sent
        assert result.driver_last_upto_ended == stream.last_upto_ended

    def test_coalesce_and_package_knobs(self, p1_small):
        expected = oracle_answers(p1_small)
        result = evaluate_pool(
            p1_small, workers=2, coalesce=True, package_requests=True, timeout=60
        )
        assert result.answers == expected

    def test_more_workers_than_nodes(self, p1_small):
        # Shards beyond the node count just idle; correctness is unaffected.
        result = evaluate_pool(p1_small, workers=6, timeout=60)
        assert result.answers == oracle_answers(p1_small)

    def test_repeated_runs_stable(self, p1_small):
        expected = oracle_answers(p1_small)
        for _ in range(3):
            assert evaluate_pool(p1_small, workers=2, timeout=60).answers == expected


class TestAssignShards:
    def test_strong_components_stay_whole(self):
        program = with_tables(
            nonlinear_tc_program(0), {"e": random_digraph_edges(8, 16, seed=3)}
        )
        engine = MessagePassingEngine(program, validate_protocol=False)
        shard_of = assign_shards(engine, 3)
        for info in engine.graph.strong_components():
            shards = {shard_of[m] for m in info.members}
            assert len(shards) == 1, "a strong component crossed a shard boundary"

    def test_every_process_is_assigned(self, p1_small):
        engine = MessagePassingEngine(p1_small, validate_protocol=False)
        shard_of = assign_shards(engine, 4)
        assert set(shard_of) == set(engine.processes)
        assert all(0 <= s < 4 for s in shard_of.values())

    def test_driver_lands_on_shard_zero(self, p1_small):
        from repro.network.nodes import DRIVER_ID

        engine = MessagePassingEngine(p1_small, validate_protocol=False)
        assert assign_shards(engine, 3)[DRIVER_ID] == 0

    def test_edb_replicas_spread_across_shards(self):
        program = with_tables(
            left_recursive_tc_program(0), {"e": chain_edges(8)}
        )
        engine = MessagePassingEngine(
            program, validate_protocol=False, edb_shards=3
        )
        shard_of = assign_shards(engine, 3)
        for replicas in engine.edb_replicas.values():
            assert len({shard_of[r] for r in replicas}) > 1


class TestEdbSharding:
    def test_replicated_edb_answers_match(self):
        program = with_tables(
            left_recursive_tc_program(0), {"e": chain_edges(10)}
        )
        expected = oracle_answers(program)
        for shards in (2, 4):
            result = evaluate_pool(
                program, workers=2, edb_shards=shards, timeout=60
            )
            assert result.answers == expected, f"edb_shards={shards}"

    def test_replicated_edb_in_simulator(self):
        # The replica wiring is engine-level, so even the deterministic
        # simulator can drive a partitioned-EDB network.
        program = with_tables(
            left_recursive_tc_program(0), {"e": chain_edges(10)}
        )
        engine = MessagePassingEngine(program, edb_shards=3)
        result = engine.run()
        assert result.answers == oracle_answers(program)
