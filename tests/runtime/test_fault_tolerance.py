"""Chaos suite: the multiprocess runtimes under deterministic fault injection.

Every entry in the matrix — worker killed mid-query, worker wedged (alive
but silent), node code raising, STOP sentinel dropped during teardown, a
slowed channel — must end one of exactly two ways:

* the run completes (possibly via retry or degradation) with the **same
  answer set as the in-process runtime** — whole-query re-execution is
  sound because evaluation is monotone set-semantics Datalog and every
  node deduplicates; or
* a **typed** supervision error (``WorkerCrashError`` / ``WorkerStallError``
  / ``EvaluationTimeout``) surfaces promptly — never a bare hang that eats
  the full 120s default deadline.

Either way teardown must leave no live child processes behind.
"""

import multiprocessing as mp
import random
import signal
import sys
import time

import pytest

from repro.network.engine import evaluate
from repro.runtime import (
    EvaluationTimeout,
    FaultPlan,
    RetryPolicy,
    RuntimeFailure,
    ServiceFaultPlan,
    WorkerCrashError,
    WorkerStallError,
    evaluate_multiprocessing,
    evaluate_pool,
)
from repro.runtime.supervision import Supervisor, run_with_retry
from repro.session import Session
from repro.workloads import chain_edges, left_recursive_tc_program
from tests.helpers import oracle_answers, with_tables

pytestmark = pytest.mark.skipif(
    sys.platform not in ("linux", "darwin"), reason="fork start method required"
)

#: Worst-case gap between a healthy worker's heartbeats in these tests.
#: Detection latency for a wedged worker is bounded by 2× this.
HEARTBEAT = 0.3

#: Generous wall-clock bound for "detected promptly": covers fork/startup
#: and the fault's own trigger latency, but is far below the 60s attempt
#: timeouts used here (and the 120s default a hang used to burn).
PROMPT = 15.0


def make_program():
    return with_tables(left_recursive_tc_program(0), {"e": chain_edges(10)})


@pytest.fixture(scope="module")
def expected():
    """The in-process runtime's answers — the parity oracle for every fault."""
    program = make_program()
    answers = evaluate(program).answers
    assert answers == oracle_answers(program)
    return answers


#: Both process runtimes, normalized to runner(program, **fault_kwargs).
#: Worker index 0 is always a worker that receives traffic: the pool puts
#: the driver on shard 0, and the per-node runtime's slot 0 is the root
#: goal node (first in graph insertion order), which gets the opening
#: relation request.
RUNNERS = {
    "pool": lambda program, **kw: evaluate_pool(
        program, workers=2, timeout=kw.pop("timeout", 60), **kw
    ),
    "mp": lambda program, **kw: evaluate_multiprocessing(
        program, timeout=kw.pop("timeout", 60), **kw
    ),
}

RUNTIME_PARAMS = sorted(RUNNERS)


@pytest.fixture(autouse=True)
def watchdog():
    """Backstop alarm: a chaos test that hangs must fail, not stall the job."""
    if not hasattr(signal, "SIGALRM"):
        pytest.skip("platform lacks SIGALRM; chaos watchdog unavailable")

    def on_alarm(signum, frame):
        raise TimeoutError("chaos test exceeded its per-test timeout")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(90)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def assert_no_stray_children(grace: float = 5.0) -> None:
    """Teardown must reap every worker (and the mp runtime's manager)."""
    deadline = time.monotonic() + grace
    while time.monotonic() < deadline:
        children = mp.active_children()  # also joins finished processes
        if not children:
            return
        time.sleep(0.05)
    pytest.fail(f"zombie child processes left behind: {mp.active_children()}")


@pytest.mark.parametrize("runtime", RUNTIME_PARAMS)
class TestCrashDetection:
    def test_killed_worker_raises_typed_error_promptly(self, runtime):
        started = time.monotonic()
        with pytest.raises(WorkerCrashError) as info:
            RUNNERS[runtime](
                make_program(),
                fault_plan=FaultPlan(kill_worker=0, kill_after=2),
            )
        elapsed = time.monotonic() - started
        assert elapsed < PROMPT, f"crash took {elapsed:.1f}s to surface"
        # A hard os._exit(1) leaves no traceback, only the where/exit code.
        assert "crashed" in str(info.value)
        assert_no_stray_children()

    def test_in_node_exception_ships_remote_traceback(self, runtime):
        # The worker catches the injected error, posts a structured
        # ("error", where, traceback) payload, and the supervisor re-raises
        # it driver-side with the remote traceback attached.
        with pytest.raises(WorkerCrashError) as info:
            RUNNERS[runtime](
                make_program(),
                fault_plan=FaultPlan(raise_in_node="t(", raise_after=1),
            )
        assert info.value.remote_traceback is not None
        assert "FaultInjectedError" in info.value.remote_traceback
        # The faulting node's label rides in the traceback; ``where`` names
        # the failing worker (a shard in the pool, the node itself in mp).
        assert "t(" in info.value.remote_traceback
        assert info.value.where
        assert_no_stray_children()

    def test_wedged_worker_raises_stall_within_heartbeat_bound(self, runtime):
        started = time.monotonic()
        with pytest.raises(WorkerStallError) as info:
            RUNNERS[runtime](
                make_program(),
                fault_plan=FaultPlan(wedge_worker=0, wedge_after=2),
                heartbeat_interval=HEARTBEAT,
            )
        elapsed = time.monotonic() - started
        assert elapsed < PROMPT, f"stall took {elapsed:.1f}s to surface"
        assert info.value.stalled_for >= 2 * HEARTBEAT
        assert_no_stray_children()

    def test_wedged_worker_without_heartbeat_hits_timeout(self, runtime):
        # No heartbeat interval → no stall detection; the global deadline
        # is the only net, and it must catch a TimeoutError subclass so
        # pre-supervision callers keep working.
        started = time.monotonic()
        with pytest.raises(TimeoutError) as info:
            RUNNERS[runtime](
                make_program(),
                fault_plan=FaultPlan(wedge_worker=0, wedge_after=2),
                timeout=2,
            )
        assert isinstance(info.value, EvaluationTimeout)
        assert time.monotonic() - started < PROMPT
        assert_no_stray_children()


@pytest.mark.parametrize("runtime", RUNTIME_PARAMS)
class TestRecovery:
    def test_kill_one_worker_mid_query_recovers_via_retry(
        self, runtime, expected
    ):
        result = RUNNERS[runtime](
            make_program(),
            fault_plan=FaultPlan(kill_worker=0, kill_after=2, only_attempt=1),
            retry=2,
        )
        assert result.answers == expected
        assert result.attempts == 2
        assert not result.degraded
        assert len(result.failure_log) == 1
        assert "WorkerCrashError" in result.failure_log[0]
        assert_no_stray_children()

    def test_in_node_exception_recovers_via_retry(self, runtime, expected):
        result = RUNNERS[runtime](
            make_program(),
            fault_plan=FaultPlan(raise_in_node="t(", raise_after=1, only_attempt=1),
            retry=RetryPolicy(max_attempts=3),
        )
        assert result.answers == expected
        assert result.attempts == 2
        assert not result.degraded
        assert_no_stray_children()

    def test_persistent_fault_degrades_to_inprocess(self, runtime, expected):
        # The fault fires on *every* attempt; after retries are exhausted
        # the in-process scheduler answers, flagged as degraded.
        result = RUNNERS[runtime](
            make_program(),
            fault_plan=FaultPlan(kill_worker=0, kill_after=2),
            retry=2,
            fallback="inprocess",
        )
        assert result.answers == expected
        assert result.degraded
        assert result.attempts == 2
        assert result.failure_log[-1].startswith("degraded:")
        # The degraded result ran no worker processes at all.
        spread = result.workers if runtime == "pool" else result.processes
        assert spread == 0
        assert_no_stray_children()

    def test_exhausted_retries_reraise_with_failure_log(self, runtime):
        with pytest.raises(WorkerCrashError) as info:
            RUNNERS[runtime](
                make_program(),
                fault_plan=FaultPlan(kill_worker=0, kill_after=2),
                retry=2,
            )
        log = getattr(info.value, "failure_log", None)
        assert log is not None and len(log) == 2
        assert all("attempt" in line for line in log)
        assert_no_stray_children()


@pytest.mark.parametrize("runtime", RUNTIME_PARAMS)
class TestTeardown:
    def test_dropped_stop_sentinel_is_reaped_not_hung(self, runtime, expected):
        # Teardown skips worker 1's STOP: the bounded join fails and the
        # terminate→kill escalation must reap it without blocking the query.
        started = time.monotonic()
        result = RUNNERS[runtime](
            make_program(),
            fault_plan=FaultPlan(drop_stop_for=1),
        )
        assert result.answers == expected
        assert time.monotonic() - started < PROMPT
        assert_no_stray_children()


#: Survivable-fault matrix: every plan here must leave the answers
#: byte-identical to the in-process runtime.
SURVIVABLE = {
    "slow-channel": dict(
        fault_plan=FaultPlan(delay_worker=1, delay_seconds=0.05)
    ),
    "kill-then-retry": dict(
        fault_plan=FaultPlan(kill_worker=0, kill_after=2, only_attempt=1),
        retry=2,
    ),
    "raise-then-retry": dict(
        fault_plan=FaultPlan(raise_in_node="t(", raise_after=1, only_attempt=1),
        retry=2,
    ),
    "dropped-stop": dict(fault_plan=FaultPlan(drop_stop_for=1)),
    "wedge-degrade": dict(
        fault_plan=FaultPlan(wedge_worker=0, wedge_after=2),
        heartbeat_interval=HEARTBEAT,
        retry=1,
        fallback="inprocess",
    ),
}


@pytest.mark.parametrize("fault", sorted(SURVIVABLE))
@pytest.mark.parametrize("runtime", RUNTIME_PARAMS)
class TestParityUnderFaults:
    def test_answers_match_in_process_runtime(self, runtime, fault, expected):
        result = RUNNERS[runtime](make_program(), **SURVIVABLE[fault])
        assert result.answers == expected, f"{runtime}/{fault} diverged"
        assert_no_stray_children()


class TestSessionRuntimes:
    KB = """
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, U), anc(U, Y).
    par(ann, bob).  par(bob, cal).  par(cal, dee).
    """

    def test_pool_session_matches_simulator(self):
        expected = Session(self.KB).query("anc(ann, Z)")
        pooled = Session(
            self.KB, runtime="pool", workers=2, retries=2, timeout=60
        )
        assert pooled.query("anc(ann, Z)") == expected
        assert pooled.last_result.attempts == 1
        assert not pooled.last_result.degraded

    def test_mp_session_matches_simulator(self):
        expected = Session(self.KB).query("anc(ann, Z)")
        distributed = Session(self.KB, runtime="mp", retries=2, timeout=60)
        assert distributed.query("anc(ann, Z)") == expected

    def test_unknown_runtime_rejected(self):
        with pytest.raises(ValueError, match="unknown session runtime"):
            Session(self.KB, runtime="threads")


# ----------------------------------------------------------------------
# In-process units: payload validation, retry driver, plan parsing.
# ----------------------------------------------------------------------


class TestSupervisorAccept:
    """The typed replacement for the old ``assert kind == "done"``."""

    def _wait(self, payload):
        import queue

        inbox = queue.Queue()
        inbox.put(payload)
        return Supervisor(workers=[], result_queue=inbox).wait(timeout=5)

    def test_done_payload_passes_through(self):
        payload = ("done", {("a",)}, {"messages": 3})
        assert self._wait(payload) is payload

    def test_error_payload_reraises_with_remote_traceback(self):
        with pytest.raises(WorkerCrashError) as info:
            self._wait(("error", "shard 1", "Traceback ...\nBoomError: x"))
        assert info.value.where == "shard 1"
        assert "BoomError" in info.value.remote_traceback

    def test_unknown_payload_kind_is_a_typed_error(self):
        # Under ``python -O`` the old assert vanished entirely; the typed
        # check must hold regardless of optimization level.
        with pytest.raises(RuntimeFailure, match="unexpected result payload"):
            self._wait(("gibberish", 1, 2))


class TestRetryDriver:
    def test_policy_normalization(self):
        assert RetryPolicy.of(None) == RetryPolicy()
        assert RetryPolicy.of(3) == RetryPolicy(max_attempts=3)
        policy = RetryPolicy(max_attempts=2, backoff=0.1)
        assert RetryPolicy.of(policy) is policy

    def test_first_attempt_success_does_not_retry(self):
        result, attempts, degraded, log = run_with_retry(
            lambda attempt: attempt, RetryPolicy(max_attempts=3)
        )
        assert (result, attempts, degraded, log) == (1, 1, False, [])

    def test_typed_failures_are_retried_deterministically(self):
        def flaky(attempt):
            if attempt < 3:
                raise WorkerCrashError(f"w{attempt}")
            return "ok"

        result, attempts, degraded, log = run_with_retry(
            flaky, RetryPolicy(max_attempts=3)
        )
        assert (result, attempts, degraded) == ("ok", 3, False)
        assert len(log) == 2

    def test_programming_errors_propagate_immediately(self):
        calls = []

        def buggy(attempt):
            calls.append(attempt)
            raise KeyError("not a runtime failure")

        with pytest.raises(KeyError):
            run_with_retry(buggy, RetryPolicy(max_attempts=3))
        assert calls == [1]

    def test_fallback_marks_degraded(self):
        def always_down(attempt):
            raise WorkerStallError("w0", stalled_for=1.0, heartbeat_interval=0.3)

        result, attempts, degraded, log = run_with_retry(
            always_down, RetryPolicy(max_attempts=2), fallback_fn=lambda: "plan-b"
        )
        assert (result, attempts, degraded) == ("plan-b", 2, True)
        assert log[-1].startswith("degraded:")

    def test_deadline_caps_attempts(self):
        def always_down(attempt):
            raise WorkerCrashError(f"w{attempt}")

        with pytest.raises(WorkerCrashError):
            run_with_retry(
                always_down, RetryPolicy(max_attempts=50, deadline=0.0)
            )


class TestFaultPlanParsing:
    def test_from_env_unset_or_none(self):
        assert FaultPlan.from_env(environ={}) is None
        assert FaultPlan.from_env(environ={"REPRO_FAULTS": "none"}) is None

    def test_from_env_round_trip(self):
        plan = FaultPlan.from_env(
            environ={"REPRO_FAULTS": '{"kill_worker": 0, "kill_after": 3}'}
        )
        assert plan == FaultPlan(kill_worker=0, kill_after=3)

    def test_from_env_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown FaultPlan fields"):
            FaultPlan.from_env(environ={"REPRO_FAULTS": '{"explode": true}'})

    def test_from_env_rejects_bad_json(self):
        with pytest.raises(ValueError, match="JSON"):
            FaultPlan.from_env(environ={"REPRO_FAULTS": "{notjson"})

    def test_only_attempt_arming(self):
        plan = FaultPlan(kill_worker=0, only_attempt=2)
        assert plan.for_attempt(1) is None
        assert plan.for_attempt(2) is plan
        always = FaultPlan(kill_worker=0)
        assert always.for_attempt(1) is always
        assert always.for_attempt(7) is always


class TestBackoffSchedule:
    """RetryPolicy backoff: exponential growth, bounded jitter, quiet defaults."""

    def test_defaults_have_no_delay(self):
        policy = RetryPolicy(max_attempts=3)
        assert [policy.delay_for(a) for a in (1, 2, 3)] == [0.0, 0.0, 0.0]

    def test_exponential_schedule(self):
        policy = RetryPolicy(max_attempts=4, backoff=0.1, backoff_factor=2.0)
        assert policy.delay_for(1) == 0.0
        assert policy.delay_for(2) == pytest.approx(0.1)
        assert policy.delay_for(3) == pytest.approx(0.2)
        assert policy.delay_for(4) == pytest.approx(0.4)

    def test_constant_schedule_without_factor(self):
        policy = RetryPolicy(max_attempts=3, backoff=0.05)
        assert policy.delay_for(2) == pytest.approx(0.05)
        assert policy.delay_for(3) == pytest.approx(0.05)

    def test_jitter_is_bounded_and_seedable(self):
        policy = RetryPolicy(max_attempts=3, backoff=0.1, jitter=0.05)
        rng = random.Random(7)
        delays = [policy.delay_for(2, rng=rng) for _ in range(50)]
        assert all(0.1 <= d <= 0.15 for d in delays)
        assert len(set(delays)) > 1  # it actually jitters
        # Jitter alone (no base backoff) still spaces attempts out.
        jitter_only = RetryPolicy(max_attempts=2, jitter=0.02)
        assert 0.0 <= jitter_only.delay_for(2, rng=rng) <= 0.02

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_backoff_actually_sleeps_between_attempts(self):
        stamps = []

        def flaky(attempt):
            stamps.append(time.perf_counter())
            if attempt < 3:
                raise WorkerCrashError(f"w{attempt}")
            return "ok"

        result, attempts, _, _ = run_with_retry(
            flaky, RetryPolicy(max_attempts=3, backoff=0.05, backoff_factor=2.0)
        )
        assert (result, attempts) == ("ok", 3)
        assert stamps[1] - stamps[0] >= 0.04  # ~0.05s before attempt 2
        assert stamps[2] - stamps[1] >= 0.08  # ~0.10s before attempt 3


class TestServiceFaultPlanParsing:
    def test_from_env_unset_or_none(self):
        assert ServiceFaultPlan.from_env(environ={}) is None
        assert ServiceFaultPlan.from_env(environ={"REPRO_SERVICE_FAULTS": "none"}) is None

    def test_from_env_round_trip(self):
        plan = ServiceFaultPlan.from_env(
            environ={
                "REPRO_SERVICE_FAULTS": '{"kill_replica": "replica-1", '
                '"kill_after": 3, "only_ops": ["query"]}'
            }
        )
        assert plan == ServiceFaultPlan(
            kill_replica="replica-1", kill_after=3, only_ops=("query",)
        )

    def test_from_env_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown ServiceFaultPlan fields"):
            ServiceFaultPlan.from_env(
                environ={"REPRO_SERVICE_FAULTS": '{"explode": true}'}
            )

    def test_injector_counts_served_requests(self):
        plan = ServiceFaultPlan(kill_replica="replica-0", kill_after=2)
        injector = plan.injector("replica-0")
        assert injector.on_request("query") is None
        assert injector.on_request("query") is None
        assert injector.on_request("query") == "kill"
        bystander = plan.injector("replica-1")
        for _ in range(5):
            assert bystander.on_request("query") is None

    def test_only_ops_excludes_pings(self):
        plan = ServiceFaultPlan(
            wedge_replica="replica-0", wedge_after=0, only_ops=("query",)
        )
        injector = plan.injector("replica-0")
        assert injector.on_request("ping") is None
        assert injector.on_request("query") == "wedge"

    def test_drop_count_is_transient(self):
        plan = ServiceFaultPlan(drop_replica="replica-0", drop_after=1, drop_count=2)
        injector = plan.injector("replica-0")
        assert injector.on_request("query") is None
        assert injector.on_request("query") == "drop"
        assert injector.on_request("query") == "drop"
        assert injector.on_request("query") is None  # flap over

    def test_delay_returns_seconds(self):
        plan = ServiceFaultPlan(delay_replica="replica-0", delay_seconds=0.25)
        injector = plan.injector("replica-0")
        assert injector.on_request("query") == 0.25
