"""Tests for the one-OS-process-per-node runtime."""

import sys

import pytest

from repro.baselines import naive
from repro.runtime.multiprocessing_engine import evaluate_multiprocessing
from repro.workloads import (
    ancestor_program,
    chain_edges,
    cycle_edges,
    facts_from_tables,
    mutual_recursion_program,
    nonlinear_tc_program,
    program_p1,
)

from tests.helpers import oracle_answers, with_tables

pytestmark = pytest.mark.skipif(
    sys.platform not in ("linux", "darwin"), reason="fork start method required"
)


class TestMultiprocessingRuntime:
    def test_p1(self, p1_small):
        result = evaluate_multiprocessing(p1_small, timeout=60)
        assert result.completed
        assert result.answers == oracle_answers(p1_small)
        assert result.processes >= 10  # one per node + the driver

    def test_recursive_cycle(self):
        program = with_tables(nonlinear_tc_program(0), {"e": cycle_edges(6)})
        result = evaluate_multiprocessing(program, timeout=60)
        assert result.answers == oracle_answers(program)

    def test_mutual_recursion(self):
        program = with_tables(mutual_recursion_program(0), {"e": chain_edges(6)})
        result = evaluate_multiprocessing(program, timeout=60)
        assert result.answers == oracle_answers(program)

    def test_empty_answer_set_still_terminates(self):
        program = with_tables(ancestor_program("nobody"), {"par": chain_edges(4)})
        result = evaluate_multiprocessing(program, timeout=60)
        assert result.completed and result.answers == set()

    def test_repeated_runs_stable(self, p1_small):
        expected = oracle_answers(p1_small)
        for _ in range(3):
            assert evaluate_multiprocessing(p1_small, timeout=60).answers == expected
