"""Tests for the one-OS-process-per-node runtime."""

import sys

import pytest

from repro.baselines import naive
from repro.runtime.multiprocessing_engine import evaluate_multiprocessing
from repro.workloads import (
    ancestor_program,
    chain_edges,
    cycle_edges,
    facts_from_tables,
    mutual_recursion_program,
    nonlinear_tc_program,
    program_p1,
)

from tests.helpers import oracle_answers, with_tables

pytestmark = pytest.mark.skipif(
    sys.platform not in ("linux", "darwin"), reason="fork start method required"
)


class TestMultiprocessingRuntime:
    def test_p1(self, p1_small):
        result = evaluate_multiprocessing(p1_small, timeout=60)
        assert result.completed
        assert result.answers == oracle_answers(p1_small)
        assert result.processes >= 10  # one per node + the driver

    def test_recursive_cycle(self):
        program = with_tables(nonlinear_tc_program(0), {"e": cycle_edges(6)})
        result = evaluate_multiprocessing(program, timeout=60)
        assert result.answers == oracle_answers(program)

    def test_mutual_recursion(self):
        program = with_tables(mutual_recursion_program(0), {"e": chain_edges(6)})
        result = evaluate_multiprocessing(program, timeout=60)
        assert result.answers == oracle_answers(program)

    def test_empty_answer_set_still_terminates(self):
        program = with_tables(ancestor_program("nobody"), {"par": chain_edges(4)})
        result = evaluate_multiprocessing(program, timeout=60)
        assert result.completed and result.answers == set()

    def test_repeated_runs_stable(self, p1_small):
        expected = oracle_answers(p1_small)
        for _ in range(3):
            assert evaluate_multiprocessing(p1_small, timeout=60).answers == expected

    def test_driver_accounting_matches_simulator(self, p1_small):
        # Regression: the query used to be posed by bumping the driver's
        # feeder sequence in the parent AFTER worker.start() — under fork the
        # driver child never saw the bump, so its stream accounting diverged
        # from the simulator's.  Posing now happens before the fork via
        # ``driver.start``; both runtimes must report identical root-stream
        # accounting.
        from repro.network.engine import MessagePassingEngine

        engine = MessagePassingEngine(p1_small)
        engine.run()
        stream = engine.driver.feeders[engine.graph.root]

        result = evaluate_multiprocessing(p1_small, timeout=60)
        assert result.driver_last_seq_sent == stream.last_seq_sent
        assert result.driver_last_upto_ended == stream.last_upto_ended
        # The driver poses exactly one request (the relation request, seq 0)
        # and must end fully caught up.
        assert result.driver_last_seq_sent == 0
        assert result.driver_last_upto_ended == 0

    def test_coalesce_and_package_knobs(self, p1_small):
        expected = oracle_answers(p1_small)
        result = evaluate_multiprocessing(
            p1_small, timeout=60, coalesce=True, package_requests=True
        )
        assert result.answers == expected
