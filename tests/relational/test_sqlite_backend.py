"""Tests for the SQLite EDB backend."""

import pytest

from repro.baselines import naive
from repro.core.atoms import atom
from repro.core.parser import parse_program
from repro.network.engine import MessagePassingEngine
from repro.relational.sqlite_backend import SqliteDatabase
from repro.workloads import chain_edges, facts_from_tables


@pytest.fixture
def db():
    return SqliteDatabase.from_tables({"e": [(1, 2), (1, 3), (2, 3)], "v": [("x",)]})


class TestAccess:
    def test_predicates(self, db):
        assert db.predicates() == ["e", "v"]
        assert "e" in db and "nope" not in db

    def test_relation_snapshot(self, db):
        rel = db.relation("e")
        assert rel.columns == ("a0", "a1")
        assert (1, 2) in rel

    def test_unknown_relation_empty(self, db):
        assert db.relation("nope").is_empty()
        assert db.relation_or_empty("nope", 2).columns == ("a0", "a1")

    def test_scan_counts(self, db):
        rel = db.scan("e")
        assert len(rel) == 3
        assert db.scans == 1 and db.rows_retrieved == 3

    def test_lookup_single_position(self, db):
        rows = db.lookup("e", {0: 1})
        assert sorted(rows) == [(1, 2), (1, 3)]
        assert db.indexed_lookups == 1

    def test_lookup_two_positions(self, db):
        assert db.lookup("e", {0: 1, 1: 3}) == [(1, 3)]

    def test_lookup_second_position_uses_index(self, db):
        # The footnote-2 scenario: position-1 lookups are indexed here.
        assert sorted(db.lookup("e", {1: 3})) == [(1, 3), (2, 3)]

    def test_lookup_no_bindings(self, db):
        assert len(db.lookup("e", {})) == 3

    def test_facts_roundtrip(self, db):
        facts = list(db.facts())
        assert atom("e", 1, 2) in facts
        assert atom("v", "x") in facts

    def test_total_rows_and_reset(self, db):
        assert db.total_rows() == 4
        db.scan("e")
        db.reset_counters()
        assert db.scans == 0

    def test_from_facts(self):
        db = SqliteDatabase.from_facts([atom("p", "a", 1), atom("p", "b", 2)])
        assert db.total_rows() == 2


class TestEngineIntegration:
    def test_query_over_sqlite(self):
        # Rules only; the EDB lives entirely in SQLite.
        rules = parse_program(
            """
            goal(Z) <- t(0, Z).
            t(X, Y) <- e(X, Y).
            t(X, Y) <- e(X, U), t(U, Y).
            """
        )
        edges = chain_edges(8)
        db = SqliteDatabase.from_tables({"e": edges})
        engine = MessagePassingEngine(rules, database=db)
        result = engine.run()
        oracle = naive.goal_answers(rules.with_facts(facts_from_tables({"e": edges})))
        assert result.answers == oracle
        # The engine really hit SQLite.
        assert db.indexed_lookups + db.scans > 0

    def test_same_answers_as_in_memory(self):
        rules = parse_program(
            """
            goal(Z) <- anc(a, Z).
            anc(X, Y) <- par(X, Y).
            anc(X, Y) <- par(X, U), anc(U, Y).
            """
        )
        par = [("a", "b"), ("b", "c"), ("c", "d")]
        inline = rules.with_facts(facts_from_tables({"par": par}))
        in_memory = MessagePassingEngine(inline).run()
        sqlite_backed = MessagePassingEngine(
            rules, database=SqliteDatabase.from_tables({"par": par})
        ).run()
        assert sqlite_backed.answers == in_memory.answers

    def test_statistics_from_sqlite(self):
        from repro.core.optimizer import EdbStatistics

        db = SqliteDatabase.from_tables({"e": [(i, i % 3) for i in range(30)]})
        stats = EdbStatistics.from_database(db)
        assert stats.cardinality("e") == 30
        assert stats.distinct("e", 1) == 3
