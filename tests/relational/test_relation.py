"""Unit tests for the Relation data structure."""

import pytest

from repro.relational.relation import Relation


@pytest.fixture
def edges() -> Relation:
    return Relation(("src", "dst"), [(1, 2), (2, 3), (1, 3)])


class TestConstruction:
    def test_schema_and_rows(self, edges):
        assert edges.columns == ("src", "dst")
        assert edges.arity == 2
        assert len(edges) == 3

    def test_duplicate_rows_collapse(self):
        r = Relation(("a",), [(1,), (1,), (2,)])
        assert len(r) == 2

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Relation(("a", "a"), [])

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            Relation(("a", "b"), [(1,)])

    def test_empty_factory(self):
        r = Relation.empty(("x", "y"))
        assert r.is_empty() and r.columns == ("x", "y")

    def test_from_pairs_coerces(self):
        r = Relation.from_pairs(("a", "b"), [[1, 2], (3, 4)])
        assert (1, 2) in r and (3, 4) in r

    def test_equality_and_hash(self, edges):
        same = Relation(("src", "dst"), [(2, 3), (1, 2), (1, 3)])
        assert edges == same
        assert hash(edges) == hash(same)
        assert edges != Relation(("src", "dst"), [(1, 2)])


class TestAccess:
    def test_membership(self, edges):
        assert (1, 2) in edges
        assert (9, 9) not in edges

    def test_position_lookup(self, edges):
        assert edges.position("dst") == 1
        with pytest.raises(ValueError):
            edges.position("nope")

    def test_index_groups_rows(self, edges):
        index = edges.index(("src",))
        assert sorted(index[(1,)]) == [(1, 2), (1, 3)]
        assert index[(2,)] == [(2, 3)]

    def test_index_memoized(self, edges):
        assert edges.index(("src",)) is edges.index(("src",))

    def test_lookup_missing_key(self, edges):
        assert edges.lookup(("src",), (42,)) == []

    def test_distinct_values(self, edges):
        assert edges.distinct_values("src") == {1, 2}


class TestOperations:
    def test_select_eq_uses_values(self, edges):
        out = edges.select_eq({"src": 1})
        assert set(out.rows) == {(1, 2), (1, 3)}

    def test_select_eq_multi_column(self, edges):
        out = edges.select_eq({"src": 1, "dst": 3})
        assert set(out.rows) == {(1, 3)}

    def test_select_eq_empty_bindings_is_identity(self, edges):
        assert edges.select_eq({}) is edges

    def test_select_predicate(self, edges):
        out = edges.select(lambda r: r[0] + 1 == r[1])
        assert set(out.rows) == {(1, 2), (2, 3)}

    def test_project_deduplicates(self, edges):
        out = edges.project(("src",))
        assert set(out.rows) == {(1,), (2,)}

    def test_project_reorders(self, edges):
        out = edges.project(("dst", "src"))
        assert (2, 1) in out

    def test_rename(self, edges):
        out = edges.rename({"src": "from"})
        assert out.columns == ("from", "dst")
        assert set(out.rows) == set(edges.rows)

    def test_union(self, edges):
        other = Relation(("src", "dst"), [(9, 9)])
        assert len(edges.union(other)) == 4

    def test_union_schema_mismatch(self, edges):
        with pytest.raises(ValueError):
            edges.union(Relation(("x", "y"), []))

    def test_difference(self, edges):
        out = edges.difference(Relation(("src", "dst"), [(1, 2)]))
        assert set(out.rows) == {(2, 3), (1, 3)}

    def test_difference_schema_mismatch(self, edges):
        with pytest.raises(ValueError):
            edges.difference(Relation(("x",), []))
