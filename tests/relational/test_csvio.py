"""Tests for CSV/TSV EDB loading."""

import pytest

from repro.core.parser import parse_program
from repro.network.engine import evaluate
from repro.relational.csvio import (
    facts_from_directory,
    load_directory,
    load_relation,
    parse_value,
)


class TestParseValue:
    def test_integers(self):
        assert parse_value("42") == 42
        assert parse_value(" -7 ") == -7

    def test_floats(self):
        assert parse_value("3.5") == 3.5

    def test_strings(self):
        assert parse_value(" ann ") == "ann"
        assert parse_value("12ab") == "12ab"


class TestLoadRelation:
    def test_csv(self, tmp_path):
        path = tmp_path / "e.csv"
        path.write_text("1,2\n2,3\n")
        assert load_relation(str(path)) == [(1, 2), (2, 3)]

    def test_tsv(self, tmp_path):
        path = tmp_path / "e.tsv"
        path.write_text("ann\tbob\nbob\tcal\n")
        assert load_relation(str(path)) == [("ann", "bob"), ("bob", "cal")]

    def test_header_skipped(self, tmp_path):
        path = tmp_path / "e.csv"
        path.write_text("src,dst\n1,2\n")
        assert load_relation(str(path), header=True) == [(1, 2)]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "e.csv"
        path.write_text("1,2\n\n2,3\n")
        assert len(load_relation(str(path))) == 2

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "e.csv"
        path.write_text("1,2\n3\n")
        with pytest.raises(ValueError):
            load_relation(str(path))


class TestDirectoryLoading:
    def make_dir(self, tmp_path):
        (tmp_path / "par.csv").write_text("ann,bob\nbob,cal\n")
        (tmp_path / "age.tsv").write_text("ann\t60\n")
        (tmp_path / "notes.txt").write_text("ignored")
        return str(tmp_path)

    def test_load_directory(self, tmp_path):
        tables = load_directory(self.make_dir(tmp_path))
        assert set(tables) == {"par", "age"}
        assert tables["age"] == [("ann", 60)]

    def test_facts_from_directory(self, tmp_path):
        facts = facts_from_directory(self.make_dir(tmp_path))
        assert len(facts) == 3
        assert all(f.is_ground() for f in facts)

    def test_end_to_end_with_engine(self, tmp_path):
        directory = self.make_dir(tmp_path)
        program = parse_program(
            """
            goal(Z) <- anc(ann, Z).
            anc(X, Y) <- par(X, Y).
            anc(X, Y) <- par(X, U), anc(U, Y).
            """
        )
        from repro.relational.csvio import facts_from_directory

        program = program.with_facts(facts_from_directory(directory))
        assert evaluate(program).answers == {("bob",), ("cal",)}


class TestCliDataFlag:
    def test_run_with_data_directory(self, tmp_path, capsys):
        (tmp_path / "par.csv").write_text("ann,bob\nbob,cal\n")
        rules = tmp_path / "rules.dl"
        rules.write_text(
            """
            goal(Z) <- anc(ann, Z).
            anc(X, Y) <- par(X, Y).
            anc(X, Y) <- par(X, U), anc(U, Y).
            """
        )
        from repro.cli import main

        assert main(["run", str(rules), "--data", str(tmp_path)]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert sorted(out) == ["bob", "cal"]
