"""Unit tests for the Yannakakis acyclic-join algorithm (§4.3's touchstone)."""

import pytest

from repro.core.hypergraph import Hypergraph
from repro.relational.relation import Relation
from repro.relational.yannakakis import (
    acyclic_join,
    full_reducer,
    is_pairwise_consistent,
)


def chain_instance(dangling: bool = True):
    """head(X) — a(X,Y) — b(Y,Z): a path schema with optional dangling rows."""
    tree = Hypergraph(
        {"head": {"X"}, "a": {"X", "Y"}, "b": {"Y", "Z"}}
    ).gyo_reduction().qual_tree("head")
    a_rows = [(1, 10), (2, 20)]
    b_rows = [(10, "u"), (10, "v")]
    if dangling:
        a_rows.append((3, 30))  # 30 matches nothing in b
        b_rows.append((99, "w"))  # 99 matches nothing in a
    relations = {
        "head": Relation(("X",), [(1,), (2,), (3,)] if dangling else [(1,), (2,)]),
        "a": Relation(("X", "Y"), a_rows),
        "b": Relation(("Y", "Z"), b_rows),
    }
    return tree, relations


class TestFullReducer:
    def test_removes_dangling_tuples(self):
        tree, relations = chain_instance(dangling=True)
        reduced = full_reducer(tree, relations)
        assert set(reduced["a"].rows) == {(1, 10)}
        assert set(reduced["b"].rows) == {(10, "u"), (10, "v")}
        assert set(reduced["head"].rows) == {(1,)}

    def test_result_is_pairwise_consistent(self):
        tree, relations = chain_instance(dangling=True)
        assert not is_pairwise_consistent(tree, relations)
        reduced = full_reducer(tree, relations)
        assert is_pairwise_consistent(tree, reduced)

    def test_clean_instance_untouched(self):
        tree, relations = chain_instance(dangling=False)
        reduced = full_reducer(tree, relations)
        # Every row of a joins with b here except (2,20); reduction keeps
        # exactly the consistent part.
        assert set(reduced["a"].rows) == {(1, 10)}


class TestAcyclicJoin:
    def test_join_result_correct(self):
        tree, relations = chain_instance(dangling=True)
        result = acyclic_join(tree, relations)
        expected = {(1, 10, "u"), (1, 10, "v")}
        assert set(result.result.project(("X", "Y", "Z")).rows) == expected

    def test_monotone_growth_after_reduction(self):
        # Yannakakis' guarantee: with full reduction, every intermediate is
        # bounded by the final result size.
        tree, relations = chain_instance(dangling=True)
        result = acyclic_join(tree, relations)
        final = len(result.result)
        assert all(size <= final for size in result.intermediate_sizes)

    def test_without_reduction_intermediates_can_exceed_final(self):
        # Build an instance whose dangling tuples inflate an intermediate.
        tree = Hypergraph(
            {"head": set(), "a": {"X", "Y"}, "b": {"Y", "Z"}, "c": {"Z", "W"}}
        ).gyo_reduction().qual_tree("head")
        relations = {
            "head": Relation((), [()]),
            "a": Relation(("X", "Y"), [(i, 0) for i in range(20)]),
            "b": Relation(("Y", "Z"), [(0, j) for j in range(20)]),
            "c": Relation(("Z", "W"), [(999, 0)]),  # kills everything
        }
        reduced = acyclic_join(tree, relations, reduce_first=True)
        unreduced = acyclic_join(tree, relations, reduce_first=False)
        assert len(reduced.result) == 0 and len(unreduced.result) == 0
        assert max(reduced.intermediate_sizes, default=0) == 0
        assert max(unreduced.intermediate_sizes) >= 400  # the a x b blow-up

    def test_meter_reports_semijoins_and_joins(self):
        tree, relations = chain_instance()
        result = acyclic_join(tree, relations)
        assert result.meter.semijoins > 0
        assert result.meter.joins == len(tree.nodes) - 1

    def test_star_schema(self):
        tree = Hypergraph(
            {"head": {"K"}, "a": {"K", "A"}, "b": {"K", "B"}, "c": {"K", "C"}}
        ).gyo_reduction().qual_tree("head")
        relations = {
            "head": Relation(("K",), [(1,), (2,)]),
            "a": Relation(("K", "A"), [(1, "a1"), (2, "a2"), (3, "a3")]),
            "b": Relation(("K", "B"), [(1, "b1"), (2, "b2")]),
            "c": Relation(("K", "C"), [(1, "c1")]),
        }
        result = acyclic_join(tree, relations)
        assert set(result.result.project(("K",)).rows) == {(1,)}
