"""Unit tests for the EDB Database wrapper."""

import pytest

from repro.core.atoms import atom
from repro.relational.database import Database, columns_for


class TestConstruction:
    def test_from_facts_groups_by_predicate(self):
        db = Database.from_facts([atom("e", 1, 2), atom("e", 2, 3), atom("v", 1)])
        assert db.predicates() == ["e", "v"]
        assert len(db.relation("e")) == 2
        assert db.relation("e").columns == ("a0", "a1")

    def test_from_facts_arity_conflict(self):
        with pytest.raises(ValueError):
            Database.from_facts([atom("e", 1), atom("e", 1, 2)])

    def test_from_tuples(self):
        db = Database.from_tuples({"e": [(1, 2)], "v": [(9,)]})
        assert (1, 2) in db.relation("e")

    def test_columns_for(self):
        assert columns_for(3) == ("a0", "a1", "a2")
        assert columns_for(2, "x") == ("x0", "x1")

    def test_unknown_predicate_gives_empty(self):
        db = Database()
        assert db.relation("nope").is_empty()
        assert db.relation_or_empty("nope", 2).columns == ("a0", "a1")

    def test_add_relation(self):
        from repro.relational.relation import Relation

        db = Database()
        db.add_relation("e", Relation(("a0", "a1"), [(1, 2)]))
        assert "e" in db


class TestAccessCounting:
    def setup_method(self):
        self.db = Database.from_tuples({"e": [(1, 2), (1, 3), (2, 3)]})

    def test_scan_counts(self):
        rel = self.db.scan("e")
        assert len(rel) == 3
        assert self.db.scans == 1
        assert self.db.rows_retrieved == 3

    def test_lookup_bound_position(self):
        rows = self.db.lookup("e", {0: 1})
        assert sorted(rows) == [(1, 2), (1, 3)]
        assert self.db.indexed_lookups == 1
        assert self.db.rows_retrieved == 2

    def test_lookup_two_positions(self):
        assert self.db.lookup("e", {0: 1, 1: 3}) == [(1, 3)]

    def test_lookup_no_bindings_is_full_retrieval(self):
        rows = self.db.lookup("e", {})
        assert len(rows) == 3

    def test_lookup_unknown_predicate(self):
        assert self.db.lookup("nope", {0: 1}) == []

    def test_reset_counters(self):
        self.db.scan("e")
        self.db.reset_counters()
        assert self.db.scans == 0 and self.db.rows_retrieved == 0

    def test_total_rows(self):
        assert self.db.total_rows() == 3

    def test_facts_roundtrip(self):
        facts = list(self.db.facts())
        assert atom("e", 1, 2) in facts
        assert len(facts) == 3
