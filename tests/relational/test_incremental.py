"""Incremental growth: Relation.extended and Database.add_facts."""

import pytest

from repro.core.atoms import atom
from repro.relational.database import Database
from repro.relational.relation import Relation


class TestRelationExtended:
    def test_adds_rows_without_mutating_original(self):
        base = Relation(("a0", "a1"), [(1, 2), (3, 4)])
        grown = base.extended([(5, 6)])
        assert len(base) == 2
        assert len(grown) == 3
        assert (5, 6) in grown and (5, 6) not in base
        assert grown.columns == base.columns

    def test_duplicate_rows_return_self(self):
        base = Relation(("a0",), [(1,), (2,)])
        assert base.extended([(1,), (2,)]) is base
        assert base.extended([]) is base

    def test_arity_mismatch_raises(self):
        base = Relation(("a0", "a1"), [(1, 2)])
        with pytest.raises(ValueError):
            base.extended([(1, 2, 3)])

    def test_memoized_indexes_carry_forward(self):
        base = Relation(("a0", "a1"), [(1, "x"), (2, "y")])
        base.lookup(("a0",), (1,))  # force index construction
        grown = base.extended([(1, "z"), (3, "w")])
        # The index came over without a rebuild: it exists before any lookup.
        assert tuple(grown._indexes) == tuple(base._indexes)
        assert sorted(grown.lookup(("a0",), (1,))) == [(1, "x"), (1, "z")]
        assert grown.lookup(("a0",), (3,)) == [(3, "w")]
        # The original relation's index is untouched by the extension.
        assert base.lookup(("a0",), (1,)) == [(1, "x")]
        assert base.lookup(("a0",), (3,)) == []

    def test_multiple_indexes_all_extended(self):
        base = Relation(("a0", "a1"), [(1, "x"), (2, "y")])
        base.index(("a0",))
        base.index(("a1",))
        grown = base.extended([(3, "x")])
        assert sorted(grown.lookup(("a1",), ("x",))) == [(1, "x"), (3, "x")]
        assert grown.lookup(("a0",), (3,)) == [(3, "x")]

    def test_extension_chain(self):
        rel = Relation(("a0",), [(0,)])
        rel.index(("a0",))
        for i in range(1, 50):
            rel = rel.extended([(i,)])
        assert len(rel) == 50
        assert rel.lookup(("a0",), (25,)) == [(25,)]


class TestDatabaseAddFacts:
    def test_new_predicate(self):
        db = Database.from_facts([atom("p", "a", "b")])
        db.add_facts([atom("q", "c")])
        assert "q" in db
        assert len(db.relation("q")) == 1

    def test_existing_predicate_grows(self):
        db = Database.from_facts([atom("p", "a", "b")])
        db.add_facts([atom("p", "b", "c"), atom("p", "c", "d")])
        assert len(db.relation("p")) == 3
        assert db.total_rows() == 3

    def test_indexes_survive_growth(self):
        db = Database.from_facts([atom("p", "a", "b")])
        assert db.lookup("p", {0: "a"}) == [("a", "b")]
        relation_before = db.relation("p")
        db.add_facts([atom("p", "a", "c")])
        # Grown via Relation.extended: the index was carried, not rebuilt.
        assert db.relation("p") is not relation_before
        assert tuple(db.relation("p")._indexes)  # prepopulated
        assert sorted(db.lookup("p", {0: "a"})) == [("a", "b"), ("a", "c")]

    def test_arity_mismatch_within_batch_is_atomic(self):
        db = Database.from_facts([atom("p", "a", "b")])
        with pytest.raises(ValueError):
            db.add_facts([atom("q", "x"), atom("q", "y", "z")])
        assert "q" not in db
        assert db.total_rows() == 1

    def test_arity_mismatch_with_existing_is_atomic(self):
        db = Database.from_facts([atom("p", "a", "b")])
        with pytest.raises(ValueError):
            db.add_facts([atom("r", "x"), atom("p", "only-one")])
        assert "r" not in db  # the valid group was not applied either
        assert len(db.relation("p")) == 1

    def test_counters_snapshot(self):
        db = Database.from_facts([atom("p", "a", "b")])
        assert db.counters() == (0, 0, 0)
        db.scan("p")
        db.lookup("p", {0: "a"})
        assert db.counters() == (1, 1, 2)
