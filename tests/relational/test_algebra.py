"""Unit tests for the relational algebra operators and the work meter."""

import pytest

from repro.relational.algebra import (
    WorkMeter,
    antijoin,
    cross_product,
    join_all,
    natural_join,
    semijoin,
)
from repro.relational.relation import Relation


@pytest.fixture
def ab() -> Relation:
    return Relation(("a", "b"), [(1, 10), (2, 20), (3, 30)])


@pytest.fixture
def bc() -> Relation:
    return Relation(("b", "c"), [(10, "x"), (10, "y"), (20, "z")])


class TestNaturalJoin:
    def test_basic(self, ab, bc):
        out = natural_join(ab, bc)
        assert out.columns == ("a", "b", "c")
        assert set(out.rows) == {(1, 10, "x"), (1, 10, "y"), (2, 20, "z")}

    def test_no_shared_columns_is_cross_product(self):
        left = Relation(("a",), [(1,), (2,)])
        right = Relation(("b",), [(7,), (8,)])
        assert len(natural_join(left, right)) == 4

    def test_multi_column_join(self):
        left = Relation(("a", "b", "x"), [(1, 2, "l1"), (1, 3, "l2")])
        right = Relation(("a", "b", "y"), [(1, 2, "r1"), (1, 9, "r2")])
        out = natural_join(left, right)
        assert set(out.rows) == {(1, 2, "l1", "r1")}

    def test_empty_operand(self, ab):
        out = natural_join(ab, Relation(("b", "c")))
        assert out.is_empty()

    def test_meter_accounting(self, ab, bc):
        meter = WorkMeter()
        out = natural_join(ab, bc, meter)
        assert meter.joins == 1
        assert meter.join_input_rows == len(ab) + len(bc)
        assert meter.join_output_rows == len(out)
        assert meter.total_join_cost == len(ab) + len(bc) + len(out)


class TestSemijoin:
    def test_keeps_matching_rows_only(self, ab, bc):
        out = semijoin(ab, bc)
        assert out.columns == ab.columns
        assert set(out.rows) == {(1, 10), (2, 20)}

    def test_no_shared_columns(self, ab):
        nonempty = Relation(("z",), [(0,)])
        empty = Relation(("z",), [])
        assert semijoin(ab, nonempty) == ab
        assert semijoin(ab, empty).is_empty()

    def test_meter_counts_semijoins(self, ab, bc):
        meter = WorkMeter()
        semijoin(ab, bc, meter)
        assert meter.semijoins == 1
        assert meter.joins == 0


class TestAntijoin:
    def test_complement_of_semijoin(self, ab, bc):
        kept = set(semijoin(ab, bc).rows)
        dropped = set(antijoin(ab, bc).rows)
        assert kept | dropped == set(ab.rows)
        assert kept & dropped == set()

    def test_no_shared_columns(self, ab):
        assert antijoin(ab, Relation(("z",), [(0,)])).is_empty()
        assert antijoin(ab, Relation(("z",), [])) == ab


class TestCrossProduct:
    def test_requires_disjoint_schemas(self, ab):
        with pytest.raises(ValueError):
            cross_product(ab, ab)

    def test_size(self):
        left = Relation(("a",), [(1,), (2,)])
        right = Relation(("b",), [(1,), (2,), (3,)])
        assert len(cross_product(left, right)) == 6


class TestJoinAll:
    def test_chain(self, ab, bc):
        cd = Relation(("c", "d"), [("x", True)])
        out = join_all([ab, bc, cd])
        assert set(out.rows) == {(1, 10, "x", True)}

    def test_order_changes_intermediates_not_result(self, ab, bc):
        cd = Relation(("c", "d"), [("x", True), ("z", False)])
        m1, m2 = WorkMeter(), WorkMeter()
        r1 = join_all([ab, bc, cd], m1)
        r2 = join_all([cd, bc, ab], m2)
        assert set(r1.project(("a", "b", "c", "d")).rows) == set(
            r2.project(("a", "b", "c", "d")).rows
        )

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            join_all([])

    def test_single_relation(self, ab):
        assert join_all([ab]) == ab


class TestWorkMeter:
    def test_merged_with(self):
        a = WorkMeter(joins=1, join_input_rows=10, join_output_rows=5,
                      tuples_materialized=5, peak_intermediate=5)
        b = WorkMeter(joins=2, join_input_rows=20, join_output_rows=30,
                      tuples_materialized=30, peak_intermediate=30)
        merged = a.merged_with(b)
        assert merged.joins == 3
        assert merged.join_input_rows == 30
        assert merged.peak_intermediate == 30

    def test_peak_tracks_maximum(self):
        meter = WorkMeter()
        meter.record_join(5, 5, 7)
        meter.record_join(5, 5, 3)
        assert meter.peak_intermediate == 7
