"""The single numpy import guard.

numpy is an *optional* extra (``pip install repro[fast]``): every consumer
imports :data:`np` from here and checks :data:`HAVE_NUMPY` (or just handles
``np is None``).  Two ways to end up on the pure-python fallback:

* numpy is not installed — the ``fast`` extra was omitted;
* ``REPRO_NO_NUMPY`` is set in the environment — the escape hatch the test
  suite uses to exercise the fallback on machines that *do* have numpy.

Both paths must behave identically; the differential tests in
``tests/property/`` and ``tests/network/test_columnar.py`` enforce it.
"""

from __future__ import annotations

import os

np = None
if not os.environ.get("REPRO_NO_NUMPY"):
    try:  # pragma: no cover - exercised via subprocess in the tests
        import numpy as np  # type: ignore[no-redef]
    except ImportError:
        np = None

#: True when the numpy-backed column representation is in use.
HAVE_NUMPY = np is not None

__all__ = ["np", "HAVE_NUMPY"]
