"""Command-line interface: evaluate Datalog files with the message framework.

Usage examples::

    repro-datalog run examples/data/ancestor.dl
    repro-datalog run program.dl --query 'p(a, Z)' --sip all-free --stats
    repro-datalog graph program.dl            # print the rule/goal graph
    repro-datalog trace program.dl --limit 40 # show the message conversation
    repro-datalog bench-session program.dl --repeat 200  # serving benchmark
    repro-datalog serve program.dl --port 7464           # concurrent query service

The file format is the Prolog-style syntax of :mod:`repro.core.parser`:
facts, rules (``<-`` or ``:-``), and ``?-`` queries.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core.parser import parse_atom, parse_program, query_to_rule
from .core.program import Program
from .core.rulegoal import build_rule_goal_graph
from .core.rules import GOAL_PREDICATE
from .core.sips import all_free_sip, greedy_sip, left_to_right_sip
from .network.engine import MessagePassingEngine, evaluate
from .network.tracing import MessageTrace

__all__ = ["main", "build_parser"]

_SIPS = {
    "greedy": greedy_sip,
    "left-to-right": left_to_right_sip,
    "all-free": all_free_sip,
}


def _load_program(path: str, query: Optional[str], data: Optional[str] = None) -> Program:
    with open(path) as handle:
        program = parse_program(handle.read())
    if data is not None:
        from .relational.csvio import facts_from_directory

        extra = facts_from_directory(data)
        program = Program(program.rules, tuple(program.facts) + tuple(extra))
    if query is not None:
        # A --query replaces any queries in the file.
        from .core.parser import _Parser, _tokenize  # reuse the atom-list parser

        rules = [r for r in program.rules if r.head.predicate != GOAL_PREDICATE]
        parser = _Parser(_tokenize(query.rstrip(". ") + "."))
        atoms = parser.atom_list()
        rules.append(query_to_rule(atoms))
        program = Program(rules, program.facts)
    return program


def _retry_policy(args: argparse.Namespace):
    """The mp/pool retry schedule from the run flags (deterministic default)."""
    from .runtime import RetryPolicy

    return RetryPolicy(
        max_attempts=args.retries,
        backoff=args.retry_backoff,
        backoff_factor=args.retry_backoff_factor,
        jitter=args.retry_jitter,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    program = _load_program(args.file, args.query, args.data)
    if args.runtime == "simulator":
        result = evaluate(
            program,
            sip_factory=_SIPS[args.sip],
            seed=args.seed,
            coalesce=args.coalesce,
            package_requests=args.package,
            tuple_sets=not args.no_tuple_sets,
            columnar=not args.no_columnar,
            planner=args.planner,
        )
        answers = result.answers
    elif args.runtime == "asyncio":
        from .runtime import evaluate_async

        result = evaluate_async(
            program,
            sip_factory=_SIPS[args.sip],
            coalesce=args.coalesce,
            package_requests=args.package,
            tuple_sets=not args.no_tuple_sets,
            columnar=not args.no_columnar,
            planner=args.planner,
        )
        answers = result.answers
    elif args.runtime == "cluster":
        from .cluster import evaluate_cluster

        if args.cluster_connect and args.cluster_listen:
            print(
                "error: --cluster-connect and --cluster-listen are "
                "mutually exclusive",
                file=sys.stderr,
            )
            return 2
        if args.cluster_listen:
            print(
                f"announcing cluster manager on {args.cluster_listen}; "
                f"waiting for workers "
                f"(repro worker --connect {args.cluster_listen})",
                file=sys.stderr,
            )
        result = evaluate_cluster(
            program,
            sip_factory=_SIPS[args.sip],
            workers=args.workers,
            batch_size=args.batch_size,
            coalesce=args.coalesce,
            package_requests=args.package,
            tuple_sets=not args.no_tuple_sets,
            columnar=not args.no_columnar,
            planner=args.planner,
            retry=_retry_policy(args),
            fallback=args.fallback,
            heartbeat_interval=args.heartbeat_interval,
            address=args.cluster_connect,
            listen=args.cluster_listen,
        )
        answers = result.answers
    elif args.runtime == "mp":
        from .runtime import evaluate_multiprocessing

        result = evaluate_multiprocessing(
            program,
            sip_factory=_SIPS[args.sip],
            coalesce=args.coalesce,
            package_requests=args.package,
            tuple_sets=not args.no_tuple_sets,
            columnar=not args.no_columnar,
            planner=args.planner,
            retry=_retry_policy(args),
            fallback=args.fallback,
            heartbeat_interval=args.heartbeat_interval,
        )
        answers = result.answers
    else:  # pool
        from .runtime import evaluate_pool

        result = evaluate_pool(
            program,
            sip_factory=_SIPS[args.sip],
            workers=args.workers,
            batch_size=args.batch_size,
            coalesce=args.coalesce,
            package_requests=args.package,
            tuple_sets=not args.no_tuple_sets,
            columnar=not args.no_columnar,
            planner=args.planner,
            retry=_retry_policy(args),
            fallback=args.fallback,
            heartbeat_interval=args.heartbeat_interval,
        )
        answers = result.answers
    for row in sorted(answers, key=repr):
        print(", ".join(str(v) for v in row) if row else "true")
    if args.runtime in ("mp", "pool", "cluster") and (
        result.attempts > 1 or result.degraded
    ):
        # Crash summary: printed even without --stats, because a recovered
        # or degraded answer is something the caller should know about.
        outcome = (
            "degraded to the in-process runtime"
            if result.degraded
            else "recovered by retry"
        )
        print(
            f"-- {outcome} after {result.attempts} attempt(s)", file=sys.stderr
        )
        for entry in result.failure_log:
            print(f"--   {entry}", file=sys.stderr)
    if args.stats:
        print("--", file=sys.stderr)
        if args.runtime == "simulator":
            print(result.summary(), file=sys.stderr)
        elif args.runtime == "pool":
            print(
                f"workers: {result.workers}; cross-shard messages: "
                f"{result.cross_messages} in {result.cross_batches} batches "
                f"({result.batching_factor:.1f} msgs/batch)",
                file=sys.stderr,
            )
            print(
                f"attempts: {result.attempts}; degraded: {result.degraded}",
                file=sys.stderr,
            )
        elif args.runtime == "cluster":
            print(result.summary(), file=sys.stderr)
        elif args.runtime == "mp":
            print(f"processes: {result.processes}", file=sys.stderr)
            print(
                f"attempts: {result.attempts}; degraded: {result.degraded}",
                file=sys.stderr,
            )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run one remote shard worker against a cluster manager."""
    from .cluster import worker_main

    try:
        worker_main(
            args.connect,
            name=args.name,
            reconnect_attempts=args.reconnect_attempts,
            reconnect_backoff=args.reconnect_backoff,
            quiet=args.quiet,
        )
    except KeyboardInterrupt:
        pass
    except (RuntimeError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    program = _load_program(args.file, args.query, args.data)
    graph = build_rule_goal_graph(
        program, sip_factory=_SIPS[args.sip], coalesce=args.coalesce
    )
    if args.dot:
        print(graph.to_dot())
        return 0
    print(graph.pretty())
    print(f"-- {len(graph.goal_nodes)} goal nodes, {len(graph.rule_nodes)} rule nodes")
    for info in graph.strong_components():
        members = ", ".join(graph.node_label(m) for m in sorted(info.members))
        print(f"-- strong component (leader {graph.node_label(info.leader)}): {members}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    program = _load_program(args.file, args.query, args.data)
    trace = MessageTrace(limit=args.limit, include_protocol=not args.no_protocol)
    engine = MessagePassingEngine(
        program,
        sip_factory=_SIPS[args.sip],
        seed=args.seed,
        trace=trace,
        coalesce=args.coalesce,
        package_requests=args.package,
        tuple_sets=not args.no_tuple_sets,
        columnar=not args.no_columnar,
        planner=args.planner,
    )
    result = engine.run()
    print(trace.render(engine.graph))
    print(f"-- {len(result.answers)} answers; {result.total_messages} messages")
    return 0


def _cmd_bench_session(args: argparse.Namespace) -> int:
    """Repeated-query serving benchmark: session caching vs per-query rebuild."""
    import time

    from .session import Session

    program = _load_program(args.file, args.query, args.data)
    query_rules = program.query_rules
    if not query_rules:
        print("no query: pass --query or include a '?-' clause", file=sys.stderr)
        return 2
    atoms = list(query_rules[0].body)
    if len(query_rules) > 1:
        print("multiple queries in file; benchmarking the first", file=sys.stderr)

    def timed(cache_size: int) -> tuple[Session, set, float, float]:
        session = Session(
            program,
            sip_factory=_SIPS[args.sip],
            coalesce=args.coalesce,
            package_requests=args.package,
            tuple_sets=not args.no_tuple_sets,
            columnar=not args.no_columnar,
            planner=args.planner,
            graph_cache_size=cache_size,
        )
        start = time.perf_counter()
        answers = session.query(atoms, seed=args.seed)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(args.repeat - 1):
            session.query(atoms, seed=args.seed)
        warm = time.perf_counter() - start
        return session, answers, cold, warm

    session, answers, cold, warm = timed(args.cache_size)
    repeats = args.repeat - 1
    print(f"query: {', '.join(str(a) for a in atoms)}")
    print(f"answers: {len(answers)}; total queries: {args.repeat}")
    print(f"first query (cache miss): {cold * 1e3:9.3f} ms")
    if repeats > 0:
        warm_avg = warm / repeats
        print(f"repeat query (cached):    {warm_avg * 1e3:9.3f} ms avg over {repeats}")
    print(f"graph cache: {session.cache_stats()}")
    if not args.no_compare and repeats > 0:
        _, _, cold0, warm0 = timed(0)
        warm0_avg = warm0 / repeats
        factor = warm0_avg / warm_avg if warm_avg else float("inf")
        print(f"uncached repeat query:    {warm0_avg * 1e3:9.3f} ms avg over {repeats}")
        print(f"caching speedup on repeats: {factor:.2f}x")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the concurrent query service over one knowledge-base file."""
    import asyncio

    from .service import (
        DurableStore,
        LogLockedError,
        QueryServer,
        ServerConfig,
        SharedSession,
    )

    program = _load_program(args.file, None, args.data)
    session_options = dict(
        sip_factory=_SIPS[args.sip],
        coalesce=args.coalesce,
        package_requests=args.package,
        tuple_sets=not args.no_tuple_sets,
        columnar=not args.no_columnar,
        planner=args.planner,
        graph_cache_size=args.cache_size,
        runtime=args.eval_runtime,
        workers=args.workers,
        cluster_address=args.cluster_connect,
        cluster_listen=args.cluster_listen,
    )
    if args.cluster_connect and args.cluster_listen:
        print(
            "error: --cluster-connect and --cluster-listen are mutually "
            "exclusive",
            file=sys.stderr,
        )
        return 2
    if args.replicas > 1:
        if args.cluster_listen:
            # Each replica is its own Session; N of them cannot all bind
            # the one announce address.  Run an external manager instead.
            print(
                "error: --cluster-listen cannot be combined with --replicas; "
                "run the manager in one process and point the replicas at it "
                "with --cluster-connect",
                file=sys.stderr,
            )
            return 2
        return _serve_replicated(args, program, session_options)
    store = None
    if args.data_dir:
        store = DurableStore(
            args.data_dir,
            fsync_interval=args.fsync_interval,
            snapshot_every=args.snapshot_every,
        )
        # Fail a doubly-served --data-dir at boot, not at the first write.
        try:
            store.acquire_lock()
        except LogLockedError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        session, report = store.restore(program, **session_options)
        shared = SharedSession(
            session=session,
            store=store,
            answer_cache_size=args.answer_cache_size,
            materialize=args.materialize,
            materialize_pool=args.materialize_pool,
        )
        print(
            f"data-dir {args.data_dir}: "
            + (
                f"replayed {report.records_replayed} logged writes on top of "
                f"snapshot (db_version={session.db_version}"
                + (", torn tail dropped" if report.torn_tail_dropped else "")
                + ")"
                if not report.bootstrapped
                else "bootstrapped from the knowledge-base file"
            ),
            flush=True,
        )
    else:
        shared = SharedSession(
            program,
            answer_cache_size=args.answer_cache_size,
            materialize=args.materialize,
            materialize_pool=args.materialize_pool,
            **session_options,
        )
    if args.cluster_listen and args.eval_runtime == "cluster":
        # Bind the announced manager before accepting service traffic so
        # workers can register while the server boots; the first query
        # still waits for at least one registration (session timeout).
        manager_address = shared.session.cluster_listen_address
        print(
            f"cluster manager listening on {manager_address}; "
            f"start workers with: repro worker --connect {manager_address}",
            flush=True,
        )
    server = QueryServer(
        shared,
        ServerConfig(
            host=args.host,
            port=args.port,
            max_concurrent=args.max_concurrent,
            max_queue=args.max_queue,
            default_deadline=args.deadline,
            drain_timeout=args.drain_timeout,
        ),
    )

    async def _main() -> None:
        await server.start()
        server.install_signal_handlers()
        print(
            f"serving {args.file} on {server.host}:{server.port} "
            f"(runtime={args.eval_runtime}, max_concurrent={args.max_concurrent}, "
            f"max_queue={args.max_queue}"
            + (", materialize=on" if args.materialize else "")
            + ")",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    finally:
        if store is not None:
            store.close()
    print("drained and stopped", file=sys.stderr)
    return 0


def _serve_replicated(args: argparse.Namespace, program, session_options: dict) -> int:
    """Run N replica servers behind the failover front door."""
    import asyncio

    from .service.persistence import LogLockedError
    from .service.replication import ReplicaConfig, ReplicaSet, ReplicaSetConfig

    try:
        # The ReplicaSet takes the data dir's writer lock at construction,
        # so a doubly-served --data-dir fails here, cleanly, not mid-boot.
        replica_set = ReplicaSet(
            program,
            data_dir=args.data_dir,  # None = ephemeral tempdir for this run
            config=ReplicaSetConfig(
                replicas=args.replicas,
                host=args.host,
                port=args.port,
                read_timeout=args.deadline,
                drain_timeout=args.drain_timeout,
                warmup_queries=args.warmup_queries,
            ),
            replica_config=ReplicaConfig(
                max_concurrent=args.max_concurrent,
                max_queue=args.max_queue,
                default_deadline=args.deadline,
                answer_cache_size=args.answer_cache_size,
                materialize=args.materialize,
                materialize_pool=args.materialize_pool,
            ),
            fsync_interval=args.fsync_interval,
            snapshot_every=args.snapshot_every,
            session_options=session_options,
        )
    except LogLockedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    async def _main() -> None:
        import signal as signal_module

        await replica_set.start()
        loop = asyncio.get_running_loop()
        for sig in (signal_module.SIGINT, signal_module.SIGTERM):
            try:
                loop.add_signal_handler(sig, replica_set.request_shutdown)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        print(
            f"serving {args.file} on {replica_set.host}:{replica_set.port} "
            f"(replicas={args.replicas}, runtime={args.eval_runtime}, "
            f"max_concurrent={args.max_concurrent}, max_queue={args.max_queue}"
            + (", materialize=on" if args.materialize else "")
            + ")",
            flush=True,
        )
        try:
            await replica_set.serve_forever()
        finally:
            await replica_set.shutdown()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    print("drained and stopped", file=sys.stderr)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Print the cost planner's decisions for the query, without running it.

    Builds the rule/goal graph under ``planner="cost"`` (the §4.3 model
    seeded with the observed EDB sizes) and prints the full
    :class:`~repro.core.planner.PlanReport`: every rule instantiation with
    its ranked subgoal orders, per-stage estimates (bound arguments,
    operand/result magnitudes, stage cost), and the chosen plan.
    """
    program = _load_program(args.file, args.query, args.data)
    if not program.query_rules:
        print("no query: pass --query or include a '?-' clause", file=sys.stderr)
        return 2
    engine = MessagePassingEngine(
        program,
        sip_factory=_SIPS[args.sip],
        coalesce=args.coalesce,
        package_requests=args.package,
        tuple_sets=not args.no_tuple_sets,
        columnar=not args.no_columnar,
        planner="cost",
    )
    print(engine.plan_report.render())
    if args.run:
        result = engine.run()
        print()
        print(result.summary())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .core.analysis import analyze

    program = _load_program(args.file, args.query, args.data)
    report = analyze(program, sip_factory=_SIPS[args.sip])
    print(report.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-datalog",
        description="Message-passing Datalog query evaluation (Van Gelder, SIGMOD 1986)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="Datalog source file")
        p.add_argument("--query", help="query atoms, e.g. 'p(a, Z)' (overrides ?- in the file)")
        p.add_argument(
            "--sip", choices=sorted(_SIPS), default="greedy", help="information passing strategy"
        )
        p.add_argument("--seed", type=int, default=None, help="randomize message latencies")
        p.add_argument(
            "--data",
            help="directory of <predicate>.csv / .tsv files to load as EDB facts",
        )
        p.add_argument(
            "--coalesce",
            action="store_true",
            help="merge goal nodes with identical binding patterns (single-processor mode)",
        )
        p.add_argument(
            "--package",
            action="store_true",
            help="batch related tuple requests (footnote-2 packaging)",
        )
        p.add_argument(
            "--no-tuple-sets",
            action="store_true",
            help="disable packaged answer sets and bulk join kernels "
            "(per-tuple A/B baseline)",
        )
        p.add_argument(
            "--no-columnar",
            action="store_true",
            help="disable the columnar batch kernels (row-at-a-time joins "
            "over the same set-at-a-time messages; the columnar A/B baseline)",
        )
        p.add_argument(
            "--planner",
            choices=["static", "cost"],
            default="static",
            help="subgoal-order planner: 'static' keeps the structural SIP "
            "order, 'cost' ranks body permutations with the Section 4.3 "
            "model seeded with observed EDB sizes",
        )

    run_p = sub.add_parser("run", help="evaluate the query and print the answers")
    common(run_p)
    run_p.add_argument("--stats", action="store_true", help="print run statistics to stderr")
    run_p.add_argument(
        "--runtime",
        choices=["simulator", "asyncio", "mp", "pool", "cluster"],
        default="simulator",
        help="execution substrate: deterministic simulator (default), asyncio "
        "tasks, one OS process per node (mp), pooled shard workers with "
        "batched channels (pool), or remote shard workers behind a TCP "
        "cluster manager (cluster)",
    )
    run_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool/cluster runtimes: number of shard workers "
        "(pool default: cpu count; cluster default: all registered)",
    )
    run_p.add_argument(
        "--batch-size",
        type=int,
        default=64,
        help="pool/cluster runtimes: messages per cross-shard batch before "
        "a forced flush",
    )
    run_p.add_argument(
        "--cluster-connect",
        default=None,
        metavar="HOST:PORT",
        help="cluster runtime: address of a running cluster manager "
        "(default: start a private localhost harness for this query)",
    )
    run_p.add_argument(
        "--cluster-listen",
        default=None,
        metavar="HOST:PORT",
        help="cluster runtime: announce a manager at this address for the "
        "query's duration and wait for remote 'repro worker --connect' "
        "registrations (mutually exclusive with --cluster-connect)",
    )
    run_p.add_argument(
        "--retries",
        type=int,
        default=1,
        help="mp/pool runtimes: total attempts on worker crash or timeout "
        "(whole-query re-execution; safe for monotone programs)",
    )
    run_p.add_argument(
        "--retry-backoff",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="mp/pool runtimes: base delay before the second attempt "
        "(0 = retry immediately, the deterministic default)",
    )
    run_p.add_argument(
        "--retry-backoff-factor",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="mp/pool runtimes: multiply the backoff by this per further "
        "attempt (2.0 = classic exponential backoff)",
    )
    run_p.add_argument(
        "--retry-jitter",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="mp/pool runtimes: add up to this much uniform random delay to "
        "each backoff (decorrelates retry stampedes; 0 keeps runs "
        "deterministic)",
    )
    run_p.add_argument(
        "--fallback",
        choices=["none", "inprocess"],
        default="none",
        help="mp/pool runtimes: after exhausting retries, answer from the "
        "in-process scheduler instead of raising (result is flagged degraded)",
    )
    run_p.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="mp/pool runtimes: arm wedged-worker detection — a worker whose "
        "heartbeat stalls for 2x this interval raises a typed error "
        "(crash detection is always on)",
    )
    run_p.set_defaults(func=_cmd_run)

    graph_p = sub.add_parser("graph", help="print the information-passing rule/goal graph")
    common(graph_p)
    graph_p.add_argument("--dot", action="store_true", help="emit Graphviz DOT instead of text")
    graph_p.set_defaults(func=_cmd_graph)

    trace_p = sub.add_parser("trace", help="evaluate and print the message trace")
    common(trace_p)
    trace_p.add_argument("--limit", type=int, default=200, help="max messages to record")
    trace_p.add_argument("--no-protocol", action="store_true", help="hide protocol messages")
    trace_p.set_defaults(func=_cmd_trace)

    analyze_p = sub.add_parser(
        "analyze", help="static analysis: recursion classes, monotone flow, warnings"
    )
    common(analyze_p)
    analyze_p.set_defaults(func=_cmd_analyze)

    explain_p = sub.add_parser(
        "explain",
        help="show the cost planner's chosen subgoal orders, ranked "
        "alternatives, and per-stage Section 4.3 estimates",
    )
    common(explain_p)
    explain_p.add_argument(
        "--run",
        action="store_true",
        help="also evaluate the query and append the run summary",
    )
    explain_p.set_defaults(func=_cmd_explain)

    serve_p = sub.add_parser(
        "serve",
        help="serve the knowledge base over TCP (NDJSON protocol, "
        "concurrent queries, admission control)",
    )
    common(serve_p)
    serve_p.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_p.add_argument(
        "--port", type=int, default=7464, help="TCP port (0 = ephemeral)"
    )
    serve_p.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="serve through N replica processes behind a failover front "
        "door (health-checked circuit breakers, log-replay resync; "
        "writes fan out log-then-ack); 1 = single classic server",
    )
    serve_p.add_argument(
        "--warmup-queries",
        type=int,
        default=8,
        help="with --replicas: replay up to N recent distinct reads "
        "against a resynced replica (as cache-priming 'warm' ops) "
        "before readmitting it; 0 disables the warm-up",
    )
    serve_p.add_argument(
        "--max-concurrent",
        type=int,
        default=4,
        help="evaluation slots: queries running at once",
    )
    serve_p.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="requests allowed to wait for a slot before typed rejection",
    )
    serve_p.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="default per-request deadline (queue wait + evaluation)",
    )
    serve_p.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="grace period for in-flight evaluations at shutdown",
    )
    serve_p.add_argument(
        "--eval-runtime",
        choices=["simulator", "pool", "mp", "cluster"],
        default="simulator",
        help="substrate each evaluation dispatches to (see Session runtime=)",
    )
    serve_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool/cluster runtimes: shard workers per evaluation",
    )
    serve_p.add_argument(
        "--cluster-connect",
        default=None,
        metavar="HOST:PORT",
        help="with --eval-runtime cluster: address of a running cluster "
        "manager (default: the service starts a private localhost harness "
        "on the first query and keeps it warm)",
    )
    serve_p.add_argument(
        "--cluster-listen",
        default=None,
        metavar="HOST:PORT",
        help="with --eval-runtime cluster: announce the cluster manager at "
        "this address so one process fronts both the query service and the "
        "cluster; remote workers dial in with 'repro worker --connect' "
        "(mutually exclusive with --cluster-connect; not with --replicas)",
    )
    serve_p.add_argument(
        "--cache-size",
        type=int,
        default=64,
        help="graph-cache LRU capacity shared by all clients",
    )
    serve_p.add_argument(
        "--answer-cache-size",
        type=int,
        default=256,
        metavar="ENTRIES",
        help="answer-cache LRU capacity (full answer sets keyed by query "
        "signature + db_version; 0 disables)",
    )
    serve_p.add_argument(
        "--materialize",
        action="store_true",
        help="keep evaluated networks warm and propagate add_facts deltas "
        "semi-naively instead of re-deriving fixpoints (simulator runtime "
        "only; hot answer-cache entries are refreshed across writes, not "
        "invalidated)",
    )
    serve_p.add_argument(
        "--materialize-pool",
        type=int,
        default=32,
        metavar="NETWORKS",
        help="with --materialize: LRU bound on warm networks kept per "
        "distinct query signature",
    )
    serve_p.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help="durable state directory: replay snapshot + fact log on boot, "
        "append every accepted add_facts/add_rules before acknowledging",
    )
    serve_p.add_argument(
        "--fsync-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="with --data-dir: batch fsyncs at most this often "
        "(0 = fsync every write, strongest durability)",
    )
    serve_p.add_argument(
        "--snapshot-every",
        type=int,
        default=1000,
        metavar="RECORDS",
        help="with --data-dir: compact the log into a fresh snapshot after "
        "this many appended records",
    )
    serve_p.set_defaults(func=_cmd_serve)

    worker_p = sub.add_parser(
        "worker",
        help="run one remote shard worker against a cluster manager "
        "(the other terminal of the docs/usage.md walkthrough)",
    )
    worker_p.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="cluster manager address to register with",
    )
    worker_p.add_argument(
        "--name",
        default=None,
        help="stable worker name (reconnects keep it; default: assigned "
        "by the manager)",
    )
    worker_p.add_argument(
        "--reconnect-attempts",
        type=int,
        default=60,
        help="consecutive failed connects tolerated before giving up",
    )
    worker_p.add_argument(
        "--reconnect-backoff",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="sleep between reconnect attempts",
    )
    worker_p.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-connection log lines on stderr",
    )
    worker_p.set_defaults(func=_cmd_worker)

    bench_p = sub.add_parser(
        "bench-session",
        help="repeated-query serving benchmark: session caching vs per-query rebuild",
    )
    common(bench_p)
    bench_p.add_argument(
        "--repeat", type=int, default=100, help="number of identical queries to serve"
    )
    bench_p.add_argument(
        "--cache-size", type=int, default=64, help="graph-cache LRU capacity (0 disables)"
    )
    bench_p.add_argument(
        "--no-compare",
        action="store_true",
        help="skip the uncached (cache-size 0) comparison run",
    )
    bench_p.set_defaults(func=_cmd_bench_session)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-datalog`` script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
