"""Shared helpers for the bottom-up baseline evaluators."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..core.atoms import Atom
from ..core.rules import Rule
from ..core.terms import Constant, Term, Variable

__all__ = ["FactStore", "enumerate_matches", "apply_bindings"]

#: Derived facts, keyed by predicate: ``{pred: {tuple-of-values, ...}}``.
FactStore = dict[str, set[tuple]]


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def apply_bindings(atom: Atom, bindings: Mapping[Variable, object]) -> tuple | None:
    """Ground ``atom``'s arguments under value bindings; None if incomplete."""
    row = []
    for term in atom.args:
        if isinstance(term, Constant):
            row.append(term.value)
        else:
            if term not in bindings:
                return None
            row.append(bindings[term])
    return tuple(row)


def enumerate_matches(
    body: tuple[Atom, ...],
    facts: FactStore,
    start: int = 0,
    bindings: Mapping[Variable, object] | None = None,
    restrict_first: Iterable[tuple] | None = None,
) -> Iterator[dict[Variable, object]]:
    """All variable bindings satisfying ``body`` against ``facts``.

    A straightforward backtracking matcher — the reference semantics every
    engine is tested against.  Subgoal ``start`` is matched first (the rest
    follow in textual order), and ``restrict_first`` optionally replaces its
    fact set — the hooks semi-naive delta evaluation needs.
    """
    if not body:
        yield dict(bindings or {})
        return
    order = [start] + [i for i in range(len(body)) if i != start]

    def recurse(step: int, env: dict[Variable, object]) -> Iterator[dict[Variable, object]]:
        if step >= len(order):
            yield env
            return
        index = order[step]
        subgoal = body[index]
        if index == start and restrict_first is not None:
            candidates: Iterable[tuple] = restrict_first
        else:
            candidates = facts.get(subgoal.predicate, ())
        # Snapshot: callers may add derived facts while consuming matches.
        for row in tuple(candidates):
            if len(row) != subgoal.arity:
                continue
            extended = dict(env)
            ok = True
            for term, value in zip(subgoal.args, row):
                if isinstance(term, Constant):
                    if term.value != value:
                        ok = False
                        break
                else:
                    bound = extended.get(term, _MISSING)
                    if bound is _MISSING:
                        extended[term] = value
                    elif bound != value:
                        ok = False
                        break
            if ok:
                yield from recurse(step + 1, extended)

    yield from recurse(0, dict(bindings or {}))
