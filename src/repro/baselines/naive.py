"""Naive bottom-up evaluation — the minimum-model oracle.

Section 1 frames a bottom-up computation as "an operator ... that takes as
input all facts derived in n or less steps and produces all facts derived in
n+1 steps"; iterating it to a fixed point yields the minimum Herbrand model.
This module is the *reference semantics*: it computes the entire minimum
model restricted to the IDB predicates, with no relevance restriction at all.
Every other evaluator in the package is tested against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.program import Program
from ..core.rules import GOAL_PREDICATE
from .common import FactStore, apply_bindings, enumerate_matches

__all__ = ["NaiveResult", "evaluate", "minimum_model", "goal_answers"]


@dataclass
class NaiveResult:
    """Outcome of a naive bottom-up run.

    ``facts`` is the minimum model (EDB facts included); the counters expose
    the work done so the benchmarks can contrast it with restricted
    strategies.
    """

    facts: FactStore
    iterations: int
    derivations: int  # successful rule firings, duplicates included
    idb_tuples: int  # distinct IDB tuples in the model

    def answers(self, predicate: str = GOAL_PREDICATE) -> set[tuple]:
        """The model's relation for ``predicate`` (the query answer)."""
        return set(self.facts.get(predicate, set()))


def evaluate(program: Program) -> NaiveResult:
    """Iterate the one-step consequence operator to its least fixed point."""
    facts: FactStore = {}
    for fact in program.facts:
        facts.setdefault(fact.predicate, set()).add(fact.ground_tuple())

    iterations = 0
    derivations = 0
    changed = True
    while changed:
        changed = False
        iterations += 1
        new_rows: list[tuple[str, tuple]] = []
        for rule in program.rules:
            for env in enumerate_matches(rule.body, facts):
                row = apply_bindings(rule.head, env)
                assert row is not None, "safe rules always ground their head"
                derivations += 1
                existing = facts.get(rule.head.predicate)
                if existing is None or row not in existing:
                    new_rows.append((rule.head.predicate, row))
        for predicate, row in new_rows:
            bucket = facts.setdefault(predicate, set())
            if row not in bucket:
                bucket.add(row)
                changed = True

    idb_tuples = sum(
        len(rows) for pred, rows in facts.items() if pred in program.idb_predicates
    )
    return NaiveResult(facts, iterations, derivations, idb_tuples)


def minimum_model(program: Program) -> FactStore:
    """Just the minimum model, when the counters are not needed."""
    return evaluate(program).facts


def goal_answers(program: Program) -> set[tuple]:
    """The goal portion of the minimum model — the query answer (Section 1)."""
    return evaluate(program).answers()
