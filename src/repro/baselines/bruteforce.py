"""Brute-force evaluation by full ground instantiation — Section 1.1.

"The recursive problem can be solved by brute force, essentially by
enumerating all possible ground instances of the IDB with all possible
combinations of constants that appear in the system substituted for the
variables, and 'reasoning forward' until the minimum model is derived.  The
running time is O(n^{t+O(1)}) if there are n constants in the system and at
most t variables in any rule."

This module implements exactly that, with counters for the number of ground
instances generated, so the benchmarks can exhibit the ``n^t`` growth against
which the message-passing method is contrasted.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..core.program import Program
from ..core.rules import GOAL_PREDICATE, Rule
from .common import FactStore, apply_bindings

__all__ = ["BruteForceResult", "evaluate", "ground_instance_count"]


@dataclass
class BruteForceResult:
    """Outcome and cost accounting of the brute-force method."""

    facts: FactStore
    ground_instances: int
    iterations: int
    idb_tuples: int

    def answers(self, predicate: str = GOAL_PREDICATE) -> set[tuple]:
        """The computed relation for ``predicate``."""
        return set(self.facts.get(predicate, set()))


def ground_instance_count(program: Program) -> int:
    """``sum over rules of n^(#variables)`` — the instantiation volume."""
    n = max(1, len(program.constants()))
    return sum(n ** len(rule.variables()) for rule in program.rules)


def evaluate(program: Program, max_instances: int = 5_000_000) -> BruteForceResult:
    """Ground every rule over the constant set, then forward-chain.

    Raises ``RuntimeError`` when the instantiation volume would exceed
    ``max_instances`` — the exponential wall is the point of the baseline,
    but runs should fail loudly rather than hang.
    """
    constants = sorted(program.constants(), key=repr)
    volume = ground_instance_count(program)
    if volume > max_instances:
        raise RuntimeError(
            f"brute force would generate {volume} ground instances (> {max_instances})"
        )

    ground_rules: list[tuple[str, tuple, tuple[tuple[str, tuple], ...]]] = []
    instances = 0
    for rule in program.rules:
        variables = sorted(rule.variables(), key=lambda v: v.name)
        for combo in itertools.product(constants, repeat=len(variables)):
            instances += 1
            env = dict(zip(variables, combo))
            head_row = apply_bindings(rule.head, env)
            assert head_row is not None
            body_rows = []
            for subgoal in rule.body:
                row = apply_bindings(subgoal, env)
                assert row is not None
                body_rows.append((subgoal.predicate, row))
            ground_rules.append((rule.head.predicate, head_row, tuple(body_rows)))

    facts: FactStore = {}
    for fact in program.facts:
        facts.setdefault(fact.predicate, set()).add(fact.ground_tuple())

    iterations = 0
    changed = True
    while changed:
        changed = False
        iterations += 1
        for head_pred, head_row, body in ground_rules:
            bucket = facts.setdefault(head_pred, set())
            if head_row in bucket:
                continue
            if all(row in facts.get(pred, ()) for pred, row in body):
                bucket.add(head_row)
                changed = True

    idb_tuples = sum(
        len(rows) for pred, rows in facts.items() if pred in program.idb_predicates
    )
    return BruteForceResult(facts, instances, iterations, idb_tuples)
