"""Memoized top-down evaluation (QSQR-style tabling).

A strictly top-down, left-to-right evaluator in the spirit of Prolog, but
with *tabling*: each distinct call pattern ``(predicate, bound-argument
values)`` gets a memo table, recursive calls consume the table's current
contents, and the whole computation iterates to a fixed point.  Tabling is
what lets it terminate on left recursion, which plain Prolog famously does
not (Section 1.2 contrasts the message-passing method with the "well-known
'left recursion' problems of strictly top-down methods").

This baseline restricts computation to *relevant* call patterns like the
message-passing engine, but it is sequential and re-derives across passes;
the benchmarks report its pass counts next to the engine's message counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.atoms import Atom
from ..core.program import Program
from ..core.rules import GOAL_PREDICATE
from ..core.terms import Constant, Variable
from ..core.unify import unify
from ..core.terms import FreshVariables

__all__ = ["TopDownResult", "evaluate"]

#: A call pattern: one entry per argument — a constant value, or None (free).
CallPattern = tuple


@dataclass
class TopDownResult:
    """Tables and counters of a tabled top-down run."""

    tables: dict[tuple[str, CallPattern], set[tuple]]
    passes: int
    rule_applications: int

    def answers(self, predicate: str = GOAL_PREDICATE) -> set[tuple]:
        """Union of all table entries for ``predicate``."""
        result: set[tuple] = set()
        for (pred, _pattern), rows in self.tables.items():
            if pred == predicate:
                result |= rows
        return result

    def relevant_tuples(self) -> int:
        """Total tuples across all tables — the 'computed portion' metric."""
        return sum(len(rows) for rows in self.tables.values())


def _call_atom(predicate: str, pattern: CallPattern) -> Atom:
    args = []
    for i, value in enumerate(pattern):
        if value is None:
            args.append(Variable(f"A{i}"))
        else:
            args.append(Constant(value))
    return Atom(predicate, tuple(args))


def evaluate(program: Program, max_passes: int = 10_000) -> TopDownResult:
    """Run tabled top-down evaluation of the program's query.

    Starts from the all-free call to ``goal`` and iterates global passes over
    every tabled call until no table grows.  ``max_passes`` guards against
    bugs rather than legitimate workloads (each pass adds at least one tuple
    when progress is possible, so passes ≤ total relevant tuples + 2).
    """
    edb: dict[str, set[tuple]] = {}
    for fact in program.facts:
        edb.setdefault(fact.predicate, set()).add(fact.ground_tuple())

    tables: dict[tuple[str, CallPattern], set[tuple]] = {}
    fresh = FreshVariables()
    counters = {"rule_applications": 0}

    def ensure_table(predicate: str, pattern: CallPattern) -> set[tuple]:
        return tables.setdefault((predicate, pattern), set())

    def solve_body(
        body: tuple[Atom, ...], index: int, env: dict[Variable, object]
    ) -> list[dict[Variable, object]]:
        if index >= len(body):
            return [env]
        subgoal = body[index]
        # Determine the call: arguments ground under env become the pattern.
        pattern = []
        for term in subgoal.args:
            if isinstance(term, Constant):
                pattern.append(term.value)
            elif term in env:
                pattern.append(env[term])
            else:
                pattern.append(None)
        if program.is_edb(subgoal.predicate):
            rows: set[tuple] = edb.get(subgoal.predicate, set())
        else:
            rows = ensure_table(subgoal.predicate, tuple(pattern))
        results: list[dict[Variable, object]] = []
        for row in rows:
            if len(row) != subgoal.arity:
                continue
            extended = dict(env)
            ok = True
            for term, value in zip(subgoal.args, row):
                if isinstance(term, Constant):
                    if term.value != value:
                        ok = False
                        break
                else:
                    if term in extended:
                        if extended[term] != value:
                            ok = False
                            break
                    else:
                        extended[term] = value
            if ok:
                results.extend(solve_body(body, index + 1, extended))
        return results

    def one_pass(predicate: str, pattern: CallPattern) -> bool:
        """Recompute one table entry from the rules; True if it grew."""
        call = _call_atom(predicate, pattern)
        table = ensure_table(predicate, pattern)
        grew = False
        for rule in program.rules_for(predicate):
            renamed = rule.rename_apart(fresh)
            mgu = unify(renamed.head, call)
            if mgu is None:
                continue
            applied = renamed.substitute(mgu.as_dict())
            counters["rule_applications"] += 1
            for env in solve_body(applied.body, 0, {}):
                row = []
                complete = True
                for term in applied.head.args:
                    if isinstance(term, Constant):
                        row.append(term.value)
                    elif term in env:
                        row.append(env[term])
                    else:
                        complete = False
                        break
                if complete and tuple(row) not in table:
                    table.add(tuple(row))
                    grew = True
        return grew

    # Seed with the all-free goal call.
    goal_arity = program.query_rules[0].head.arity if program.query_rules else 0
    ensure_table(GOAL_PREDICATE, tuple([None] * goal_arity))

    passes = 0
    changed = True
    while changed:
        passes += 1
        if passes > max_passes:
            raise RuntimeError("top-down evaluation did not converge (bug)")
        changed = False
        before = len(tables)
        for predicate, pattern in list(tables):
            if one_pass(predicate, pattern):
                changed = True
        if len(tables) != before:
            changed = True  # new call patterns appeared; give them a pass

    return TopDownResult(tables, passes, counters["rule_applications"])
