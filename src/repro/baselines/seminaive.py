"""Semi-naive bottom-up evaluation.

The standard differential fixpoint: at each iteration every rule is fired
only on instantiations that use at least one *new* fact (a delta tuple) for
some subgoal, which avoids rediscovering old derivations.  This is the strong
bottom-up baseline for the benchmarks: unlike the message-passing engine it
still computes the entire IDB relations, but it does so without the naive
evaluator's re-derivation overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.program import Program
from ..core.rules import GOAL_PREDICATE
from .common import FactStore, apply_bindings, enumerate_matches

__all__ = ["SemiNaiveResult", "evaluate"]


@dataclass
class SemiNaiveResult:
    """Outcome of a semi-naive run, with the same counters as the oracle."""

    facts: FactStore
    iterations: int
    derivations: int
    idb_tuples: int

    def answers(self, predicate: str = GOAL_PREDICATE) -> set[tuple]:
        """The relation computed for ``predicate``."""
        return set(self.facts.get(predicate, set()))


def evaluate(program: Program) -> SemiNaiveResult:
    """Differential least-fixpoint computation.

    Iteration ``k`` fires each rule once per subgoal position, restricting
    that position to the previous iteration's delta; results not already
    known become the next delta.  Base facts seed delta zero, and rules are
    first fired once with EDB-only contents so bodiless and EDB-only rules
    contribute.
    """
    facts: FactStore = {}
    for fact in program.facts:
        facts.setdefault(fact.predicate, set()).add(fact.ground_tuple())

    derivations = 0

    # Initial round: fire every rule on the EDB alone.
    delta: FactStore = {}
    for rule in program.rules:
        for env in enumerate_matches(rule.body, facts):
            row = apply_bindings(rule.head, env)
            assert row is not None
            derivations += 1
            bucket = facts.setdefault(rule.head.predicate, set())
            if row not in bucket:
                bucket.add(row)
                delta.setdefault(rule.head.predicate, set()).add(row)

    iterations = 1
    while delta:
        iterations += 1
        new_delta: FactStore = {}
        for rule in program.rules:
            for position, subgoal in enumerate(rule.body):
                delta_rows = delta.get(subgoal.predicate)
                if not delta_rows:
                    continue
                for env in enumerate_matches(
                    rule.body, facts, start=position, restrict_first=delta_rows
                ):
                    row = apply_bindings(rule.head, env)
                    assert row is not None
                    derivations += 1
                    bucket = facts.setdefault(rule.head.predicate, set())
                    if row not in bucket:
                        bucket.add(row)
                        new_delta.setdefault(rule.head.predicate, set()).add(row)
        delta = new_delta

    idb_tuples = sum(
        len(rows) for pred, rows in facts.items() if pred in program.idb_predicates
    )
    return SemiNaiveResult(facts, iterations, derivations, idb_tuples)
