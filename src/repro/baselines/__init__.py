"""Baseline evaluators the paper compares against (Section 1.1).

* :mod:`~repro.baselines.naive` — the minimum-model oracle (Reiter/least
  fixed point, no restriction);
* :mod:`~repro.baselines.seminaive` — differential bottom-up;
* :mod:`~repro.baselines.bruteforce` — full ground instantiation, the
  O(n^t) method whose cost motivates everything else;
* :mod:`~repro.baselines.topdown` — tabled top-down (QSQR-style), the
  sequential point of comparison for relevance-restricted evaluation;
* :mod:`~repro.baselines.magic` — the magic-sets rewriting (the *compiled*
  realization of sideways information passing, contemporaneous with the
  paper) evaluated semi-naive.
"""

from . import bruteforce, magic, naive, seminaive, topdown

__all__ = ["naive", "seminaive", "bruteforce", "topdown", "magic"]
