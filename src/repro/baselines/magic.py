"""The magic-sets transformation — the compiled cousin of message passing.

Bancilhon, Maier, Sagiv & Ullman's "magic sets" (PODS 1986 — the same year
as this paper) achieve the same relevance restriction as the message
framework's class-"d" arguments, but *statically*: the program is rewritten
so that auxiliary ``magic`` predicates compute exactly the binding sets the
rule/goal graph would pass around at run time, and the rewritten program is
then evaluated bottom-up (here: semi-naive).

Including it as a baseline lets the benchmarks compare the two realizations
of sideways information passing head-to-head: the *dynamic* one (processes
exchanging tuple requests) versus the *compiled* one (magic predicates),
which must derive the same restricted relations.

The transformation here is the classic one, driven by the same SIP
strategies as the engine:

* predicates are specialized per adornment (``p`` becomes ``p__bf`` etc.,
  with ``b`` = bound: class "c"/"d"; ``f`` = free: class "e"/"f");
* each adorned rule gets a guard ``magic__p__bf(bound head args)``;
* each IDB subgoal with bound arguments spawns a magic rule whose body is
  the guard plus the subgoals evaluated before it in SIP order;
* the query seeds ``magic__goal__f...f()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.adornment import AdornedAtom, CONSTANT, DYNAMIC
from ..core.atoms import Atom
from ..core.program import Program
from ..core.rules import GOAL_PREDICATE, Rule
from ..core.sips import SipStrategy, adorn_body, greedy_sip
from ..core.terms import Constant, FreshVariables, Variable
from . import seminaive
from .seminaive import SemiNaiveResult

__all__ = ["MagicResult", "magic_transform", "evaluate"]

SipFactory = Callable[[Rule, AdornedAtom], SipStrategy]


def _binding_string(adorned: AdornedAtom) -> str:
    """Collapse the four classes into the classic b/f adornment."""
    return "".join(
        "b" if letter in (CONSTANT, DYNAMIC) else "f" for letter in adorned.adornment
    )


def _specialized(predicate: str, binding: str) -> str:
    return f"{predicate}__{binding}"


def _magic(predicate: str, binding: str) -> str:
    return f"magic__{predicate}__{binding}"


def _head_adorned(head: Atom, binding: str) -> AdornedAtom:
    letters = []
    for term, b in zip(head.args, binding):
        if isinstance(term, Constant):
            letters.append(CONSTANT)
        elif b == "b":
            letters.append(DYNAMIC)
        else:
            letters.append("f")
    return AdornedAtom(head, tuple(letters))


def _bound_args(atom: Atom, binding: str) -> tuple:
    return tuple(t for t, b in zip(atom.args, binding) if b == "b")


@dataclass
class MagicResult:
    """The transformed program plus the semi-naive run over it."""

    transformed: Program
    run: SemiNaiveResult
    goal_binding: str

    def answers(self) -> set[tuple]:
        """The goal relation of the transformed program."""
        rows = self.run.facts.get(_specialized(GOAL_PREDICATE, self.goal_binding), set())
        return set(rows)

    def restricted_idb_tuples(self) -> int:
        """Distinct tuples of the specialized (non-auxiliary) IDB relations."""
        return sum(
            len(rows)
            for pred, rows in self.run.facts.items()
            if "__" in pred
            and not pred.startswith("magic__")
            and not pred.startswith("sup__")
        )

    def magic_tuples(self) -> int:
        """Distinct tuples of the magic predicates (the binding sets)."""
        return sum(
            len(rows)
            for pred, rows in self.run.facts.items()
            if pred.startswith("magic__")
        )

    def supplementary_tuples(self) -> int:
        """Distinct tuples of the ``sup`` predicates (materialized prefixes)."""
        return sum(
            len(rows)
            for pred, rows in self.run.facts.items()
            if pred.startswith("sup__")
        )


def magic_transform(
    program: Program,
    sip_factory: SipFactory = greedy_sip,
    supplementary: bool = False,
) -> tuple[Program, str]:
    """Rewrite ``program`` with magic predicates; return it + goal binding.

    The worklist mirrors the rule/goal graph construction: it visits exactly
    the (predicate, adornment) pairs the query reaches.

    With ``supplementary=True`` the *supplementary* variant is produced:
    each rule's prefix joins are materialized once in ``sup`` predicates and
    both the magic rules and the rule body read from them, instead of every
    magic rule re-joining the prefix from scratch — the standard refinement
    that trades space for join work (and mirrors how the message engine's
    rule nodes keep their stage environments materialized).
    """
    fresh = FreshVariables()
    if not program.query_rules:
        raise ValueError("program has no query rules")
    goal_arity = program.query_rules[0].head.arity
    goal_binding = "f" * goal_arity

    new_rules: list[Rule] = []
    seed = Atom(_magic(GOAL_PREDICATE, goal_binding), ())
    new_rules.append(Rule(seed))  # the query seed (a unit rule)

    done: set[tuple[str, str]] = set()
    worklist: list[tuple[str, str]] = [(GOAL_PREDICATE, goal_binding)]
    while worklist:
        predicate, binding = worklist.pop()
        if (predicate, binding) in done:
            continue
        done.add((predicate, binding))
        for rule_number, rule in enumerate(program.rules_for(predicate)):
            renamed = rule.rename_apart(fresh)
            head = _head_adorned(renamed.head, binding)
            sip = sip_factory(renamed, head)
            adorned_subgoals = adorn_body(sip)

            guard = Atom(
                _magic(predicate, binding), _bound_args(renamed.head, binding)
            )

            def translated(index: int) -> Atom:
                subgoal = renamed.body[index]
                if program.is_edb(subgoal.predicate):
                    return subgoal
                sub_binding = _binding_string(adorned_subgoals[index])
                return Atom(_specialized(subgoal.predicate, sub_binding), subgoal.args)

            for position, index in enumerate(sip.order):
                subgoal = renamed.body[index]
                if program.is_edb(subgoal.predicate):
                    continue
                worklist.append(
                    (subgoal.predicate, _binding_string(adorned_subgoals[index]))
                )

            if supplementary:
                new_rules.extend(
                    _supplementary_rules(
                        program, predicate, binding, rule_number, renamed,
                        sip, adorned_subgoals, guard, translated,
                    )
                )
                continue

            # --- standard variant -----------------------------------------
            body = [guard] + [translated(i) for i in sip.order]
            new_rules.append(
                Rule(Atom(_specialized(predicate, binding), renamed.head.args), tuple(body))
            )
            for position, index in enumerate(sip.order):
                subgoal = renamed.body[index]
                if program.is_edb(subgoal.predicate):
                    continue
                sub_binding = _binding_string(adorned_subgoals[index])
                bound = _bound_args(subgoal, sub_binding)
                if not bound:
                    magic_head = Atom(_magic(subgoal.predicate, sub_binding), ())
                    new_rules.append(Rule(magic_head, (guard,)))
                    continue
                prefix = [guard] + [translated(i) for i in sip.order[:position]]
                magic_head = Atom(_magic(subgoal.predicate, sub_binding), bound)
                new_rules.append(Rule(magic_head, tuple(prefix)))

    transformed = Program(new_rules, program.facts, validate=False)
    return transformed, goal_binding


def _supplementary_rules(
    program, predicate, binding, rule_number, renamed, sip, adorned_subgoals,
    guard, translated,
):
    """The supplementary-magic rules for one adorned rule.

    ``sup_i`` holds, after the i-th SIP-order subgoal, exactly the variables
    still needed by later subgoals or the head — the relational image of the
    message engine's stage-``i`` environment set.
    """
    from ..core.terms import Variable

    def sup_name(i: int) -> str:
        return f"sup__{predicate}__{binding}__{rule_number}__{i}"

    head_vars = {
        t for t in renamed.head.args if isinstance(t, Variable)
    }
    later_vars: list[set] = [set(head_vars) for _ in range(len(sip.order) + 1)]
    for back in range(len(sip.order) - 1, -1, -1):
        later_vars[back] = later_vars[back + 1] | renamed.body[sip.order[back]].variable_set()

    rules = []
    guard_vars = sorted(
        {t for t in guard.args if isinstance(t, Variable)}, key=lambda v: v.name
    )
    sup_prev = Atom(sup_name(0), tuple(guard_vars))
    rules.append(Rule(sup_prev, (guard,)))
    for position, index in enumerate(sip.order):
        subgoal = renamed.body[index]
        if not program.is_edb(subgoal.predicate):
            sub_binding = _binding_string(adorned_subgoals[index])
            bound = _bound_args(subgoal, sub_binding)
            magic_head = Atom(_magic(subgoal.predicate, sub_binding), bound)
            rules.append(Rule(magic_head, (sup_prev,)))
        available = set(sup_prev.args) | subgoal.variable_set()
        keep = sorted(
            {v for v in available if isinstance(v, Variable) and v in later_vars[position + 1]},
            key=lambda v: v.name,
        )
        sup_next = Atom(sup_name(position + 1), tuple(keep))
        rules.append(Rule(sup_next, (sup_prev, translated(index))))
        sup_prev = sup_next
    rules.append(
        Rule(Atom(_specialized(predicate, binding), renamed.head.args), (sup_prev,))
    )
    return rules


def evaluate(
    program: Program,
    sip_factory: SipFactory = greedy_sip,
    supplementary: bool = False,
) -> MagicResult:
    """Magic-transform and evaluate semi-naive; answers match the original."""
    transformed, goal_binding = magic_transform(
        program, sip_factory, supplementary=supplementary
    )
    run = seminaive.evaluate(transformed)
    return MagicResult(transformed, run, goal_binding)
