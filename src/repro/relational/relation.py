"""In-memory relations with named columns and hash indexes.

Each node of the rule/goal graph "performs a relational computation"
(Section 2.2): predicate nodes union their children's relations, rule nodes
combine subgoal relations with join, select, and project.  This module is
that relational substrate — a compact, set-based implementation with
memoized hash indexes so that the semijoin-style restriction driven by class
"d" arguments is cheap.

Relations are *immutable by convention*: every operation returns a new
:class:`Relation`.  (Mutable accumulation inside engine nodes uses plain
``set`` objects and converts at the edges.)
"""

from __future__ import annotations

import operator
from typing import Callable, Iterable, Iterator, Mapping, Sequence

__all__ = ["Relation", "Row"]

#: One tuple of a relation — plain Python tuples of hashable values.
Row = tuple


class Relation:
    """A named-column set of tuples.

    Parameters
    ----------
    columns:
        Distinct column names, defining the schema and tuple positions.
    rows:
        Iterable of tuples, each with exactly ``len(columns)`` entries.
    """

    __slots__ = ("columns", "_rows", "_indexes")

    def __init__(self, columns: Sequence[str], rows: Iterable[Row] = ()) -> None:
        cols = tuple(columns)
        if len(set(cols)) != len(cols):
            raise ValueError(f"duplicate column names in {cols}")
        self.columns: tuple[str, ...] = cols
        materialized = set(map(tuple, rows))
        for row in materialized:
            if len(row) != len(cols):
                raise ValueError(f"row {row} does not match schema {cols}")
        self._rows: frozenset[Row] = frozenset(materialized)
        self._indexes: dict[tuple[int, ...], dict[Row, list[Row]]] = {}

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.columns)

    @property
    def rows(self) -> frozenset[Row]:
        """The tuple set (frozen)."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.columns == other.columns and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self.columns, self._rows))

    def __repr__(self) -> str:
        preview = ", ".join(map(str, sorted(self._rows, key=repr)[:4]))
        suffix = ", ..." if len(self._rows) > 4 else ""
        return f"Relation({self.columns}, {{{preview}{suffix}}})"

    def is_empty(self) -> bool:
        """True iff the relation holds no tuples."""
        return not self._rows

    # ------------------------------------------------------------------
    # Schema helpers
    # ------------------------------------------------------------------
    def position(self, column: str) -> int:
        """Index of ``column`` in the schema (raises ``ValueError`` if absent)."""
        try:
            return self.columns.index(column)
        except ValueError:
            raise ValueError(f"no column {column!r} in schema {self.columns}") from None

    def positions(self, columns: Sequence[str]) -> tuple[int, ...]:
        """Indices of several columns, in the given order."""
        return tuple(self.position(c) for c in columns)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def index(self, columns: Sequence[str]) -> Mapping[Row, list[Row]]:
        """A hash index: key tuple over ``columns`` -> rows having that key.

        Indexes are built lazily and memoized; since relations are immutable
        the cache never invalidates.  The paper's footnote on "packaged"
        tuple requests observes an index over an EDB relation can be built in
        one scan — this is that one scan.
        """
        pos = self.positions(columns)
        cached = self._indexes.get(pos)
        if cached is None:
            cached = {}
            if len(pos) == 1:
                # C-level key gather; zip re-boxes the bare values as the
                # 1-tuple keys the lookup contract expects.
                keys: Iterable[Row] = zip(map(operator.itemgetter(pos[0]), self._rows))
            elif pos:
                keys = map(operator.itemgetter(*pos), self._rows)
            else:
                keys = iter([()] * len(self._rows))
            for key, row in zip(keys, self._rows):
                cached.setdefault(key, []).append(row)
            self._indexes[pos] = cached
        return cached

    def lookup(self, columns: Sequence[str], key: Row) -> list[Row]:
        """Rows whose ``columns`` projection equals ``key`` (via the index)."""
        return self.index(columns).get(tuple(key), [])

    def extended(self, rows: Iterable[Row]) -> "Relation":
        """A new relation with extra rows, carrying memoized indexes forward.

        The incremental-growth path of a long-lived session: instead of
        rebuilding every hash index from scratch (one full scan each), the
        new relation copies each existing index shallowly and appends only
        the genuinely new rows to the buckets they land in.  Cost is
        O(|new rows| x |indexes|) plus one pointer-copy of each index dict,
        not O(|relation|).  Returns ``self`` unchanged when every row is
        already present.
        """
        added = set(map(tuple, rows)) - self._rows
        if not added:
            return self
        for row in added:
            if len(row) != len(self.columns):
                raise ValueError(f"row {row} does not match schema {self.columns}")
        extended = object.__new__(Relation)
        extended.columns = self.columns
        extended._rows = self._rows | added
        indexes: dict[tuple[int, ...], dict[Row, list[Row]]] = {}
        for pos, index in self._indexes.items():
            grown = dict(index)  # shallow: buckets shared until touched
            touched: set[Row] = set()
            for row in added:
                key = tuple(row[i] for i in pos)
                if key not in touched:
                    grown[key] = list(grown.get(key, ()))
                    touched.add(key)
                grown[key].append(row)
            indexes[pos] = grown
        extended._indexes = indexes
        return extended

    # ------------------------------------------------------------------
    # Core operations (select / project / rename / union / difference)
    # ------------------------------------------------------------------
    def select_eq(self, bindings: Mapping[str, object]) -> "Relation":
        """Selection by column-value equality, using an index when possible."""
        if not bindings:
            return self
        cols = tuple(sorted(bindings))
        key = tuple(bindings[c] for c in cols)
        return Relation(self.columns, self.lookup(cols, key))

    def select(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Selection by an arbitrary row predicate (full scan)."""
        return Relation(self.columns, (r for r in self._rows if predicate(r)))

    def project(self, columns: Sequence[str]) -> "Relation":
        """Projection with duplicate elimination (set semantics)."""
        pos = self.positions(columns)
        return Relation(columns, (tuple(r[i] for i in pos) for r in self._rows))

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Rename columns; unmentioned columns keep their names."""
        new_cols = tuple(mapping.get(c, c) for c in self.columns)
        return Relation(new_cols, self._rows)

    def union(self, other: "Relation") -> "Relation":
        """Set union; schemas must match exactly."""
        if self.columns != other.columns:
            raise ValueError(f"union schema mismatch: {self.columns} vs {other.columns}")
        return Relation(self.columns, self._rows | other._rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference; schemas must match exactly."""
        if self.columns != other.columns:
            raise ValueError(f"difference schema mismatch: {self.columns} vs {other.columns}")
        return Relation(self.columns, self._rows - other._rows)

    def distinct_values(self, column: str) -> set[object]:
        """The active domain of one column."""
        pos = self.position(column)
        return {r[pos] for r in self._rows}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, columns: Sequence[str]) -> "Relation":
        """An empty relation over the given schema."""
        return cls(columns, ())

    @classmethod
    def from_pairs(cls, columns: Sequence[str], pairs: Iterable[Sequence[object]]) -> "Relation":
        """Build a relation, coercing each row to a tuple."""
        return cls(columns, (tuple(p) for p in pairs))
