"""The extensional database (EDB): named relations of ground facts.

"The EDB may be viewed as a conventional relational database" (Section 1).
:class:`Database` maps predicate names to :class:`Relation` objects with
canonical column names ``a0, a1, ...`` and tracks retrieval counts so the
benchmarks can report database access work alongside join work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from ..core.atoms import Atom
from .relation import Relation, Row

__all__ = ["Database", "columns_for"]


def columns_for(arity: int, prefix: str = "a") -> tuple[str, ...]:
    """Canonical positional column names for an ``arity``-ary predicate."""
    return tuple(f"{prefix}{i}" for i in range(arity))


@dataclass
class Database:
    """A set of EDB relations keyed by predicate name."""

    _relations: dict[str, Relation] = field(default_factory=dict)
    scans: int = 0
    indexed_lookups: int = 0
    rows_retrieved: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_facts(cls, facts: Iterable[Atom]) -> "Database":
        """Build a database from ground atoms, grouping by predicate."""
        grouped: dict[str, list[Row]] = {}
        arities: dict[str, int] = {}
        for fact in facts:
            row = fact.ground_tuple()
            previous = arities.setdefault(fact.predicate, len(row))
            if previous != len(row):
                raise ValueError(
                    f"inconsistent arity for EDB predicate {fact.predicate}: "
                    f"{previous} vs {len(row)}"
                )
            grouped.setdefault(fact.predicate, []).append(row)
        db = cls()
        for predicate, rows in grouped.items():
            db._relations[predicate] = Relation(columns_for(arities[predicate]), rows)
        return db

    @classmethod
    def from_tuples(cls, tables: Mapping[str, Iterable[Sequence[object]]]) -> "Database":
        """Build a database from ``{predicate: iterable-of-rows}``."""
        db = cls()
        for predicate, rows in tables.items():
            materialized = [tuple(r) for r in rows]
            if materialized:
                arity = len(materialized[0])
            else:
                arity = 0
            db._relations[predicate] = Relation(columns_for(arity), materialized)
        return db

    def add_relation(self, predicate: str, relation: Relation) -> None:
        """Install (or replace) a relation for ``predicate``."""
        self._relations[predicate] = relation

    def add_facts(self, facts: Iterable[Atom]) -> None:
        """Incrementally add ground facts, extending relations in place.

        Validation (arity consistency within the batch and against any
        existing relation) happens *before* any mutation, so a bad batch
        leaves the database untouched.  Existing relations grow via
        :meth:`Relation.extended`, which carries their memoized hash
        indexes forward instead of rebuilding them — the cheap path a
        long-lived session relies on.
        """
        grouped: dict[str, list[Row]] = {}
        arities: dict[str, int] = {}
        for fact in facts:
            row = fact.ground_tuple()
            previous = arities.setdefault(fact.predicate, len(row))
            if previous != len(row):
                raise ValueError(
                    f"inconsistent arity for EDB predicate {fact.predicate}: "
                    f"{previous} vs {len(row)}"
                )
            grouped.setdefault(fact.predicate, []).append(row)
        for predicate, arity in arities.items():
            existing = self._relations.get(predicate)
            if existing is not None and existing.arity != arity:
                raise ValueError(
                    f"inconsistent arity for EDB predicate {predicate}: "
                    f"{existing.arity} vs {arity}"
                )
        for predicate, rows in grouped.items():
            existing = self._relations.get(predicate)
            if existing is None:
                self._relations[predicate] = Relation(
                    columns_for(arities[predicate]), rows
                )
            else:
                self._relations[predicate] = existing.extended(rows)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __contains__(self, predicate: str) -> bool:
        return predicate in self._relations

    def predicates(self) -> list[str]:
        """Sorted predicate names present in the database."""
        return sorted(self._relations)

    def relation(self, predicate: str) -> Relation:
        """The full relation for ``predicate`` (empty 0-ary if unknown)."""
        return self._relations.get(predicate, Relation(()))

    def relation_or_empty(self, predicate: str, arity: int) -> Relation:
        """The relation for ``predicate``, or an empty one of given arity."""
        rel = self._relations.get(predicate)
        if rel is None:
            return Relation(columns_for(arity))
        return rel

    def scan(self, predicate: str) -> Relation:
        """Full scan (counted) of one relation."""
        self.scans += 1
        rel = self.relation(predicate)
        self.rows_retrieved += len(rel)
        return rel

    def lookup(self, predicate: str, bound: Mapping[int, object]) -> list[Row]:
        """Indexed retrieval: rows whose positions match ``bound`` values.

        ``bound`` maps argument positions to required constants — the shape
        of a tuple request for an EDB subgoal with "c"/"d" arguments.
        """
        rel = self._relations.get(predicate)
        if rel is None:
            return []
        self.indexed_lookups += 1
        if not bound:
            self.rows_retrieved += len(rel)
            return list(rel.rows)
        cols = tuple(rel.columns[i] for i in sorted(bound))
        key = tuple(bound[i] for i in sorted(bound))
        rows = rel.lookup(cols, key)
        self.rows_retrieved += len(rows)
        return rows

    def facts(self) -> Iterator[Atom]:
        """Iterate all facts as ground atoms (deterministic order)."""
        from ..core.terms import Constant

        for predicate in self.predicates():
            for row in sorted(self._relations[predicate].rows, key=repr):
                yield Atom(predicate, tuple(Constant(v) for v in row))

    def total_rows(self) -> int:
        """Total number of facts across all relations."""
        return sum(len(r) for r in self._relations.values())

    def reset_counters(self) -> None:
        """Zero the access counters (between benchmark phases)."""
        self.scans = 0
        self.indexed_lookups = 0
        self.rows_retrieved = 0

    def counters(self) -> tuple[int, int, int]:
        """A ``(scans, indexed_lookups, rows_retrieved)`` snapshot.

        Engines snapshot this at ``run()`` start so a database shared
        across queries still yields per-query deltas in each result.
        """
        return (self.scans, self.indexed_lookups, self.rows_retrieved)
