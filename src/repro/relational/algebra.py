"""Relational algebra operators over :class:`~repro.relational.relation.Relation`.

Rule nodes "combine their subgoal relations using join, select, and project"
(Section 2.2).  The operators here are natural join, semijoin, cross product
and friends, instrumented through an optional :class:`WorkMeter` so the
benchmarks can report the join work each evaluation strategy performs — the
quantity the Section 4.3 cost model estimates ("the cost of computing a join
is proportional to the sum of the sizes of the operands and the size of the
result").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .relation import Relation, Row

__all__ = [
    "WorkMeter",
    "natural_join",
    "semijoin",
    "antijoin",
    "cross_product",
    "join_all",
]


@dataclass
class WorkMeter:
    """Accumulates the work performed by algebra operators.

    Attributes mirror the cost model of Section 4.3: ``join_input_rows`` and
    ``join_output_rows`` together are what "cost of computing a join is
    proportional to"; ``tuples_materialized`` counts every row placed in an
    intermediate relation, the quantity sideways information passing tries to
    minimize.
    """

    joins: int = 0
    join_input_rows: int = 0
    join_output_rows: int = 0
    semijoins: int = 0
    tuples_materialized: int = 0
    peak_intermediate: int = 0

    def record_join(self, left: int, right: int, out: int) -> None:
        """Account one join with operand sizes ``left``/``right`` and result ``out``."""
        self.joins += 1
        self.join_input_rows += left + right
        self.join_output_rows += out
        self.tuples_materialized += out
        self.peak_intermediate = max(self.peak_intermediate, out)

    def record_semijoin(self, left: int, right: int, out: int) -> None:
        """Account one semijoin."""
        self.semijoins += 1
        self.join_input_rows += left + right
        self.join_output_rows += out

    @property
    def total_join_cost(self) -> int:
        """The Section 4.3 cost: sum of operand sizes plus result sizes."""
        return self.join_input_rows + self.join_output_rows

    def merged_with(self, other: "WorkMeter") -> "WorkMeter":
        """A new meter summing this one and ``other`` (peak takes the max)."""
        return WorkMeter(
            joins=self.joins + other.joins,
            join_input_rows=self.join_input_rows + other.join_input_rows,
            join_output_rows=self.join_output_rows + other.join_output_rows,
            semijoins=self.semijoins + other.semijoins,
            tuples_materialized=self.tuples_materialized + other.tuples_materialized,
            peak_intermediate=max(self.peak_intermediate, other.peak_intermediate),
        )


def _shared_columns(left: Relation, right: Relation) -> list[str]:
    return [c for c in left.columns if c in right.columns]


def natural_join(left: Relation, right: Relation, meter: WorkMeter | None = None) -> Relation:
    """Natural join on all shared column names (hash join).

    With no shared columns this degrades to the cross product, as usual.  The
    smaller operand is indexed; output columns are ``left.columns`` followed
    by the right-only columns.
    """
    shared = _shared_columns(left, right)
    right_only = [c for c in right.columns if c not in shared]
    out_columns = list(left.columns) + right_only
    right_only_pos = right.positions(right_only)

    if not shared:
        rows = [
            l + tuple(r[i] for i in right_only_pos)
            for l in left
            for r in right
        ]
    else:
        index = right.index(shared)
        left_pos = left.positions(shared)
        rows = []
        for l in left:
            key = tuple(l[i] for i in left_pos)
            for r in index.get(key, ()):
                rows.append(l + tuple(r[i] for i in right_only_pos))
    result = Relation(out_columns, rows)
    if meter is not None:
        meter.record_join(len(left), len(right), len(result))
    return result


def semijoin(left: Relation, right: Relation, meter: WorkMeter | None = None) -> Relation:
    """Semijoin: rows of ``left`` that join with at least one row of ``right``.

    This is the operational meaning of a class "d" argument: "a class 'd'
    argument functions as a semi-join operand" (Section 1.2), restricting an
    intermediate relation to potentially useful values.
    """
    shared = _shared_columns(left, right)
    if not shared:
        result = left if len(right) else Relation(left.columns)
    else:
        keys = set(right.project(shared).rows)
        left_pos = left.positions(shared)
        result = Relation(
            left.columns,
            (l for l in left if tuple(l[i] for i in left_pos) in keys),
        )
    if meter is not None:
        meter.record_semijoin(len(left), len(right), len(result))
    return result


def antijoin(left: Relation, right: Relation) -> Relation:
    """Rows of ``left`` that join with *no* row of ``right``."""
    shared = _shared_columns(left, right)
    if not shared:
        return Relation(left.columns) if len(right) else left
    keys = set(right.project(shared).rows)
    left_pos = left.positions(shared)
    return Relation(
        left.columns,
        (l for l in left if tuple(l[i] for i in left_pos) not in keys),
    )


def cross_product(left: Relation, right: Relation, meter: WorkMeter | None = None) -> Relation:
    """Cartesian product; column names must be disjoint."""
    overlap = _shared_columns(left, right)
    if overlap:
        raise ValueError(f"cross product requires disjoint schemas; shared: {overlap}")
    return natural_join(left, right, meter)


def join_all(relations: Sequence[Relation], meter: WorkMeter | None = None) -> Relation:
    """Left-deep natural join of a sequence of relations, in the given order.

    The order matters for intermediate sizes — exactly the effect the
    monotone flow property (Section 4) is about — so callers choose it.
    """
    if not relations:
        raise ValueError("join_all requires at least one relation")
    result = relations[0]
    for rel in relations[1:]:
        result = natural_join(result, rel, meter)
    return result
