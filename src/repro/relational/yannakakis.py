"""Yannakakis' algorithm for acyclic joins [Yan81] — the §4.3 touchstone.

The paper's conjecture that the greedy/qual-tree strategy is optimal for
monotone-flow rules "is based on the algorithm in [Yan81] for computing joins
over acyclic schemes.  That algorithm uses the qual tree and works
essentially in two stages.  In the first stage, a series of semi-joins
analogous to our information passing is carried out to prune the relations
down to pairwise consistency.  In the second stage, the pruned relations are
joined using the qual tree as an expression tree.  The acyclicity and
pairwise consistency guarantee that the temporary relations formed in the
second stage grow monotonically, hence their size is bounded by the size of
the final result."

This module implements both stages over a
:class:`~repro.core.hypergraph.QualTree` whose node labels map to relations
with variable-named columns, and reports the intermediate sizes so the
monotone-growth guarantee can be measured (and contrasted with a cyclic
join order that violates it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

from ..core.hypergraph import QualTree
from .algebra import WorkMeter, natural_join, semijoin
from .relation import Relation

__all__ = ["AcyclicJoinResult", "full_reducer", "acyclic_join", "is_pairwise_consistent"]


@dataclass
class AcyclicJoinResult:
    """Outcome of the two-stage algorithm.

    ``intermediate_sizes`` lists the size of the accumulated relation after
    each join of the second stage; Yannakakis' theorem says each entry is at
    most ``len(result)`` when the inputs were fully reduced.
    """

    result: Relation
    reduced: dict[Hashable, Relation]
    intermediate_sizes: list[int]
    meter: WorkMeter


def full_reducer(
    tree: QualTree,
    relations: Mapping[Hashable, Relation],
    meter: WorkMeter | None = None,
) -> dict[Hashable, Relation]:
    """Stage one: semijoin every relation down to pairwise consistency.

    A leaf-to-root sweep followed by a root-to-leaf sweep of semijoins along
    the qual tree edges — "a series of semi-joins analogous to our
    information passing".  After it, no relation has dangling tuples.
    """
    reduced = {label: relations[label] for label in tree.nodes}
    parents = tree.parent_map()
    children = tree.children_map()

    # Order nodes by decreasing depth for the upward sweep.
    depth: dict[Hashable, int] = {tree.root: 0}
    order: list[Hashable] = [tree.root]
    index = 0
    while index < len(order):
        node = order[index]
        index += 1
        for child in children[node]:
            depth[child] = depth[node] + 1
            order.append(child)

    for node in sorted(order, key=lambda n: -depth[n]):
        if node == tree.root:
            continue
        parent = parents[node]
        reduced[parent] = semijoin(reduced[parent], reduced[node], meter)
    for node in order:  # root outward
        for child in children[node]:
            reduced[child] = semijoin(reduced[child], reduced[node], meter)
    return reduced


def is_pairwise_consistent(
    tree: QualTree, relations: Mapping[Hashable, Relation]
) -> bool:
    """Check that no relation loses tuples when semijoined with a neighbor."""
    for node in tree.nodes:
        for neighbor in tree.adjacency[node]:
            if len(semijoin(relations[node], relations[neighbor])) != len(relations[node]):
                return False
    return True


def acyclic_join(
    tree: QualTree,
    relations: Mapping[Hashable, Relation],
    reduce_first: bool = True,
) -> AcyclicJoinResult:
    """The two-stage algorithm: full reduction, then joins up the qual tree.

    The second stage joins children into parents bottom-up, so the
    accumulated relation at each step is the join of a connected subtree —
    the configuration for which monotone growth is guaranteed.  With
    ``reduce_first=False`` stage one is skipped, exposing how dangling tuples
    inflate intermediates (what the monotone flow property protects against).
    """
    meter = WorkMeter()
    working = (
        full_reducer(tree, relations, meter)
        if reduce_first
        else {label: relations[label] for label in tree.nodes}
    )
    parents = tree.parent_map()
    children = tree.children_map()

    depth: dict[Hashable, int] = {tree.root: 0}
    order: list[Hashable] = [tree.root]
    index = 0
    while index < len(order):
        node = order[index]
        index += 1
        for child in children[node]:
            depth[child] = depth[node] + 1
            order.append(child)

    sizes: list[int] = []
    accumulated = dict(working)
    for node in sorted(order, key=lambda n: -depth[n]):
        if node == tree.root:
            continue
        parent = parents[node]
        joined = natural_join(accumulated[parent], accumulated[node], meter)
        accumulated[parent] = joined
        sizes.append(len(joined))
    return AcyclicJoinResult(accumulated[tree.root], working, sizes, meter)
