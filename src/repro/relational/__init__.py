"""Relational substrate: relations, algebra, the EDB, and acyclic joins."""

from .algebra import (
    WorkMeter,
    antijoin,
    cross_product,
    join_all,
    natural_join,
    semijoin,
)
from .database import Database, columns_for
from .relation import Relation, Row
from .sqlite_backend import SqliteDatabase

__all__ = [
    "Relation",
    "Row",
    "Database",
    "SqliteDatabase",
    "columns_for",
    "WorkMeter",
    "natural_join",
    "semijoin",
    "antijoin",
    "cross_product",
    "join_all",
]
