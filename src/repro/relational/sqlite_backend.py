"""A SQLite-backed extensional database.

Section 1: "the EDB may be viewed as a conventional relational database."
This adapter makes that literal — the facts live in SQLite tables and the
EDB leaf processes answer their tuple requests with indexed SQL lookups,
while the rest of the engine is unchanged (pass the adapter to
``MessagePassingEngine(database=...)``).

One table per predicate, columns ``a0..a{k-1}``; an index per column is
created so class-"d" restrictions translate to indexed WHERE clauses — the
semijoin role of "d" arguments, executed by the database.  The adapter
exposes the same access-counting surface as the in-memory
:class:`~repro.relational.database.Database`, so all benchmarks work
against either backend.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, Iterator, Mapping, Sequence

from ..core.atoms import Atom
from ..core.terms import Constant
from .database import columns_for
from .relation import Relation

__all__ = ["SqliteDatabase"]


class SqliteDatabase:
    """Drop-in EDB backend over a ``sqlite3`` connection."""

    def __init__(self, connection: sqlite3.Connection) -> None:
        self.connection = connection
        self.scans = 0
        self.indexed_lookups = 0
        self.rows_retrieved = 0
        self._arities: dict[str, int] = {}
        self._introspect()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_facts(cls, facts: Iterable[Atom], path: str = ":memory:") -> "SqliteDatabase":
        """Create (or populate) a SQLite database from ground atoms."""
        grouped: dict[str, list[tuple]] = {}
        for fact in facts:
            grouped.setdefault(fact.predicate, []).append(fact.ground_tuple())
        return cls.from_tables(grouped, path=path)

    @classmethod
    def from_tables(
        cls, tables: Mapping[str, Iterable[Sequence[object]]], path: str = ":memory:"
    ) -> "SqliteDatabase":
        """Create tables ``{predicate: rows}`` with per-column indexes."""
        connection = sqlite3.connect(path)
        cursor = connection.cursor()
        for predicate in sorted(tables):
            rows = [tuple(r) for r in tables[predicate]]
            arity = len(rows[0]) if rows else 0
            columns = ", ".join(f"a{i}" for i in range(arity)) or "a0"
            cursor.execute(f'CREATE TABLE IF NOT EXISTS "{predicate}" ({columns})')
            if rows:
                placeholders = ", ".join("?" * arity)
                cursor.executemany(
                    f'INSERT INTO "{predicate}" VALUES ({placeholders})', rows
                )
            for i in range(arity):
                cursor.execute(
                    f'CREATE INDEX IF NOT EXISTS "idx_{predicate}_{i}" '
                    f'ON "{predicate}" (a{i})'
                )
        connection.commit()
        return cls(connection)

    def _introspect(self) -> None:
        cursor = self.connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        )
        for (table,) in cursor.fetchall():
            info = self.connection.execute(f'PRAGMA table_info("{table}")').fetchall()
            self._arities[table] = len(info)

    # ------------------------------------------------------------------
    # The Database access surface
    # ------------------------------------------------------------------
    def __contains__(self, predicate: str) -> bool:
        return predicate in self._arities

    def predicates(self) -> list[str]:
        """Sorted table (predicate) names."""
        return sorted(self._arities)

    def relation(self, predicate: str) -> Relation:
        """The full relation as an in-memory snapshot (no counters)."""
        if predicate not in self._arities:
            return Relation(())
        rows = self.connection.execute(f'SELECT * FROM "{predicate}"').fetchall()
        return Relation(columns_for(self._arities[predicate]), rows)

    def relation_or_empty(self, predicate: str, arity: int) -> Relation:
        """The relation, or an empty one of the given arity."""
        if predicate not in self._arities:
            return Relation(columns_for(arity))
        return self.relation(predicate)

    def scan(self, predicate: str) -> Relation:
        """Full scan (counted)."""
        self.scans += 1
        relation = self.relation(predicate)
        self.rows_retrieved += len(relation)
        return relation

    def lookup(self, predicate: str, bound: Mapping[int, object]) -> list[tuple]:
        """Indexed retrieval: rows whose positions match ``bound`` values."""
        if predicate not in self._arities:
            return []
        self.indexed_lookups += 1
        if not bound:
            rows = self.connection.execute(f'SELECT * FROM "{predicate}"').fetchall()
        else:
            where = " AND ".join(f"a{i} = ?" for i in sorted(bound))
            values = [bound[i] for i in sorted(bound)]
            rows = self.connection.execute(
                f'SELECT * FROM "{predicate}" WHERE {where}', values
            ).fetchall()
        rows = [tuple(r) for r in rows]
        self.rows_retrieved += len(rows)
        return rows

    def facts(self) -> Iterator[Atom]:
        """Iterate all stored facts as ground atoms."""
        for predicate in self.predicates():
            for row in self.relation(predicate).rows:
                yield Atom(predicate, tuple(Constant(v) for v in row))

    def total_rows(self) -> int:
        """Total number of facts across all tables."""
        total = 0
        for predicate in self._arities:
            (count,) = self.connection.execute(
                f'SELECT COUNT(*) FROM "{predicate}"'
            ).fetchone()
            total += count
        return total

    def reset_counters(self) -> None:
        """Zero the access counters."""
        self.scans = 0
        self.indexed_lookups = 0
        self.rows_retrieved = 0
