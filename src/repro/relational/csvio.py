"""Loading EDB relations from delimited files.

A directory of ``<predicate>.csv`` / ``<predicate>.tsv`` files becomes the
extensional database: one file per relation, one row per fact.  This is the
"conventional relational database" interface of Section 1 for the command
line (``repro-datalog run rules.dl --data facts/``).

Values are parsed as integers when they look like integers, floats when they
look like floats, and strings otherwise (strip whitespace).  An optional
header row is skipped when ``header=True``.
"""

from __future__ import annotations

import csv
import os
from typing import Iterable, Optional

from ..core.atoms import Atom
from ..core.terms import Constant
from .database import Database

__all__ = ["parse_value", "load_relation", "load_directory", "facts_from_directory"]


def parse_value(text: str) -> object:
    """Coerce a CSV cell: int if integral, float if numeric, else stripped str."""
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def load_relation(path: str, header: bool = False) -> list[tuple]:
    """Load one delimited file into a list of value tuples.

    The delimiter is inferred from the extension (``.tsv`` → tab, else
    comma).  Blank lines are skipped; ragged rows raise ``ValueError``.
    """
    delimiter = "\t" if path.endswith(".tsv") else ","
    rows: list[tuple] = []
    arity: Optional[int] = None
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for index, row in enumerate(reader):
            if header and index == 0:
                continue
            if not row or all(not cell.strip() for cell in row):
                continue
            values = tuple(parse_value(cell) for cell in row)
            if arity is None:
                arity = len(values)
            elif len(values) != arity:
                raise ValueError(
                    f"{path}:{index + 1}: expected {arity} columns, got {len(values)}"
                )
            rows.append(values)
    return rows


def load_directory(directory: str, header: bool = False) -> dict[str, list[tuple]]:
    """Load every ``*.csv`` / ``*.tsv`` file in a directory.

    The predicate name is the file's stem; e.g. ``par.csv`` populates the
    EDB predicate ``par``.
    """
    tables: dict[str, list[tuple]] = {}
    for name in sorted(os.listdir(directory)):
        stem, ext = os.path.splitext(name)
        if ext not in (".csv", ".tsv"):
            continue
        tables[stem] = load_relation(os.path.join(directory, name), header=header)
    return tables


def facts_from_directory(directory: str, header: bool = False) -> list[Atom]:
    """Directory → ground atoms, ready for ``Program.with_facts``."""
    facts: list[Atom] = []
    for predicate, rows in load_directory(directory, header=header).items():
        for row in rows:
            facts.append(Atom(predicate, tuple(Constant(v) for v in row)))
    return facts
