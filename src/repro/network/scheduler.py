"""A deterministic discrete-event message scheduler.

The paper's processes communicate only by messages; this scheduler owns the
channels and delivers messages one at a time to node ``handle`` methods.  Two
properties matter:

* **FIFO channels** — each (sender, receiver) pair delivers in send order.
  The end-message semantics relies on this ("tuples before the end"), as do
  real message-queue substrates the paper appeals to.
* **Deterministic but reorderable delivery** — by default messages are
  delivered globally in send order; with a ``seed`` the scheduler assigns
  random per-message latencies (still respecting channel FIFO) to exercise
  the asynchrony the distributed termination protocol must survive.

The scheduler also keeps the *global quiescence oracle* used by the tests to
validate Theorem 3.1: it can see that no messages are in flight — something
the distributed nodes themselves never can.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Protocol

from .messages import COMPUTATION_TYPES, PROTOCOL_TYPES, Message, TupleSet, logical_size

__all__ = ["Process", "SchedulerStats", "Scheduler", "MessageBudgetExceeded"]


class MessageBudgetExceeded(RuntimeError):
    """Raised when a run exceeds its message budget (a bug guard)."""


class Process(Protocol):
    """What the scheduler requires of a node process."""

    node_id: int

    def handle(self, message: Message, network: "Scheduler") -> None:
        """Process one delivered message, sending follow-ups via ``network``."""
        ...

    def on_idle_check(self, network: "Scheduler") -> None:
        """Hook invoked after each delivery (leaders may start the protocol)."""
        ...


@dataclass
class SchedulerStats:
    """Message accounting for a run.

    Counters are *logical*: a :class:`TupleSet` weighs ``len(rows)`` —
    packaging answers must not change what the totals (or ``max_messages``
    budgets) mean, per the paper's per-tuple accounting.  ``physical_total``
    counts actual deliveries (handler invocations), ``by_kind`` counts
    physical messages per class, and the ``tuple_sets`` / ``tuple_set_rows``
    pair exposes how much batching the run achieved.
    """

    delivered_total: int = 0
    physical_total: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)
    by_receiver: dict[int, int] = field(default_factory=dict)
    sets_by_receiver: dict[int, int] = field(default_factory=dict)
    computation_messages: int = 0
    protocol_messages: int = 0
    tuple_sets: int = 0
    tuple_set_rows: int = 0

    def record(self, message: Message) -> None:
        """Account one delivered message (weighted by its logical size)."""
        weight = logical_size(message)
        self.delivered_total += weight
        self.physical_total += 1
        kind = message.kind()
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        self.by_receiver[message.receiver] = (
            self.by_receiver.get(message.receiver, 0) + weight
        )
        if isinstance(message, TupleSet):
            self.tuple_sets += 1
            self.tuple_set_rows += weight
            self.sets_by_receiver[message.receiver] = (
                self.sets_by_receiver.get(message.receiver, 0) + 1
            )
        if isinstance(message, COMPUTATION_TYPES):
            self.computation_messages += weight
        elif isinstance(message, PROTOCOL_TYPES):
            self.protocol_messages += weight


class Scheduler:
    """Delivers messages to registered processes until the network drains.

    Parameters
    ----------
    seed:
        ``None`` (default) delivers in global send order; an integer seed
        draws a random latency (1–``max_latency``) per message, subject to
        per-channel FIFO.
    max_messages:
        Delivery budget; :class:`MessageBudgetExceeded` beyond it.
    trace:
        Optional callback invoked with every delivered message.
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        max_latency: int = 16,
        max_messages: int = 5_000_000,
        trace: Optional[Callable[[Message], None]] = None,
    ) -> None:
        self._processes: dict[int, Process] = {}
        self._heap: list[tuple[int, int, Message]] = []
        self._now = 0
        self._send_seq = 0
        self._channel_clock: dict[tuple[int, int], int] = {}
        self._pending_per_node: dict[int, int] = {}
        self._rng = random.Random(seed) if seed is not None else None
        self._max_latency = max(1, max_latency)
        self._max_messages = max_messages
        self._trace = trace
        self.stats = SchedulerStats()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, process: Process) -> None:
        """Add a process to the network (ids must be unique)."""
        if process.node_id in self._processes:
            raise ValueError(f"duplicate process id {process.node_id}")
        self._processes[process.node_id] = process
        self._pending_per_node.setdefault(process.node_id, 0)

    def process(self, node_id: int) -> Process:
        """Look up a registered process."""
        return self._processes[node_id]

    def processes(self) -> Iterable[Process]:
        """All registered processes."""
        return self._processes.values()

    # ------------------------------------------------------------------
    # Sending and delivery
    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Enqueue a message for delivery (FIFO per channel)."""
        if message.receiver not in self._processes:
            raise KeyError(f"message to unknown process {message.receiver}: {message}")
        channel = (message.sender, message.receiver)
        if self._rng is None:
            deliver_at = self._now + 1
        else:
            deliver_at = self._now + self._rng.randint(1, self._max_latency)
        # FIFO: never deliver before the channel's previous message.
        deliver_at = max(deliver_at, self._channel_clock.get(channel, 0) + 1)
        self._channel_clock[channel] = deliver_at
        self._send_seq += 1
        heapq.heappush(self._heap, (deliver_at, self._send_seq, message))
        self._pending_per_node[message.receiver] = (
            self._pending_per_node.get(message.receiver, 0) + 1
        )

    def pending_for(self, node_id: int) -> int:
        """Messages queued (undelivered) for a node — its inbox length.

        A real process knows its own queue length; nodes use this only for
        *their own* id inside ``empty_queues()``.
        """
        return self._pending_per_node.get(node_id, 0)

    def in_flight(self) -> int:
        """Global oracle: total undelivered messages (tests only)."""
        return len(self._heap)

    def run(self) -> SchedulerStats:
        """Deliver messages until the network drains; return the statistics."""
        while self._heap:
            if self.stats.delivered_total >= self._max_messages:
                raise MessageBudgetExceeded(
                    f"exceeded {self._max_messages} delivered messages"
                )
            deliver_at, _, message = heapq.heappop(self._heap)
            self._now = max(self._now, deliver_at)
            self._pending_per_node[message.receiver] -= 1
            self.stats.record(message)
            if self._trace is not None:
                self._trace(message)
            receiver = self._processes[message.receiver]
            receiver.handle(message, self)
            # Post-delivery hook: Fig 2 attaches the protocol-start check to
            # the moment a node finishes a unit of work.
            receiver.on_idle_check(self)
        return self.stats

    def step(self) -> Optional[Message]:
        """Deliver a single message (for fine-grained tests); None if drained.

        Enforces the same ``max_messages`` budget as :meth:`run` — a
        step-driven loop must hit the bug guard too, not run unbounded.
        """
        if not self._heap:
            return None
        if self.stats.delivered_total >= self._max_messages:
            raise MessageBudgetExceeded(
                f"exceeded {self._max_messages} delivered messages"
            )
        deliver_at, _, message = heapq.heappop(self._heap)
        self._now = max(self._now, deliver_at)
        self._pending_per_node[message.receiver] -= 1
        self.stats.record(message)
        if self._trace is not None:
            self._trace(message)
        receiver = self._processes[message.receiver]
        receiver.handle(message, self)
        receiver.on_idle_check(self)
        return message
