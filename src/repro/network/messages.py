"""The message vocabulary of the framework — Sections 3.1 and 3.2.

Basic computation messages (Section 3.1):

* :class:`RelationRequest` — "triggers the beginning of computation and
  identifies the classes of the arguments"; flows against the orientation of
  the arcs.
* :class:`TupleRequest` — "specifies one binding for all of the 'd'
  arguments"; the complete specification of an intermediate relation is the
  relation request plus the set of associated tuple requests.
* :class:`TupleMessage` — "whenever a tuple is derived it is sent to the
  parent via a tuple message" (and to cyclic successors).
* :class:`TupleSet` — footnote 2's "efficiency of volume", generalized from
  requests to answers: one message carrying a whole set of derived rows for
  a stream.  Logically equivalent to ``len(rows)`` tuple messages delivered
  back to back, and accounted as exactly that many logical tuples (see
  :func:`logical_size`).
* :class:`EndMessage` — "when a feeder node determines that it can produce
  no more tuples for a particular tuple request (or relation request), it
  sends an end message".

Termination-protocol messages (Section 3.2, Fig 2):

* :class:`EndRequest` — propagated down the breadth-first spanning tree by
  the leader;
* :class:`EndNegative` / :class:`EndConfirmed` — the answers passed back up.

Requests on a stream are *sequence numbered* by the consumer (the relation
request is sequence 0; tuple requests count up from 1) and an
:class:`EndMessage` carries ``upto``, the highest request sequence it
completes.  Channels are FIFO, so "caught up" is simply
``last end.upto == last sequence sent`` — this realizes the paper's
per-request end semantics while letting one end message cover a batch
(compare the paper's remark on packaging related tuple requests).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from .._numpy import np

__all__ = [
    "Message",
    "RelationRequest",
    "TupleRequest",
    "PackagedTupleRequest",
    "TupleMessage",
    "TupleSet",
    "ColumnBatch",
    "EndMessage",
    "EndRequest",
    "EndNegative",
    "EndConfirmed",
    "MessageBatch",
    "coalesce_tuple_requests",
    "coalesce_batch",
    "logical_size",
    "COMPUTATION_TYPES",
    "PROTOCOL_TYPES",
]


@dataclass(frozen=True, slots=True)
class Message:
    """Base class: every message names its sender and receiver node ids."""

    sender: int
    receiver: int

    def kind(self) -> str:
        """Short lowercase tag used by the statistics tables."""
        return type(self).__name__


@dataclass(frozen=True, slots=True)
class RelationRequest(Message):
    """Opens a stream: the consumer asks the producer for its relation.

    ``adornment`` is the producer goal's argument classes, carried so that a
    process could in principle be spawned knowing only the message (the
    specification "for the relation [is] received in messages from
    neighboring processes" — Section 1.2).  Sequence number 0 on the stream.
    """

    adornment: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class TupleRequest(Message):
    """One binding for all the "d" arguments of the producer's goal.

    ``binding`` lists values for the producer's "d" positions in increasing
    position order; ``seq`` is the consumer's per-stream sequence number.
    """

    binding: tuple
    seq: int


@dataclass(frozen=True, slots=True)
class PackagedTupleRequest(Message):
    """A batch of related tuple requests — the footnote-2 enhancement.

    "A further enhancement would be to 'package' a set of related tuple
    requests, in case the node servicing the request can gain some
    efficiency of volume ... If packaged, the retrieval can be done in one
    scan."  ``bindings`` holds several "d" bindings; ``seq`` is the sequence
    number of the *last* request in the package (one end covers them all).
    """

    bindings: tuple
    seq: int


@dataclass(frozen=True, slots=True)
class TupleMessage(Message):
    """One derived tuple, as values over the producer goal's non-"e" positions."""

    row: tuple


@dataclass(frozen=True, slots=True)
class TupleSet(Message):
    """A set of derived rows shipped as one message — packaged *answers*.

    Footnote 2 observes that messages gain "efficiency of volume" when
    related tuple requests travel as a package; this is the same idea on the
    answer stream.  ``rows`` holds several rows (each over the producer
    goal's non-"e" positions) for the same (producer, consumer) channel.
    Semantically a :class:`TupleSet` is exactly ``len(rows)`` tuple messages
    delivered back to back: it carries no sequence number of its own, and
    per-channel FIFO still guarantees every row arrives before the
    :class:`EndMessage` whose ``upto`` covers the requests that produced it.
    Accounting weighs it as ``len(rows)`` logical tuples so ``max_messages``
    budgets and the Section 3.2 sent/received counters keep their meaning.
    """

    rows: frozenset

    def logical(self) -> int:
        """Number of logical tuples this message stands for."""
        return len(self.rows)


def _as_column(values: tuple):
    """One column of a batch: a numpy array when it is lossless, else a tuple.

    Only all-``int`` columns are promoted (``np.int64``) — any laxer rule is
    lossy: ``asarray([1, "a"])`` stringifies the int, ``fromiter`` with an
    int dtype silently truncates floats.  ``tolist()`` on an int64 array
    round-trips exactly, so hashing/equality of gathered rows is unchanged.
    """
    if np is not None and values and all(type(v) is int for v in values):
        return np.fromiter(values, dtype=np.int64, count=len(values))
    return values


class ColumnBatch:
    """A TupleSet batch in columnar form: per-column arrays plus hash indexes.

    The row-oriented kernels of PR 3 touch every row with several python-level
    operations (convert, key-project, probe).  This representation transposes
    the batch **once** — ``zip(*rows)`` runs at C speed — and then serves the
    kernels whole columns: gathers re-zip only the selected columns, join keys
    for a single shared variable are the bare column (no per-row 1-tuple
    allocation), and the per-key hash index is built exactly once per batch.
    Int columns are stored as numpy arrays when the ``fast`` extra is
    installed (``arr.tolist()`` unboxes them back at C speed); every other
    column stays a plain tuple with identical semantics — see
    ``repro._numpy`` for the one import guard.

    Instances are node-local kernel state, not messages: the wire format
    stays :class:`TupleSet`, so transports, accounting, and the termination
    protocol are untouched.
    """

    __slots__ = ("rows", "_columns", "_lists")

    def __init__(self, rows: Iterable[tuple]) -> None:
        self.rows: list[tuple] = rows if isinstance(rows, list) else list(rows)
        self._columns: Optional[tuple] = None
        self._lists: Optional[list] = None  # per-position list cache

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def columns(self) -> tuple:
        """The transposed batch (one C-level ``zip``, built lazily, once).

        Columns stay plain tuples here: the kernels immediately re-zip them
        into gathered rows, so eagerly boxing into arrays would cost more
        than it saves.  :meth:`array` promotes a single column on demand for
        the operations that do vectorize (``distinct_keys``).
        """
        if self._columns is None:
            self._columns = tuple(zip(*self.rows)) if self.rows else ()
        return self._columns

    def column(self, position: int) -> Sequence:
        """One column (a tuple; cheap positional access for the kernels)."""
        return self.columns[position]

    def array(self, position: int):
        """One column promoted via ``_as_column`` (numpy int64 array when the
        ``fast`` extra is installed and the column is all-int, else the plain
        tuple).  Cached per position."""
        if self._lists is None:
            self._lists = [None] * len(self.columns)
        cached = self._lists[position]
        if cached is None:
            cached = _as_column(list(self.columns[position]))
            self._lists[position] = cached
        return cached

    def keys(self, positions: Sequence[int]) -> Sequence:
        """The join key of every row: bare values for a single position,
        tuples otherwise (key arity, not representation, is what both sides
        of a columnar join agree on).  Gathers are one C-level pass — a
        cached column when the transpose already exists, ``map(itemgetter)``
        otherwise (building all columns to read one is the slow direction).
        """
        if not self.rows:
            return []
        if len(positions) == 1:
            if self._columns is not None:
                return self._columns[positions[0]]
            return list(map(operator.itemgetter(positions[0]), self.rows))
        if not positions:  # every row keys to the nullary tuple
            return [()] * len(self.rows)
        return list(map(operator.itemgetter(*positions), self.rows))

    def project(self, positions: Sequence[int]) -> list[tuple]:
        """Gather: the rows restricted to ``positions``, as tuples."""
        if not self.rows:
            return []
        if not positions:
            return [()] * len(self.rows)
        if len(positions) == 1:
            return list(zip(self.keys(positions)))  # re-box as 1-tuples
        return list(map(operator.itemgetter(*positions), self.rows))

    def group(self, positions: Sequence[int]) -> dict:
        """The batch's hash index: join key -> list of full rows, built once."""
        index: dict = {}
        for key, row in zip(self.keys(positions), self.rows):
            bucket = index.get(key)
            if bucket is None:
                index[key] = [row]
            else:
                bucket.append(row)
        return index

    def distinct_keys(self, positions: Sequence[int]) -> int:
        """How many distinct join keys the batch carries (kernel statistic)."""
        if not self.rows:
            return 0
        if len(positions) == 1:
            col = self.array(positions[0])
            if np is not None and isinstance(col, np.ndarray):
                return int(np.unique(col).size)
        return len(set(self.keys(positions)))


@dataclass(frozen=True, slots=True)
class EndMessage(Message):
    """All requests with sequence number ≤ ``upto`` on this stream are complete."""

    upto: int


@dataclass(frozen=True, slots=True)
class EndRequest(Message):
    """Protocol: the leader (via the BFST) asks "are you done?" — round ``round_id``."""

    round_id: int


@dataclass(frozen=True, slots=True)
class EndNegative(Message):
    """Protocol: some node below was not idle for a full period."""

    round_id: int


@dataclass(frozen=True, slots=True)
class EndConfirmed(Message):
    """Protocol: this subtree was idle for the whole period between two requests."""

    round_id: int


@dataclass(frozen=True, slots=True)
class ComponentDone(Message):
    """Protocol: the leader concluded; members may end their own customers.

    Footnote 4: "if nodes with identical predicates and binding patterns were
    coalesced, then the leader must propagate the end message around the
    strong component, as other nodes may have customers."  This message is
    that propagation, sent down the BFST after a conclusion.
    """

    round_id: int


@dataclass(frozen=True, slots=True)
class EndNudge(Message):
    """Protocol: a member owing an end asks the leader to probe.

    Needed only in coalesced graphs: a member can receive a tuple request it
    can serve entirely from cache, creating an end obligation without any
    work ever reaching the leader; the nudge restores the leader's trigger.
    """


@dataclass(frozen=True, slots=True)
class MessageBatch:
    """A transport envelope: many messages in one channel operation.

    Addressed shard-to-shard, not node-to-node — the pooled runtime's queue
    fabric carries one ``MessageBatch`` per OS ``put`` so the pickle + queue
    cost amortizes over ``len(messages)`` tuples/requests instead of being
    paid per tuple.  The envelope is invisible to node logic: the receiving
    worker unpacks it (see :func:`coalesce_tuple_requests`) and delivers the
    contained messages one at a time, in order, preserving per-channel FIFO.
    """

    origin: int  # sending shard id
    messages: tuple[Message, ...]

    def __len__(self) -> int:
        return len(self.messages)


def coalesce_batch(
    messages: Sequence[Message], tuple_sets: bool = True
) -> list[Message]:
    """Merge adjacent same-channel messages into their packaged forms.

    The batch unpack path of the pooled runtime, applied on ingest so the
    hosted nodes see set-at-a-time messages even when the sender shipped
    rows one at a time:

    * a run of :class:`TupleRequest` messages adjacent in the batch and
      sharing a (sender, receiver) channel becomes one
      :class:`PackagedTupleRequest` carrying their distinct bindings (first
      occurrence kept; serving a binding is idempotent so duplicates are
      dropped) under the *last* request's sequence number — the footnote-2
      package the producers already serve, possibly in one scan;
    * when ``tuple_sets`` is true, a run of :class:`TupleMessage` /
      :class:`TupleSet` messages on one channel becomes a single
      :class:`TupleSet` with the union of their rows.

    Only adjacent runs are merged, so the relative order of every channel's
    messages is untouched: requests keep their sequence semantics (``seq``
    of the last member covers the package) and rows still precede the
    :class:`EndMessage` that covers them.
    """
    out: list[Message] = []
    run: list[Message] = []

    def same_channel(message: Message) -> bool:
        return (
            run[-1].sender == message.sender
            and run[-1].receiver == message.receiver
        )

    def flush_run() -> None:
        if not run:
            return
        if len(run) == 1:
            out.append(run[0])
        elif isinstance(run[0], TupleRequest):
            bindings = tuple(dict.fromkeys(r.binding for r in run))
            out.append(
                PackagedTupleRequest(
                    run[0].sender, run[0].receiver, bindings, run[-1].seq
                )
            )
        else:
            rows = frozenset().union(
                *(
                    m.rows if isinstance(m, TupleSet) else (m.row,)
                    for m in run
                )
            )
            out.append(TupleSet(run[0].sender, run[0].receiver, rows))
        run.clear()

    row_types = (TupleMessage, TupleSet) if tuple_sets else ()
    for message in messages:
        if isinstance(message, TupleRequest):
            if run and not (isinstance(run[-1], TupleRequest) and same_channel(message)):
                flush_run()
            run.append(message)
            continue
        if isinstance(message, row_types):
            if run and not (isinstance(run[-1], row_types) and same_channel(message)):
                flush_run()
            run.append(message)
            continue
        flush_run()
        out.append(message)
    flush_run()
    return out


def coalesce_tuple_requests(messages: Sequence[Message]) -> list[Message]:
    """Merge adjacent same-channel tuple requests into packaged requests.

    The request-only subset of :func:`coalesce_batch` — rows are left
    untouched.  Kept as the named entry point for the footnote-2 behavior
    (and for the ``--no-tuple-sets`` escape hatch, where answers must stay
    per-row even on the batched transport).
    """
    return coalesce_batch(messages, tuple_sets=False)


def logical_size(message) -> int:
    """Number of logical tuples/messages a physical message stands for.

    A :class:`TupleSet` counts as ``len(rows)`` — the paper's accounting is
    per tuple, and packaging answers must not change what ``max_messages``
    budgets, :class:`SchedulerStats` totals, or the Section 3.2
    sent/received termination counters mean.  A :class:`MessageBatch` sums
    its members; every other message counts as one.
    """
    if isinstance(message, TupleSet):
        return len(message.rows)
    if isinstance(message, MessageBatch):
        return sum(logical_size(m) for m in message.messages)
    return 1


#: Message classes that constitute *work* (reset the idleness counter).
COMPUTATION_TYPES = (
    RelationRequest,
    TupleRequest,
    PackagedTupleRequest,
    TupleMessage,
    TupleSet,
    EndMessage,
)

#: Message classes belonging to the Fig-2 termination protocol.
PROTOCOL_TYPES = (EndRequest, EndNegative, EndConfirmed, ComponentDone, EndNudge)
