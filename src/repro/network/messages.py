"""The message vocabulary of the framework — Sections 3.1 and 3.2.

Basic computation messages (Section 3.1):

* :class:`RelationRequest` — "triggers the beginning of computation and
  identifies the classes of the arguments"; flows against the orientation of
  the arcs.
* :class:`TupleRequest` — "specifies one binding for all of the 'd'
  arguments"; the complete specification of an intermediate relation is the
  relation request plus the set of associated tuple requests.
* :class:`TupleMessage` — "whenever a tuple is derived it is sent to the
  parent via a tuple message" (and to cyclic successors).
* :class:`EndMessage` — "when a feeder node determines that it can produce
  no more tuples for a particular tuple request (or relation request), it
  sends an end message".

Termination-protocol messages (Section 3.2, Fig 2):

* :class:`EndRequest` — propagated down the breadth-first spanning tree by
  the leader;
* :class:`EndNegative` / :class:`EndConfirmed` — the answers passed back up.

Requests on a stream are *sequence numbered* by the consumer (the relation
request is sequence 0; tuple requests count up from 1) and an
:class:`EndMessage` carries ``upto``, the highest request sequence it
completes.  Channels are FIFO, so "caught up" is simply
``last end.upto == last sequence sent`` — this realizes the paper's
per-request end semantics while letting one end message cover a batch
(compare the paper's remark on packaging related tuple requests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "Message",
    "RelationRequest",
    "TupleRequest",
    "TupleMessage",
    "EndMessage",
    "EndRequest",
    "EndNegative",
    "EndConfirmed",
    "MessageBatch",
    "coalesce_tuple_requests",
    "COMPUTATION_TYPES",
    "PROTOCOL_TYPES",
]


@dataclass(frozen=True, slots=True)
class Message:
    """Base class: every message names its sender and receiver node ids."""

    sender: int
    receiver: int

    def kind(self) -> str:
        """Short lowercase tag used by the statistics tables."""
        return type(self).__name__


@dataclass(frozen=True, slots=True)
class RelationRequest(Message):
    """Opens a stream: the consumer asks the producer for its relation.

    ``adornment`` is the producer goal's argument classes, carried so that a
    process could in principle be spawned knowing only the message (the
    specification "for the relation [is] received in messages from
    neighboring processes" — Section 1.2).  Sequence number 0 on the stream.
    """

    adornment: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class TupleRequest(Message):
    """One binding for all the "d" arguments of the producer's goal.

    ``binding`` lists values for the producer's "d" positions in increasing
    position order; ``seq`` is the consumer's per-stream sequence number.
    """

    binding: tuple
    seq: int


@dataclass(frozen=True, slots=True)
class PackagedTupleRequest(Message):
    """A batch of related tuple requests — the footnote-2 enhancement.

    "A further enhancement would be to 'package' a set of related tuple
    requests, in case the node servicing the request can gain some
    efficiency of volume ... If packaged, the retrieval can be done in one
    scan."  ``bindings`` holds several "d" bindings; ``seq`` is the sequence
    number of the *last* request in the package (one end covers them all).
    """

    bindings: tuple
    seq: int


@dataclass(frozen=True, slots=True)
class TupleMessage(Message):
    """One derived tuple, as values over the producer goal's non-"e" positions."""

    row: tuple


@dataclass(frozen=True, slots=True)
class EndMessage(Message):
    """All requests with sequence number ≤ ``upto`` on this stream are complete."""

    upto: int


@dataclass(frozen=True, slots=True)
class EndRequest(Message):
    """Protocol: the leader (via the BFST) asks "are you done?" — round ``round_id``."""

    round_id: int


@dataclass(frozen=True, slots=True)
class EndNegative(Message):
    """Protocol: some node below was not idle for a full period."""

    round_id: int


@dataclass(frozen=True, slots=True)
class EndConfirmed(Message):
    """Protocol: this subtree was idle for the whole period between two requests."""

    round_id: int


@dataclass(frozen=True, slots=True)
class ComponentDone(Message):
    """Protocol: the leader concluded; members may end their own customers.

    Footnote 4: "if nodes with identical predicates and binding patterns were
    coalesced, then the leader must propagate the end message around the
    strong component, as other nodes may have customers."  This message is
    that propagation, sent down the BFST after a conclusion.
    """

    round_id: int


@dataclass(frozen=True, slots=True)
class EndNudge(Message):
    """Protocol: a member owing an end asks the leader to probe.

    Needed only in coalesced graphs: a member can receive a tuple request it
    can serve entirely from cache, creating an end obligation without any
    work ever reaching the leader; the nudge restores the leader's trigger.
    """


@dataclass(frozen=True, slots=True)
class MessageBatch:
    """A transport envelope: many messages in one channel operation.

    Addressed shard-to-shard, not node-to-node — the pooled runtime's queue
    fabric carries one ``MessageBatch`` per OS ``put`` so the pickle + queue
    cost amortizes over ``len(messages)`` tuples/requests instead of being
    paid per tuple.  The envelope is invisible to node logic: the receiving
    worker unpacks it (see :func:`coalesce_tuple_requests`) and delivers the
    contained messages one at a time, in order, preserving per-channel FIFO.
    """

    origin: int  # sending shard id
    messages: tuple[Message, ...]

    def __len__(self) -> int:
        return len(self.messages)


def coalesce_tuple_requests(messages: Sequence[Message]) -> list[Message]:
    """Merge adjacent same-channel tuple requests into packaged requests.

    The batch unpack path of the pooled runtime: a run of
    :class:`TupleRequest` messages that are adjacent in the batch and share a
    (sender, receiver) channel is replaced by one
    :class:`PackagedTupleRequest` carrying all their bindings under the last
    request's sequence number — exactly the footnote-2 "package of related
    tuple requests" the producers already know how to serve (EDB leaves may
    satisfy it in one scan).  Only adjacent runs are merged, so the relative
    order of every channel's messages is untouched and the per-request end
    semantics (``seq`` of the last member covers the package) is preserved.
    """
    out: list[Message] = []
    run: list[TupleRequest] = []

    def flush_run() -> None:
        if not run:
            return
        if len(run) == 1:
            out.append(run[0])
        else:
            out.append(
                PackagedTupleRequest(
                    run[0].sender,
                    run[0].receiver,
                    tuple(r.binding for r in run),
                    run[-1].seq,
                )
            )
        run.clear()

    for message in messages:
        if isinstance(message, TupleRequest):
            if run and (
                run[-1].sender != message.sender
                or run[-1].receiver != message.receiver
            ):
                flush_run()
            run.append(message)
            continue
        flush_run()
        out.append(message)
    flush_run()
    return out


#: Message classes that constitute *work* (reset the idleness counter).
COMPUTATION_TYPES = (
    RelationRequest,
    TupleRequest,
    PackagedTupleRequest,
    TupleMessage,
    EndMessage,
)

#: Message classes belonging to the Fig-2 termination protocol.
PROTOCOL_TYPES = (EndRequest, EndNegative, EndConfirmed, ComponentDone, EndNudge)
