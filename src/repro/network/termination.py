"""Distributed termination of cycles — Section 3.2 and Fig 2.

Duplicate deletion guarantees that the nodes of a strong component eventually
become idle, but no node can *see* that all of them are idle at once: "one
(or a few) answer tuples may be trickling through the nodes of the strong
component, yet each node happens to be caught up on its work at the time the
message arrives asking whether it is done."

The protocol: the unique entry node of each strong component (the DFS root;
footnote 3 notes the absence of cross and forward edges guarantees it is
unique and makes the breadth-first spanning tree coincide with the DFS tree)
is the **BFST leader**.  The leader floods an *end request* down the BFST.
Each node remembers, via the ``idleness`` counter, how many consecutive end
requests found it idle; any delivered work message resets the counter.  A
node answers *end confirmed* only when it has been idle for the entire
period between two successive end requests (``idleness ≥ 2``) **and** every
BFST child confirmed; otherwise it answers *end negative* once all children
have answered.  On a negative outcome the leader starts another wave; on a
confirmed outcome with itself still idle it concludes and sends ``end`` to
its customer (Theorem 3.1).

Two repairs of apparent typos in the Fig-2 pseudocode (the prose of
Section 3.2 is unambiguous on both):

1. the stray ``idleness := empty_queues()`` assignment inside the
   send-to-children loop is dropped — idleness changes only on work arrival
   (reset) and on end-request receipt (increment-if-idle);
2. a per-round negative flag is kept so an internal node never answers
   *end confirmed* when some child answered *end negative* in the same round
   (the pseudocode's ``process-end-confirmed`` checks only its own idleness;
   the prose requires "received an end confirmed message from all its
   children").

Set-at-a-time messages do not perturb the argument: a delivered
:class:`~repro.network.messages.TupleSet` is ONE work event (it resets
``idleness`` exactly like the ``len(rows)`` tuple messages it replaces —
once is enough, resets are idempotent), it occupies the receiver's queue
until delivered (so ``empty_queues()`` still sees it), and the logical
sent/received accounting weighs it as ``len(rows)`` tuples, leaving the
Section 3.2 counter argument's meaning unchanged.

Worker *heartbeats* (the supervision layer of the multiprocess runtimes,
:mod:`repro.runtime.supervision`) do not perturb it either, by
construction: a heartbeat is a per-worker shared counter bumped by the
worker loop and read only by the parent supervisor.  It is not a message —
it travels no channel, lands in no queue, and is never consulted by
``empty_queues()`` or ``pending_for``, so the visibility invariant the
protocol rests on ("a computation message keeps ``empty_queues()`` false
from send to delivery") is untouched; the ``sent``/``received`` transport
counters and the heartbeat slots are disjoint single-writer arrays.  The
converse also holds: the protocol never delays a heartbeat, because the
worker loop bumps it once per iteration including idle polls — only a
worker truly wedged inside a handler goes silent, which is precisely the
condition the supervisor is meant to detect.  Recovery after a detected
failure is whole-query re-execution, sound because evaluation is monotone
set-semantics Datalog: re-running (or re-delivering) can only re-derive
tuples that every node deduplicates, so any completed retry computes the
same least fixpoint the crashed attempt was converging to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from .messages import ComponentDone, EndConfirmed, EndNegative, EndRequest

if TYPE_CHECKING:
    from .scheduler import Scheduler

__all__ = ["TerminationProtocol"]


@dataclass
class TerminationProtocol:
    """Per-node protocol state and handlers (one instance per SC member).

    Parameters
    ----------
    node_id:
        The owning node.
    is_leader:
        True for the strong component's unique leader.
    bfst_parent:
        The node's parent in the breadth-first spanning tree (None for the
        leader).
    bfst_children:
        The node's children in the spanning tree.
    empty_queues:
        Callback returning the owning node's ``empty_queues()`` — true when
        its inbox is empty and all its *feeders* have reported end.
    on_conclude:
        Leader-only callback: fired when the protocol concludes, at which
        point the leader "sends an end message to its customer".
    """

    node_id: int
    is_leader: bool
    bfst_parent: Optional[int]
    bfst_children: tuple[int, ...]
    empty_queues: Callable[["Scheduler"], bool]
    on_conclude: Callable[["Scheduler"], None]

    idleness: int = 0
    waiting_for: int = 0
    negatives_this_round: int = 0
    round_id: int = 0
    round_active: bool = False  # leader: a wave is in flight somewhere below
    rounds_started: int = 0  # statistics
    conclusions: int = 0  # statistics

    # ------------------------------------------------------------------
    # Work notifications
    # ------------------------------------------------------------------
    def on_work(self) -> None:
        """A computation message was delivered: the node is no longer idle.

        Fig 2: ``procedure process-tuple: idleness := 0``.
        """
        self.idleness = 0

    # ------------------------------------------------------------------
    # Leader initiation
    # ------------------------------------------------------------------
    def maybe_initiate(self, network: "Scheduler", has_pending_customer: bool) -> None:
        """Start a wave if leader, idle, no wave active, and ends are owed.

        Fig 2 attaches this to ``send-answer-tuple``; we invoke it after every
        delivered message, which subsumes that trigger.
        """
        if not self.is_leader or self.round_active or not has_pending_customer:
            return
        if not self.empty_queues(network):
            return
        self.idleness = 1
        self._start_round(network)

    def _start_round(self, network: "Scheduler") -> None:
        self.round_id += 1
        self.rounds_started += 1
        self.round_active = True
        self._process_end_request(network)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def handle_end_request(self, message: EndRequest, network: "Scheduler") -> None:
        """A wave reached this (non-leader) node from its BFST parent."""
        self.round_id = message.round_id
        self._process_end_request(network)

    def _process_end_request(self, network: "Scheduler") -> None:
        if self.empty_queues(network):
            self.idleness += 1
        else:
            self.idleness = 0
        self.waiting_for = len(self.bfst_children)
        self.negatives_this_round = 0
        if self.waiting_for > 0:
            for child in self.bfst_children:
                network.send(EndRequest(self.node_id, child, self.round_id))
        else:
            self._answer(network)

    def handle_end_negative(self, message: EndNegative, network: "Scheduler") -> None:
        """A child's subtree was not uniformly idle this round."""
        assert message.round_id == self.round_id, "protocol waves must not overlap"
        self.waiting_for -= 1
        self.negatives_this_round += 1
        if self.waiting_for == 0:
            self._answer(network)

    def handle_end_confirmed(self, message: EndConfirmed, network: "Scheduler") -> None:
        """A child's subtree was idle for the whole inter-request period."""
        assert message.round_id == self.round_id, "protocol waves must not overlap"
        self.waiting_for -= 1
        if self.waiting_for == 0:
            self._answer(network)

    def handle_component_done(self, message: ComponentDone, network: "Scheduler") -> None:
        """The leader concluded: emit owed ends here and keep propagating."""
        self.on_conclude(network)
        for child in self.bfst_children:
            network.send(ComponentDone(self.node_id, child, message.round_id))

    # ------------------------------------------------------------------
    def _answer(self, network: "Scheduler") -> None:
        """All children (if any) answered: respond upward or conclude."""
        confirmed = self.negatives_this_round == 0 and self.idleness > 1
        if not self.is_leader:
            assert self.bfst_parent is not None
            if confirmed:
                network.send(EndConfirmed(self.node_id, self.bfst_parent, self.round_id))
            else:
                network.send(EndNegative(self.node_id, self.bfst_parent, self.round_id))
            return
        # Leader: conclude, or start another wave.
        self.round_active = False
        if confirmed and self.empty_queues(network):
            self.conclusions += 1
            self.on_conclude(network)
            # Footnote 4: propagate the conclusion around the component so
            # members with their own customers can send their end messages.
            for child in self.bfst_children:
                network.send(ComponentDone(self.node_id, child, self.round_id))
            return
        # Fig 2, process-end-negative at the leader: re-initiate immediately
        # when still idle; otherwise wait for the next post-work idle check.
        if self.empty_queues(network):
            self.idleness = 1
            self._start_round(network)
