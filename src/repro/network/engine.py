"""The message-passing query evaluation engine.

Glues the pieces together: builds the information-passing rule/goal graph
(Section 2), instantiates one process per node (Section 3.1), wires consumer
and feeder streams along the graph's arcs, attaches the Fig-2 termination
protocol to every strong component (Section 3.2), and runs the network to
completion under the deterministic scheduler.

The public entry point is :func:`evaluate`; it returns a
:class:`QueryResult` carrying the goal relation together with the message,
storage, join, and protocol statistics the benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..cache import CacheStats
from ..core.adornment import AdornedAtom
from ..core.program import Program
from ..core.rulegoal import (
    RuleGoalGraph,
    SipFactory,
    build_rule_goal_graph,
)
from ..core.sips import all_free_sip, greedy_sip
from ..relational.database import Database
from .messages import COMPUTATION_TYPES, Message
from .nodes import (
    DRIVER_ID,
    CyclicNodeProcess,
    DriverProcess,
    EdbLeafProcess,
    GoalNodeProcess,
    NodeProcess,
    RuleNodeProcess,
)
from .scheduler import Scheduler, SchedulerStats
from .termination import TerminationProtocol

__all__ = ["QueryResult", "MessagePassingEngine", "evaluate", "assign_shards"]


def assign_shards(engine: "MessagePassingEngine", n_shards: int) -> dict[int, int]:
    """Node -> shard placement for the pooled runtime.

    Placement policy:

    * every strong component stays whole on one shard (round-robin over
      components, largest first), so the Fig-2 termination waves — and the
      dense intra-component tuple traffic — never cross a process boundary;
    * EDB replicas are spread by replica index, one per shard when counts
      match, so the hash-routed semijoin fan-out lands on distinct workers;
    * remaining acyclic nodes round-robin; the driver pins to shard 0.
    """
    n_shards = max(1, n_shards)
    assignment: dict[int, int] = {DRIVER_ID: 0}
    components = sorted(
        engine.graph.strong_components(), key=lambda info: (-len(info.members), info.leader)
    )
    for index, info in enumerate(components):
        shard = index % n_shards
        for member in info.members:
            assignment[member] = shard
    for replica_ids in engine.edb_replicas.values():
        for k, replica_id in enumerate(replica_ids):
            assignment[replica_id] = k % n_shards
    rest = sorted(nid for nid in engine.processes if nid not in assignment)
    for index, node_id in enumerate(rest):
        assignment[node_id] = index % n_shards
    return assignment


@dataclass
class QueryResult:
    """Everything a run produces: the answer plus full accounting."""

    answers: set[tuple]
    completed: bool  # the driver received its end message
    stats: SchedulerStats
    tuples_stored: int  # rows materialized across all node relations
    tuples_by_node: dict[str, int]
    join_lookups: int  # alias of probe_lookups (pre-PR-8 name, kept for A/Bs)
    envs_materialized: int
    protocol_rounds: int
    protocol_conclusions: int
    protocol_violations: list[str]
    db_scans: int
    db_indexed_lookups: int
    db_rows_retrieved: int
    graph: RuleGoalGraph
    # Session-cache accounting (filled by Session; defaults for direct use).
    graph_cache_hit: bool = False
    cache_stats: Optional[CacheStats] = None
    # Supervision accounting (meaningful when a Session routes the query
    # through a supervised multiprocess runtime; the in-process scheduler
    # always answers in one non-degraded attempt).
    attempts: int = 1
    degraded: bool = False
    failure_log: list[str] = field(default_factory=list)
    # True when this result came from a semi-naive delta wave through a
    # warm network (MessagePassingEngine.run_delta) rather than a cold
    # fixpoint.  Message and db counters then cover the wave alone, while
    # tuples_stored/join_lookups/envs_materialized stay cumulative — they
    # describe the retained network's footprint, not one wave's work.
    incremental: bool = False
    # PR 8 accounting: index probes vs. insertions (join_lookups used to
    # conflate them), per-kernel batch statistics, and — under the cost
    # planner — the per-rule plan choices with their §4.3 estimates.
    probe_lookups: int = 0
    index_inserts: int = 0
    batch_rows_in: int = 0
    batch_rows_out: int = 0
    batch_distinct_keys: int = 0
    batch_stats_by_node: dict = field(default_factory=dict)
    plan: Optional[object] = None  # core.planner.PlanReport when planner="cost"

    @property
    def total_messages(self) -> int:
        """All delivered *logical* messages (a TupleSet counts len(rows))."""
        return self.stats.delivered_total

    @property
    def physical_messages(self) -> int:
        """Actual message deliveries (a TupleSet counts once)."""
        return self.stats.physical_total

    @property
    def computation_messages(self) -> int:
        """Delivered relation/tuple requests, tuples, and ends."""
        return self.stats.computation_messages

    @property
    def protocol_messages(self) -> int:
        """Delivered end request/negative/confirmed messages."""
        return self.stats.protocol_messages

    def summary(self) -> str:
        """A compact human-readable report."""
        stats = self.stats
        lines = [
            f"answers: {len(self.answers)}",
            f"messages: {self.total_messages} logical in {self.physical_messages} "
            f"deliveries (computation {self.computation_messages}, "
            f"protocol {self.protocol_messages})",
        ]
        if stats.tuple_sets:
            lines.append(
                f"tuple sets: {stats.tuple_sets} carrying {stats.tuple_set_rows} rows "
                f"(avg batch {stats.tuple_set_rows / stats.tuple_sets:.1f})"
            )
        lines += [
            f"tuples stored: {self.tuples_stored}; probes: {self.probe_lookups}; "
            f"inserts: {self.index_inserts}",
            f"kernel batches: {self.batch_rows_in} rows in, "
            f"{self.batch_rows_out} envs out, "
            f"{self.batch_distinct_keys} distinct keys probed",
            f"protocol rounds: {self.protocol_rounds}; conclusions: {self.protocol_conclusions}",
            f"db: {self.db_scans} scans, {self.db_indexed_lookups} lookups, "
            f"{self.db_rows_retrieved} rows retrieved",
        ]
        if self.plan is not None:
            lines.append(f"planner: {self.plan.oneline()}")
        if self.cache_stats is not None:
            hit = "hit" if self.graph_cache_hit else "miss"
            lines.append(f"graph cache: {hit} ({self.cache_stats})")
        if self.degraded or self.attempts > 1:
            note = f"supervision: {self.attempts} attempt(s)"
            if self.degraded:
                note += ", degraded to the in-process runtime"
            lines.append(note)
        return "\n".join(lines)

    def node_table(self, top: int = 10) -> str:
        """The busiest nodes: messages received and tuples stored, per node.

        A per-process hot-spot view — in a real deployment these would be the
        processes to place on separate machines or to coalesce.
        """
        label_by_id = {
            node_id: self.graph.node_label(node_id)
            for node_id in list(self.graph.goal_nodes) + list(self.graph.rule_nodes)
        }
        rows = []
        for node_id, received in self.stats.by_receiver.items():
            if node_id == DRIVER_ID:
                label = "driver"
            else:
                # Ids beyond the graph belong to EDB replicas (edb_shards > 1).
                label = label_by_id.get(node_id, f"edb-replica:{node_id}")
            batch = self.batch_stats_by_node.get(label, (0, 0, 0))
            rows.append(
                (
                    received,
                    self.tuples_by_node.get(label, 0),
                    self.stats.sets_by_receiver.get(node_id, 0),
                    batch,
                    label,
                )
            )
        rows.sort(reverse=True)
        width = max((len(r[4]) for r in rows[:top]), default=4)
        lines = [
            f"{'node'.ljust(width)}  msgs-in  tuples  sets-in  rows-in  envs-out  keys"
        ]
        for received, tuples, sets, (b_in, b_out, b_keys), label in rows[:top]:
            lines.append(
                f"{label.ljust(width)}  {received:7d}  {tuples:6d}  {sets:7d}"
                f"  {b_in:7d}  {b_out:8d}  {b_keys:4d}"
            )
        return "\n".join(lines)


class MessagePassingEngine:
    """Builds the process network for a program and evaluates queries.

    Parameters
    ----------
    program:
        The validated EDB+IDB+query bundle.
    sip_factory:
        Information passing strategy (default greedy — Definition 2.4).
    seed:
        ``None`` for send-order delivery; an int for seeded random latencies
        (exercises asynchrony; the answer must not change).
    validate_protocol:
        When true (default), every protocol conclusion is checked against the
        scheduler's global quiescence oracle — Theorem 3.1's "only if"
        direction; violations are recorded in the result.
    database:
        A shared EDB to serve leaf requests from (defaults to one built from
        the program's inline facts).  Shared databases keep cumulative
        access counters; results always report per-query deltas.
    graph:
        A prebuilt rule/goal graph to reuse (e.g. from a session cache);
        construction is skipped and ``sip_factory``/``coalesce`` are
        ignored for graph-building purposes.  Treated as read-only.
    edb_shards:
        When > 1, every EDB leaf with "d" positions is partitioned into that
        many replica processes, each serving the hash partition of the
        bindings routed to it (``repro.network.nodes.route_hash``).  Each
        consumer keeps one fully-accounted stream per replica, so the
        end-message semantics is untouched; the pooled runtime places the
        replicas on distinct shards so semijoin fan-out parallelizes.
    tuple_sets:
        When true (default), producers ship bursts of fresh answer rows as
        single :class:`~repro.network.messages.TupleSet` messages and rule
        nodes join them with set-at-a-time bulk kernels; accounting stays in
        logical tuples (a set weighs ``len(rows)``).  ``False`` restores the
        per-tuple path (the ``--no-tuple-sets`` A/B escape hatch).
    """

    def __init__(
        self,
        program: Program,
        sip_factory: SipFactory = greedy_sip,
        seed: Optional[int] = None,
        max_messages: int = 5_000_000,
        validate_protocol: bool = True,
        query_goal: Optional[AdornedAtom] = None,
        trace: Optional[Callable[[Message], None]] = None,
        coalesce: bool = False,
        package_requests: bool = False,
        provenance: bool = False,
        on_answer: Optional[Callable[[tuple], None]] = None,
        database: Optional[Database] = None,
        trivial_relay: bool = True,
        graph: Optional[RuleGoalGraph] = None,
        edb_shards: int = 1,
        tuple_sets: bool = True,
        columnar: bool = True,
        planner: str = "static",
    ) -> None:
        self.program = program
        # Any object with the Database access surface works (e.g. the
        # SQLite backend); the program's inline facts are the default.
        self.database = database if database is not None else Database.from_facts(program.facts)
        if planner not in ("static", "cost"):
            raise ValueError(f"unknown planner {planner!r} (expected 'static' or 'cost')")
        self._planner = planner
        #: The cost planner's per-rule choices (None under the static
        #: planner, or when a prebuilt graph skipped planning here; the
        #: Session re-attaches the report cached with the graph).
        self.plan_report = None
        if graph is None and planner == "cost":
            from ..core.planner import CostPlanner

            cost_planner = CostPlanner.from_database(self.database)
            sip_factory = cost_planner.sip_factory()
            self.plan_report = cost_planner.report
        # A prebuilt (possibly session-cached) graph skips reconstruction;
        # Theorem 2.1 makes the graph EDB-independent, so a cached one is
        # valid for any database over the same IDB and query variant.
        self.graph = graph if graph is not None else build_rule_goal_graph(
            program, sip_factory, query_goal=query_goal, coalesce=coalesce
        )
        self._package_requests = package_requests
        self._tuple_sets = tuple_sets
        # Columnar kernels ride on set-at-a-time batches and skip the
        # provenance bookkeeping, so they are effective only when tuple
        # sets are on and derivations are not being recorded.
        self._columnar = columnar and tuple_sets and not provenance
        self._edb_shards = max(1, edb_shards)
        #: original EDB node id -> replica node ids (original first); empty
        #: unless ``edb_shards > 1``.
        self.edb_replicas: dict[int, tuple[int, ...]] = {}
        self._provenance = provenance
        self._on_answer = on_answer
        self._trivial_relay = trivial_relay
        self.scheduler = Scheduler(seed=seed, max_messages=max_messages, trace=trace)
        self.processes: dict[int, NodeProcess] = {}
        self.driver: DriverProcess
        self.protocol_violations: list[str] = []
        self._validate_protocol = validate_protocol
        self._build_network()

    # ------------------------------------------------------------------
    def _component_members(self) -> dict[int, frozenset[int]]:
        membership: dict[int, frozenset[int]] = {}
        for info in self.graph.strong_components():
            for member in info.members:
                membership[member] = info.members
        return membership

    def _build_network(self) -> None:
        graph = self.graph
        membership = self._component_members()

        def same_component(a: int, b: int) -> bool:
            return membership.get(a) is not None and membership.get(a) == membership.get(b)

        # --- instantiate processes -----------------------------------
        for goal in graph.goal_nodes.values():
            if goal.kind == "edb":
                process: NodeProcess = EdbLeafProcess(goal.id, goal.adorned, self.database)
            elif goal.kind == "cyclic":
                assert goal.cycle_source is not None
                process = CyclicNodeProcess(goal.id, goal.adorned, goal.cycle_source)
            else:
                process = GoalNodeProcess(goal.id, goal.adorned)
            self.processes[goal.id] = process
        for rule_node in graph.rule_nodes.values():
            parent_goal = graph.goal_nodes[rule_node.parent]
            self.processes[rule_node.id] = RuleNodeProcess(
                rule_node.id,
                rule_node.rule,
                rule_node.head,
                parent_goal.adorned,
                rule_node.sip.order,
                rule_node.adorned_body,
                tuple(rule_node.subgoal_children),
            )

        root_goal = graph.goal_nodes[graph.root]
        self.driver = DriverProcess(graph.root, root_goal.adorned.adornment)
        self.driver.on_answer = self._on_answer
        self.processes[DRIVER_ID] = self.driver

        # --- wire streams ---------------------------------------------
        def wants_all(producer_adorned: AdornedAtom) -> bool:
            return not producer_adorned.dynamic_positions

        for rule_node in graph.rule_nodes.values():
            parent = graph.goal_nodes[rule_node.parent]
            # rule -> parent goal (answers up)
            self.processes[rule_node.id].add_consumer(
                parent.id, wants_all(parent.adorned)
            )
            self.processes[parent.id].add_feeder(
                rule_node.id, is_feeder=not same_component(rule_node.id, parent.id)
            )
            # subgoal children -> rule node (a coalesced child may serve two
            # subgoals of the same rule: one stream each way)
            for position, child_id in enumerate(rule_node.subgoal_children):
                child = graph.goal_nodes[child_id]
                if rule_node.id not in self.processes[child_id].consumers:
                    self.processes[child_id].add_consumer(
                        rule_node.id, wants_all(child.adorned)
                    )
                if child_id not in self.processes[rule_node.id].feeders:
                    self.processes[rule_node.id].add_feeder(
                        child_id,
                        is_feeder=not same_component(child_id, rule_node.id),
                    )
        for goal in graph.goal_nodes.values():
            if goal.kind == "cyclic":
                assert goal.cycle_source is not None
                ancestor = graph.goal_nodes[goal.cycle_source]
                self.processes[ancestor.id].add_consumer(
                    goal.id, wants_all(goal.adorned)
                )
                # Ancestor and cyclic node always share a strong component.
                self.processes[goal.id].add_feeder(ancestor.id, is_feeder=False)

        self.driver.add_feeder(graph.root, is_feeder=True)
        self.processes[graph.root].add_consumer(
            DRIVER_ID, wants_all(root_goal.adorned)
        )

        # --- EDB leaf partitioning (pooled-runtime sharding) -------------
        # Each replica is a full EdbLeafProcess over the (shared) database;
        # consumers open one stream per replica and route each "d" binding
        # to the replica owning its hash partition.  Per-replica sequence
        # numbering and end messages keep the Section 3.1/3.2 accounting
        # exact — a replica ends precisely the requests it received.
        if self._edb_shards > 1:
            next_id = max(self.processes) + 1
            for goal in graph.goal_nodes.values():
                if goal.kind != "edb" or not goal.adorned.dynamic_positions:
                    continue  # nothing to partition without "d" fan-out
                original = self.processes[goal.id]
                consumer_streams = list(original.consumers.items())
                replica_ids = [goal.id]
                for _ in range(self._edb_shards - 1):
                    replica_id = next_id
                    next_id += 1
                    replica = EdbLeafProcess(replica_id, goal.adorned, self.database)
                    self.processes[replica_id] = replica
                    replica_ids.append(replica_id)
                    for consumer_id, stream in consumer_streams:
                        replica.add_consumer(consumer_id, stream.wants_all)
                        self.processes[consumer_id].add_feeder(
                            replica_id, is_feeder=True
                        )
                route = tuple(replica_ids)
                self.edb_replicas[goal.id] = route
                for consumer_id, _ in consumer_streams:
                    consumer = self.processes[consumer_id]
                    consumer.replica_route[goal.id] = route
                    if isinstance(consumer, RuleNodeProcess):
                        for replica_id in replica_ids[1:]:
                            consumer.child_stage[replica_id] = consumer.child_stage[
                                goal.id
                            ]

        # --- termination protocol per strong component -----------------
        for info in graph.strong_components():
            for member in sorted(info.members):
                process = self.processes[member]
                is_leader = member == info.leader

                def make_conclude(node: NodeProcess, leader: bool) -> Callable:
                    def conclude(network: Scheduler) -> None:
                        if leader and self._validate_protocol:
                            self._check_conclusion(node, network)
                        node.on_component_conclude(network)

                    return conclude

                protocol = TerminationProtocol(
                    node_id=member,
                    is_leader=is_leader,
                    bfst_parent=info.bfst_parent.get(member),
                    bfst_children=info.bfst_children.get(member, ()),
                    empty_queues=process.empty_queues,
                    on_conclude=make_conclude(process, is_leader),
                )
                process.attach_protocol(protocol, info.members, leader_id=info.leader)

        # --- trivial goal nodes (§3.1's storage exemption) ---------------
        if self._trivial_relay:
            for process in self.processes.values():
                if (
                    isinstance(process, GoalNodeProcess)
                    and len(process.consumers) == 1
                    and len(process.feeders) == 1
                ):
                    process.trivial_relay = True

        # --- register with the scheduler --------------------------------
        for process in self.processes.values():
            process.package_requests = self._package_requests
            process.record_provenance = self._provenance
            process.emit_tuple_sets = self._tuple_sets
            process.columnar = self._columnar
            self.scheduler.register(process)

    # ------------------------------------------------------------------
    def _check_conclusion(self, leader: NodeProcess, network: Scheduler) -> None:
        """Theorem 3.1 oracle: at conclusion, the component must be quiescent.

        Quiescent with respect to its *own* computation: no computation
        message in flight between members (or from a member anywhere — its
        answers must already be out), and every member's feeder streams
        caught up.  A brand-new request from an external customer may be
        legitimately queued at this instant (coalesced graphs); its sequence
        number exceeds the ends being emitted, so it is not covered by them
        and will be answered — and ended — later.
        """
        members = leader.sc_members
        for member in members:
            process = self.processes[member]
            for stream in process.feeders.values():
                if stream.is_feeder and not stream.caught_up:
                    self.protocol_violations.append(
                        f"member {member} concluded with feeder "
                        f"{stream.producer_id} not caught up"
                    )
        for _, _, message in network._heap:  # oracle access, tests only
            if not isinstance(message, COMPUTATION_TYPES):
                continue
            if message.sender in members and message.receiver in members:
                self.protocol_violations.append(
                    f"internal computation message in flight "
                    f"{message.sender}->{message.receiver} at conclusion: "
                    f"{message.kind()}"
                )

    # ------------------------------------------------------------------
    def explain(self, row: tuple):
        """Proof tree for one answer (requires ``provenance=True``).

        Returns a :class:`~repro.network.provenance.Derivation`.
        """
        from .provenance import ProvenanceError, explain

        if not self._provenance:
            raise ProvenanceError(
                "construct the engine with provenance=True to record derivations"
            )
        return explain(self, row)

    # ------------------------------------------------------------------
    def run(self) -> QueryResult:
        """Evaluate the query and collect the result with full accounting."""
        # The database may be shared across queries (session caching), so its
        # counters are cumulative; snapshot now and report per-query deltas.
        snapshot = self._db_snapshot()
        self.driver.start(self.scheduler)
        stats = self.scheduler.run()
        return self._collect_result(stats, snapshot)

    def run_delta(self, facts) -> QueryResult:
        """Semi-naive continuation: inject delta tuples, reconverge, re-collect.

        ``facts`` are ground EDB atoms **already committed to the shared
        database** (the session's ``add_facts`` path guarantees this; a
        direct caller must ``self.database.add_facts(...)`` first).  Each
        delta row is offered to the EDB leaves serving its predicate
        (:meth:`EdbLeafProcess.inject_delta`), which re-serve exactly the
        open streams that would have carried the row in a cold run; the
        scheduler then drains to a new fixpoint.  Sound because evaluation
        is monotone under set semantics: every node deduplicates, so the
        warm network's relations converge to the same least fixpoint a
        from-scratch evaluation over the grown EDB computes, and the §3.2
        end-wave machinery re-arms itself for the new work.

        The returned result's message/db counters cover this wave only
        (``scheduler.stats`` is reset per wave, which also makes the
        ``max_messages`` budget per-wave); answers and storage counters
        are cumulative across the materialization's lifetime.
        """
        snapshot = self._db_snapshot()
        self.scheduler.stats = SchedulerStats()
        by_predicate: dict[str, list[tuple]] = {}
        for fact in facts:
            by_predicate.setdefault(fact.predicate, []).append(fact.ground_tuple())
        if by_predicate:
            for process in self.processes.values():
                if not isinstance(process, EdbLeafProcess):
                    continue
                rows = by_predicate.get(process.adorned.predicate)
                if rows:
                    process.inject_delta(rows, self.scheduler)
        stats = self.scheduler.run()
        result = self._collect_result(stats, snapshot)
        result.incremental = True
        return result

    def _db_snapshot(self) -> tuple[int, int, int]:
        return (
            self.database.scans,
            self.database.indexed_lookups,
            self.database.rows_retrieved,
        )

    def _collect_result(
        self, stats: SchedulerStats, snapshot: tuple[int, int, int]
    ) -> QueryResult:
        scans_before, lookups_before, rows_before = snapshot
        tuples_by_node: dict[str, int] = {}
        batch_by_node: dict[str, tuple[int, int, int]] = {}
        tuples_total = 0
        probes = 0
        inserts = 0
        batch_in = 0
        batch_out = 0
        batch_keys = 0
        envs = 0
        rounds = 0
        conclusions = 0
        for node_id, process in self.processes.items():
            if node_id == DRIVER_ID:
                continue
            if process.tuples_stored:
                # Distinct nodes can share a label (e.g. a ground cyclic
                # variant and its ancestor), so aggregate rather than assign.
                label = self.graph.node_label(node_id)
                tuples_by_node[label] = (
                    tuples_by_node.get(label, 0) + process.tuples_stored
                )
                tuples_total += process.tuples_stored
            if isinstance(process, RuleNodeProcess):
                probes += process.probe_lookups
                inserts += process.index_inserts
                batch_in += process.batch_rows_in
                batch_out += process.batch_rows_out
                batch_keys += process.batch_distinct_keys
                if process.batch_rows_in:
                    label = self.graph.node_label(node_id)
                    prior = batch_by_node.get(label, (0, 0, 0))
                    batch_by_node[label] = (
                        prior[0] + process.batch_rows_in,
                        prior[1] + process.batch_rows_out,
                        prior[2] + process.batch_distinct_keys,
                    )
                envs += process.envs_materialized
                tuples_total += process.envs_materialized
            if process.protocol is not None and process.protocol.is_leader:
                rounds += process.protocol.rounds_started
                conclusions += process.protocol.conclusions

        return QueryResult(
            answers=set(self.driver.answers),
            completed=self.driver.completed,
            stats=stats,
            tuples_stored=tuples_total,
            tuples_by_node=tuples_by_node,
            join_lookups=probes,
            envs_materialized=envs,
            protocol_rounds=rounds,
            protocol_conclusions=conclusions,
            protocol_violations=list(self.protocol_violations),
            db_scans=self.database.scans - scans_before,
            db_indexed_lookups=self.database.indexed_lookups - lookups_before,
            db_rows_retrieved=self.database.rows_retrieved - rows_before,
            graph=self.graph,
            probe_lookups=probes,
            index_inserts=inserts,
            batch_rows_in=batch_in,
            batch_rows_out=batch_out,
            batch_distinct_keys=batch_keys,
            batch_stats_by_node=batch_by_node,
            plan=(
                self.plan_report
                if self.plan_report is not None
                else getattr(self.graph, "plan_report", None)
            ),
        )


def evaluate(
    program: Program,
    sip_factory: SipFactory = greedy_sip,
    seed: Optional[int] = None,
    max_messages: int = 5_000_000,
    validate_protocol: bool = True,
    query_goal: Optional[AdornedAtom] = None,
    coalesce: bool = False,
    package_requests: bool = False,
    trivial_relay: bool = True,
    tuple_sets: bool = True,
    columnar: bool = True,
    planner: str = "static",
) -> QueryResult:
    """Evaluate a program's query with the message-passing framework.

    ``sip_factory=all_free_sip`` turns sideways information passing off — the
    McKay–Shapiro-style baseline in which intermediate relations are computed
    in full.  ``coalesce=True`` merges goal nodes with identical binding
    patterns (the paper's single-processor variant, §2.2 + footnote 4).
    ``package_requests=True`` batches related tuple requests per producer
    (the footnote-2 enhancement).  ``tuple_sets=False`` disables packaged
    answers and the bulk join kernels (per-tuple A/B baseline).
    ``columnar=False`` keeps set-at-a-time messages but joins them with the
    PR 3 row kernels (the columnar A/B baseline).  ``planner="cost"``
    replaces ``sip_factory`` with the §4.3 cost model fed by observed EDB
    cardinalities (see :mod:`repro.core.planner`).
    """
    engine = MessagePassingEngine(
        program,
        sip_factory=sip_factory,
        seed=seed,
        max_messages=max_messages,
        validate_protocol=validate_protocol,
        query_goal=query_goal,
        coalesce=coalesce,
        package_requests=package_requests,
        trivial_relay=trivial_relay,
        tuple_sets=tuple_sets,
        columnar=columnar,
        planner=planner,
    )
    return engine.run()
