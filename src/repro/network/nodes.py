"""Node processes: the relational computations behind each graph node.

Section 2.2: "we interpret each node as a processor that performs a
relational computation.  Predicate nodes with rule-children compute the union
of the relations computed by their children; rule nodes combine their subgoal
relations using join, select, and project.  The predicate nodes that are
connected to an ancestor predicate node by a cyclic edge perform a selection
on the relation computed by the ancestor."

Section 3.1's storage discipline is followed: "rule nodes store their
subgoals' temporary relations ...  When a tuple arrives, provided it does not
duplicate one already received, it is matched against the (partial) temporary
relations of other subgoals to form new tuples via joins.  Detection of
duplicates is necessary to allow loops to terminate.  In addition, goal nodes
store their temporary relations, and only forward answer tuples that are
genuinely new."  Processes never block waiting for complete answers — every
arriving tuple or tuple request is processed incrementally.

No process reads another's state; all interaction goes through
:class:`~repro.network.scheduler.Scheduler` messages.
"""

from __future__ import annotations

import itertools
import operator
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from ..core.adornment import AdornedAtom, CONSTANT, DYNAMIC, EXISTENTIAL, FREE
from ..core.rules import Rule
from ..core.terms import Constant, Variable
from ..relational.database import Database
from .messages import (
    ColumnBatch,
    ComponentDone,
    EndConfirmed,
    EndMessage,
    EndNegative,
    EndNudge,
    EndRequest,
    Message,
    PackagedTupleRequest,
    RelationRequest,
    TupleMessage,
    TupleRequest,
    TupleSet,
)
from .termination import TerminationProtocol

if TYPE_CHECKING:
    from .scheduler import Scheduler

__all__ = [
    "ConsumerStream",
    "FeederStream",
    "NodeProcess",
    "GoalNodeProcess",
    "CyclicNodeProcess",
    "EdbLeafProcess",
    "RuleNodeProcess",
    "DriverProcess",
    "DRIVER_ID",
]

#: Node id of the query driver (the environment posing the query).
DRIVER_ID = -1


def route_hash(binding: tuple) -> int:
    """A deterministic hash for partitioning "d" bindings across replicas.

    ``hash()`` is salted per interpreter (PYTHONHASHSEED), which forked
    workers happen to share — but a seed-independent hash keeps replica
    routing identical across runs, so sharded executions are reproducible.
    """
    return zlib.crc32(repr(binding).encode("utf-8"))


@dataclass
class ConsumerStream:
    """Producer-side state for one successor (customer) of this node.

    "A goal node with multiple out-edges needs to furnish answers in separate
    streams to each successor node; different successors ... normally will
    have requested different subsets of the total temporary relation."
    """

    consumer_id: int
    wants_all: bool  # producer has no "d" positions: everything flows
    last_seq_received: int = -1  # -1: no relation request yet
    last_seq_ended: int = -1
    requested: set[tuple] = field(default_factory=set)  # d-bindings asked for
    sent_rows: set[tuple] = field(default_factory=set)  # per-stream dedup

    @property
    def owes_end(self) -> bool:
        """True when requests arrived that no end message has covered yet."""
        return self.last_seq_ended < self.last_seq_received


@dataclass
class FeederStream:
    """Consumer-side state for one producer this node requests tuples from."""

    producer_id: int
    is_feeder: bool  # producer in a different strong component (Def 2.1)
    last_seq_sent: int = -1
    last_upto_ended: int = -1
    sent_bindings: set[tuple] = field(default_factory=set)

    @property
    def caught_up(self) -> bool:
        """All requests sent so far have been covered by end messages."""
        return self.last_upto_ended >= self.last_seq_sent

    def next_seq(self) -> int:
        """Allocate the next request sequence number on this stream."""
        self.last_seq_sent += 1
        return self.last_seq_sent


class NodeProcess:
    """Common machinery: streams, ends, and termination-protocol plumbing."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.consumers: dict[int, ConsumerStream] = {}
        self.feeders: dict[int, FeederStream] = {}
        self.protocol: Optional[TerminationProtocol] = None
        self.sc_members: frozenset[int] = frozenset()
        self.tuples_stored = 0  # statistic: rows materialized at this node
        # Protocol triggers (meaningful only for strong-component members):
        # the leader probes while work arrived since its last conclusion or
        # ends are owed; members nudge the leader when they owe ends that
        # never produced component-wide work (coalesced graphs, footnote 4).
        self.work_since_conclusion = False
        self.nudge_sent = False
        self._leader_id: Optional[int] = None
        # Footnote-2 packaging: buffer outgoing tuple requests per producer
        # during one handle() and flush them as one message each.
        self.package_requests = False
        self._request_buffer: dict[int, list[tuple]] = {}
        # Partitioned producers: logical producer id -> replica node ids.  A
        # tuple request is routed to replicas[route_hash(binding) % k], so a
        # sharded EDB leaf's semijoin fan-out spreads across replicas while
        # each binding deterministically reaches exactly one of them (stream
        # sequence numbers and per-stream dedup stay per-replica and exact).
        self.replica_route: dict[int, tuple[int, ...]] = {}
        # Provenance: when on, processes record each tuple's first derivation
        # so proof trees can be reassembled after the run.
        self.record_provenance = False
        # Set-at-a-time answers: when on, a burst of fresh rows for one
        # consumer ships as a single TupleSet (footnote 2 generalized from
        # requests to answers) instead of one TupleMessage per row.
        self.emit_tuple_sets = False
        # Columnar kernels (PR 8): batches are deduplicated with whole-set
        # operations and joined via precompiled gather/key plans instead of
        # per-row python loops.  The engine enables this only together with
        # emit_tuple_sets and never alongside provenance (the row kernels
        # are the provenance-recording path).
        self.columnar = False

    # ------------------------------------------------------------------
    # Wiring (done by the engine before the run)
    # ------------------------------------------------------------------
    def add_consumer(self, consumer_id: int, wants_all: bool) -> ConsumerStream:
        """Register a successor stream."""
        stream = ConsumerStream(consumer_id, wants_all)
        self.consumers[consumer_id] = stream
        return stream

    def add_feeder(self, producer_id: int, is_feeder: bool) -> FeederStream:
        """Register a producer stream (``is_feeder``: cross-component)."""
        stream = FeederStream(producer_id, is_feeder)
        self.feeders[producer_id] = stream
        return stream

    def attach_protocol(
        self,
        protocol: TerminationProtocol,
        members: frozenset[int],
        leader_id: Optional[int] = None,
    ) -> None:
        """Join a strong component's termination protocol."""
        self.protocol = protocol
        self.sc_members = members
        self._leader_id = leader_id if leader_id is not None else protocol.node_id

    # ------------------------------------------------------------------
    # The distributed idleness predicate
    # ------------------------------------------------------------------
    def empty_queues(self, network: "Scheduler") -> bool:
        """Fig 2's ``empty-queues()``: inbox empty and all feeders ended.

        Only *feeder* streams (producers outside this node's strong
        component) are required to have reported end; in-component producers
        cannot — detecting their collective completion is the protocol's job.
        """
        if network.pending_for(self.node_id) > 0:
            return False
        if self._request_buffer:
            return False  # unflushed packaged requests are pending work
        return all(f.caught_up for f in self.feeders.values() if f.is_feeder)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def handle(self, message: Message, network: "Scheduler") -> None:
        """Dispatch one delivered message."""
        if isinstance(
            message,
            (
                RelationRequest,
                TupleRequest,
                PackagedTupleRequest,
                TupleMessage,
                TupleSet,
                EndMessage,
            ),
        ):
            if self.protocol is not None:
                self.protocol.on_work()
                self.work_since_conclusion = True
            if isinstance(message, RelationRequest):
                self.on_relation_request(message, network)
            elif isinstance(message, TupleRequest):
                self.on_tuple_request(message, network)
            elif isinstance(message, PackagedTupleRequest):
                self.on_packaged_request(message, network)
            elif isinstance(message, TupleMessage):
                self.on_tuple(message, network)
            elif isinstance(message, TupleSet):
                self.on_tuple_set(message, network)
            else:
                self.on_end(message, network)
        elif isinstance(message, EndRequest):
            assert self.protocol is not None, f"protocol message at non-SC node {self.node_id}"
            self.protocol.handle_end_request(message, network)
        elif isinstance(message, EndNegative):
            assert self.protocol is not None
            self.protocol.handle_end_negative(message, network)
        elif isinstance(message, EndConfirmed):
            assert self.protocol is not None
            self.protocol.handle_end_confirmed(message, network)
        elif isinstance(message, ComponentDone):
            assert self.protocol is not None
            self.protocol.handle_component_done(message, network)
        elif isinstance(message, EndNudge):
            # A member owes an end: make sure the leader probes again.
            assert self.protocol is not None and self.protocol.is_leader
            self.work_since_conclusion = True
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown message {message}")

    def on_idle_check(self, network: "Scheduler") -> None:
        """Post-delivery hook: emit ends (acyclic) or run the protocol (leader)."""
        if self._request_buffer and network.pending_for(self.node_id) == 0:
            # Packaging: requests accumulated over the burst go out together
            # once the inbox drains ("package a set of related tuple requests").
            self.flush_requests(network)
        if self.protocol is not None:
            if self.protocol.is_leader:
                self.protocol.maybe_initiate(
                    network, self._owes_external_end() or self.work_since_conclusion
                )
            elif self._owes_external_end() and not self.nudge_sent:
                self.nudge_sent = True
                network.send(EndNudge(self.node_id, self.protocol_leader_id))
            return
        self.maybe_send_ends(network)

    @property
    def protocol_leader_id(self) -> int:
        """The strong component's leader (valid only for SC members)."""
        assert self.protocol is not None
        leader = self._leader_id
        assert leader is not None
        return leader

    def on_component_conclude(self, network: "Scheduler") -> None:
        """Conclusion reached (locally or via ComponentDone): emit owed ends."""
        self.send_owed_ends(network)
        self.work_since_conclusion = False
        self.nudge_sent = False

    # ------------------------------------------------------------------
    # Tuple-request emission (with optional footnote-2 packaging)
    # ------------------------------------------------------------------
    def send_tuple_request(self, producer_id: int, binding: tuple, network: "Scheduler") -> None:
        """Request one "d" binding from a producer, deduplicated per stream.

        With packaging on, the request is buffered and flushed (as part of
        one :class:`PackagedTupleRequest` per producer) when the current
        message finishes processing.  A producer with registered replicas is
        resolved to the replica owning the binding's hash partition first.
        """
        replicas = self.replica_route.get(producer_id)
        if replicas is not None:
            producer_id = replicas[route_hash(binding) % len(replicas)]
        feeder = self.feeders[producer_id]
        if binding in feeder.sent_bindings:
            return
        feeder.sent_bindings.add(binding)
        if self.package_requests:
            self._request_buffer.setdefault(producer_id, []).append(binding)
        else:
            network.send(
                TupleRequest(self.node_id, producer_id, binding, feeder.next_seq())
            )

    def send_tuple_requests_batch(
        self, producer_id: int, bindings: set, network: "Scheduler"
    ) -> None:
        """Batch variant of :meth:`send_tuple_request` for columnar kernels.

        Deduplicates the whole binding set against the feeder stream with one
        set difference; falls back to the per-binding path when the producer
        has replicas (each binding routes by hash partition).
        """
        if producer_id in self.replica_route:
            for binding in bindings:
                self.send_tuple_request(producer_id, binding, network)
            return
        feeder = self.feeders[producer_id]
        fresh = bindings - feeder.sent_bindings
        if not fresh:
            return
        feeder.sent_bindings |= fresh
        if self.package_requests:
            self._request_buffer.setdefault(producer_id, []).extend(fresh)
        else:
            for binding in fresh:
                network.send(
                    TupleRequest(self.node_id, producer_id, binding, feeder.next_seq())
                )

    def flush_requests(self, network: "Scheduler") -> None:
        """Send each producer's buffered bindings as one packaged request."""
        if not self._request_buffer:
            return
        buffered, self._request_buffer = self._request_buffer, {}
        for producer_id in sorted(buffered):
            bindings = buffered[producer_id]
            feeder = self.feeders[producer_id]
            seq = -1
            for _ in bindings:
                seq = feeder.next_seq()
            network.send(
                PackagedTupleRequest(self.node_id, producer_id, tuple(bindings), seq)
            )

    def on_packaged_request(self, message: PackagedTupleRequest, network: "Scheduler") -> None:
        """Serve every binding of a package under one sequence number."""
        stream = self.consumers[message.sender]
        stream.last_seq_received = max(stream.last_seq_received, message.seq)
        for binding in message.bindings:
            self.serve_binding(stream, binding, network)

    def serve_binding(self, stream: ConsumerStream, binding: tuple, network: "Scheduler") -> None:
        """Node-specific handling of one "d" binding (see subclasses)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Set-at-a-time answer emission
    # ------------------------------------------------------------------
    def send_rows(
        self, stream: ConsumerStream, rows: Iterable[tuple], network: "Scheduler"
    ) -> None:
        """Send fresh rows to one consumer, packaged when it pays off.

        Applies the per-stream duplicate filter first (also deduplicating
        within the burst itself — projections can collide), then ships the
        survivors as a single :class:`TupleSet` when set emission is on and
        more than one row is fresh, else as plain tuple messages.  A single
        fresh row always travels as a :class:`TupleMessage`: a one-row set
        buys nothing and keeps the per-tuple path byte-identical.
        """
        fresh: list[tuple] = []
        for row in rows:
            if row in stream.sent_rows:
                continue
            stream.sent_rows.add(row)
            fresh.append(row)
        if not fresh:
            return
        if self.emit_tuple_sets and len(fresh) > 1:
            network.send(TupleSet(self.node_id, stream.consumer_id, frozenset(fresh)))
        else:
            for row in fresh:
                network.send(TupleMessage(self.node_id, stream.consumer_id, row))

    def send_rows_batch(
        self, stream: ConsumerStream, rows, network: "Scheduler"
    ) -> None:
        """Columnar variant of :meth:`send_rows`: whole-set duplicate filter.

        ``rows`` should be a set/frozenset (converted otherwise); the
        per-stream dedup is one set difference instead of a per-row loop.
        Emission semantics are identical to :meth:`send_rows`.
        """
        if not isinstance(rows, (set, frozenset)):
            rows = set(rows)
        fresh = rows - stream.sent_rows
        if not fresh:
            return
        stream.sent_rows |= fresh
        if self.emit_tuple_sets and len(fresh) > 1:
            network.send(TupleSet(self.node_id, stream.consumer_id, frozenset(fresh)))
        else:
            for row in fresh:
                network.send(TupleMessage(self.node_id, stream.consumer_id, row))

    # ------------------------------------------------------------------
    # End emission
    # ------------------------------------------------------------------
    def _owes_external_end(self) -> bool:
        return any(
            stream.owes_end
            for consumer_id, stream in self.consumers.items()
            if consumer_id not in self.sc_members
        )

    def maybe_send_ends(self, network: "Scheduler") -> None:
        """Acyclic-node end rule: once every feeder stream is caught up,
        everything requested so far is complete (FIFO channels guarantee all
        child tuples were delivered before their ends)."""
        if self._request_buffer:
            return  # unflushed packaged requests: not done yet
        if not all(f.caught_up for f in self.feeders.values()):
            return
        self.send_owed_ends(network)

    def send_owed_ends(self, network: "Scheduler") -> None:
        """End every external consumer stream with uncovered requests."""
        for consumer_id, stream in self.consumers.items():
            if consumer_id in self.sc_members:
                continue
            if stream.owes_end:
                stream.last_seq_ended = stream.last_seq_received
                network.send(EndMessage(self.node_id, consumer_id, stream.last_seq_ended))

    # ------------------------------------------------------------------
    # Handlers to override
    # ------------------------------------------------------------------
    def on_relation_request(self, message: RelationRequest, network: "Scheduler") -> None:
        """Open a consumer stream and begin computing (node-specific)."""
        raise NotImplementedError

    def on_tuple_request(self, message: TupleRequest, network: "Scheduler") -> None:
        """Serve one "d" binding for a consumer stream (node-specific)."""
        raise NotImplementedError

    def on_tuple(self, message: TupleMessage, network: "Scheduler") -> None:
        """Consume one answer tuple from a producer (node-specific)."""
        raise NotImplementedError

    def on_tuple_set(self, message: TupleSet, network: "Scheduler") -> None:
        """Consume a packaged set of answer rows from one producer.

        Default: unpack into per-row :meth:`on_tuple` calls — semantically a
        :class:`TupleSet` *is* ``len(rows)`` tuple messages delivered back to
        back.  Nodes with a cheaper set-at-a-time path override this.
        """
        for row in message.rows:
            self.on_tuple(TupleMessage(message.sender, message.receiver, row), network)

    def on_end(self, message: EndMessage, network: "Scheduler") -> None:
        """Default: record the feeder's progress."""
        stream = self.feeders[message.sender]
        stream.last_upto_ended = max(stream.last_upto_ended, message.upto)


# ----------------------------------------------------------------------
# Shared helpers for adorned atoms
# ----------------------------------------------------------------------

def _tuple_getter(positions: Sequence[int]) -> Callable[[tuple], tuple]:
    """A compiled projection: row -> tuple of the values at ``positions``.

    ``operator.itemgetter`` already returns a tuple for two or more
    positions; the 0/1-position cases are wrapped so the result is always a
    tuple (bindings and merge suffixes concatenate onto other tuples).
    """
    if not positions:
        return lambda row: ()
    if len(positions) == 1:
        p = positions[0]
        return lambda row: (row[p],)
    return operator.itemgetter(*positions)


def _key_getter(positions: Sequence[int]) -> Callable[[tuple], object]:
    """A compiled join-key extractor for the columnar kernels.

    Single-position keys are the *bare* value — no per-row 1-tuple
    allocation.  Key representation only needs to agree between the two
    sides of one node's private indexes, and a node runs all of its stages
    through the same compiled getters for its whole lifetime.
    """
    if not positions:
        return lambda row: ()
    if len(positions) == 1:
        return operator.itemgetter(positions[0])
    return operator.itemgetter(*positions)


def _non_e_positions(adorned: AdornedAtom) -> tuple[int, ...]:
    return tuple(i for i, c in enumerate(adorned.adornment) if c != EXISTENTIAL)


def _d_positions(adorned: AdornedAtom) -> tuple[int, ...]:
    return adorned.dynamic_positions


class _RowShape:
    """Precomputed position bookkeeping for one adorned atom's tuple rows.

    Rows on a stream carry values for the atom's non-"e" positions, in
    position order; ``d_in_row`` locates the "d" positions inside such a row
    so bindings can be projected without consulting the atom again.
    """

    def __init__(self, adorned: AdornedAtom) -> None:
        self.adorned = adorned
        self.non_e = _non_e_positions(adorned)
        self.d_positions = _d_positions(adorned)
        row_index = {pos: i for i, pos in enumerate(self.non_e)}
        self.d_in_row = tuple(row_index[p] for p in self.d_positions)
        # Compiled form of binding_of for the columnar batch paths.
        self.binding_get = _tuple_getter(self.d_in_row)

    def binding_of(self, row: tuple) -> tuple:
        """Project a row to the values at the "d" positions."""
        return tuple(row[i] for i in self.d_in_row)


class GoalNodeProcess(NodeProcess):
    """An expanded IDB goal node: the union of its rule children's relations.

    Stores the answer relation, forwards only genuinely new tuples, serves
    each successor the subset matching that successor's tuple requests, and
    relays tuple requests down to every rule child.
    """

    def __init__(self, node_id: int, adorned: AdornedAtom) -> None:
        super().__init__(node_id)
        self.adorned = adorned
        self.shape = _RowShape(adorned)
        self.answers: set[tuple] = set()
        self.answers_by_binding: dict[tuple, list[tuple]] = {}
        self.bindings_seen: set[tuple] = set()
        self.requests_propagated = False
        self.row_sources: dict[tuple, int] = {}  # provenance: row -> first sender
        # §3.1: "trivial goal nodes, with only one in-edge and one out-edge
        # are exempt" from storing their temporary relation — with a single
        # producer (which deduplicates its emissions) and a single consumer
        # (whose requests are exactly the ones forwarded), storing buys
        # nothing.  The engine sets this after wiring.
        self.trivial_relay = False

    # -- producer side -------------------------------------------------
    def on_relation_request(self, message: RelationRequest, network: "Scheduler") -> None:
        stream = self.consumers[message.sender]
        stream.last_seq_received = max(stream.last_seq_received, 0)
        if not self.requests_propagated:
            self.requests_propagated = True
            for child_id, feeder in self.feeders.items():
                feeder.next_seq()  # sequence 0 = the relation request
                network.send(
                    RelationRequest(self.node_id, child_id, self.adorned.adornment)
                )
        if stream.wants_all:
            self.send_rows(stream, self.answers, network)

    def on_tuple_request(self, message: TupleRequest, network: "Scheduler") -> None:
        stream = self.consumers[message.sender]
        stream.last_seq_received = max(stream.last_seq_received, message.seq)
        self.serve_binding(stream, message.binding, network)

    def serve_binding(self, stream: ConsumerStream, binding: tuple, network: "Scheduler") -> None:
        """Replay known matching answers; propagate a fresh binding downward."""
        if binding not in stream.requested:
            stream.requested.add(binding)
            self.send_rows(stream, self.answers_by_binding.get(binding, ()), network)
        if binding not in self.bindings_seen:
            self.bindings_seen.add(binding)
            for child_id in self.feeders:
                self.send_tuple_request(child_id, binding, network)

    # -- consumer side ---------------------------------------------------
    def on_tuple(self, message: TupleMessage, network: "Scheduler") -> None:
        row = message.row
        if self.trivial_relay:
            # One producer, one consumer: the producer already deduplicated
            # and every row answers a binding this consumer asked for.
            if self.record_provenance:
                self.row_sources.setdefault(row, message.sender)
            (stream,) = self.consumers.values()
            self._send_row(stream, row, network)
            return
        if row in self.answers:
            return  # duplicate deletion — this is what lets loops terminate
        self.answers.add(row)
        self.tuples_stored += 1
        if self.record_provenance:
            self.row_sources[row] = message.sender
        binding = self.shape.binding_of(row)
        self.answers_by_binding.setdefault(binding, []).append(row)
        for stream in self.consumers.values():
            if stream.wants_all or binding in stream.requested:
                self._send_row(stream, row, network)

    def on_tuple_set(self, message: TupleSet, network: "Scheduler") -> None:
        """Set-at-a-time union: dedup the batch once, fan out filtered sets."""
        if self.columnar:
            self._on_tuple_set_c(message, network)
            return
        if self.trivial_relay:
            if self.record_provenance:
                for row in message.rows:
                    self.row_sources.setdefault(row, message.sender)
            (stream,) = self.consumers.values()
            self.send_rows(stream, message.rows, network)
            return
        fresh = [row for row in message.rows if row not in self.answers]
        if not fresh:
            return
        self.answers.update(fresh)
        self.tuples_stored += len(fresh)
        bindings: list[tuple] = []
        for row in fresh:
            if self.record_provenance:
                self.row_sources[row] = message.sender
            binding = self.shape.binding_of(row)
            bindings.append(binding)
            self.answers_by_binding.setdefault(binding, []).append(row)
        for stream in self.consumers.values():
            if stream.wants_all:
                self.send_rows(stream, fresh, network)
            else:
                self.send_rows(
                    stream,
                    [r for r, b in zip(fresh, bindings) if b in stream.requested],
                    network,
                )

    def _on_tuple_set_c(self, message: TupleSet, network: "Scheduler") -> None:
        """Columnar union: one set difference, one binding-bucketed fan-out."""
        if self.trivial_relay:
            (stream,) = self.consumers.values()
            self.send_rows_batch(stream, message.rows, network)
            return
        fresh = message.rows - self.answers
        if not fresh:
            return
        self.answers |= fresh
        self.tuples_stored += len(fresh)
        by_binding = self.answers_by_binding
        if not self.shape.d_in_row:
            # Every row shares the nullary binding: skip the bucketing pass.
            stored = by_binding.get(())
            if stored is None:
                by_binding[()] = list(fresh)
            else:
                stored.extend(fresh)
            for stream in self.consumers.values():
                if stream.wants_all or () in stream.requested:
                    self.send_rows_batch(stream, fresh, network)
            return
        binding_get = self.shape.binding_get
        buckets: dict[tuple, list[tuple]] = {}
        for row in fresh:
            binding = binding_get(row)
            stored = by_binding.get(binding)
            if stored is None:
                by_binding[binding] = [row]
            else:
                stored.append(row)
            bucket = buckets.get(binding)
            if bucket is None:
                buckets[binding] = [row]
            else:
                bucket.append(row)
        for stream in self.consumers.values():
            if stream.wants_all:
                self.send_rows_batch(stream, fresh, network)
                continue
            requested = stream.requested
            matching: list[tuple] = []
            if len(buckets) <= len(requested):
                for binding, rows in buckets.items():
                    if binding in requested:
                        matching.extend(rows)
            else:
                for binding in requested:
                    rows = buckets.get(binding)
                    if rows:
                        matching.extend(rows)
            if matching:
                self.send_rows_batch(stream, matching, network)

    def _send_row(self, stream: ConsumerStream, row: tuple, network: "Scheduler") -> None:
        if row in stream.sent_rows:
            return
        stream.sent_rows.add(row)
        network.send(TupleMessage(self.node_id, stream.consumer_id, row))


class CyclicNodeProcess(NodeProcess):
    """A variant-of-ancestor goal node: a selection on the ancestor's relation.

    Forwards its parent's tuple requests to the ancestor and relays the
    ancestor's matching answers back up.  Always inside a strong component,
    so it emits no end messages of its own (the component's leader does).
    """

    def __init__(self, node_id: int, adorned: AdornedAtom, ancestor_id: int) -> None:
        super().__init__(node_id)
        self.adorned = adorned
        self.shape = _RowShape(adorned)
        self.ancestor_id = ancestor_id
        self.rows: set[tuple] = set()

    def on_relation_request(self, message: RelationRequest, network: "Scheduler") -> None:
        stream = self.consumers[message.sender]
        stream.last_seq_received = max(stream.last_seq_received, 0)
        feeder = self.feeders[self.ancestor_id]
        if feeder.last_seq_sent < 0:
            feeder.next_seq()
            network.send(
                RelationRequest(self.node_id, self.ancestor_id, self.adorned.adornment)
            )
        if stream.wants_all:
            self.send_rows(stream, self.rows, network)

    def on_tuple_request(self, message: TupleRequest, network: "Scheduler") -> None:
        stream = self.consumers[message.sender]
        stream.last_seq_received = max(stream.last_seq_received, message.seq)
        self.serve_binding(stream, message.binding, network)

    def serve_binding(self, stream: ConsumerStream, binding: tuple, network: "Scheduler") -> None:
        """Replay matching rows and forward the binding to the ancestor."""
        if binding not in stream.requested:
            stream.requested.add(binding)
            self.send_rows(
                stream,
                [row for row in self.rows if self.shape.binding_of(row) == binding],
                network,
            )
        self.send_tuple_request(self.ancestor_id, binding, network)

    def on_tuple(self, message: TupleMessage, network: "Scheduler") -> None:
        row = message.row
        if row in self.rows:
            return
        self.rows.add(row)
        self.tuples_stored += 1
        binding = self.shape.binding_of(row)
        for stream in self.consumers.values():
            if stream.wants_all or binding in stream.requested:
                self._send_row(stream, row, network)

    def on_tuple_set(self, message: TupleSet, network: "Scheduler") -> None:
        """Relay a whole set: dedup once, then filter per consumer stream."""
        if self.columnar:
            self._on_tuple_set_c(message, network)
            return
        fresh = [row for row in message.rows if row not in self.rows]
        if not fresh:
            return
        self.rows.update(fresh)
        self.tuples_stored += len(fresh)
        bindings = [self.shape.binding_of(row) for row in fresh]
        for stream in self.consumers.values():
            if stream.wants_all:
                self.send_rows(stream, fresh, network)
            else:
                self.send_rows(
                    stream,
                    [r for r, b in zip(fresh, bindings) if b in stream.requested],
                    network,
                )

    def _on_tuple_set_c(self, message: TupleSet, network: "Scheduler") -> None:
        """Columnar relay: whole-set dedup, binding-bucketed stream filter."""
        fresh = message.rows - self.rows
        if not fresh:
            return
        self.rows |= fresh
        self.tuples_stored += len(fresh)
        if not self.shape.d_in_row:
            # Every row shares the nullary binding: skip the bucketing pass.
            for stream in self.consumers.values():
                if stream.wants_all or () in stream.requested:
                    self.send_rows_batch(stream, fresh, network)
            return
        binding_get = self.shape.binding_get
        buckets: dict[tuple, list[tuple]] = {}
        for row in fresh:
            binding = binding_get(row)
            bucket = buckets.get(binding)
            if bucket is None:
                buckets[binding] = [row]
            else:
                bucket.append(row)
        for stream in self.consumers.values():
            if stream.wants_all:
                self.send_rows_batch(stream, fresh, network)
                continue
            requested = stream.requested
            matching: list[tuple] = []
            if len(buckets) <= len(requested):
                for binding, rows in buckets.items():
                    if binding in requested:
                        matching.extend(rows)
            else:
                for binding in requested:
                    rows = buckets.get(binding)
                    if rows:
                        matching.extend(rows)
            if matching:
                self.send_rows_batch(stream, matching, network)

    def _send_row(self, stream: ConsumerStream, row: tuple, network: "Scheduler") -> None:
        if row in stream.sent_rows:
            return
        stream.sent_rows.add(row)
        network.send(TupleMessage(self.node_id, stream.consumer_id, row))


class EdbLeafProcess(NodeProcess):
    """An EDB subgoal leaf: serves requests straight from the database.

    A relation request with no "d" positions triggers one (filtered) scan; a
    tuple request triggers an indexed retrieval on the "c"+"d" positions —
    "a class 'd' argument functions as a semi-join operand".
    """

    def __init__(self, node_id: int, adorned: AdornedAtom, database: Database) -> None:
        super().__init__(node_id)
        self.adorned = adorned
        self.shape = _RowShape(adorned)
        self.database = database
        atom = adorned.atom
        self.constant_filter: dict[int, object] = {
            i: term.value
            for i, term in enumerate(atom.args)
            if isinstance(term, Constant)
        }
        # Positions sharing a repeated variable must hold equal values.
        groups: dict[Variable, list[int]] = {}
        for i, term in enumerate(atom.args):
            if isinstance(term, Variable):
                groups.setdefault(term, []).append(i)
        self.equal_groups = [tuple(v) for v in groups.values() if len(v) > 1]
        self._relation_size: Optional[int] = None  # lazy; EDB is fixed per run
        # Columnar serve plan: most leaves filter nothing and project
        # nothing (no constants, no repeated variables, no "e" positions) —
        # stored rows can then be served as-is, whole batches at a time.
        self._no_filter = not self.constant_filter and not self.equal_groups
        self._identity_projection = self.shape.non_e == tuple(range(len(atom.args)))

    # ------------------------------------------------------------------
    def _matches(self, row: tuple) -> bool:
        for pos, value in self.constant_filter.items():
            if row[pos] != value:
                return False
        for group in self.equal_groups:
            first = row[group[0]]
            if any(row[p] != first for p in group[1:]):
                return False
        return True

    def _emit(self, stream: ConsumerStream, rows: Iterable[tuple], network: "Scheduler") -> None:
        # One whole serve becomes one TupleSet (when >1 fresh row): the
        # per-request repr-sort the per-tuple path used to pay is gone —
        # answers are sets, and determinism lives at the result-collection
        # boundary (the driver's answer set, the CLI's sorted print).
        if self.columnar:
            if not self._no_filter:
                rows = [row for row in rows if self._matches(row)]
            if self._identity_projection:
                self.send_rows_batch(stream, rows, network)
            else:
                self.send_rows_batch(
                    stream, ColumnBatch(rows).project(self.shape.non_e), network
                )
            return
        self.send_rows(
            stream,
            (
                tuple(full_row[i] for i in self.shape.non_e)
                for full_row in rows
                if self._matches(full_row)
            ),
            network,
        )

    # ------------------------------------------------------------------
    def on_relation_request(self, message: RelationRequest, network: "Scheduler") -> None:
        stream = self.consumers[message.sender]
        stream.last_seq_received = max(stream.last_seq_received, 0)
        if not self.shape.d_positions:
            if self.constant_filter:
                rows = self.database.lookup(self.adorned.predicate, self.constant_filter)
            else:
                rows = self.database.scan(self.adorned.predicate).rows
            self._emit(stream, rows, network)
        # maybe_send_ends fires from on_idle_check (no feeders: caught up).

    def on_tuple_request(self, message: TupleRequest, network: "Scheduler") -> None:
        stream = self.consumers[message.sender]
        stream.last_seq_received = max(stream.last_seq_received, message.seq)
        self.serve_binding(stream, message.binding, network)

    def inject_delta(self, rows: Iterable[tuple], network: "Scheduler") -> None:
        """Feed newly committed database rows into every open stream.

        The delta-propagation entry point
        (:meth:`~repro.network.engine.MessagePassingEngine.run_delta`): a
        warm network's EDB leaves are the only places base rows ever
        entered the computation, so re-serving exactly the streams that
        would have received each row had it been present originally —
        full-relation streams get every matching row, "d" streams the
        rows matching a binding they already requested — restarts the
        monotone fixpoint from the delta alone.  Per-stream ``sent_rows``
        dedup keeps re-injection idempotent; bindings requested *after*
        the injection are served straight from the (already grown)
        database as usual.
        """
        self._relation_size = None  # the cached scan-vs-lookup pivot moved
        matching = [row for row in rows if self._matches(row)]
        if not matching:
            return
        if not self.shape.d_positions:
            for stream in self.consumers.values():
                if stream.last_seq_received >= 0:
                    self._emit(stream, matching, network)
            return
        for stream in self.consumers.values():
            if not stream.requested:
                continue
            self._emit(
                stream,
                [
                    row
                    for row in matching
                    if tuple(row[p] for p in self.shape.d_positions)
                    in stream.requested
                ],
                network,
            )

    def _lookup_binding(self, binding: tuple) -> Iterable[tuple]:
        """Indexed retrieval for one "d" binding (empty on constant clash)."""
        bound = dict(self.constant_filter)
        for pos, value in zip(self.shape.d_positions, binding):
            if pos in bound and bound[pos] != value:
                return ()  # inconsistent with the constant at this position
            bound[pos] = value
        return self.database.lookup(self.adorned.predicate, bound)

    def serve_binding(self, stream: ConsumerStream, binding: tuple, network: "Scheduler") -> None:
        """Indexed retrieval for one "d" binding.

        The binding is remembered on the stream so a later
        :meth:`inject_delta` can re-serve it when new matching rows are
        committed — the leaf-side half of the semi-naive contract.
        """
        stream.requested.add(binding)
        self._emit(stream, self._lookup_binding(binding), network)

    def on_packaged_request(self, message: PackagedTupleRequest, network: "Scheduler") -> None:
        """Serve a package; large packages use one scan (footnote 2).

        "If an EDB relation r(X, Y) has no index on its second argument, then
        tuple requests r(X, a), r(X, b), ..., presented separately require
        the whole r relation to be scanned for each one.  If packaged, the
        retrieval can be done in one scan."  Here: when the package holds
        several bindings, one scan filtered against the binding set replaces
        one retrieval per binding.
        """
        stream = self.consumers[message.sender]
        stream.last_seq_received = max(stream.last_seq_received, message.seq)
        stream.requested.update(message.bindings)
        if self._relation_size is None:
            self._relation_size = len(self.database.relation(self.adorned.predicate))
        if (
            len(message.bindings) <= 1
            or not self.shape.d_positions
            # Cost choice: one scan beats k indexed lookups only when the
            # package is large relative to the relation; against a big EDB a
            # small package (e.g. a transport batch coalesced by the pooled
            # runtime) is served by its indexes.
            or 4 * len(message.bindings) < self._relation_size
        ):
            gathered: list[tuple] = []
            for binding in message.bindings:
                gathered.extend(self._lookup_binding(binding))
            self._emit(stream, gathered, network)
            return
        wanted = set(message.bindings)
        relation = self.database.scan(self.adorned.predicate)
        d_pos = self.shape.d_positions
        if len(d_pos) == 1:
            p = d_pos[0]
            wanted_values = {binding[0] for binding in wanted}
            matching = [row for row in relation.rows if row[p] in wanted_values]
        else:
            d_get = operator.itemgetter(*d_pos)
            matching = [row for row in relation.rows if d_get(row) in wanted]
        self._emit(stream, matching, network)

    def on_tuple(self, message: TupleMessage, network: "Scheduler") -> None:  # pragma: no cover
        raise AssertionError("EDB leaves have no producers")


class _Stage:
    """One stage of a rule node's incremental multiway join pipeline.

    Stage ``j`` (1-based) corresponds to the ``j``-th subgoal in SIP order.
    ``env_vars`` is the cumulative variable schema after joining this stage;
    ``envs`` the set of environments reached; indexes keyed by the values of
    the variables shared with the *next* stage's subgoal are kept on both
    sides so new envs and new tuples can each find their join partners.
    """

    __slots__ = (
        "subgoal_index",
        "adorned",
        "shape",
        "sub_vars",
        "env_vars",
        "envs",
        "rows",
        "shared_with_prev",
        "prev_key_positions",
        "row_key_positions",
        "env_index",
        "row_index",
        "merge_plan",
        "d_var_sources",
        "row_source",
        # Columnar kernel plan (PR 8): compiled getters replacing the
        # per-row interpretation of the plans above.
        "row_perm",  # "id" | permutation tuple | None (general conversion)
        "row_checks",  # (position, constant) filters applied before row_perm
        "row_key_get",
        "prev_key_get",
        "suffix_positions",  # row-env positions of the merge suffix
        "suffix_get",  # row_env -> the merge suffix (the new variables)
        "d_env_positions",  # env positions of the tuple-request binding
    )

    def __init__(self) -> None:
        self.envs: set[tuple] = set()
        self.rows: set[tuple] = set()
        self.env_index: dict[tuple, list[tuple]] = {}
        self.row_index: dict[tuple, list[tuple]] = {}
        self.row_source: dict[tuple, tuple] = {}  # provenance: sub-env -> row


class RuleNodeProcess(NodeProcess):
    """A rule node: stores subgoal temporaries and joins incrementally.

    The evaluation follows the SIP order ``o_1 .. o_k``: environments for the
    prefix through ``o_j`` are materialized; a new environment at stage ``j``
    issues tuple requests for the "d" arguments of ``o_{j+1}`` and joins with
    the tuples already received for it; a new tuple at stage ``j+1`` joins
    with the stage-``j`` environments.  "Since p is recursive, all steps are
    interleaved" (Example 2.1) — the interleaving falls out of the message
    loop.
    """

    def __init__(
        self,
        node_id: int,
        rule: Rule,
        head: AdornedAtom,
        parent_goal: AdornedAtom,
        sip_order: Sequence[int],
        adorned_body: Sequence[AdornedAtom],
        child_ids: Sequence[int],
    ) -> None:
        super().__init__(node_id)
        self.rule = rule
        self.head = head
        self.parent_shape = _RowShape(parent_goal)
        self.sip_order = tuple(sip_order)
        self.adorned_body = tuple(adorned_body)
        self.child_ids = tuple(child_ids)  # aligned with rule.body positions
        # child id -> stage numbers (1-based); coalesced graphs may serve two
        # subgoals of one rule from a single shared goal node.
        self.child_stage: dict[int, list[int]] = {}
        self.sent_rows: set[tuple] = set()
        self.request_started = False
        # Accounting (PR 8 split): probes and inserts used to share one
        # ``join_lookups`` counter; they are different operations with
        # different costs, so they are counted apart.  ``join_lookups``
        # remains as a read-only alias for the probe count.
        self.probe_lookups = 0  # statistic: index probes performed
        self.index_inserts = 0  # statistic: index insertions performed
        # Per-kernel batch statistics: rows entering the stage kernels,
        # fresh environments they produced, and distinct join keys probed.
        self.batch_rows_in = 0
        self.batch_rows_out = 0
        self.batch_distinct_keys = 0
        self.envs_materialized = 0
        self._stage0_envs: set[tuple] = set()
        self._stage0_index: dict[tuple, list[tuple]] = {}
        # Provenance: (stage, env) -> (previous-stage env, subgoal sub-env),
        # and emitted head row -> the final env that produced it first.
        self._env_parent: dict[tuple[int, tuple], tuple[tuple, tuple]] = {}
        self._head_env: dict[tuple, Optional[tuple]] = {}

        # ---- precompute stage plans -------------------------------------
        head_bound = sorted(
            {
                t
                for i in head.bound_positions
                for t in [rule.head.args[i]]
                if isinstance(t, Variable)
            },
            key=lambda v: v.name,
        )
        self.stage0_vars: tuple[Variable, ...] = tuple(head_bound)
        self.stages: list[_Stage] = []
        prev_vars: tuple[Variable, ...] = self.stage0_vars
        for stage_number, subgoal_index in enumerate(self.sip_order, start=1):
            stage = _Stage()
            stage.subgoal_index = subgoal_index
            stage.adorned = self.adorned_body[subgoal_index]
            stage.shape = _RowShape(stage.adorned)
            atom = stage.adorned.atom
            # Distinct variables at non-"e" positions, in name order.
            seen: dict[Variable, None] = {}
            for pos in stage.shape.non_e:
                term = atom.args[pos]
                if isinstance(term, Variable):
                    seen.setdefault(term, None)
            stage.sub_vars = tuple(sorted(seen, key=lambda v: v.name))
            shared = tuple(v for v in prev_vars if v in stage.sub_vars)
            stage.shared_with_prev = shared
            prev_pos = {v: i for i, v in enumerate(prev_vars)}
            sub_pos = {v: i for i, v in enumerate(stage.sub_vars)}
            stage.prev_key_positions = tuple(prev_pos[v] for v in shared)
            stage.row_key_positions = tuple(sub_pos[v] for v in shared)
            new_vars = tuple(v for v in stage.sub_vars if v not in prev_pos)
            stage.env_vars = prev_vars + new_vars
            # Merge plan: for each env var, where its value comes from.
            plan: list[tuple[str, int]] = []
            for v in prev_vars:
                plan.append(("prev", prev_pos[v]))
            for v in new_vars:
                plan.append(("row", sub_pos[v]))
            stage.merge_plan = tuple(plan)
            # Tuple-request plan: the subgoal's "d" positions as (kind, payload).
            d_sources: list[tuple[str, object]] = []
            env_pos = {v: i for i, v in enumerate(prev_vars)}
            for pos in stage.shape.d_positions:
                term = atom.args[pos]
                if isinstance(term, Constant):
                    d_sources.append(("const", term.value))
                else:
                    if term not in env_pos:
                        raise AssertionError(
                            f"'d' variable {term} of {atom} not bound by stage {stage_number - 1}"
                        )
                    d_sources.append(("env", env_pos[term]))
            stage.d_var_sources = tuple(d_sources)
            # ---- columnar kernel plan --------------------------------
            # Rows arriving for a subgoal whose non-"e" arguments are
            # variables that do not repeat convert to sub-environments by a
            # constant filter plus a pure permutation (usually the
            # identity); repeated variables fall back to the checked
            # per-row conversion.
            terms = [atom.args[p] for p in stage.shape.non_e]
            var_terms = [t for t in terms if isinstance(t, Variable)]
            if len(set(var_terms)) == len(var_terms):
                stage.row_checks = tuple(
                    (i, t.value)
                    for i, t in enumerate(terms)
                    if isinstance(t, Constant)
                )
                row_pos = {
                    t: i for i, t in enumerate(terms) if isinstance(t, Variable)
                }
                perm = tuple(row_pos[v] for v in stage.sub_vars)
                identity = not stage.row_checks and perm == tuple(range(len(perm)))
                stage.row_perm = "id" if identity else perm
            else:
                stage.row_checks = ()
                stage.row_perm = None
            stage.row_key_get = _key_getter(stage.row_key_positions)
            stage.prev_key_get = _key_getter(stage.prev_key_positions)
            # The "prev" half of merge_plan is always the identity prefix
            # (prev_vars enumerate in order), so a merge is prev_env plus a
            # gathered suffix of the row-env's new variables.
            stage.suffix_positions = tuple(
                i for kind, i in stage.merge_plan if kind == "row"
            )
            stage.suffix_get = _tuple_getter(stage.suffix_positions)
            if all(kind == "env" for kind, _ in d_sources):
                stage.d_env_positions = tuple(i for _, i in d_sources)
            else:
                stage.d_env_positions = None
            self.stages.append(stage)
            prev_vars = stage.env_vars
            self.child_stage.setdefault(self.child_ids[subgoal_index], []).append(
                stage_number
            )

        # Head-output plan: value source per parent non-"e" position.
        final_pos = {v: i for i, v in enumerate(prev_vars)}
        out_plan: list[tuple[str, object]] = []
        for pos in self.parent_shape.non_e:
            term = rule.head.args[pos]
            if isinstance(term, Constant):
                out_plan.append(("const", term.value))
            else:
                out_plan.append(("env", final_pos[term]))
        self.head_out_plan = tuple(out_plan)
        # Compiled head projection for the columnar emit kernel (only when
        # every output position reads from the environment; constant head
        # arguments keep the interpreted plan).
        if all(kind == "env" for kind, _ in out_plan):
            self._head_positions: Optional[tuple[int, ...]] = tuple(
                i for _, i in out_plan
            )
        else:
            self._head_positions = None

        # Head-request plan: parent "d" positions -> constraints on stage0 env.
        self.stage0_pos = {v: i for i, v in enumerate(self.stage0_vars)}
        req_plan: list[tuple[str, object]] = []
        for pos in self.parent_shape.d_positions:
            term = rule.head.args[pos]
            if isinstance(term, Constant):
                req_plan.append(("const", term.value))
            else:
                req_plan.append(("var", self.stage0_pos[term]))
        self.head_request_plan = tuple(req_plan)

    # ------------------------------------------------------------------
    # Producer side: requests from the parent goal node
    # ------------------------------------------------------------------
    def on_relation_request(self, message: RelationRequest, network: "Scheduler") -> None:
        stream = self.consumers[message.sender]
        stream.last_seq_received = max(stream.last_seq_received, 0)
        if not self.request_started:
            self.request_started = True
            opened: set[int] = set()
            for position, child_id in enumerate(self.child_ids):
                adorned = self.adorned_body[position]
                # A partitioned child opens one stream per replica; each
                # replica then serves the binding partition routed to it.
                for target in self.replica_route.get(child_id, (child_id,)):
                    if target in opened:
                        continue  # shared node serving several subgoals: one stream
                    opened.add(target)
                    feeder = self.feeders[target]
                    feeder.next_seq()
                    network.send(RelationRequest(self.node_id, target, adorned.adornment))
        if not self.parent_shape.d_positions:
            self._add_stage0_env((), network)

    def on_tuple_request(self, message: TupleRequest, network: "Scheduler") -> None:
        stream = self.consumers[message.sender]
        stream.last_seq_received = max(stream.last_seq_received, message.seq)
        self.serve_binding(stream, message.binding, network)

    def serve_binding(self, stream: ConsumerStream, binding: tuple, network: "Scheduler") -> None:
        """One head binding becomes one stage-0 environment."""
        env = self._stage0_env_from_binding(binding)
        if env is not None:
            self._add_stage0_env(env, network)

    def _stage0_env_from_binding(self, binding: tuple) -> Optional[tuple]:
        """Turn a head tuple request into a stage-0 environment.

        Returns None when the binding clashes with a head constant or with a
        repeated head variable (the specialized rule simply contributes
        nothing for that request).
        """
        values: list[Optional[object]] = [None] * len(self.stage0_vars)
        filled = [False] * len(self.stage0_vars)
        for (kind, payload), value in zip(self.head_request_plan, binding):
            if kind == "const":
                if payload != value:
                    return None
            else:
                index = payload  # type: ignore[assignment]
                if filled[index]:
                    if values[index] != value:
                        return None
                else:
                    values[index] = value
                    filled[index] = True
        if not all(filled):
            # A stage-0 variable not covered by the request: impossible, since
            # stage0_vars come exactly from the head's bound positions.
            raise AssertionError("head request did not bind all stage-0 variables")
        return tuple(values)

    # ------------------------------------------------------------------
    # Consumer side: tuples from subgoal children
    # ------------------------------------------------------------------
    @property
    def join_lookups(self) -> int:
        """Back-compat alias for :attr:`probe_lookups` (pre-PR-8 name)."""
        return self.probe_lookups

    def on_tuple(self, message: TupleMessage, network: "Scheduler") -> None:
        kernel = self._tuples_into_stage_c if self.columnar else self._tuples_into_stage
        for stage_number in self.child_stage[message.sender]:
            kernel(stage_number, (message.row,), network)

    def on_tuple_set(self, message: TupleSet, network: "Scheduler") -> None:
        """Bulk stage kernel entry: join a whole set of child rows at once."""
        kernel = self._tuples_into_stage_c if self.columnar else self._tuples_into_stage
        for stage_number in self.child_stage[message.sender]:
            kernel(stage_number, message.rows, network)

    def _tuples_into_stage(
        self, stage_number: int, rows: Iterable[tuple], network: "Scheduler"
    ) -> None:
        """Set-at-a-time semi-join: one index probe per distinct join key.

        All fresh rows of the batch are converted, stored, and indexed first;
        then the previous stage's environments are probed once per distinct
        key (the per-tuple path probes once per row) and the merged
        environments propagate through :meth:`_add_envs` as one batch.
        """
        stage = self.stages[stage_number - 1]
        self.batch_rows_in += len(rows)  # type: ignore[arg-type]
        by_key: dict[tuple, list[tuple]] = {}
        for row in rows:
            env = self._row_to_subenv(stage, row)
            if env is None or env in stage.rows:
                continue
            stage.rows.add(env)
            self.tuples_stored += 1
            self.index_inserts += 1
            if self.record_provenance:
                stage.row_source.setdefault(env, row)
            key = tuple(env[i] for i in stage.row_key_positions)
            stage.row_index.setdefault(key, []).append(env)
            by_key.setdefault(key, []).append(env)
        if not by_key:
            return
        self.batch_distinct_keys += len(by_key)
        merged: list[tuple[tuple, tuple[tuple, tuple]]] = []
        for key, envs in by_key.items():
            # Join the new tuples with the previous stage's environments.
            if stage_number == 1:
                prev_envs = self._stage0_envs_for_key(key, self.stages[0])
            else:
                prev_envs = self.stages[stage_number - 2].env_index.get(key, [])
            self.probe_lookups += 1
            for prev_env in list(prev_envs):
                for env in envs:
                    merged.append((self._merge(stage, prev_env, env), (prev_env, env)))
        if merged:
            self._add_envs(stage_number, merged, network)

    def _tuples_into_stage_c(
        self, stage_number: int, rows, network: "Scheduler"
    ) -> None:
        """Columnar stage kernel: whole-batch convert, dedup, index, probe.

        The batch is converted to sub-environments by a precompiled gather
        (:class:`~repro.network.messages.ColumnBatch` when a real permutation
        is needed; zero-copy when the row layout already matches), fresh rows
        are found with one set difference, the batch hash index is built once,
        and the previous stage is probed once per distinct join key.  A merge
        is ``prev_env + suffix`` — the cumulative schema keeps earlier
        variables as an identity prefix — with each suffix gathered once per
        row-env instead of once per output pair.
        """
        stage = self.stages[stage_number - 1]
        self.batch_rows_in += len(rows)
        if stage.row_perm == "id":
            batch = rows if isinstance(rows, (set, frozenset)) else set(rows)
        elif stage.row_perm is not None:
            if stage.row_checks:
                if len(stage.row_checks) == 1:
                    ((pos, value),) = stage.row_checks
                    rows = [row for row in rows if row[pos] == value]
                else:
                    checks = stage.row_checks
                    rows = [
                        row
                        for row in rows
                        if all(row[p] == v for p, v in checks)
                    ]
            batch = set(ColumnBatch(rows).project(stage.row_perm))
        else:
            batch = set()
            for row in rows:
                env = self._row_to_subenv(stage, row)
                if env is not None:
                    batch.add(env)
        fresh = batch - stage.rows
        if not fresh:
            return
        stage.rows |= fresh
        self.tuples_stored += len(fresh)
        self.index_inserts += len(fresh)
        # Columnar gathers for the whole fresh batch: join keys and merge
        # suffixes come out of C-level column gathers, not per-row getters.
        fresh_list = list(fresh)
        cb = ColumnBatch(fresh_list)
        suffixes = cb.project(stage.suffix_positions)
        if stage_number == 1:
            prev_index = self._stage0_index
        else:
            prev_index = self.stages[stage_number - 2].env_index
        row_index = stage.row_index
        merged: list[tuple]
        if not stage.row_key_positions:
            # Nullary join key (no shared variables yet): one bucket, one
            # probe, zero per-row dict traffic.
            bucket = row_index.get(())
            if bucket is None:
                row_index[()] = list(fresh_list)
            else:
                bucket.extend(fresh_list)
            self.batch_distinct_keys += 1
            self.probe_lookups += 1
            prev_envs = prev_index.get(())
            if not prev_envs:
                return
            if len(prev_envs) == 1 and prev_envs[0] == ():
                merged = suffixes  # the identity prefix is empty
            else:
                merged = [
                    prev_env + suffix
                    for prev_env in prev_envs
                    for suffix in suffixes
                ]
        else:
            keys = cb.keys(stage.row_key_positions)
            prev_get = prev_index.get
            merged = []
            append = merged.append
            for env, key, suffix in zip(fresh_list, keys, suffixes):
                bucket = row_index.get(key)
                if bucket is None:
                    row_index[key] = [env]
                else:
                    bucket.append(env)
                prev_envs = prev_get(key)
                if prev_envs:
                    for prev_env in prev_envs:
                        append(prev_env + suffix)
            distinct = len(set(keys))
            self.batch_distinct_keys += distinct
            self.probe_lookups += distinct
        if merged:
            self._add_envs_c(stage_number, merged, network)

    def _row_to_subenv(self, stage: _Stage, row: tuple) -> Optional[tuple]:
        """Convert a child's row into values over ``stage.sub_vars``."""
        atom = stage.adorned.atom
        values: dict[Variable, object] = {}
        for pos, value in zip(stage.shape.non_e, row):
            term = atom.args[pos]
            if isinstance(term, Constant):
                if term.value != value:
                    return None
            else:
                if term in values and values[term] != value:
                    return None
                values[term] = value
        return tuple(values[v] for v in stage.sub_vars)

    # ------------------------------------------------------------------
    # Stage-0 environments (head bindings)
    # ------------------------------------------------------------------
    def _add_stage0_env(self, env: tuple, network: "Scheduler") -> None:
        if env in self._stage0_envs:
            return
        self._stage0_envs.add(env)
        self.envs_materialized += 1
        if not self.stages:
            # Bodiless rule: the head itself is the (single) answer.
            if self.columnar:
                self._emit_heads_c((env,), network)
            else:
                self._emit_heads((env,), network)
            return
        first = self.stages[0]
        if self.columnar:
            key = first.prev_key_get(env)
            self._stage0_index.setdefault(key, []).append(env)
            self.index_inserts += 1
            self._request_next(1, env, network)
            self.probe_lookups += 1
            suffix_get = first.suffix_get
            merged_c = [
                env + suffix_get(row_env)
                for row_env in first.row_index.get(key, ())
            ]
            if merged_c:
                self._add_envs_c(1, merged_c, network)
            return
        key = tuple(env[i] for i in first.prev_key_positions)
        self._stage0_index.setdefault(key, []).append(env)
        self.index_inserts += 1
        self._request_next(1, env, network)
        self.probe_lookups += 1
        merged = [
            (self._merge(first, env, row_env), (env, row_env))
            for row_env in list(first.row_index.get(key, []))
        ]
        if merged:
            self._add_envs(1, merged, network)

    def _stage0_envs_for_key(self, key: tuple, stage: _Stage) -> list[tuple]:
        return self._stage0_index.get(key, [])

    # ------------------------------------------------------------------
    # Env propagation
    # ------------------------------------------------------------------
    def _merge(self, stage: _Stage, prev_env: tuple, row_env: tuple) -> tuple:
        values = []
        for kind, index in stage.merge_plan:
            values.append(prev_env[index] if kind == "prev" else row_env[index])
        return tuple(values)

    def _add_envs(
        self,
        stage_number: int,
        merged: list[tuple[tuple, tuple[tuple, tuple]]],
        network: "Scheduler",
    ) -> None:
        """Materialize a batch of (env, provenance-source) pairs at one stage.

        Fresh environments of the batch are deduplicated, indexed, and issue
        their tuple requests exactly as in the per-tuple path; the join
        against the *next* stage's already-received tuples is then performed
        once per distinct key for the whole batch, and the results recurse as
        one batch again.
        """
        stage = self.stages[stage_number - 1]
        fresh: list[tuple] = []
        for env, source in merged:
            if env in stage.envs:
                continue
            stage.envs.add(env)
            self.envs_materialized += 1
            if self.record_provenance and source is not None:
                self._env_parent.setdefault((stage_number, env), source)
            fresh.append(env)
        if not fresh:
            return
        self.batch_rows_out += len(fresh)
        if stage_number == len(self.stages):
            self._emit_heads(fresh, network)
            return
        next_stage = self.stages[stage_number]
        by_key: dict[tuple, list[tuple]] = {}
        for env in fresh:
            key = tuple(env[i] for i in next_stage.prev_key_positions)
            stage.env_index.setdefault(key, []).append(env)
            self.index_inserts += 1
            by_key.setdefault(key, []).append(env)
            self._request_next(stage_number + 1, env, network)
        self.batch_distinct_keys += len(by_key)
        next_merged: list[tuple[tuple, tuple[tuple, tuple]]] = []
        for key, envs in by_key.items():
            self.probe_lookups += 1
            rows = next_stage.row_index.get(key, [])
            for env in envs:
                for row_env in list(rows):
                    next_merged.append(
                        (self._merge(next_stage, env, row_env), (env, row_env))
                    )
        if next_merged:
            self._add_envs(stage_number + 1, next_merged, network)

    def _add_envs_c(
        self, stage_number: int, merged: list[tuple], network: "Scheduler"
    ) -> None:
        """Columnar env propagation: set-difference dedup, batched requests.

        The mirror of :meth:`_add_envs` over plain environment tuples (no
        provenance sources — the engine never combines columnar kernels with
        provenance recording).  Tuple-request bindings are gathered with the
        stage's compiled plan and deduplicated batch-wide before emission.
        """
        stage = self.stages[stage_number - 1]
        batch = set(merged)
        fresh = batch - stage.envs
        if not fresh:
            return
        stage.envs |= fresh
        self.envs_materialized += len(fresh)
        self.batch_rows_out += len(fresh)
        if stage_number == len(self.stages):
            self._emit_heads_c(fresh, network)
            return
        next_stage = self.stages[stage_number]
        fresh_list = list(fresh)
        cb = ColumnBatch(fresh_list)
        if next_stage.d_var_sources:
            if next_stage.d_env_positions is not None:
                child_id = self.child_ids[next_stage.subgoal_index]
                self.send_tuple_requests_batch(
                    child_id, set(cb.project(next_stage.d_env_positions)), network
                )
            else:
                for env in fresh_list:
                    self._request_next(stage_number + 1, env, network)
        env_index = stage.env_index
        suffix_get = next_stage.suffix_get
        row_index = next_stage.row_index
        self.index_inserts += len(fresh)
        next_merged: list[tuple] = []
        if not next_stage.prev_key_positions:
            bucket = env_index.get(())
            if bucket is None:
                env_index[()] = list(fresh_list)
            else:
                bucket.extend(fresh_list)
            self.batch_distinct_keys += 1
            self.probe_lookups += 1
            rows = row_index.get(())
            if rows:
                suffixes = [suffix_get(row_env) for row_env in rows]
                next_merged = [
                    env + suffix for env in fresh_list for suffix in suffixes
                ]
        else:
            keys = cb.keys(next_stage.prev_key_positions)
            row_get = row_index.get
            # Suffixes gathered once per probed key, not once per output pair.
            suffix_memo: dict = {}
            append = next_merged.append
            for env, key in zip(fresh_list, keys):
                bucket = env_index.get(key)
                if bucket is None:
                    env_index[key] = [env]
                else:
                    bucket.append(env)
                rows = row_get(key)
                if rows:
                    suffixes = suffix_memo.get(key)
                    if suffixes is None:
                        suffix_memo[key] = suffixes = [
                            suffix_get(row_env) for row_env in rows
                        ]
                    for suffix in suffixes:
                        append(env + suffix)
            distinct = len(set(keys))
            self.batch_distinct_keys += distinct
            self.probe_lookups += distinct
        if next_merged:
            self._add_envs_c(stage_number + 1, next_merged, network)

    def _request_next(self, stage_number: int, env: tuple, network: "Scheduler") -> None:
        """Issue the tuple request env implies for the stage's subgoal."""
        stage = self.stages[stage_number - 1]
        if not stage.d_var_sources:
            return  # the subgoal is served by its relation request alone
        binding = tuple(
            payload if kind == "const" else env[payload]  # type: ignore[index]
            for kind, payload in stage.d_var_sources
        )
        self.send_tuple_request(self.child_ids[stage.subgoal_index], binding, network)

    # ------------------------------------------------------------------
    def _emit_heads(self, envs: Sequence[tuple], network: "Scheduler") -> None:
        """Project final environments to head rows and send the fresh ones.

        Duplicate deletion is at the node level (each consumer gets every
        head row exactly once), so the whole batch ships as one
        :class:`TupleSet` per consumer when set emission is on.
        """
        fresh: list[tuple] = []
        for env in envs:
            row = tuple(
                payload if kind == "const" else env[payload]  # type: ignore[index]
                for kind, payload in self.head_out_plan
            )
            if row in self.sent_rows:
                continue
            self.sent_rows.add(row)
            if self.record_provenance:
                self._head_env.setdefault(row, env if self.stages else None)
            fresh.append(row)
        if not fresh:
            return
        if self.emit_tuple_sets and len(fresh) > 1:
            rows = frozenset(fresh)
            for stream in self.consumers.values():
                network.send(TupleSet(self.node_id, stream.consumer_id, rows))
        else:
            for stream in self.consumers.values():
                for row in fresh:
                    network.send(TupleMessage(self.node_id, stream.consumer_id, row))

    def _emit_heads_c(self, envs, network: "Scheduler") -> None:
        """Columnar head emission: column-gather projection, whole-set dedup."""
        envs_list = envs if isinstance(envs, list) else list(envs)
        if self._head_positions is not None:
            projected = set(ColumnBatch(envs_list).project(self._head_positions))
        elif any(kind == "env" for kind, _ in self.head_out_plan):
            # Constant head slots (a bound head argument substituted at graph
            # build): splice constant streams between the gathered columns —
            # zip over itertools.repeat keeps the whole build at C level.
            streams = [
                itertools.repeat(payload)
                if kind == "const"
                else map(operator.itemgetter(payload), envs_list)
                for kind, payload in self.head_out_plan
            ]
            projected = set(zip(*streams))
        elif envs_list:
            # Fully-constant (or empty) head: a single row.
            projected = {tuple(payload for _, payload in self.head_out_plan)}
        else:
            projected = set()
        fresh = projected - self.sent_rows
        if not fresh:
            return
        self.sent_rows |= fresh
        if self.emit_tuple_sets and len(fresh) > 1:
            rows = frozenset(fresh)
            for stream in self.consumers.values():
                network.send(TupleSet(self.node_id, stream.consumer_id, rows))
        else:
            for stream in self.consumers.values():
                for row in fresh:
                    network.send(TupleMessage(self.node_id, stream.consumer_id, row))

    def derivation_children(
        self, head_row: tuple
    ) -> Optional[list[tuple[int, tuple]]]:
        """Provenance: the child rows behind a head row, in body order.

        Returns ``None`` when no derivation was recorded (provenance off or
        foreign row); an empty list for bodiless rules.
        """
        if head_row not in self._head_env:
            return None
        env = self._head_env[head_row]
        if env is None:
            return []
        out: list[tuple[int, tuple]] = []
        for j in range(len(self.stages), 0, -1):
            prev_env, sub_env = self._env_parent[(j, env)]
            stage = self.stages[j - 1]
            out.append((stage.subgoal_index, stage.row_source[sub_env]))
            env = prev_env
        out.sort(key=lambda pair: pair[0])
        return out


class DriverProcess(NodeProcess):
    """The environment: poses the query and collects the answer stream."""

    def __init__(self, root_id: int, adornment: tuple[str, ...]) -> None:
        super().__init__(DRIVER_ID)
        self.root_id = root_id
        self.adornment = adornment
        self.answers: set[tuple] = set()
        self.completed = False
        self.on_complete: Optional[Callable[[], None]] = None  # runtime hook
        self.on_answer: Optional[Callable[[tuple], None]] = None  # streaming hook

    def start(self, network: "Scheduler") -> None:
        """Send the opening relation request to the top-level goal node."""
        feeder = self.feeders[self.root_id]
        feeder.next_seq()
        network.send(RelationRequest(DRIVER_ID, self.root_id, self.adornment))

    def on_relation_request(self, message: RelationRequest, network: "Scheduler") -> None:  # pragma: no cover
        raise AssertionError("the driver receives no requests")

    def on_tuple_request(self, message: TupleRequest, network: "Scheduler") -> None:  # pragma: no cover
        raise AssertionError("the driver receives no requests")

    def on_tuple(self, message: TupleMessage, network: "Scheduler") -> None:
        if message.row not in self.answers:
            self.answers.add(message.row)
            if self.on_answer is not None:
                self.on_answer(message.row)

    def on_tuple_set(self, message: TupleSet, network: "Scheduler") -> None:
        """Collect a packaged answer set (streaming hook still fires per row)."""
        if self.columnar and self.on_answer is None:
            self.answers |= message.rows
            return
        for row in message.rows:
            if row not in self.answers:
                self.answers.add(row)
                if self.on_answer is not None:
                    self.on_answer(row)

    def on_end(self, message: EndMessage, network: "Scheduler") -> None:
        super().on_end(message, network)
        self.completed = True
        if self.on_complete is not None:
            self.on_complete()

    def maybe_send_ends(self, network: "Scheduler") -> None:
        """The driver has no customers."""
