"""The message-passing network: messages, processes, scheduler, protocol."""

from .engine import MessagePassingEngine, QueryResult, evaluate
from .messages import (
    EndConfirmed,
    EndMessage,
    EndNegative,
    EndRequest,
    Message,
    RelationRequest,
    TupleMessage,
    TupleRequest,
)
from .nodes import (
    DRIVER_ID,
    CyclicNodeProcess,
    DriverProcess,
    EdbLeafProcess,
    GoalNodeProcess,
    NodeProcess,
    RuleNodeProcess,
)
from .scheduler import MessageBudgetExceeded, Scheduler, SchedulerStats
from .termination import TerminationProtocol

__all__ = [
    "evaluate", "MessagePassingEngine", "QueryResult",
    "Message", "RelationRequest", "TupleRequest", "TupleMessage", "EndMessage",
    "EndRequest", "EndNegative", "EndConfirmed",
    "NodeProcess", "GoalNodeProcess", "CyclicNodeProcess", "EdbLeafProcess",
    "RuleNodeProcess", "DriverProcess", "DRIVER_ID",
    "Scheduler", "SchedulerStats", "MessageBudgetExceeded",
    "TerminationProtocol",
]
