"""Answer provenance: reconstruct one derivation tree per answer tuple.

When the engine runs with ``provenance=True``, each process records the
*first* way every tuple was derived locally:

* a rule node remembers, per emitted head row, the final join environment
  and, per stage, which child row extended which prefix environment;
* a goal node remembers which rule child first delivered each answer row;
* EDB rows are facts; cyclic-node rows come from the ancestor.

Because only first derivations are kept, the recorded graph is well-founded
(a tuple's first derivation can only use tuples that existed strictly
earlier), so walking it always terminates even though the *relation* is
recursive.  :func:`explain` assembles the per-node records into a
:class:`Derivation` tree — a resolution proof of the answer from the EDB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..core.adornment import AdornedAtom, EXISTENTIAL
from ..core.terms import Constant

if TYPE_CHECKING:
    from .engine import MessagePassingEngine

__all__ = ["Derivation", "ProvenanceError", "explain"]


class ProvenanceError(RuntimeError):
    """Raised when a derivation is requested but was not recorded."""


@dataclass(frozen=True)
class Derivation:
    """One node of a proof tree.

    ``kind`` is ``"fact"`` (an EDB tuple), ``"rule"`` (a rule application
    whose children prove the subgoals, in body order), or ``"goal"`` (a
    goal-node step — the union/selection layer; one child).
    """

    atom: str
    kind: str
    rule: Optional[str] = None
    children: tuple["Derivation", ...] = ()

    def render(self, indent: int = 0) -> str:
        """An indented proof-tree rendering."""
        pad = "  " * indent
        if self.kind == "fact":
            line = f"{pad}{self.atom}   [EDB fact]"
        elif self.kind == "rule":
            line = f"{pad}{self.atom}   [by {self.rule}]"
        else:
            line = f"{pad}{self.atom}"
        parts = [line]
        for child in self.children:
            parts.append(child.render(indent + 1))
        return "\n".join(parts)

    def facts(self) -> list[str]:
        """The EDB leaves supporting this derivation (left-to-right)."""
        if self.kind == "fact":
            return [self.atom]
        result: list[str] = []
        for child in self.children:
            result.extend(child.facts())
        return result

    def depth(self) -> int:
        """Height of the proof tree (a fact has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)


def _display_atom(adorned: AdornedAtom, row: tuple) -> str:
    """Render an atom instance from a non-"e"-positions row.

    Existential positions (whose values were never transmitted) display as
    ``_``.
    """
    values = iter(row)
    parts = []
    for letter, term in zip(adorned.adornment, adorned.atom.args):
        if letter == EXISTENTIAL:
            parts.append("_")
        else:
            parts.append(str(next(values)))
    return f"{adorned.predicate}({', '.join(parts)})"


def explain(engine: "MessagePassingEngine", row: tuple, max_depth: int = 10_000) -> Derivation:
    """Build the proof tree for one answer ``row`` of the query.

    The engine must have been constructed with ``provenance=True`` and run
    to completion; ``row`` must be one of the returned answers.
    """
    from .nodes import CyclicNodeProcess, EdbLeafProcess, GoalNodeProcess, RuleNodeProcess

    graph = engine.graph

    def goal_step(node_id: int, value_row: tuple, depth: int) -> Derivation:
        if depth > max_depth:
            raise ProvenanceError("derivation too deep (raise max_depth)")
        process = engine.processes[node_id]
        if isinstance(process, EdbLeafProcess):
            return Derivation(_display_atom(process.adorned, value_row), "fact")
        if isinstance(process, CyclicNodeProcess):
            # The selection layer: delegate to the ancestor's derivation.
            return goal_step(process.ancestor_id, value_row, depth + 1)
        assert isinstance(process, GoalNodeProcess)
        source = process.row_sources.get(value_row)
        if source is None:
            raise ProvenanceError(
                f"no derivation recorded for {value_row} at {graph.node_label(node_id)}"
            )
        return rule_step(source, value_row, depth + 1)

    def rule_step(node_id: int, head_row: tuple, depth: int) -> Derivation:
        if depth > max_depth:
            raise ProvenanceError("derivation too deep (raise max_depth)")
        process = engine.processes[node_id]
        assert isinstance(process, RuleNodeProcess)
        child_rows = process.derivation_children(head_row)
        if child_rows is None:
            raise ProvenanceError(
                f"no derivation recorded for {head_row} at {graph.node_label(node_id)}"
            )
        children = []
        for subgoal_index, child_row in child_rows:
            child_id = process.child_ids[subgoal_index]
            children.append(goal_step(child_id, child_row, depth + 1))
        atom_text = _display_atom(process.parent_shape.adorned, head_row)
        return Derivation(atom_text, "rule", rule=str(process.rule), children=tuple(children))

    root = graph.goal_nodes[graph.root]
    if row not in engine.driver.answers:
        raise ProvenanceError(f"{row} is not an answer of the query")
    return goal_step(graph.root, row, 0)
