"""Message tracing: capture and pretty-print the network's conversation.

Useful for the examples and for debugging protocol behavior; the trace shows
request/answer flows exactly as Section 3 narrates them (requests against the
arc orientation, answers along it, end-detection waves within strong
components).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.rulegoal import RuleGoalGraph
from .messages import (
    EndConfirmed,
    EndMessage,
    EndNegative,
    EndRequest,
    Message,
    PackagedTupleRequest,
    RelationRequest,
    TupleMessage,
    TupleRequest,
    TupleSet,
)
from .nodes import DRIVER_ID

__all__ = ["MessageTrace"]


@dataclass
class MessageTrace:
    """Collects delivered messages (optionally capped) for later display."""

    limit: Optional[int] = None
    include_protocol: bool = True
    messages: list[Message] = field(default_factory=list)
    dropped: int = 0

    def __call__(self, message: Message) -> None:
        """Scheduler trace hook."""
        if not self.include_protocol and isinstance(
            message, (EndRequest, EndNegative, EndConfirmed)
        ):
            return
        if self.limit is not None and len(self.messages) >= self.limit:
            self.dropped += 1
            return
        self.messages.append(message)

    # ------------------------------------------------------------------
    def _describe(self, message: Message, graph: Optional[RuleGoalGraph]) -> str:
        def name(node_id: int) -> str:
            if node_id == DRIVER_ID:
                return "driver"
            if graph is not None:
                return f"{node_id}:{graph.node_label(node_id)}"
            return str(node_id)

        src, dst = name(message.sender), name(message.receiver)
        if isinstance(message, RelationRequest):
            return f"{dst} <== relation request [{''.join(message.adornment)}] from {src}"
        if isinstance(message, TupleRequest):
            return f"{dst} <== tuple request {message.binding} (#{message.seq}) from {src}"
        if isinstance(message, PackagedTupleRequest):
            return (
                f"{dst} <== packaged request ({len(message.bindings)} bindings, "
                f"#{message.seq}) from {src}"
            )
        if isinstance(message, TupleMessage):
            return f"{src} ==> tuple {message.row} to {dst}"
        if isinstance(message, TupleSet):
            return f"{src} ==> tuple set ({len(message.rows)} rows) to {dst}"
        if isinstance(message, EndMessage):
            return f"{src} ==> end (upto #{message.upto}) to {dst}"
        if isinstance(message, EndRequest):
            return f"{src} ~~> end request (round {message.round_id}) to {dst}"
        if isinstance(message, EndNegative):
            return f"{src} ~~> end NEGATIVE (round {message.round_id}) to {dst}"
        if isinstance(message, EndConfirmed):
            return f"{src} ~~> end CONFIRMED (round {message.round_id}) to {dst}"
        return f"{src} -> {dst}: {message}"

    def render(self, graph: Optional[RuleGoalGraph] = None) -> str:
        """The trace as numbered lines (node labels resolved via ``graph``)."""
        lines = [
            f"{i:5d}  {self._describe(m, graph)}" for i, m in enumerate(self.messages, 1)
        ]
        if self.dropped:
            lines.append(f"   ...  ({self.dropped} further messages not recorded)")
        return "\n".join(lines)

    def activity_timeline(
        self,
        graph: Optional[RuleGoalGraph] = None,
        buckets: int = 60,
    ) -> str:
        """Per-node activity over (delivery-order) time, as text sparklines.

        Each row is one receiver; the trace is split into ``buckets`` equal
        slices and each cell shows how busy the node was in that slice
        (`` .:*#`` from idle to hot).  Protocol messages are drawn separately
        on the ``[protocol]`` row, making the end-request waves visible as
        bursts after the computation rows go quiet.
        """
        if not self.messages:
            return "(no messages recorded)"
        buckets = max(1, min(buckets, len(self.messages)))
        per_node: dict[int, list[int]] = {}
        protocol_row = [0] * buckets
        for position, message in enumerate(self.messages):
            bucket = position * buckets // len(self.messages)
            if isinstance(message, (EndRequest, EndNegative, EndConfirmed)):
                protocol_row[bucket] += 1
                continue
            row = per_node.setdefault(message.receiver, [0] * buckets)
            # Weight packaged answers by their rows so the sparkline shows
            # real activity, not just delivery counts.
            row[bucket] += len(message.rows) if isinstance(message, TupleSet) else 1

        peak = max(
            [max(row) for row in per_node.values()] + [max(protocol_row), 1]
        )
        glyphs = " .:*#"

        def spark(row: list[int]) -> str:
            out = []
            for count in row:
                level = 0 if count == 0 else 1 + (len(glyphs) - 2) * (count - 1) // peak
                out.append(glyphs[min(level, len(glyphs) - 1)])
            return "".join(out)

        def name(node_id: int) -> str:
            if node_id == DRIVER_ID:
                return "driver"
            if graph is not None:
                return graph.node_label(node_id)
            return f"node {node_id}"

        labels = {node_id: name(node_id) for node_id in per_node}
        width = max([len(l) for l in labels.values()] + [len("[protocol]")])
        lines = []
        for node_id in sorted(per_node):
            lines.append(f"{labels[node_id].ljust(width)} |{spark(per_node[node_id])}|")
        lines.append(f"{'[protocol]'.ljust(width)} |{spark(protocol_row)}|")
        lines.append(f"{''.ljust(width)}  time (message {1} .. {len(self.messages)})")
        return "\n".join(lines)
