"""Hypergraphs, Graham (GYO) reduction, α-acyclicity, and qual trees.

Section 4 defines the *monotone flow property* of a rule through the
α-acyclicity of its evaluation hypergraph, tested by the **Graham reduction
procedure**, which "both tests for acyclicity and exhibits a qual tree for
the hypergraph when it is acyclic".  The two reductions, applied as long as
possible:

1. if a vertex is currently in only one hyperedge, delete it;
2. if a hyperedge ``h1`` is a subset of another hyperedge ``h2``, add an
   edge between ``h1`` and ``h2`` to the qual tree and delete ``h1`` from
   the hypergraph.

The hypergraph is acyclic iff the procedure reduces it to one empty edge.

The **qual tree property**: for any vertex and any two hyperedges containing
it, every hyperedge on the tree path between them also contains it — this is
the classical "connected subtree" / running-intersection property of join
trees for acyclic schemes [BFM*81, Yan81].
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Optional, Sequence

__all__ = ["Hypergraph", "QualTree", "GyoResult"]

#: Hyperedge labels and vertices may be any hashable value (we use strings
#: and :class:`~repro.core.terms.Variable` objects respectively).
Label = Hashable
Vertex = Hashable


class Hypergraph:
    """A labelled hypergraph: each label names a set of vertices.

    Duplicate labels are rejected; duplicate vertex sets under different
    labels are allowed (two subgoals may mention the same variables).
    """

    def __init__(self, edges: Mapping[Label, Iterable[Vertex]]) -> None:
        self.edges: dict[Label, frozenset[Vertex]] = {
            label: frozenset(vertices) for label, vertices in edges.items()
        }

    # ------------------------------------------------------------------
    def vertices(self) -> set[Vertex]:
        """The union of all hyperedges."""
        result: set[Vertex] = set()
        for edge in self.edges.values():
            result |= edge
        return result

    def __len__(self) -> int:
        return len(self.edges)

    def __repr__(self) -> str:
        parts = ", ".join(f"{label}:{sorted(map(str, vs))}" for label, vs in sorted(self.edges.items(), key=lambda p: str(p[0])))
        return f"Hypergraph({parts})"

    # ------------------------------------------------------------------
    def gyo_reduction(self) -> "GyoResult":
        """Run the Graham reduction; report acyclicity and the qual tree edges.

        The reduction is deterministic: rule 1 runs exhaustively, then the
        lexicographically smallest applicable rule-2 pair fires, and so on.
        """
        current: dict[Label, set[Vertex]] = {
            label: set(vs) for label, vs in self.edges.items()
        }
        tree_edges: list[tuple[Label, Label]] = []
        absorbed: dict[Label, Label] = {}

        def apply_rule_one() -> None:
            counts: dict[Vertex, int] = {}
            for vs in current.values():
                for v in vs:
                    counts[v] = counts.get(v, 0) + 1
            lonely = {v for v, n in counts.items() if n == 1}
            if lonely:
                for vs in current.values():
                    vs -= lonely

        changed = True
        while changed and len(current) > 1:
            changed = False
            apply_rule_one()
            labels = sorted(current, key=str)
            found: Optional[tuple[Label, Label]] = None
            for small in labels:
                for big in labels:
                    if small == big:
                        continue
                    if current[small] <= current[big]:
                        found = (small, big)
                        break
                if found:
                    break
            if found:
                small, big = found
                tree_edges.append((small, big))
                absorbed[small] = big
                del current[small]
                changed = True
        apply_rule_one()

        acyclic = len(current) == 1 and not next(iter(current.values()))
        return GyoResult(
            acyclic=acyclic,
            tree_edges=tuple(tree_edges),
            residual={label: frozenset(vs) for label, vs in current.items()},
            original=self,
        )

    def is_acyclic(self) -> bool:
        """α-acyclicity via GYO reduction."""
        return self.gyo_reduction().acyclic


@dataclass(frozen=True)
class GyoResult:
    """Outcome of a Graham reduction.

    ``residual`` is whatever could not be reduced: a single empty edge when
    acyclic, otherwise the cyclic *core* (e.g. the Y/V/W triangle of rule R3
    in Fig 4).
    """

    acyclic: bool
    tree_edges: tuple[tuple[Label, Label], ...]
    residual: dict[Label, frozenset[Vertex]]
    original: Hypergraph

    def qual_tree(self, root: Label) -> "QualTree":
        """Assemble the qual tree, rooted at ``root`` (the rule head).

        Raises ``ValueError`` if the hypergraph was cyclic (cyclic
        hypergraphs "do not have qual trees, but have qual graphs containing
        cycles").
        """
        if not self.acyclic:
            raise ValueError("cyclic hypergraph has no qual tree")
        return QualTree.from_edges(self.original.edges, self.tree_edges, root)

    def cyclic_core_vertices(self) -> set[Vertex]:
        """Vertices of the irreducible residual (empty when acyclic)."""
        result: set[Vertex] = set()
        for vs in self.residual.values():
            result |= vs
        return result


class QualTree:
    """An undirected tree over hyperedges, rooted at the rule head.

    "The important qual tree property ... for any variable in the rule, and
    any two hyperedges containing that variable, the path between those
    hyperedges in the qual tree only involves hyperedges that also contain
    that variable."
    """

    def __init__(
        self,
        nodes: Mapping[Label, frozenset[Vertex]],
        adjacency: Mapping[Label, set[Label]],
        root: Label,
    ) -> None:
        self.nodes: dict[Label, frozenset[Vertex]] = dict(nodes)
        self.adjacency: dict[Label, set[Label]] = {
            label: set(neighbors) for label, neighbors in adjacency.items()
        }
        for label in self.nodes:
            self.adjacency.setdefault(label, set())
        if root not in self.nodes:
            raise ValueError(f"root {root!r} is not a node")
        self.root = root

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        nodes: Mapping[Label, frozenset[Vertex]],
        tree_edges: Sequence[tuple[Label, Label]],
        root: Label,
    ) -> "QualTree":
        """Build the tree from GYO rule-2 edges.

        GYO may terminate with the final surviving edge unattached; every
        (small, big) pair becomes an undirected edge, which yields a tree on
        all nodes because each label is absorbed exactly once.
        """
        adjacency: dict[Label, set[Label]] = {label: set() for label in nodes}
        for small, big in tree_edges:
            adjacency[small].add(big)
            adjacency[big].add(small)
        return cls(nodes, adjacency, root)

    # ------------------------------------------------------------------
    def is_tree(self) -> bool:
        """Connected and acyclic (|E| = |V| - 1 with full reachability)."""
        if not self.nodes:
            return False
        edge_count = sum(len(n) for n in self.adjacency.values()) // 2
        if edge_count != len(self.nodes) - 1:
            return False
        seen = {self.root}
        frontier = deque([self.root])
        while frontier:
            node = frontier.popleft()
            for neighbor in self.adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self.nodes)

    def parent_map(self) -> dict[Label, Label]:
        """Parent of each non-root node when edges are directed from the root."""
        parents: dict[Label, Label] = {}
        seen = {self.root}
        frontier = deque([self.root])
        while frontier:
            node = frontier.popleft()
            for neighbor in sorted(self.adjacency[node], key=str):
                if neighbor not in seen:
                    seen.add(neighbor)
                    parents[neighbor] = node
                    frontier.append(neighbor)
        return parents

    def children_map(self) -> dict[Label, list[Label]]:
        """Children of each node when edges are directed away from the root."""
        children: dict[Label, list[Label]] = {label: [] for label in self.nodes}
        for child, parent in self.parent_map().items():
            children[parent].append(child)
        for kids in children.values():
            kids.sort(key=str)
        return children

    def path(self, a: Label, b: Label) -> list[Label]:
        """The unique tree path from ``a`` to ``b`` (inclusive)."""
        if a not in self.nodes or b not in self.nodes:
            raise KeyError(f"unknown node in path({a!r}, {b!r})")
        previous: dict[Label, Label] = {a: a}
        frontier = deque([a])
        while frontier:
            node = frontier.popleft()
            if node == b:
                break
            for neighbor in self.adjacency[node]:
                if neighbor not in previous:
                    previous[neighbor] = node
                    frontier.append(neighbor)
        if b not in previous:
            raise ValueError(f"{a!r} and {b!r} are not connected")
        result = [b]
        while result[-1] != a:
            result.append(previous[result[-1]])
        result.reverse()
        return result

    def satisfies_qual_tree_property(self) -> bool:
        """Check the running-intersection (qual tree) property exhaustively."""
        labels = sorted(self.nodes, key=str)
        vertices: set[Vertex] = set()
        for vs in self.nodes.values():
            vertices |= vs
        for vertex in vertices:
            holders = [l for l in labels if vertex in self.nodes[l]]
            for i, a in enumerate(holders):
                for b in holders[i + 1 :]:
                    if any(vertex not in self.nodes[n] for n in self.path(a, b)):
                        return False
        return True

    def leaves(self) -> list[Label]:
        """Nodes of degree one, excluding the root (sorted for determinism)."""
        return sorted(
            (l for l in self.nodes if len(self.adjacency[l]) == 1 and l != self.root),
            key=str,
        )

    def __repr__(self) -> str:
        parents = self.parent_map()
        parts = ", ".join(f"{child}->{parent}" for child, parent in sorted(parents.items(), key=lambda p: str(p[0])))
        return f"QualTree(root={self.root!r}; {parts})"
