"""Programs: EDB facts + IDB rules + query, with the paper's well-formedness.

Section 1 structures the input as three parts:

* the **EDB** — ground atomic formulas (facts), viewed as a relational
  database;
* the **PIDB** (permanent intentional database) — Horn rules containing no
  positive occurrence of an EDB predicate and no occurrence of the
  distinguished predicate ``goal``;
* the **query** — Horn rules whose head predicate is ``goal``, which appears
  negatively nowhere.

:class:`Program` bundles these, validates the constraints, and exposes the
predicate dependency graph used to classify recursion (linear vs. nonlinear,
Section 1.1/3) and to drive the baselines.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .atoms import Atom
from .rules import GOAL_PREDICATE, Rule

__all__ = ["Program", "ProgramError", "strongly_connected_components"]


class ProgramError(ValueError):
    """Raised when a program violates the paper's well-formedness conditions."""


def strongly_connected_components(graph: Mapping[str, set[str]]) -> list[set[str]]:
    """Strongly connected components of a digraph, in reverse topological order.

    Iterative Tarjan's algorithm (no recursion limit issues on deep chains of
    predicates).  ``graph`` maps each node to its successor set; nodes that
    appear only as successors are included automatically.
    """
    index_counter = [0]
    stack: list[str] = []
    lowlink: dict[str, int] = {}
    index: dict[str, int] = {}
    on_stack: set[str] = set()
    components: list[set[str]] = []

    all_nodes: set[str] = set(graph)
    for succs in graph.values():
        all_nodes |= succs

    def successors(node: str) -> Iterable[str]:
        return sorted(graph.get(node, ()))

    for root in sorted(all_nodes):
        if root in index:
            continue
        work: list[tuple[str, Iterable[str]]] = [(root, iter(successors(root)))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succ_iter = work[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in index:
                    index[succ] = lowlink[succ] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


@dataclass
class Program:
    """An EDB + IDB + query bundle.

    Parameters
    ----------
    rules:
        The IDB — union of the PIDB and the query rules (rules whose head
        predicate is :data:`~repro.core.rules.GOAL_PREDICATE`).
    facts:
        The EDB — ground atoms.
    edb_predicates:
        Optional explicit declaration of EDB predicate names.  When omitted it
        is inferred as the set of predicates of ``facts`` plus any body
        predicate never defined by a rule.
    """

    rules: tuple[Rule, ...]
    facts: tuple[Atom, ...] = ()
    edb_predicates: frozenset[str] = frozenset()

    def __init__(
        self,
        rules: Sequence[Rule],
        facts: Sequence[Atom] = (),
        edb_predicates: Iterable[str] = (),
        validate: bool = True,
    ) -> None:
        self.rules = tuple(rules)
        self.facts = tuple(facts)
        declared = set(edb_predicates)
        inferred = {f.predicate for f in self.facts}
        defined = {r.head.predicate for r in self.rules}
        used = set()
        for rule in self.rules:
            used |= rule.body_predicates()
        inferred |= {p for p in used if p not in defined}
        self.edb_predicates = frozenset(declared | inferred)
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # Well-formedness (Section 1)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the paper's constraints; raise :class:`ProgramError` if broken."""
        for fact in self.facts:
            if not fact.is_ground():
                raise ProgramError(f"EDB fact {fact} is not ground")
            if fact.predicate == GOAL_PREDICATE:
                raise ProgramError("the distinguished predicate 'goal' may not appear in the EDB")
        for rule in self.rules:
            if rule.head.predicate in self.edb_predicates and self.facts:
                # "no positive occurrence of a predicate that appears in the EDB"
                if rule.head.predicate in {f.predicate for f in self.facts}:
                    raise ProgramError(
                        f"rule head {rule.head.predicate} is an EDB predicate: {rule}"
                    )
            if not rule.is_safe():
                raise ProgramError(f"unsafe rule (head variable not in body): {rule}")
            for sub in rule.body:
                if sub.predicate == GOAL_PREDICATE:
                    raise ProgramError(f"'goal' appears negatively in {rule}")

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def idb_predicates(self) -> set[str]:
        """Predicates defined by at least one rule."""
        return {r.head.predicate for r in self.rules}

    @property
    def query_rules(self) -> list[Rule]:
        """The rules whose head predicate is ``goal``."""
        return [r for r in self.rules if r.head.predicate == GOAL_PREDICATE]

    @property
    def pidb_rules(self) -> list[Rule]:
        """The permanent IDB: every rule that is not a query rule."""
        return [r for r in self.rules if r.head.predicate != GOAL_PREDICATE]

    def rules_for(self, predicate: str) -> list[Rule]:
        """All rules whose head predicate is ``predicate``."""
        return [r for r in self.rules if r.head.predicate == predicate]

    def is_edb(self, predicate: str) -> bool:
        """True iff ``predicate`` belongs to the extensional database."""
        return predicate in self.edb_predicates and predicate not in self.idb_predicates

    def constants(self) -> set[object]:
        """All constant values appearing in the EDB and IDB.

        This is the Herbrand universe of the function-free system; the brute
        force baseline (Section 1.1) instantiates rules over it.
        """
        values: set[object] = set()
        for fact in self.facts:
            values |= set(fact.ground_tuple())
        for rule in self.rules:
            for atom_ in (rule.head, *rule.body):
                values |= {c.value for c in atom_.constants()}
        return values

    # ------------------------------------------------------------------
    # Predicate dependency analysis
    # ------------------------------------------------------------------
    def dependency_graph(self) -> dict[str, set[str]]:
        """Digraph with an arc head-predicate -> body-predicate per rule."""
        graph: dict[str, set[str]] = defaultdict(set)
        for rule in self.rules:
            graph[rule.head.predicate] |= rule.body_predicates()
        return dict(graph)

    def predicate_sccs(self) -> list[set[str]]:
        """Strong components of the dependency graph, reverse-topological."""
        return strongly_connected_components(self.dependency_graph())

    def recursive_predicates(self) -> set[str]:
        """Predicates involved in a dependency cycle (including self-loops)."""
        graph = self.dependency_graph()
        recursive: set[str] = set()
        for component in self.predicate_sccs():
            if len(component) > 1:
                recursive |= component
            else:
                (only,) = component
                if only in graph.get(only, set()):
                    recursive.add(only)
        return recursive

    def is_recursive(self) -> bool:
        """True iff any predicate is recursive."""
        return bool(self.recursive_predicates())

    def is_linear_rule(self, rule: Rule) -> bool:
        """Linear recursion test for one rule (Section 1.1, Henschen–Naqvi).

        A rule is *linear* when its head is recursively related to at most one
        subgoal: at most one body atom's predicate shares a strong component
        with the head's predicate.
        """
        components = {p: i for i, comp in enumerate(self.predicate_sccs()) for p in comp}
        head_comp = components.get(rule.head.predicate)
        recursive = self.recursive_predicates()
        if rule.head.predicate not in recursive:
            return True
        mutual = [s for s in rule.body if components.get(s.predicate) == head_comp]
        return len(mutual) <= 1

    def is_linear(self) -> bool:
        """True iff every rule is linear (the Henschen–Naqvi restriction)."""
        return all(self.is_linear_rule(r) for r in self.rules)

    def nonlinear_rules(self) -> list[Rule]:
        """Rules exhibiting nonlinear recursion (two or more mutual subgoals)."""
        return [r for r in self.rules if not self.is_linear_rule(r)]

    # ------------------------------------------------------------------
    def with_facts(self, facts: Sequence[Atom]) -> "Program":
        """A copy of this program with the EDB replaced by ``facts``."""
        return Program(self.rules, facts, self.edb_predicates)

    def __str__(self) -> str:
        lines = [str(r) for r in self.rules]
        lines += [f"{f}." for f in self.facts]
        return "\n".join(lines)
