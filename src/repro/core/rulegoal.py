"""Rule/goal graph construction — Section 2.

The graph is built top-down "much in the manner of Prolog and other top-down
systems", by depth-first expansion from a top-level goal node for ``goal``:

* an **EDB subgoal** remains a leaf (it is not processed against the actual
  EDB relation during graph construction);
* an IDB subgoal that is a **variant of one of its ancestors** — same
  predicate, same constants, same repeated-variable pattern, *and* matching
  argument classes (Definition 2.2) — is not expanded; a **cycle edge** is
  created from that ancestor to the variant subgoal;
* otherwise the subgoal is expanded with a **rule node** for every rule whose
  head unifies with it; the rule node holds a copy of the rule "that began
  with all new variables, then had the most general unifier applied", and new
  goal nodes are created for its subgoals, adorned via the chosen sideways
  information passing strategy.

Edges are oriented from child to parent — "the direction in which answers
flow"; a cycle edge is oriented from the ancestor to the variant descendant
(the descendant "performs a selection on the relation computed by the
ancestor").  Strong components of this digraph are where recursion lives;
their structure (Definition 2.1 feeders/customers, the unique leader, the
breadth-first spanning tree that coincides with the DFS tree) drives the
distributed termination protocol of Section 3.2.

Theorem 2.1 guarantees the construction terminates for any finite
function-free IDB, with graph size independent of the EDB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from .adornment import AdornedAtom, FREE, initial_goal_adornment
from .atoms import Atom
from .program import Program, strongly_connected_components
from .rules import GOAL_PREDICATE, Rule
from .sips import SipStrategy, adorn_body, all_free_sip, greedy_sip
from .terms import FreshVariables, Variable
from .unify import unify

__all__ = [
    "GoalNode",
    "RuleNode",
    "StrongComponentInfo",
    "RuleGoalGraph",
    "GraphSizeExceeded",
    "build_rule_goal_graph",
    "build_basic_rule_goal_graph",
    "rule_set_fingerprint",
    "query_variant_signature",
    "graph_cache_key",
]

#: A SIP factory maps (rule-copy, adorned-head) to a strategy.
SipFactory = Callable[[Rule, AdornedAtom], SipStrategy]


class GraphSizeExceeded(RuntimeError):
    """Raised when construction exceeds the safety node budget.

    Theorem 2.1 guarantees finiteness, but the bound is exponential in rule
    arity; the budget turns a pathological blow-up into a clear error.
    """


@dataclass
class GoalNode:
    """A goal (predicate-occurrence) node of the rule/goal graph."""

    id: int
    adorned: AdornedAtom
    kind: str  # "idb" | "edb" | "cyclic"
    parent: Optional[int]  # rule node id; None for the root
    subgoal_position: Optional[int]  # position within the parent rule's body
    depth: int
    ancestors: tuple[int, ...]  # goal-node ids on the DFS path, root first
    rule_children: list[int] = field(default_factory=list)
    cycle_source: Optional[int] = None  # ancestor goal id, for kind == "cyclic"
    cycle_targets: list[int] = field(default_factory=list)

    @property
    def predicate(self) -> str:
        """The goal's predicate symbol."""
        return self.adorned.predicate

    def label(self) -> str:
        """Human-readable label, e.g. ``p(V^d, Z^f)``."""
        return str(self.adorned)


@dataclass
class RuleNode:
    """A rule node: one renamed+unified rule copy under a goal node."""

    id: int
    rule: Rule
    head: AdornedAtom
    sip: SipStrategy
    adorned_body: tuple[AdornedAtom, ...]
    parent: int  # goal node id
    depth: int
    rule_index: int  # index of the source rule in the program
    subgoal_children: list[int] = field(default_factory=list)

    def label(self) -> str:
        """Human-readable label in the paper's Fig-1 style."""
        body = ", ".join(str(a) for a in self.adorned_body)
        return f"{self.head} <- {body}"


@dataclass(frozen=True)
class StrongComponentInfo:
    """One strong component plus its termination-protocol scaffolding.

    ``leader`` is the unique node whose DFS parent lies outside the component
    (footnote 3: the absence of cross and forward edges guarantees a unique
    leader and makes the BFST coincide with the DFS spanning tree).
    ``bfst_children`` maps each member to its spanning-tree children inside
    the component.
    """

    members: frozenset[int]
    leader: int
    bfst_children: dict[int, tuple[int, ...]]
    bfst_parent: dict[int, int]


class RuleGoalGraph:
    """The constructed rule/goal graph plus derived structure."""

    def __init__(
        self, program: Program, sip_factory: SipFactory, coalesced: bool = False
    ) -> None:
        self.program = program
        self.sip_factory = sip_factory
        self.coalesced = coalesced
        self.goal_nodes: dict[int, GoalNode] = {}
        self.rule_nodes: dict[int, RuleNode] = {}
        self.root: int = 0
        self._next_id = 0
        self._components: Optional[list[StrongComponentInfo]] = None

    # ------------------------------------------------------------------
    # Node bookkeeping
    # ------------------------------------------------------------------
    def new_id(self) -> int:
        """Allocate the next node id (goal and rule nodes share one space)."""
        nid = self._next_id
        self._next_id += 1
        return nid

    def is_goal(self, node_id: int) -> bool:
        """True iff ``node_id`` names a goal node."""
        return node_id in self.goal_nodes

    def node_label(self, node_id: int) -> str:
        """Readable label for any node id."""
        if node_id in self.goal_nodes:
            return self.goal_nodes[node_id].label()
        return self.rule_nodes[node_id].label()

    def node_depth(self, node_id: int) -> int:
        """DFS depth of any node."""
        if node_id in self.goal_nodes:
            return self.goal_nodes[node_id].depth
        return self.rule_nodes[node_id].depth

    def dfs_parent(self, node_id: int) -> Optional[int]:
        """The DFS-tree parent of a node (None for the root)."""
        if node_id in self.goal_nodes:
            return self.goal_nodes[node_id].parent
        return self.rule_nodes[node_id].parent

    def size(self) -> int:
        """Total number of nodes."""
        return len(self.goal_nodes) + len(self.rule_nodes)

    # ------------------------------------------------------------------
    # Answer-flow digraph (edges in the direction answers travel)
    # ------------------------------------------------------------------
    def answer_flow_edges(self) -> list[tuple[int, int]]:
        """Arcs of the rule/goal graph, oriented child -> parent plus cycles.

        Tree edges carry answers from child to parent; cycle edges carry
        answers from the ancestor goal node to its cyclic variant descendant.
        """
        edges: list[tuple[int, int]] = []
        for rule_node in self.rule_nodes.values():
            edges.append((rule_node.id, rule_node.parent))
            for child in rule_node.subgoal_children:
                edges.append((child, rule_node.id))
        for goal in self.goal_nodes.values():
            if goal.cycle_source is not None:
                edges.append((goal.cycle_source, goal.id))
        return edges

    def predecessors(self, node_id: int) -> list[int]:
        """Nodes whose answers flow into ``node_id`` (Definition 2.1)."""
        return sorted({a for a, b in self.answer_flow_edges() if b == node_id})

    def successors(self, node_id: int) -> list[int]:
        """Nodes that receive answers from ``node_id`` (Definition 2.1)."""
        return sorted({b for a, b in self.answer_flow_edges() if a == node_id})

    # ------------------------------------------------------------------
    # Strong components, feeders/customers, BFST (Section 3.2 scaffolding)
    # ------------------------------------------------------------------
    def strong_components(self) -> list[StrongComponentInfo]:
        """All strong components with ≥2 nodes, with leader and BFST."""
        if self._components is not None:
            return self._components
        graph: dict[str, set[str]] = {}
        for a, b in self.answer_flow_edges():
            graph.setdefault(str(a), set()).add(str(b))
        raw = strongly_connected_components(graph)
        components: list[StrongComponentInfo] = []
        for component in raw:
            members = frozenset(int(m) for m in component)
            if len(members) < 2:
                continue
            components.append(self._component_info(members))
        components.sort(key=lambda c: min(c.members))
        self._components = components
        return components

    def _component_info(self, members: frozenset[int]) -> StrongComponentInfo:
        leaders = [m for m in members if self.dfs_parent(m) not in members]
        if len(leaders) == 1:
            leader = leaders[0]
        else:
            # Coalesced graphs have cross/forward edges, so a component can
            # be entered at several nodes (footnote 4); pick a deterministic
            # leader and let ComponentDone carry ends to the other members.
            if not self.coalesced:
                raise AssertionError(
                    f"strong component {sorted(members)} has {len(leaders)} "
                    "leaders; the DFS construction should guarantee exactly one"
                )
            leader = min(leaders) if leaders else min(members)
        # Spanning tree: BFS from the leader along request-flow (reversed
        # answer-flow) edges inside the component.  Without coalescing this
        # coincides with the DFS tree (footnote 3).
        request_adjacency: dict[int, list[int]] = {m: [] for m in members}
        for a, b in self.answer_flow_edges():
            if a in members and b in members:
                request_adjacency[b].append(a)
        children: dict[int, tuple[int, ...]] = {}
        parent: dict[int, int] = {}
        seen = {leader}
        frontier = [leader]
        while frontier:
            node = frontier.pop(0)
            kids = []
            for neighbor in sorted(request_adjacency[node]):
                if neighbor not in seen:
                    seen.add(neighbor)
                    kids.append(neighbor)
                    parent[neighbor] = node
                    frontier.append(neighbor)
            children[node] = tuple(kids)
        if seen != set(members):  # pragma: no cover - structural guarantee
            raise AssertionError(
                f"BFST from leader {leader} does not span {sorted(members)}"
            )
        return StrongComponentInfo(members, leader, children, parent)

    def component_of(self, node_id: int) -> Optional[StrongComponentInfo]:
        """The (nontrivial) strong component containing a node, if any."""
        for component in self.strong_components():
            if node_id in component.members:
                return component
        return None

    def feeders(self, node_id: int) -> list[int]:
        """Predecessors in a *different* strong component (Definition 2.1)."""
        component = self.component_of(node_id)
        members = component.members if component else frozenset({node_id})
        return [p for p in self.predecessors(node_id) if p not in members]

    def customers(self, node_id: int) -> list[int]:
        """Successors in a *different* strong component (Definition 2.1)."""
        component = self.component_of(node_id)
        members = component.members if component else frozenset({node_id})
        return [s for s in self.successors(node_id) if s not in members]

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def pretty(self) -> str:
        """Indented rendering of the graph in Fig-1 spirit.

        Coalesced graphs print shared nodes once; later references show a
        ``~~shared~~`` marker (back/cross/forward edges).
        """
        lines: list[str] = []
        printed: set[int] = set()

        def walk(goal_id: int, indent: int) -> None:
            goal = self.goal_nodes[goal_id]
            pad = "  " * indent
            if goal.kind == "cyclic":
                source = self.goal_nodes[goal.cycle_source]  # type: ignore[index]
                lines.append(f"{pad}{goal.label()}  ~~cycle from~~  {source.label()}")
                return
            if goal_id in printed:
                lines.append(f"{pad}{goal.label()}  ~~shared node {goal_id}~~")
                return
            printed.add(goal_id)
            suffix = "  [EDB]" if goal.kind == "edb" else ""
            lines.append(f"{pad}{goal.label()}{suffix}")
            for rule_id in goal.rule_children:
                rule_node = self.rule_nodes[rule_id]
                lines.append(f"{pad}  <- {rule_node.label()}")
                for child in rule_node.subgoal_children:
                    walk(child, indent + 2)

        walk(self.root, 0)
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Graphviz rendering: goal nodes as ellipses, rule nodes as boxes.

        Solid arcs are tree edges (drawn in answer-flow direction), dashed
        arcs are cycle edges — matching Fig 1's visual conventions.
        Strong components are clustered, with the leader bold.
        """
        lines = ["digraph rulegoal {", "  rankdir=TB;", '  node [fontsize=11];']
        leaders = {info.leader for info in self.strong_components()}
        clusters = {
            member: index
            for index, info in enumerate(self.strong_components())
            for member in info.members
        }

        def declare(node_id: int) -> str:
            label = self.node_label(node_id).replace('"', "'")
            if node_id in self.goal_nodes:
                goal = self.goal_nodes[node_id]
                shape = "ellipse"
                style = ["filled"] if goal.kind == "edb" else []
                fill = ', fillcolor="lightgrey"' if goal.kind == "edb" else ""
            else:
                shape = "box"
                style = []
                fill = ""
            if node_id in leaders:
                style.append("bold")
            style_attr = f', style="{",".join(style)}"' if style else ""
            return f'  n{node_id} [label="{label}", shape={shape}{style_attr}{fill}];'

        by_cluster: dict[Optional[int], list[int]] = {}
        for node_id in sorted(set(self.goal_nodes) | set(self.rule_nodes)):
            by_cluster.setdefault(clusters.get(node_id), []).append(node_id)
        for cluster, nodes in sorted(
            by_cluster.items(), key=lambda kv: (-1 if kv[0] is None else kv[0])
        ):
            if cluster is None:
                lines += [declare(n) for n in nodes]
            else:
                lines.append(f"  subgraph cluster_{cluster} {{")
                lines.append('    label="strong component"; color=blue;')
                lines += ["  " + declare(n) for n in nodes]
                lines.append("  }")
        for a, b in self.answer_flow_edges():
            cyclic = (
                b in self.goal_nodes and self.goal_nodes[b].cycle_source == a
            )
            style = ' [style=dashed, color=red]' if cyclic else ""
            lines.append(f"  n{a} -> n{b}{style};")
        lines.append("}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Graph keying — Theorem 2.1 makes graphs cacheable across queries
# ----------------------------------------------------------------------

def rule_set_fingerprint(rules: Sequence[Rule]) -> int:
    """A hash identifying an IDB rule set for graph-cache keying.

    Order-sensitive on purpose: rule order determines ``rule_index`` and
    the order of rule children in the constructed graph.  Textually equal
    rules fingerprint equally even when they are distinct objects.
    """
    return hash(tuple(str(r) for r in rules))


def query_variant_signature(atoms: Sequence[Atom]) -> tuple:
    """A canonical key equal exactly for *variant* conjunctive queries.

    Two query bodies are variants when they agree on predicates, constants,
    and the repeated-variable pattern across the whole conjunction — the
    conjunctive extension of Definition 2.2's variant test.  Variable names
    are abstracted to first-occurrence indices, so ``anc(ann, Z)`` and
    ``anc(ann, W)`` share a signature (and answer columns align, because
    the desugared ``goal`` head lists variables in first-occurrence order)
    while ``anc(bob, Z)`` does not.  Theorem 2.1 guarantees the rule/goal
    graph depends only on this signature and the IDB — never on the EDB —
    which is what makes cross-query graph reuse sound.
    """
    first_seen: dict[Variable, int] = {}
    signature: list[tuple] = []
    for atom_ in atoms:
        shape: list[object] = []
        for term in atom_.args:
            if isinstance(term, Variable):
                shape.append(first_seen.setdefault(term, len(first_seen)))
            else:
                shape.append(("const", term.value))
        signature.append((atom_.predicate, tuple(shape)))
    return tuple(signature)


def graph_cache_key(
    rules_fingerprint: int,
    query_atoms: Sequence[Atom],
    sip_factory: SipFactory,
    coalesce: bool,
    planner: str = "static",
    size_fingerprint: tuple = (),
) -> tuple:
    """The full cache key for one constructed rule/goal graph.

    Everything graph construction consumes is represented: the IDB
    fingerprint, the query's variant signature, the SIP strategy (by
    function identity), and the coalescing flag.  The EDB is deliberately
    absent (Theorem 2.1) — with one carve-out: under ``planner="cost"``
    the subgoal orders *derive from* observed relation sizes, so the
    bucketed size fingerprint (see
    :func:`repro.core.planner.size_fingerprint`) joins the key and a
    cached graph is reused only while the planner would choose the same
    orders.  Static-planner keys are unchanged from earlier releases.
    """
    key = (
        "rule-goal-graph",
        rules_fingerprint,
        query_variant_signature(query_atoms),
        sip_factory,
        bool(coalesce),
    )
    if planner != "static":
        key += (planner, size_fingerprint)
    return key


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------

def _head_adornment_after_mgu(head: Atom, goal: AdornedAtom) -> AdornedAtom:
    """Adorn a rule-node head with the parent goal's classes.

    After the mgu is applied the head is "exactly the same as the subgoal of
    its parent" up to specialization: a head position that was a constant in
    the original rule stays a constant and must be class "c"; every other
    position inherits the goal's class.
    """
    from .terms import Constant
    from .adornment import CONSTANT, DYNAMIC

    letters = []
    for i, term in enumerate(head.args):
        goal_class = goal.adornment[i]
        if isinstance(term, Constant):
            letters.append(CONSTANT)
        elif goal_class == CONSTANT:
            # The goal had a constant here but the head kept a variable: the
            # mgu must have bound it, so this cannot happen; guard anyway.
            letters.append(DYNAMIC)
        else:
            letters.append(goal_class)
    return AdornedAtom(head, tuple(letters))


def build_rule_goal_graph(
    program: Program,
    sip_factory: SipFactory = greedy_sip,
    query_goal: Optional[AdornedAtom] = None,
    max_nodes: int = 200_000,
    coalesce: bool = False,
) -> RuleGoalGraph:
    """Build the information-passing rule/goal graph (Definition 2.2).

    Parameters
    ----------
    program:
        The validated program; its query rules define the ``goal`` predicate.
    sip_factory:
        The information passing strategy applied at every rule node
        (:func:`~repro.core.sips.greedy_sip` by default, per the paper).
    query_goal:
        The adorned top-level goal.  Defaults to ``goal(V0..Vk)`` with all
        arguments free, where ``k`` is the arity of the program's query rules.
    max_nodes:
        Safety budget; :class:`GraphSizeExceeded` is raised beyond it.
    coalesce:
        Merge goal nodes with identical predicates and binding patterns —
        "for single processor computation it is probably desirable to
        coalesce such nodes (thereby introducing cross and forward edges)"
        (Section 2.2).  The default keeps them separate, as the paper assumes
        for distributed computation.
    """
    graph = RuleGoalGraph(program, sip_factory, coalesced=coalesce)
    fresh = FreshVariables()
    signature_table: dict[tuple, int] = {}

    if query_goal is None:
        query_rules = program.query_rules
        if not query_rules:
            raise ValueError("program has no query rules (no 'goal' heads)")
        arity = query_rules[0].head.arity
        if any(r.head.arity != arity for r in query_rules):
            raise ValueError("query rules disagree on the arity of 'goal'")
        atom = Atom(GOAL_PREDICATE, tuple(Variable(f"Ans{i}") for i in range(arity)))
        query_goal = initial_goal_adornment(atom)

    root = GoalNode(
        id=graph.new_id(),
        adorned=query_goal,
        kind="idb",
        parent=None,
        subgoal_position=None,
        depth=0,
        ancestors=(),
    )
    graph.goal_nodes[root.id] = root
    graph.root = root.id
    signature_table[query_goal.variant_signature()] = root.id

    # Iterative DFS; each stack entry is a goal node awaiting expansion.
    stack: list[int] = [root.id]
    while stack:
        goal_id = stack.pop()
        goal = graph.goal_nodes[goal_id]
        predicate = goal.predicate

        if program.is_edb(predicate):
            goal.kind = "edb"
            continue

        # Variant-of-ancestor check (classes must match too — Definition 2.2).
        signature = goal.adorned.variant_signature()
        cycle_source: Optional[int] = None
        for ancestor_id in goal.ancestors:
            ancestor = graph.goal_nodes[ancestor_id]
            if ancestor.adorned.variant_signature() == signature:
                cycle_source = ancestor_id
                break
        if cycle_source is not None:
            goal.kind = "cyclic"
            goal.cycle_source = cycle_source
            graph.goal_nodes[cycle_source].cycle_targets.append(goal.id)
            continue

        goal.kind = "idb"
        new_subgoals: list[int] = []
        for rule_index, rule in enumerate(program.rules):
            if rule.head.predicate != predicate:
                continue
            renamed = rule.rename_apart(fresh)
            mgu = unify(renamed.head, goal.adorned.atom)
            if mgu is None:
                continue
            applied = renamed.substitute(mgu.as_dict())
            head_adorned = _head_adornment_after_mgu(applied.head, goal.adorned)
            sip = sip_factory(applied, head_adorned)
            adorned_subgoals = adorn_body(sip)
            rule_node = RuleNode(
                id=graph.new_id(),
                rule=applied,
                head=head_adorned,
                sip=sip,
                adorned_body=tuple(adorned_subgoals),
                parent=goal.id,
                depth=goal.depth + 1,
                rule_index=rule_index,
            )
            graph.rule_nodes[rule_node.id] = rule_node
            goal.rule_children.append(rule_node.id)
            for position, adorned_subgoal in enumerate(adorned_subgoals):
                if coalesce:
                    existing = signature_table.get(adorned_subgoal.variant_signature())
                    if existing is not None:
                        # Cross/forward (or back) edge to the shared node.
                        rule_node.subgoal_children.append(existing)
                        continue
                child = GoalNode(
                    id=graph.new_id(),
                    adorned=adorned_subgoal,
                    kind="idb",  # refined when popped
                    parent=rule_node.id,
                    subgoal_position=position,
                    depth=goal.depth + 2,
                    ancestors=goal.ancestors + (goal.id,),
                )
                graph.goal_nodes[child.id] = child
                if coalesce:
                    signature_table[adorned_subgoal.variant_signature()] = child.id
                rule_node.subgoal_children.append(child.id)
                new_subgoals.append(child.id)
            if graph.size() > max_nodes:
                raise GraphSizeExceeded(
                    f"rule/goal graph exceeded {max_nodes} nodes"
                )
        # Push in reverse so the leftmost subgoal is expanded first (DFS).
        stack.extend(reversed(new_subgoals))

    return graph


def build_basic_rule_goal_graph(
    program: Program,
    query_goal: Optional[AdornedAtom] = None,
    max_nodes: int = 200_000,
) -> RuleGoalGraph:
    """The *basic* rule/goal graph of Section 2.1 — no information passing.

    Implemented as the information-passing construction under the no-arc SIP
    (:func:`~repro.core.sips.all_free_sip`): with no sideways arcs and a free
    top-level goal every argument class degenerates to "c"/"e"/"f", which is
    exactly the classless structure of the basic graph.
    """
    return build_rule_goal_graph(
        program, sip_factory=all_free_sip, query_goal=query_goal, max_nodes=max_nodes
    )
