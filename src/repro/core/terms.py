"""Terms of the function-free first-order language used throughout the paper.

The paper's language (Section 1) is function-free Horn clause logic: a term is
either a *variable* or a *constant*.  There are no function symbols, which is
what makes the rule/goal graph finite (Theorem 2.1) and the minimum model
computable.

Variables are written with a leading uppercase letter or underscore, constants
with a leading lowercase letter, as integers, or as quoted strings — the same
convention as Prolog and the paper's examples.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Union

__all__ = [
    "Variable",
    "Constant",
    "Term",
    "FreshVariables",
    "term_from_value",
]


@dataclass(frozen=True, slots=True)
class Variable:
    """A logical variable, identified by its name.

    Two ``Variable`` objects with the same name denote the same variable
    within a clause; clauses are renamed apart before unification (the paper's
    rule nodes contain "a copy of the rule that began with all new variables").
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant symbol.

    The payload ``value`` may be any hashable Python value (strings and
    integers in practice).  Constants compare by value, so ``Constant(1)`` and
    ``Constant("1")`` are distinct.
    """

    value: object

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


#: A term is a variable or a constant (no function symbols — Section 1).
Term = Union[Variable, Constant]


def term_from_value(value: object) -> Term:
    """Coerce a raw Python value into a :class:`Term`.

    Existing :class:`Variable`/:class:`Constant` objects pass through
    unchanged; anything else is wrapped in a :class:`Constant`.  Strings that
    *look* like variables are still treated as constants — use
    :class:`Variable` explicitly when a variable is intended.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    return Constant(value)


class FreshVariables:
    """A factory of globally fresh variables.

    The rule/goal graph construction requires each rule node to hold "a copy
    of the rule that began with all new variables" (Section 2.1).  A single
    ``FreshVariables`` instance is threaded through the construction so names
    never collide.
    """

    def __init__(self, prefix: str = "_V") -> None:
        self._prefix = prefix
        self._counter = itertools.count()

    def fresh(self, hint: str | None = None) -> Variable:
        """Return a brand-new variable, optionally keeping ``hint`` readable.

        The generated name embeds ``hint`` (the original variable's name) so
        traces of the rule/goal graph stay human-readable, e.g. ``X#3``.
        """
        index = next(self._counter)
        if hint:
            return Variable(f"{hint}#{index}")
        return Variable(f"{self._prefix}{index}")

    def rename_all(self, variables: "list[Variable] | set[Variable]") -> dict[Variable, Variable]:
        """Build a renaming (old variable -> fresh variable) for a clause."""
        # Sort for determinism: set iteration order varies between runs.
        ordered = sorted(variables, key=lambda v: v.name)
        return {var: self.fresh(var.name.split("#", 1)[0]) for var in ordered}
