"""Binding classes ("adornments") for predicate arguments — Section 2.2.

The information-passing rule/goal graph divides predicate arguments into four
classes (Section 1.2):

``c``
    Constants known at graph-construction time.
``d``
    Arguments *dynamically bound* during the computation to a set of needed
    values; a "d" argument functions as a semijoin operand and is what
    restricts the computed part of an intermediate relation to potentially
    useful values.
``e``
    Existential — free variables whose values are not used; only the
    existence of a value matters, so they need not be transmitted.
``f``
    Free — the job is to find bindings for them.

An :class:`AdornedAtom` pairs an atom with one class letter per argument.
:func:`adorn_body` propagates the head's classes into a rule's subgoals under
a sideways-information-passing strategy (see :mod:`repro.core.sips`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from .atoms import Atom
from .rules import Rule
from .terms import Constant, Term, Variable

__all__ = [
    "CONSTANT",
    "DYNAMIC",
    "EXISTENTIAL",
    "FREE",
    "BINDING_CLASSES",
    "Adornment",
    "AdornedAtom",
    "initial_goal_adornment",
    "head_bound_variables",
]

CONSTANT = "c"
DYNAMIC = "d"
EXISTENTIAL = "e"
FREE = "f"

#: All four binding classes, in the paper's order.
BINDING_CLASSES = (CONSTANT, DYNAMIC, EXISTENTIAL, FREE)

#: An adornment is one class letter per argument position.
Adornment = tuple[str, ...]


def _check_adornment(atom: Atom, adornment: Sequence[str]) -> Adornment:
    adornment = tuple(adornment)
    if len(adornment) != atom.arity:
        raise ValueError(
            f"adornment {adornment} does not match arity of {atom}"
        )
    for letter, term in zip(adornment, atom.args):
        if letter not in BINDING_CLASSES:
            raise ValueError(f"unknown binding class {letter!r}")
        if letter == CONSTANT and not isinstance(term, Constant):
            raise ValueError(f"class 'c' argument of {atom} must be a constant")
        if letter != CONSTANT and isinstance(term, Constant):
            raise ValueError(
                f"constant argument of {atom} must have class 'c', got {letter!r}"
            )
    return adornment


@dataclass(frozen=True)
class AdornedAtom:
    """An atom together with the binding class of each argument.

    Printed in the paper's superscript style, e.g. ``p(a^c, Z^f)``.
    """

    atom: Atom
    adornment: Adornment

    def __post_init__(self) -> None:
        object.__setattr__(self, "adornment", _check_adornment(self.atom, self.adornment))

    # ------------------------------------------------------------------
    @property
    def predicate(self) -> str:
        """The predicate symbol."""
        return self.atom.predicate

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return self.atom.arity

    def positions(self, *classes: str) -> tuple[int, ...]:
        """Argument positions whose class is one of ``classes``."""
        return tuple(i for i, a in enumerate(self.adornment) if a in classes)

    @property
    def bound_positions(self) -> tuple[int, ...]:
        """Positions carrying bindings into the node: classes "c" and "d"."""
        return self.positions(CONSTANT, DYNAMIC)

    @property
    def dynamic_positions(self) -> tuple[int, ...]:
        """Positions of class "d" — the ones tuple requests must bind."""
        return self.positions(DYNAMIC)

    @property
    def free_positions(self) -> tuple[int, ...]:
        """Positions of class "f" — values to be produced and transmitted."""
        return self.positions(FREE)

    @property
    def existential_positions(self) -> tuple[int, ...]:
        """Positions of class "e" — values needed to exist but not transmitted."""
        return self.positions(EXISTENTIAL)

    @property
    def output_positions(self) -> tuple[int, ...]:
        """Positions whose values flow upward in answers ("d" keys + "f")."""
        return tuple(i for i, a in enumerate(self.adornment) if a in (DYNAMIC, FREE))

    def bound_variables(self) -> set[Variable]:
        """Variables at class-"d" positions."""
        return {
            self.atom.args[i]
            for i in self.dynamic_positions
            if isinstance(self.atom.args[i], Variable)
        }

    def free_variables(self) -> set[Variable]:
        """Variables at class-"f" positions."""
        return {
            self.atom.args[i]
            for i in self.free_positions
            if isinstance(self.atom.args[i], Variable)
        }

    # ------------------------------------------------------------------
    def variant_signature(self) -> tuple:
        """A canonical key equal for exactly the adorned variants of this atom.

        Two adorned goals are variants (Definition 2.2) when the underlying
        atoms are variants (same predicate, same constants in the same places,
        same repeated-variable pattern) *and* "the arguments match on their
        classes as well".  The proof of Theorem 2.1 relies on there being
        finitely many such signatures.
        """
        first_seen: dict[Variable, int] = {}
        shape: list[object] = []
        for position, term in enumerate(self.atom.args):
            if isinstance(term, Variable):
                if term not in first_seen:
                    first_seen[term] = position
                shape.append(first_seen[term])
            else:
                shape.append(("const", term.value))
        return (self.predicate, self.adornment, tuple(shape))

    def adornment_string(self) -> str:
        """The adornment as a compact string, e.g. ``"cf"``."""
        return "".join(self.adornment)

    def __str__(self) -> str:
        parts = [
            f"{term}^{letter}" for term, letter in zip(self.atom.args, self.adornment)
        ]
        return f"{self.predicate}({', '.join(parts)})"

    def __repr__(self) -> str:
        return f"AdornedAtom({str(self)!r})"


def initial_goal_adornment(atom: Atom, existential: Iterable[Variable] = ()) -> AdornedAtom:
    """Adorn a top-level goal: constants are "c", variables "f" (or "e").

    ``existential`` names variables whose values the caller does not want
    transmitted (the paper's ``p(X^f, Y^e)`` example: one tuple per unique X).
    """
    existential_set = set(existential)
    letters = []
    for term in atom.args:
        if isinstance(term, Constant):
            letters.append(CONSTANT)
        elif term in existential_set:
            letters.append(EXISTENTIAL)
        else:
            letters.append(FREE)
    return AdornedAtom(atom, tuple(letters))


def head_bound_variables(head: AdornedAtom) -> set[Variable]:
    """Variables the head supplies bindings for: those at "c"/"d" positions.

    "c" positions hold constants after the mgu is applied, so in practice the
    set is the variables at "d" positions; a variable sitting at a "c"
    position (possible before unification) is included for robustness.
    """
    bound: set[Variable] = set()
    for i in head.bound_positions:
        term = head.atom.args[i]
        if isinstance(term, Variable):
            bound.add(term)
    return bound
