"""Atomic formulas (atoms) over function-free terms.

An atom ``p(t1, ..., tk)`` is a predicate symbol applied to terms.  Ground
atoms are the EDB *facts* of Section 1; non-ground atoms appear as rule heads
and subgoals.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from .terms import Constant, Term, Variable, term_from_value

__all__ = ["Atom", "atom"]

_VALUE_GET = operator.attrgetter("value")


@dataclass(frozen=True, slots=True)
class Atom:
    """An atomic formula ``predicate(args...)``.

    Atoms are immutable and hashable so they can key dictionaries (e.g. the
    variant-closure table of the rule/goal graph construction) and live in
    sets (e.g. derived fact sets of the bottom-up baselines).
    """

    predicate: str
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.predicate:
            raise ValueError("predicate name must be non-empty")
        for arg in self.args:
            if not isinstance(arg, (Variable, Constant)):
                raise TypeError(f"atom argument {arg!r} is not a Term")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    def variables(self) -> list[Variable]:
        """All variable occurrences, in argument order (with repetitions)."""
        return [t for t in self.args if isinstance(t, Variable)]

    def variable_set(self) -> set[Variable]:
        """The set of distinct variables occurring in the atom."""
        return {t for t in self.args if isinstance(t, Variable)}

    def constants(self) -> list[Constant]:
        """All constant occurrences, in argument order."""
        return [t for t in self.args if isinstance(t, Constant)]

    def is_ground(self) -> bool:
        """True iff the atom contains no variables (i.e. it is a fact)."""
        return all(isinstance(t, Constant) for t in self.args)

    def repetition_pattern(self) -> tuple[int, ...]:
        """Canonical pattern of repeated variables and constant positions.

        Two atoms are variants only if their patterns agree.  Each argument
        position is mapped to the index of the *first* position holding the
        same variable; constant positions are mapped to ``-1 - k`` where ``k``
        numbers distinct constants by first occurrence.  The proof of
        Theorem 2.1 notes that patterns like ``p(X, X, Z)`` versus
        ``p(V, V, V)`` must be distinguished; this pattern does exactly that.
        """
        first_seen: dict[Term, int] = {}
        pattern: list[int] = []
        const_index: dict[Constant, int] = {}
        for position, term in enumerate(self.args):
            if isinstance(term, Variable):
                if term not in first_seen:
                    first_seen[term] = position
                pattern.append(first_seen[term])
            else:
                if term not in const_index:
                    const_index[term] = len(const_index)
                pattern.append(-1 - const_index[term])
        return tuple(pattern)

    # ------------------------------------------------------------------
    # Substitution
    # ------------------------------------------------------------------
    def substitute(self, mapping: Mapping[Variable, Term]) -> "Atom":
        """Apply a substitution (variable -> term) to every argument."""
        new_args = tuple(
            mapping.get(t, t) if isinstance(t, Variable) else t for t in self.args
        )
        if new_args == self.args:
            return self
        return Atom(self.predicate, new_args)

    def ground_tuple(self) -> tuple[object, ...]:
        """Return the tuple of constant values; raises if not ground.

        Hot on the fact-loading path (once per EDB fact): the C-level
        attribute gather succeeds exactly when every term is a
        :class:`Constant` — ``Variable`` has no ``value`` slot.
        """
        try:
            return tuple(map(_VALUE_GET, self.args))
        except AttributeError:
            raise ValueError(f"atom {self} is not ground") from None

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        if not self.args:
            return self.predicate
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.predicate}({inner})"

    def __repr__(self) -> str:
        return f"Atom({str(self)!r})"

    def __iter__(self) -> Iterator[Term]:
        return iter(self.args)


def atom(predicate: str, *args: object) -> Atom:
    """Convenience constructor coercing raw values into terms.

    ``atom("p", Variable("X"), "a", 3)`` builds ``p(X, a, 3)``.
    """
    return Atom(predicate, tuple(term_from_value(a) for a in args))
