"""Sideways information passing (SIP) strategies — Definitions 2.3 and 2.4.

A SIP strategy for a rule is "an acyclic directed graph on the subgoals; the
arc r -> s is present whenever an 'f' argument of r furnishes bindings for a
'd' argument of s" (Definition 2.3).  We also allow the rule *head* as a
virtual source node (index ``HEAD``), since head "c"/"d" arguments furnish
the first bindings.

The **greedy** strategy (Definition 2.4) maximally pushes "d" arguments
forward: no subgoal is requested with an argument free if it could wait for
tuples from an already-scheduled subgoal and receive a set of bindings for
that argument.  It rests on the heuristic that "maximizing bound arguments is
more important than minimizing unbound arguments for the purpose of making
intermediate relations small" (Section 2.2).

Strategies provided:

* :func:`greedy_sip` — Definition 2.4 (the default of the whole framework);
* :func:`left_to_right_sip` — Prolog's textual order, for comparison;
* :func:`all_free_sip` — no sideways passing at all; every non-head-bound
  variable stays "f".  This is the stand-in for McKay–Shapiro-style
  evaluation where "intermediate relations ... tend to be entirely computed"
  (Section 1.1), used as a baseline;
* :func:`sip_from_order` — the generic constructor both of the above use;
* ``qual-tree SIP`` — built in :mod:`repro.core.monotone` by directing qual
  tree edges away from the root (Theorem 4.1 shows it is greedy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .adornment import (
    CONSTANT,
    DYNAMIC,
    EXISTENTIAL,
    FREE,
    AdornedAtom,
    head_bound_variables,
)
from .atoms import Atom
from .rules import Rule
from .terms import Constant, Variable

__all__ = [
    "HEAD",
    "SipArc",
    "SipStrategy",
    "sip_from_order",
    "greedy_sip",
    "left_to_right_sip",
    "all_free_sip",
    "adorn_body",
    "bound_score",
    "is_greedy",
]

#: Virtual node index standing for the rule head as a source of bindings.
HEAD = -1


@dataclass(frozen=True)
class SipArc:
    """One arc of a SIP graph: ``source`` passes ``variables`` to ``target``.

    ``source`` is a subgoal index or :data:`HEAD`; ``target`` is a subgoal
    index; ``variables`` are the variables whose bindings flow along the arc.
    """

    source: int
    target: int
    variables: frozenset[Variable]

    def __str__(self) -> str:
        src = "head" if self.source == HEAD else f"g{self.source}"
        names = ",".join(sorted(v.name for v in self.variables))
        return f"{src} --{{{names}}}--> g{self.target}"


@dataclass(frozen=True)
class SipStrategy:
    """A SIP graph for one rule, plus the evaluation order it induces.

    ``order`` is a topological order of the subgoal indices consistent with
    the arcs (ties resolved by the constructing strategy); the message-passing
    engine and the bottom-up oracle both consume it.
    """

    rule: Rule
    head_adornment: AdornedAtom
    arcs: tuple[SipArc, ...]
    order: tuple[int, ...]

    def __post_init__(self) -> None:
        indices = set(range(len(self.rule.body)))
        if set(self.order) != indices or len(self.order) != len(indices):
            raise ValueError(
                f"order {self.order} is not a permutation of subgoals {sorted(indices)}"
            )
        position = {g: i for i, g in enumerate(self.order)}
        for arc in self.arcs:
            if arc.target not in indices:
                raise ValueError(f"arc target {arc.target} out of range")
            if arc.source != HEAD:
                if arc.source not in indices:
                    raise ValueError(f"arc source {arc.source} out of range")
                if position[arc.source] >= position[arc.target]:
                    raise ValueError(f"arc {arc} disagrees with order {self.order}")

    # ------------------------------------------------------------------
    def bound_variables_at(self, subgoal: int) -> set[Variable]:
        """Variables arriving bound at ``subgoal`` via SIP arcs (and the head)."""
        incoming: set[Variable] = set()
        for arc in self.arcs:
            if arc.target == subgoal:
                incoming |= arc.variables
        return incoming

    def arcs_into(self, subgoal: int) -> list[SipArc]:
        """The arcs whose target is ``subgoal``."""
        return [a for a in self.arcs if a.target == subgoal]

    def is_acyclic(self) -> bool:
        """Definition 2.3 requires the SIP graph to be acyclic; verify it."""
        successors: dict[int, set[int]] = {}
        for arc in self.arcs:
            successors.setdefault(arc.source, set()).add(arc.target)
        visited: dict[int, int] = {}  # 1 = in progress, 2 = done

        def dfs(node: int) -> bool:
            visited[node] = 1
            for nxt in successors.get(node, ()):
                state = visited.get(nxt)
                if state == 1:
                    return False
                if state is None and not dfs(nxt):
                    return False
            visited[node] = 2
            return True

        return all(dfs(n) for n in list(successors) if n not in visited)

    def __str__(self) -> str:
        arcs = "; ".join(str(a) for a in self.arcs)
        return f"SIP[{arcs}] order={list(self.order)}"


# ----------------------------------------------------------------------
# Adornment propagation under a SIP
# ----------------------------------------------------------------------

def adorn_body(strategy: SipStrategy) -> list[AdornedAtom]:
    """Adorn every subgoal of the strategy's rule, in *textual* order.

    Classification per Section 2.2:

    * constant arguments are "c";
    * a variable bound by the head ("d" position) or fed by an incoming SIP
      arc is "d";
    * a variable occurring exactly once in the whole rule is "e"
      (existential);
    * a head variable whose head class is "e" and which occurs in exactly one
      subgoal is "e" as well — its value need not be transmitted;
    * everything else is "f": this occurrence is the producer of the
      variable's bindings.
    """
    rule = strategy.rule
    head = strategy.head_adornment
    head_bound = head_bound_variables(head)
    head_existential = {
        rule.head.args[i]
        for i in head.existential_positions
        if isinstance(rule.head.args[i], Variable)
    }
    singletons = rule.singleton_variables()

    body_occurrences: dict[Variable, int] = {}
    for sub in rule.body:
        for var in sub.variable_set():
            body_occurrences[var] = body_occurrences.get(var, 0) + 1

    adorned: list[AdornedAtom] = []
    for index, sub in enumerate(rule.body):
        incoming = strategy.bound_variables_at(index) | head_bound
        letters: list[str] = []
        for term in sub.args:
            if isinstance(term, Constant):
                letters.append(CONSTANT)
            elif term in incoming:
                letters.append(DYNAMIC)
            elif term in singletons:
                letters.append(EXISTENTIAL)
            elif term in head_existential and body_occurrences.get(term, 0) == 1:
                letters.append(EXISTENTIAL)
            else:
                letters.append(FREE)
        adorned.append(AdornedAtom(sub, tuple(letters)))
    return adorned


# ----------------------------------------------------------------------
# Strategy constructors
# ----------------------------------------------------------------------

def bound_score(subgoal: Atom, bound: set[Variable]) -> int:
    """How bound a subgoal is: distinct constants + distinct bound variables.

    This is the notion of "bindings" used by the proof of Theorem 4.1 (a
    repeated occurrence of one bound variable is still one binding): the
    qual-tree property propagates *variables*, so counting argument positions
    instead would let a repeated-variable subgoal outside the tree frontier
    spuriously outrank the frontier.
    """
    constants = {t for t in subgoal.args if isinstance(t, Constant)}
    bound_vars = subgoal.variable_set() & bound
    return len(constants) + len(bound_vars)


def sip_from_order(rule: Rule, head: AdornedAtom, order: Sequence[int]) -> SipStrategy:
    """Build the SIP graph induced by evaluating subgoals in ``order``.

    Each variable's bindings flow from its *producer* — the head if the head
    binds it, else the earliest subgoal (in ``order``) containing it — to
    every later subgoal containing it.
    """
    rule_body = rule.body
    head_bound = head_bound_variables(head)
    producer: dict[Variable, int] = {v: HEAD for v in head_bound}
    arcs: list[SipArc] = []
    for index in order:
        sub = rule_body[index]
        incoming: dict[int, set[Variable]] = {}
        for var in sorted(sub.variable_set(), key=lambda v: v.name):
            source = producer.get(var)
            if source is not None:
                incoming.setdefault(source, set()).add(var)
            else:
                producer[var] = index
        for source in sorted(incoming):
            arcs.append(SipArc(source, index, frozenset(incoming[source])))
    return SipStrategy(rule, head, tuple(arcs), tuple(order))


def left_to_right_sip(rule: Rule, head: AdornedAtom) -> SipStrategy:
    """Prolog's strategy: solve subgoals in textual order (Section 2.2)."""
    return sip_from_order(rule, head, range(len(rule.body)))


def greedy_sip(rule: Rule, head: AdornedAtom) -> SipStrategy:
    """The greedy strategy of Definition 2.4.

    Repeatedly schedule next the not-yet-scheduled subgoal with the maximum
    number of argument positions already bound (by the head or by scheduled
    subgoals); ties break toward the leftmost subgoal, matching the paper's
    examples.  The result maximally pushes "d" arguments forward.
    """
    bound: set[Variable] = set(head_bound_variables(head))
    remaining = list(range(len(rule.body)))
    order: list[int] = []
    while remaining:
        best = max(remaining, key=lambda i: (bound_score(rule.body[i], bound), -i))
        remaining.remove(best)
        order.append(best)
        bound |= rule.body[best].variable_set()
    return sip_from_order(rule, head, order)


def all_free_sip(rule: Rule, head: AdornedAtom) -> SipStrategy:
    """No sideways passing: the SIP graph has no arcs at all.

    Head bindings still apply (they are not "sideways"), but no subgoal waits
    for another, so shared variables stay "f" everywhere — intermediate
    relations are computed in full, McKay–Shapiro style.
    """
    return SipStrategy(rule, head, (), tuple(range(len(rule.body))))


# ----------------------------------------------------------------------
# Greediness checking (used by the Theorem 4.1 artifacts)
# ----------------------------------------------------------------------

def is_greedy(strategy: SipStrategy) -> bool:
    """Check Definition 2.4 for a SIP strategy.

    A strategy is greedy iff no subgoal is evaluated with an argument free
    when, at its scheduling point, *waiting longer* could have bound more of
    its bindings.  Operationally: at each step of ``strategy.order`` the
    chosen subgoal must score at least as high (:func:`bound_score`:
    distinct constants + distinct bound variables — the Theorem 4.1 notion)
    as every other remaining subgoal at the current point; since bindings
    only grow, stepwise maximality is exactly "could not profit by waiting".
    """
    rule = strategy.rule
    bound: set[Variable] = set(head_bound_variables(strategy.head_adornment))
    remaining = set(range(len(rule.body)))
    for chosen in strategy.order:
        best = max(bound_score(rule.body[i], bound) for i in remaining)
        if bound_score(rule.body[chosen], bound) < best:
            return False
        remaining.discard(chosen)
        bound |= rule.body[chosen].variable_set()
    return True
