"""Core Datalog kernel: terms, rules, adornments, SIPs, rule/goal graphs.

This subpackage implements the paper's *primary contribution* at the static
level: the information-passing rule/goal graph of Section 2 with its four
binding classes, the sideways information passing strategies, and the
Section 4 monotone-flow analysis (evaluation hypergraphs, GYO reduction,
qual trees, qual-tree composition, and the cost model).
"""

from .adornment import (
    BINDING_CLASSES,
    CONSTANT,
    DYNAMIC,
    EXISTENTIAL,
    FREE,
    AdornedAtom,
    initial_goal_adornment,
)
from .atoms import Atom, atom
from .hypergraph import GyoResult, Hypergraph, QualTree
from .monotone import (
    compose_qual_trees,
    evaluation_hypergraph,
    extend_rule,
    has_monotone_flow,
    qual_tree_sip,
    rule_qual_tree,
)
from .optimizer import CardinalityModel, EdbStatistics, statistics_sip
from .parser import ParseError, parse_atom, parse_program, parse_rule, parse_term
from .program import Program, ProgramError
from .rulegoal import (
    GoalNode,
    GraphSizeExceeded,
    RuleGoalGraph,
    RuleNode,
    build_basic_rule_goal_graph,
    build_rule_goal_graph,
)
from .rules import GOAL_PREDICATE, Rule
from .sips import (
    HEAD,
    SipArc,
    SipStrategy,
    adorn_body,
    all_free_sip,
    greedy_sip,
    is_greedy,
    left_to_right_sip,
    sip_from_order,
)
from .terms import Constant, FreshVariables, Term, Variable

__all__ = [
    # terms / atoms / rules
    "Variable", "Constant", "Term", "FreshVariables", "Atom", "atom",
    "Rule", "GOAL_PREDICATE", "Program", "ProgramError",
    # parsing
    "ParseError", "parse_term", "parse_atom", "parse_rule", "parse_program",
    # adornments & SIPs
    "CONSTANT", "DYNAMIC", "EXISTENTIAL", "FREE", "BINDING_CLASSES",
    "AdornedAtom", "initial_goal_adornment",
    "HEAD", "SipArc", "SipStrategy", "adorn_body", "sip_from_order",
    "greedy_sip", "left_to_right_sip", "all_free_sip", "is_greedy",
    "EdbStatistics", "CardinalityModel", "statistics_sip",
    # rule/goal graph
    "GoalNode", "RuleNode", "RuleGoalGraph", "GraphSizeExceeded",
    "build_rule_goal_graph", "build_basic_rule_goal_graph",
    # hypergraphs & monotone flow
    "Hypergraph", "QualTree", "GyoResult",
    "evaluation_hypergraph", "has_monotone_flow", "rule_qual_tree",
    "qual_tree_sip", "extend_rule", "compose_qual_trees",
]
