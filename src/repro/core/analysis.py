"""Whole-program static analysis: the paper's toolbox applied end to end.

Given a program, this module builds the information-passing rule/goal graph
for its query and reports, per predicate and per rule-node:

* recursion classification (nonrecursive / linear / nonlinear — the §1.1
  taxonomy that separates Henschen–Naqvi's method from the general case);
* the binding patterns (adornments) the query actually induces;
* the monotone flow property for each rule under each induced binding
  (Definition 4.2), with the qual-tree SIP when it exists and the cyclic
  hypergraph core when it does not;
* strong components, their leaders, and sizes (the units the termination
  protocol runs over);
* warnings: rules without monotone flow (risk of the Example 4.1 blow-up),
  cartesian-product stages (subgoals evaluated with no shared bound
  variable), and existential positions that enable projection savings.

Entry points: :func:`analyze` (structured report) and
:meth:`ProgramReport.render` (human-readable text, used by the CLI's
``analyze`` subcommand).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .adornment import AdornedAtom, EXISTENTIAL
from .monotone import evaluation_hypergraph, qual_tree_sip, rule_qual_tree
from .program import Program
from .rulegoal import RuleGoalGraph, SipFactory, build_rule_goal_graph
from .rules import Rule
from .sips import adorn_body, greedy_sip, is_greedy

__all__ = ["PredicateReport", "RuleNodeReport", "ComponentReport", "ProgramReport", "analyze"]


@dataclass(frozen=True)
class PredicateReport:
    """Classification of one predicate."""

    name: str
    kind: str  # "edb" | "idb"
    recursive: bool
    linear: bool
    rule_count: int
    adornments: tuple[str, ...]  # binding patterns induced by the query


@dataclass(frozen=True)
class RuleNodeReport:
    """Analysis of one rule node of the graph (one rule × one binding)."""

    rule: str
    head_adornment: str
    subgoal_adornments: tuple[str, ...]
    sip_order: tuple[int, ...]
    sip_is_greedy: bool
    monotone_flow: bool
    qual_tree_order: Optional[tuple[int, ...]]
    cyclic_core: tuple[str, ...]  # variable names, empty when monotone
    cartesian_stages: tuple[int, ...]  # subgoal indices joined with 0 bound vars
    existential_positions: int


@dataclass(frozen=True)
class ComponentReport:
    """One strong component of the rule/goal graph."""

    size: int
    leader: str
    members: tuple[str, ...]


@dataclass(frozen=True)
class ProgramReport:
    """The full analysis result."""

    predicates: tuple[PredicateReport, ...]
    rule_nodes: tuple[RuleNodeReport, ...]
    components: tuple[ComponentReport, ...]
    graph_goal_nodes: int
    graph_rule_nodes: int
    warnings: tuple[str, ...]

    def render(self) -> str:
        """A human-readable multi-section report."""
        lines = ["PREDICATES"]
        for p in self.predicates:
            shape = (
                "nonrecursive"
                if not p.recursive
                else ("linear recursive" if p.linear else "NONLINEAR recursive")
            )
            adorn = ", ".join(p.adornments) or "-"
            lines.append(
                f"  {p.name:16s} {p.kind:4s} {shape:22s} "
                f"rules={p.rule_count}  bindings: {adorn}"
            )
        lines.append("")
        lines.append(
            f"RULE/GOAL GRAPH: {self.graph_goal_nodes} goal nodes, "
            f"{self.graph_rule_nodes} rule nodes, "
            f"{len(self.components)} strong component(s)"
        )
        for c in self.components:
            lines.append(f"  component of {c.size}: leader {c.leader}")
        lines.append("")
        lines.append("RULES (per binding pattern)")
        for r in self.rule_nodes:
            lines.append(f"  {r.rule}")
            lines.append(
                f"    head^{r.head_adornment}; body adornments "
                f"{', '.join(r.subgoal_adornments) or '-'}; "
                f"SIP order {list(r.sip_order)}"
                f"{' (greedy)' if r.sip_is_greedy else ' (NOT greedy)'}"
            )
            if r.monotone_flow:
                lines.append(
                    f"    monotone flow: YES; qual-tree order {list(r.qual_tree_order or ())}"
                )
            else:
                lines.append(
                    f"    monotone flow: NO — cyclic core {{{', '.join(r.cyclic_core)}}}"
                )
        if self.warnings:
            lines.append("")
            lines.append("WARNINGS")
            lines += [f"  ! {w}" for w in self.warnings]
        return "\n".join(lines)


def _rule_node_report(rule: Rule, head: AdornedAtom, sip_factory: SipFactory) -> RuleNodeReport:
    sip = sip_factory(rule, head)
    adorned = adorn_body(sip)
    monotone = rule_qual_tree(rule, head) is not None
    qt_sip = qual_tree_sip(rule, head) if monotone else None
    if monotone:
        core: tuple[str, ...] = ()
    else:
        reduction = evaluation_hypergraph(rule, head).gyo_reduction()
        core = tuple(sorted(str(v) for v in reduction.cyclic_core_vertices()))

    # A stage is cartesian when the subgoal shares no bound variable (nor a
    # constant) with everything evaluated before it.
    cartesian = []
    bound = set(head.bound_variables())
    for index in sip.order:
        subgoal = rule.body[index]
        if subgoal.arity and not subgoal.constants() and not (subgoal.variable_set() & bound):
            cartesian.append(index)
        bound |= subgoal.variable_set()

    existential = sum(a.adornment.count(EXISTENTIAL) for a in adorned)
    return RuleNodeReport(
        rule=str(rule),
        head_adornment=head.adornment_string(),
        subgoal_adornments=tuple(a.adornment_string() for a in adorned),
        sip_order=sip.order,
        sip_is_greedy=is_greedy(sip),
        monotone_flow=monotone,
        qual_tree_order=qt_sip.order if qt_sip else None,
        cyclic_core=core,
        cartesian_stages=tuple(cartesian),
        existential_positions=existential,
    )


def analyze(
    program: Program,
    sip_factory: SipFactory = greedy_sip,
    graph: Optional[RuleGoalGraph] = None,
) -> ProgramReport:
    """Analyze a program under its query's induced binding patterns."""
    graph = graph or build_rule_goal_graph(program, sip_factory)

    adornments_by_predicate: dict[str, set[str]] = {}
    for goal in graph.goal_nodes.values():
        adornments_by_predicate.setdefault(goal.predicate, set()).add(
            goal.adorned.adornment_string()
        )

    recursive = program.recursive_predicates()
    predicates = []
    for name in sorted(program.idb_predicates | set(program.edb_predicates)):
        is_idb = name in program.idb_predicates
        rules = program.rules_for(name)
        predicates.append(
            PredicateReport(
                name=name,
                kind="idb" if is_idb else "edb",
                recursive=name in recursive,
                linear=all(program.is_linear_rule(r) for r in rules),
                rule_count=len(rules),
                adornments=tuple(sorted(adornments_by_predicate.get(name, ()))),
            )
        )

    seen: set[tuple[str, str]] = set()
    rule_reports = []
    warnings: list[str] = []
    for rule_node in sorted(graph.rule_nodes.values(), key=lambda r: r.id):
        key = (str(rule_node.rule), rule_node.head.adornment_string())
        if key in seen:
            continue
        seen.add(key)
        report = _rule_node_report(rule_node.rule, rule_node.head, sip_factory)
        rule_reports.append(report)
        if not report.monotone_flow:
            warnings.append(
                f"no monotone flow for {report.rule} under head^{report.head_adornment}: "
                f"cyclic core {{{', '.join(report.cyclic_core)}}} — parallel branch "
                "evaluation risks large, nearly unjoinable intermediates (Example 4.1)"
            )
        if report.cartesian_stages:
            warnings.append(
                f"cartesian stage(s) {list(report.cartesian_stages)} in {report.rule}: "
                "a subgoal joins with no bound variable"
            )

    components = tuple(
        ComponentReport(
            size=len(info.members),
            leader=graph.node_label(info.leader),
            members=tuple(graph.node_label(m) for m in sorted(info.members)),
        )
        for info in graph.strong_components()
    )

    return ProgramReport(
        predicates=tuple(predicates),
        rule_nodes=tuple(rule_reports),
        components=components,
        graph_goal_nodes=len(graph.goal_nodes),
        graph_rule_nodes=len(graph.rule_nodes),
        warnings=tuple(warnings),
    )
