"""Unification, substitutions, variants, and renaming apart.

The rule/goal graph construction (Section 2.1) expands a subgoal by creating a
rule node "for every rule whose head unifies with the subgoal", applying the
most general unifier (mgu), and it stops expanding a subgoal that "is a
variant of one of its ancestors".  This module supplies those three
operations: :func:`unify`, :func:`is_variant`, and :func:`rename_apart`.

Because the language is function-free, unification never needs an occurs
check and the mgu (when it exists) is computable in linear time.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from .atoms import Atom
from .terms import Constant, FreshVariables, Term, Variable

__all__ = [
    "Substitution",
    "unify",
    "unify_terms",
    "is_variant",
    "variant_renaming",
    "rename_apart",
    "match",
]


class Substitution:
    """An idempotent substitution: a finite map from variables to terms.

    The class maintains the *triangular-solved* form: no variable in the
    domain appears in any term of the range.  This makes :meth:`apply`
    single-pass and composition straightforward.
    """

    __slots__ = ("_map",)

    def __init__(self, mapping: Mapping[Variable, Term] | None = None) -> None:
        self._map: dict[Variable, Term] = dict(mapping or {})

    # ------------------------------------------------------------------
    def __contains__(self, var: Variable) -> bool:
        return var in self._map

    def __getitem__(self, var: Variable) -> Term:
        return self._map[var]

    def __len__(self) -> int:
        return len(self._map)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Substitution):
            return NotImplemented
        return self._map == other._map

    def __repr__(self) -> str:
        pairs = ", ".join(f"{v}↦{t}" for v, t in sorted(self._map.items(), key=lambda p: p[0].name))
        return f"{{{pairs}}}"

    def items(self) -> Iterable[tuple[Variable, Term]]:
        """The (variable, term) bindings in the substitution."""
        return self._map.items()

    def as_dict(self) -> dict[Variable, Term]:
        """A defensive copy of the underlying mapping."""
        return dict(self._map)

    # ------------------------------------------------------------------
    def resolve(self, term: Term) -> Term:
        """Apply the substitution to a single term."""
        if isinstance(term, Variable):
            return self._map.get(term, term)
        return term

    def apply(self, atom: Atom) -> Atom:
        """Apply the substitution to every argument of ``atom``."""
        return atom.substitute(self._map)

    def bind(self, var: Variable, term: Term) -> None:
        """Extend the substitution with ``var -> term``, keeping solved form.

        Any earlier bindings whose range mentions ``var`` are rewritten so the
        substitution stays idempotent.
        """
        term = self.resolve(term)
        if term == var:
            return
        # Rewrite existing range occurrences of var.
        for key, value in list(self._map.items()):
            if value == var:
                self._map[key] = term
        self._map[var] = term

    def is_renaming(self) -> bool:
        """True iff the substitution maps variables bijectively to variables."""
        targets = list(self._map.values())
        return all(isinstance(t, Variable) for t in targets) and len(set(targets)) == len(targets)


def unify_terms(pairs: Sequence[tuple[Term, Term]]) -> Optional[Substitution]:
    """Unify a sequence of term pairs; return the mgu or ``None``.

    Function-free unification: constants unify only with themselves; a
    variable unifies with anything.
    """
    subst = Substitution()
    for left, right in pairs:
        left = subst.resolve(left)
        right = subst.resolve(right)
        if left == right:
            continue
        if isinstance(left, Variable):
            subst.bind(left, right)
        elif isinstance(right, Variable):
            subst.bind(right, left)
        else:
            return None  # two distinct constants
    return subst


def unify(a: Atom, b: Atom) -> Optional[Substitution]:
    """Return the most general unifier of two atoms, or ``None``.

    The atoms must share no variables for the result to be an mgu in the
    classical sense; :func:`rename_apart` one side first when in doubt (the
    rule/goal graph construction always renames rules apart).
    """
    if a.predicate != b.predicate or a.arity != b.arity:
        return None
    return unify_terms(list(zip(a.args, b.args)))


def variant_renaming(a: Atom, b: Atom) -> Optional[dict[Variable, Variable]]:
    """Return the variable bijection making ``a`` into ``b``, or ``None``.

    Two atoms are *variants* when each can be obtained from the other by a
    one-to-one renaming of variables.  Constants must match exactly, and
    repeated-variable patterns must agree (``p(X, X)`` is not a variant of
    ``p(X, Y)``).
    """
    if a.predicate != b.predicate or a.arity != b.arity:
        return None
    forward: dict[Variable, Variable] = {}
    backward: dict[Variable, Variable] = {}
    for ta, tb in zip(a.args, b.args):
        if isinstance(ta, Constant) or isinstance(tb, Constant):
            if ta != tb:
                return None
            continue
        # both variables
        if forward.get(ta, tb) != tb or backward.get(tb, ta) != ta:
            return None
        forward[ta] = tb
        backward[tb] = ta
    return forward


def is_variant(a: Atom, b: Atom) -> bool:
    """True iff ``a`` and ``b`` are equal up to a renaming of variables."""
    return variant_renaming(a, b) is not None


def match(pattern: Atom, fact: Atom) -> Optional[Substitution]:
    """One-way matching of ``pattern`` against a ground ``fact``.

    Returns the substitution binding the pattern's variables, or ``None`` if
    the fact does not match.  Used by the bottom-up baselines and the EDB
    leaf nodes when serving tuple requests.
    """
    if pattern.predicate != fact.predicate or pattern.arity != fact.arity:
        return None
    bindings: dict[Variable, Term] = {}
    for p, f in zip(pattern.args, fact.args):
        if isinstance(p, Constant):
            if p != f:
                return None
        else:
            bound = bindings.get(p)
            if bound is None:
                bindings[p] = f
            elif bound != f:
                return None
    return Substitution(bindings)


def rename_apart(atoms: Sequence[Atom], fresh: FreshVariables) -> tuple[list[Atom], dict[Variable, Variable]]:
    """Rename every variable in ``atoms`` to a brand-new variable.

    Returns the renamed atoms and the renaming used.  This implements the
    paper's "copy of the rule that began with all new variables".
    """
    variables: set[Variable] = set()
    for a in atoms:
        variables |= a.variable_set()
    renaming = fresh.rename_all(variables)
    return [a.substitute(renaming) for a in atoms], renaming
