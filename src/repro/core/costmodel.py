"""The Section 4.3 cost model: order-of-magnitude estimates for strategies.

The paper's "reasonable assumptions", asserting "a high degree of ignorance
about the relations in the EDB":

1. the relations of all subgoals are of comparable size, and large;
2. each bound argument reduces the relation size by an *order of magnitude*,
   with a corresponding reduction in retrieval cost (bound arguments function
   as selections);
3. the size of a join relation is the size of the cross product, reduced by
   one order of magnitude for each pair of join arguments (each pair of
   subgoal arguments containing the same variable);
4. the cost of computing a join is proportional to the sum of the sizes of
   the operands and the size of the result;
5. multiplicative log factors are ignored.

"Reduced by an order of magnitude" is defined in the footnote: the
*logarithm* is multiplied by a constant factor α < 1 (the same α throughout).
So a base relation of size n becomes n^α after one selection and n^(α²)
after two, and a join result is (|R|·|S|)^(α^p) for p join pairs.

All arithmetic is done on base-10 logarithms to stay stable for large n.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from .adornment import AdornedAtom, head_bound_variables
from .atoms import Atom
from .rules import Rule
from .sips import SipStrategy, sip_from_order
from .terms import Constant, Variable

__all__ = ["CostModel", "StageEstimate", "StrategyEstimate", "rank_orders", "best_order"]


@dataclass(frozen=True)
class StageEstimate:
    """Cost accounting for evaluating one subgoal in an order."""

    subgoal_index: int
    bound_arguments: int
    operand_log_size: float  # log10 of the (selected) subgoal relation
    join_pairs: int
    result_log_size: float  # log10 of the accumulated intermediate after the join
    stage_cost: float  # linear-domain: operands + result


@dataclass(frozen=True)
class StrategyEstimate:
    """Total model cost of one evaluation order for a rule."""

    order: tuple[int, ...]
    stages: tuple[StageEstimate, ...]
    total_cost: float
    peak_log_size: float

    def __str__(self) -> str:
        inner = " -> ".join(f"g{s.subgoal_index}" for s in self.stages)
        return f"[{inner}] cost≈{self.total_cost:.3g} peak≈1e{self.peak_log_size:.2f}"


@dataclass
class CostModel:
    """Parameters of the Section 4.3 model.

    ``alpha`` is the order-of-magnitude factor (the footnote's example uses
    0.3); ``base_size`` the common size n of all subgoal relations;
    ``binding_log_size`` the log10 size of the head-binding relation (the
    set of "d" bindings the head supplies — Definition 4.1 treats it as one
    of the join operands).

    ``log_sizes`` optionally replaces assumption 1 — "the relations of all
    subgoals are of comparable size" — with *observed* per-predicate log10
    cardinalities harvested from a live database (see
    :mod:`repro.core.planner`).  Predicates absent from the mapping (IDB
    predicates, empty relations) keep the ``base_size`` prior: the paper's
    "high degree of ignorance", applied locally.
    """

    alpha: float = 0.3
    base_size: float = 1.0e6
    binding_log_size: float = 1.0
    log_sizes: Optional[Mapping[str, float]] = None

    def __post_init__(self) -> None:
        if not 0 < self.alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if self.base_size <= 1:
            raise ValueError("base_size must exceed 1")

    # ------------------------------------------------------------------
    def base_log_size(self, predicate: Optional[str] = None) -> float:
        """log10 size of a subgoal relation before any selection."""
        if predicate is not None and self.log_sizes is not None:
            observed = self.log_sizes.get(predicate)
            if observed is not None:
                return observed
        return math.log10(self.base_size)

    def selected_log_size(
        self, bound_arguments: int, predicate: Optional[str] = None
    ) -> float:
        """log10 size of a base relation after ``bound_arguments`` selections."""
        return self.base_log_size(predicate) * (self.alpha ** bound_arguments)

    def join_log_size(self, left_log: float, right_log: float, pairs: int) -> float:
        """log10 size of a join: cross product cut by α per join pair."""
        return (left_log + right_log) * (self.alpha ** pairs)

    # ------------------------------------------------------------------
    def estimate_order(
        self, rule: Rule, head: AdornedAtom, order: Sequence[int]
    ) -> StrategyEstimate:
        """Model cost of evaluating ``rule``'s body in the given order.

        The accumulated intermediate starts as the head-binding relation; at
        each stage the next subgoal is retrieved with its currently-bound
        arguments selected and joined in; the stage cost is the sum of the
        operand sizes and the result size (assumption 4).
        """
        bound: set[Variable] = set(head_bound_variables(head))
        acc_log = self.binding_log_size
        acc_vars: set[Variable] = set(bound)
        total = 0.0
        peak = acc_log
        stages: list[StageEstimate] = []
        for index in order:
            subgoal = rule.body[index]
            sub_vars = subgoal.variable_set()
            bound_args = sum(
                1
                for term in subgoal.args
                if isinstance(term, Constant) or term in acc_vars
            )
            operand_log = self.selected_log_size(bound_args, subgoal.predicate)
            pairs = len(acc_vars & sub_vars)
            result_log = self.join_log_size(acc_log, operand_log, pairs)
            cost = 10.0 ** acc_log + 10.0 ** operand_log + 10.0 ** result_log
            total += cost
            peak = max(peak, result_log)
            stages.append(
                StageEstimate(index, bound_args, operand_log, pairs, result_log, cost)
            )
            acc_log = result_log
            acc_vars |= sub_vars
        return StrategyEstimate(tuple(order), tuple(stages), total, peak)

    def estimate_sip(self, strategy: SipStrategy) -> StrategyEstimate:
        """Model cost of a SIP strategy (its induced order)."""
        return self.estimate_order(strategy.rule, strategy.head_adornment, strategy.order)


def rank_orders(
    rule: Rule, head: AdornedAtom, model: Optional[CostModel] = None
) -> list[StrategyEstimate]:
    """All body permutations ranked by model cost (cheapest first).

    Exhaustive — meant for the paper-scale rules (≤ ~7 subgoals).
    """
    model = model or CostModel()
    estimates = [
        model.estimate_order(rule, head, order)
        for order in itertools.permutations(range(len(rule.body)))
    ]
    estimates.sort(key=lambda e: (e.total_cost, e.order))
    return estimates


def best_order(
    rule: Rule, head: AdornedAtom, model: Optional[CostModel] = None
) -> StrategyEstimate:
    """The model-optimal evaluation order for a rule."""
    if not rule.body:
        raise ValueError("rule has an empty body")
    return rank_orders(rule, head, model)[0]
