"""A Prolog-style concrete syntax for programs, rules, facts, and queries.

The paper presents programs in Prolog style ("Read '<-' as 'if'")::

    goal(Z) <- p(a, Z).
    p(X, Y) <- p(X, U), q(U, V), p(V, Y).
    p(X, Y) <- r(X, Y).

This module parses that syntax (accepting both ``<-`` and ``:-`` as the rule
arrow), plus ground facts (``r(a, b).``) and interactive queries
(``?- p(a, Z).``).  A query is desugared into a rule for the distinguished
predicate ``goal`` whose arguments are the query's free variables in order of
first occurrence, exactly as in Section 1.

Lexical conventions
-------------------
* Variables start with an uppercase letter or ``_``.
* Constants are lowercase identifiers, (signed) integers, or quoted strings.
* ``%`` and ``#`` start a comment running to end of line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Sequence

from .atoms import Atom
from .program import Program
from .rules import GOAL_PREDICATE, Rule
from .terms import Constant, Term, Variable

__all__ = [
    "ParseError",
    "parse_term",
    "parse_atom",
    "parse_rule",
    "parse_program",
    "query_to_rule",
]


class ParseError(ValueError):
    """Raised on malformed input, with line/column context."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>[%\#][^\n]*)
  | (?P<arrow><-|:-)
  | (?P<query>\?-)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<period>\.(?!\d))
  | (?P<int>-?\d+)
  | (?P<var>[A-Z_][A-Za-z0-9_]*)
  | (?P<name>[a-z][A-Za-z0-9_]*)
  | (?P<squote>'(?:[^'\\]|\\.)*')
  | (?P<dquote>"(?:[^"\\]|\\.)*")
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str
    text: str
    line: int
    column: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    line, line_start = 1, 0
    position = 0
    while position < len(source):
        m = _TOKEN_RE.match(source, position)
        if m is None:
            raise ParseError(
                f"unexpected character {source[position]!r}", line, position - line_start + 1
            )
        kind = m.lastgroup or ""
        text = m.group()
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, text, line, position - line_start + 1))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = position + text.rfind("\n") + 1
        position = m.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    def _peek(self) -> _Token | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            last = self._tokens[-1] if self._tokens else _Token("", "", 1, 1)
            raise ParseError("unexpected end of input", last.line, last.column)
        self._pos += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(f"expected {kind}, found {token.text!r}", token.line, token.column)
        return token

    def at_end(self) -> bool:
        return self._pos >= len(self._tokens)

    # ------------------------------------------------------------------
    def term(self) -> Term:
        token = self._next()
        if token.kind == "var":
            return Variable(token.text)
        if token.kind == "int":
            return Constant(int(token.text))
        if token.kind == "name":
            return Constant(token.text)
        if token.kind in ("squote", "dquote"):
            body = token.text[1:-1]
            body = body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")
            return Constant(body)
        raise ParseError(f"expected a term, found {token.text!r}", token.line, token.column)

    def atom(self) -> Atom:
        token = self._next()
        if token.kind not in ("name", "var"):
            raise ParseError(
                f"expected a predicate name, found {token.text!r}", token.line, token.column
            )
        if token.kind == "var":
            raise ParseError(
                f"predicate names must be lowercase, found {token.text!r}",
                token.line,
                token.column,
            )
        predicate = token.text
        args: list[Term] = []
        nxt = self._peek()
        if nxt is not None and nxt.kind == "lparen":
            self._next()
            args.append(self.term())
            while True:
                sep = self._next()
                if sep.kind == "rparen":
                    break
                if sep.kind != "comma":
                    raise ParseError(
                        f"expected ',' or ')', found {sep.text!r}", sep.line, sep.column
                    )
                args.append(self.term())
        return Atom(predicate, tuple(args))

    def atom_list(self) -> list[Atom]:
        atoms = [self.atom()]
        while (tok := self._peek()) is not None and tok.kind == "comma":
            self._next()
            atoms.append(self.atom())
        return atoms

    def clause(self) -> tuple[str, Rule | list[Atom]]:
        """Parse one statement; returns ('rule', Rule) or ('query', [Atom...])."""
        token = self._peek()
        assert token is not None
        if token.kind == "query":
            self._next()
            body = self.atom_list()
            self._expect("period")
            return ("query", body)
        head = self.atom()
        nxt = self._peek()
        if nxt is not None and nxt.kind == "arrow":
            self._next()
            body = self.atom_list()
            self._expect("period")
            return ("rule", Rule(head, tuple(body)))
        self._expect("period")
        return ("rule", Rule(head))


def parse_term(source: str) -> Term:
    """Parse a single term (variable or constant)."""
    parser = _Parser(_tokenize(source))
    result = parser.term()
    if not parser.at_end():
        tok = parser._peek()
        assert tok is not None
        raise ParseError(f"trailing input {tok.text!r}", tok.line, tok.column)
    return result


def parse_atom(source: str) -> Atom:
    """Parse a single atom such as ``p(X, a, 3)``."""
    parser = _Parser(_tokenize(source))
    result = parser.atom()
    if not parser.at_end():
        tok = parser._peek()
        assert tok is not None
        raise ParseError(f"trailing input {tok.text!r}", tok.line, tok.column)
    return result


def parse_rule(source: str) -> Rule:
    """Parse one rule or fact, e.g. ``p(X,Y) <- e(X,Y).`` or ``e(a,b).``."""
    parser = _Parser(_tokenize(source))
    kind, payload = parser.clause()
    if kind != "rule" or not isinstance(payload, Rule):
        raise ParseError("expected a rule, found a query", 1, 1)
    if not parser.at_end():
        tok = parser._peek()
        assert tok is not None
        raise ParseError(f"trailing input {tok.text!r}", tok.line, tok.column)
    return payload


def query_to_rule(body: Sequence[Atom]) -> Rule:
    """Desugar ``?- body`` into ``goal(Vars...) <- body`` (Section 1).

    The goal's arguments are the distinct variables of the query body in
    order of first occurrence, so every binding the user asked about is
    reported.
    """
    seen: list[Variable] = []
    for atom_ in body:
        for var in atom_.variables():
            if var not in seen:
                seen.append(var)
    head = Atom(GOAL_PREDICATE, tuple(seen))
    return Rule(head, tuple(body))


def parse_program(source: str, validate: bool = True) -> Program:
    """Parse a whole program: rules, facts, and ``?-`` queries.

    Ground bodyless clauses become EDB facts; everything else becomes an IDB
    rule; queries are desugared via :func:`query_to_rule`.
    """
    parser = _Parser(_tokenize(source))
    rules: list[Rule] = []
    facts: list[Atom] = []
    while not parser.at_end():
        kind, payload = parser.clause()
        if kind == "query":
            assert isinstance(payload, list)
            rules.append(query_to_rule(payload))
        else:
            assert isinstance(payload, Rule)
            if payload.is_fact and payload.head.is_ground():
                facts.append(payload.head)
            else:
                rules.append(payload)
    # A ground bodyless clause whose predicate is also defined by rules is an
    # IDB unit rule, not an EDB fact — Section 1 keeps the two vocabularies
    # disjoint ("no positive occurrence of a predicate that appears in the
    # EDB" among the rules).
    defined = {r.head.predicate for r in rules}
    edb_facts = [f for f in facts if f.predicate not in defined]
    for fact in facts:
        if fact.predicate in defined:
            rules.append(Rule(fact))
    return Program(rules, edb_facts, validate=validate)
