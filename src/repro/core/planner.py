"""Cost-model-driven join planning at graph-build time.

ROADMAP item 2's second half: the §4.3 cost model has been *benchmarked*
since the early PRs (``bench_claim_costmodel.py``) but never *used* — every
rule node evaluated its subgoals in the order the greedy structural SIP
produced, regardless of how large the relations actually are.  This module
closes the loop:

* :meth:`CostPlanner.from_database` harvests observed per-predicate log10
  cardinalities from the live :class:`~repro.relational.database.Database`
  and instantiates the :class:`~repro.core.costmodel.CostModel` with them
  (predicates the database does not hold — IDB predicates — keep the
  paper's ignorance prior);
* :meth:`CostPlanner.sip_factory` wraps :func:`~repro.core.costmodel.
  rank_orders` into a SIP factory: every rule instantiated during rule/goal
  graph construction gets the model-cheapest subgoal order, and the choice
  (with the ranked alternatives and their per-stage estimates) is recorded
  on a :class:`PlanReport` for ``QueryResult`` accounting and the
  ``repro explain`` CLI;
* :func:`size_fingerprint` buckets the observed sizes so the session's
  graph-cache key (Theorem 2.1 + the planner inputs) changes exactly when
  the EDB grows enough to possibly change a plan — order-of-magnitude
  steps, matching the model's own resolution.

Soundness: a rule/goal graph built under *any* subgoal order is a correct
evaluation strategy (Theorem 2.1 quantifies over SIPs); the planner only
changes which correct graph gets built.  Caching is what requires care —
two databases whose size buckets differ may plan differently, so the
bucketed fingerprint joins the cache key and a cached graph is reused only
when the plan inputs could not have changed the choice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..relational.database import Database
from .adornment import AdornedAtom
from .costmodel import CostModel, StrategyEstimate, rank_orders
from .rules import Rule
from .sips import SipStrategy, greedy_sip, sip_from_order

__all__ = ["CostPlanner", "PlanReport", "RulePlan", "size_fingerprint"]

#: Beyond this many subgoals the exhaustive ranking is skipped and the rule
#: keeps the greedy structural order (recorded as unplanned).
EXHAUSTIVE_LIMIT = 7

#: How many ranked alternatives each :class:`RulePlan` retains.
RANKED_KEPT = 5


def size_fingerprint(log_sizes: dict[str, float]) -> tuple:
    """Bucketed relation sizes: the planner-relevant digest of a database.

    Sizes enter at order-of-magnitude resolution (``round(log10)``) — the
    same granularity the §4.3 model reasons at — so adding a handful of
    facts does not churn the graph cache, while a relation growing past the
    next magnitude re-keys every graph whose plan could now differ.
    """
    return tuple(
        (predicate, round(log_size))
        for predicate, log_size in sorted(log_sizes.items())
    )


@dataclass(frozen=True)
class RulePlan:
    """The planner's decision for one rule instantiation.

    ``source_order_rank`` locates the textual (source) order inside the
    ranking — 0 means the planner agreed with the program author.
    """

    rule: str
    head: str
    chosen: StrategyEstimate
    ranked: tuple[StrategyEstimate, ...]
    source_order_rank: int
    planned: bool  # False: body too wide (or empty), greedy order kept

    @property
    def reordered(self) -> bool:
        """True when the chosen order differs from the source order."""
        return self.planned and self.chosen.order != tuple(
            range(len(self.chosen.order))
        )

    def render(self) -> str:
        """Multi-line description: the choice, then the ranked alternatives."""
        lines = [f"rule: {self.rule}", f"head: {self.head}"]
        if not self.planned:
            lines.append("  (not planned: empty or too-wide body; greedy order kept)")
            return "\n".join(lines)
        mark = "reordered" if self.reordered else "source order confirmed"
        lines.append(f"  chosen: {self.chosen} ({mark})")
        for position, estimate in enumerate(self.ranked):
            tag = "*" if estimate.order == self.chosen.order else " "
            lines.append(f"  {tag} #{position + 1} {estimate}")
            for stage in estimate.stages:
                lines.append(
                    f"      g{stage.subgoal_index}: bound={stage.bound_arguments} "
                    f"operand≈1e{stage.operand_log_size:.2f} "
                    f"pairs={stage.join_pairs} "
                    f"result≈1e{stage.result_log_size:.2f} "
                    f"cost≈{stage.stage_cost:.3g}"
                )
        return "\n".join(lines)


@dataclass
class PlanReport:
    """Everything the cost planner decided while a graph was built."""

    fingerprint: tuple = ()
    plans: list[RulePlan] = field(default_factory=list)

    @property
    def planned_count(self) -> int:
        return sum(1 for plan in self.plans if plan.planned)

    @property
    def reordered_count(self) -> int:
        return sum(1 for plan in self.plans if plan.reordered)

    def oneline(self) -> str:
        """The one-line summary ``QueryResult.summary()`` embeds."""
        return (
            f"cost ({self.planned_count} rules planned, "
            f"{self.reordered_count} reordered)"
        )

    def render(self) -> str:
        """The full report the ``repro explain`` subcommand prints."""
        sizes = ", ".join(
            f"{predicate}≈1e{bucket}" for predicate, bucket in self.fingerprint
        )
        lines = [
            f"cost planner: {self.planned_count} rules planned, "
            f"{self.reordered_count} reordered",
            f"observed EDB sizes: {sizes or '(none)'}",
        ]
        for plan in self.plans:
            lines.append("")
            lines.append(plan.render())
        return "\n".join(lines)


class CostPlanner:
    """Chooses each rule's subgoal order with the observed-size cost model."""

    def __init__(self, model: CostModel, fingerprint: tuple = ()) -> None:
        self.model = model
        self.report = PlanReport(fingerprint=fingerprint)
        self._seen: set[tuple] = set()

    @classmethod
    def from_database(
        cls,
        database: Optional[Database],
        alpha: float = 0.3,
        base_size: float = 1.0e6,
    ) -> "CostPlanner":
        """Harvest observed cardinalities; unknown predicates keep the prior."""
        log_sizes: dict[str, float] = {}
        if database is not None:
            for predicate in database.predicates():
                cardinality = len(database.relation(predicate))
                if cardinality > 0:
                    # Clamp at 2 rows so log10 stays positive and a selection
                    # (multiplying the log by alpha) still *shrinks* it.
                    log_sizes[predicate] = math.log10(max(cardinality, 2))
        model = CostModel(alpha=alpha, base_size=base_size, log_sizes=log_sizes)
        return cls(model, size_fingerprint(log_sizes))

    # ------------------------------------------------------------------
    def plan_rule(self, rule: Rule, head: AdornedAtom) -> SipStrategy:
        """The SIP for one rule instantiation, recording the decision."""
        arity = len(rule.body)
        if arity == 0 or arity > EXHAUSTIVE_LIMIT:
            self._record(
                RulePlan(
                    rule=str(rule),
                    head=str(head),
                    chosen=self.model.estimate_order(rule, head, range(arity)),
                    ranked=(),
                    source_order_rank=0,
                    planned=False,
                )
            )
            return greedy_sip(rule, head)
        ranked = rank_orders(rule, head, self.model)
        chosen = ranked[0]
        source = tuple(range(arity))
        source_rank = next(
            i for i, estimate in enumerate(ranked) if estimate.order == source
        )
        self._record(
            RulePlan(
                rule=str(rule),
                head=str(head),
                chosen=chosen,
                ranked=tuple(ranked[:RANKED_KEPT]),
                source_order_rank=source_rank,
                planned=True,
            )
        )
        return sip_from_order(rule, head, chosen.order)

    def _record(self, plan: RulePlan) -> None:
        key = (plan.rule, plan.head)
        if key in self._seen:
            return  # the same (rule, adornment) instantiated again
        self._seen.add(key)
        self.report.plans.append(plan)

    def sip_factory(self):
        """A SIP factory for ``build_rule_goal_graph`` / the engine."""

        def factory(rule: Rule, head: AdornedAtom) -> SipStrategy:
            return self.plan_rule(rule, head)

        # A stable name helps debugging; the graph-cache key uses the
        # planner marker + fingerprint, never this closure's identity.
        factory.__name__ = "cost_planner_sip"
        factory.__qualname__ = "CostPlanner.sip_factory.<locals>.cost_planner_sip"
        return factory
