"""The monotone flow property (Section 4) and qual-tree composition.

Information passing can be viewed as function evaluation: "c" and "d"
arguments are inputs and "f" arguments outputs.  The **monotone flow
property** (Definition 4.2) holds for a rule, with given head binding
classes, when its *evaluation hypergraph* (Definition 4.1) is α-acyclic:

* one hypergraph vertex per variable of the rule;
* the hyperedge of the head holds the head's bound ("c"/"d") variables —
  written ``head^b`` in the paper;
* the hyperedge of each subgoal holds all variables of that subgoal.

When acyclic, Graham reduction exhibits a **qual tree** rooted at the head;
directing its edges away from the root yields a greedy SIP (Theorem 4.1).
Qual trees *compose* under resolution on a leaf subgoal (Theorem 4.2), which
is how monotone flow can transmit through recursive expansions (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .adornment import (
    CONSTANT,
    DYNAMIC,
    AdornedAtom,
    head_bound_variables,
)
from .atoms import Atom
from .hypergraph import Hypergraph, QualTree
from .rules import Rule
from .sips import HEAD, SipArc, SipStrategy, is_greedy
from .terms import Constant, FreshVariables, Variable
from .unify import Substitution, unify

__all__ = [
    "HEAD_LABEL",
    "subgoal_label",
    "evaluation_hypergraph",
    "has_monotone_flow",
    "rule_qual_tree",
    "qual_tree_sip",
    "ExtendedRule",
    "extend_rule",
    "compose_qual_trees",
    "recursive_leaf_subgoals",
]

#: Label of the head hyperedge (the paper's ``head^b`` / ``p^b``).
HEAD_LABEL = "head"


def subgoal_label(index: int) -> str:
    """Canonical hyperedge label for subgoal ``index``: ``g0``, ``g1``, ..."""
    return f"g{index}"


def evaluation_hypergraph(rule: Rule, head: AdornedAtom) -> Hypergraph:
    """The evaluation hypergraph of Definition 4.1.

    "Evaluating the rule for the bindings in the head can be viewed as
    evaluating a join expression in which the bindings in the head are one
    relation and the subgoals are the remaining relations."
    """
    if head.atom != rule.head:
        raise ValueError(f"adorned head {head} does not match rule head {rule.head}")
    edges: dict[str, set[Variable]] = {HEAD_LABEL: set(head_bound_variables(head))}
    for i, sub in enumerate(rule.body):
        edges[subgoal_label(i)] = set(sub.variable_set())
    return Hypergraph(edges)


def has_monotone_flow(rule: Rule, head: AdornedAtom) -> bool:
    """Definition 4.2: the evaluation hypergraph is α-acyclic."""
    return evaluation_hypergraph(rule, head).is_acyclic()


def rule_qual_tree(rule: Rule, head: AdornedAtom) -> Optional[QualTree]:
    """The qual tree of the rule, rooted at the head — or ``None`` if cyclic."""
    result = evaluation_hypergraph(rule, head).gyo_reduction()
    if not result.acyclic:
        return None
    return result.qual_tree(HEAD_LABEL)


def qual_tree_sip(rule: Rule, head: AdornedAtom) -> Optional[SipStrategy]:
    """The SIP obtained by directing qual tree edges away from the root.

    Returns ``None`` when the rule lacks the monotone flow property.  The
    induced evaluation order schedules, among the tree frontier, the subgoal
    with the most bound argument positions first — the selection rule used in
    the proof of Theorem 4.1, which guarantees the result :func:`is greedy
    <repro.core.sips.is_greedy>`.
    """
    tree = rule_qual_tree(rule, head)
    if tree is None:
        return None
    children = tree.children_map()
    parents = tree.parent_map()

    def label_index(label: object) -> int:
        assert isinstance(label, str) and label.startswith("g")
        return int(label[1:])

    from .sips import bound_score

    bound: set[Variable] = set(head_bound_variables(head))
    frontier: list[str] = [str(c) for c in children[HEAD_LABEL]]
    order: list[int] = []
    arcs: list[SipArc] = []

    while frontier:
        best = max(
            frontier,
            key=lambda l: (bound_score(rule.body[label_index(l)], bound), -label_index(l)),
        )
        frontier.remove(best)
        index = label_index(best)
        order.append(index)
        parent = parents[best]
        parent_index = HEAD if parent == HEAD_LABEL else label_index(str(parent))
        parent_vars = (
            head_bound_variables(head)
            if parent == HEAD_LABEL
            else rule.body[parent_index].variable_set()
        )
        shared = frozenset(rule.body[index].variable_set() & parent_vars & bound)
        if shared:
            arcs.append(SipArc(parent_index, index, shared))
        bound |= rule.body[index].variable_set()
        frontier.extend(str(c) for c in children[best])
    return SipStrategy(rule, head, tuple(arcs), tuple(order))


# ----------------------------------------------------------------------
# Rule extension by resolution and qual-tree composition (§4.2)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ExtendedRule:
    """The result of resolving an upper rule with a lower rule on a subgoal.

    Attributes
    ----------
    rule:
        The extended rule: the resolved subgoal replaced, in place, by the
        (unified) body of the lower rule.
    head:
        The extended rule's adorned head — "the argument bindings for the
        head of the extended rule be the same as R_v" (§4.2).
    mgu:
        The unifier of the lower head with the resolved subgoal.
    upper_applied / lower_applied:
        Both parent rules after the mgu is applied (lower renamed apart
        first).
    resolved_index:
        Index of the replaced subgoal in the upper rule.
    """

    rule: Rule
    head: AdornedAtom
    mgu: Substitution
    upper_applied: Rule
    lower_applied: Rule
    resolved_index: int

    def extended_index(self, upper_index: int) -> int:
        """Map an upper-rule subgoal index into the extended rule."""
        if upper_index == self.resolved_index:
            raise ValueError("the resolved subgoal has no image in the extension")
        if upper_index < self.resolved_index:
            return upper_index
        return upper_index + len(self.lower_applied.body) - 1

    def lower_extended_index(self, lower_index: int) -> int:
        """Map a lower-rule subgoal index into the extended rule."""
        return self.resolved_index + lower_index


def extend_rule(
    upper: Rule,
    subgoal_index: int,
    lower: Rule,
    fresh: FreshVariables | None = None,
) -> ExtendedRule:
    """Resolve ``upper`` with ``lower`` on ``upper.body[subgoal_index]``.

    "First unify the head of R_w with subgoal p, then replace p in R_v by the
    subgoals of R_w" (§4.2).  The lower rule is renamed apart first.  The
    head adornment of the extension mirrors the upper head's: constants "c",
    everything else keeps its original class.
    """
    fresh = fresh or FreshVariables()
    subgoal = upper.body[subgoal_index]
    lower_renamed = lower.rename_apart(fresh)
    theta = unify(lower_renamed.head, subgoal)
    if theta is None:
        raise ValueError(f"{lower_renamed.head} does not unify with {subgoal}")
    upper_applied = upper.substitute(theta.as_dict())
    lower_applied = lower_renamed.substitute(theta.as_dict())
    body = (
        upper_applied.body[:subgoal_index]
        + lower_applied.body
        + upper_applied.body[subgoal_index + 1 :]
    )
    return ExtendedRule(
        rule=Rule(upper_applied.head, body),
        head=_transfer_adornment(upper_applied.head, None),
        mgu=theta,
        upper_applied=upper_applied,
        lower_applied=lower_applied,
        resolved_index=subgoal_index,
    )


def _transfer_adornment(atom: Atom, letters: Optional[Sequence[str]]) -> AdornedAtom:
    """Adorn ``atom`` with ``letters``, repairing positions the mgu grounded.

    Any position now holding a constant must be "c"; variable positions keep
    the given class (defaulting "d" for none supplied is wrong, so when
    ``letters`` is ``None`` variables default to "f").
    """
    from .adornment import EXISTENTIAL, FREE

    result = []
    for i, term in enumerate(atom.args):
        wanted = letters[i] if letters is not None else FREE
        if isinstance(term, Constant):
            result.append(CONSTANT)
        elif wanted == CONSTANT:
            result.append(DYNAMIC)
        else:
            result.append(wanted)
    return AdornedAtom(atom, tuple(result))


def extend_adorned(
    upper: Rule,
    upper_head: AdornedAtom,
    subgoal_index: int,
    lower: Rule,
    fresh: FreshVariables | None = None,
) -> ExtendedRule:
    """Like :func:`extend_rule`, carrying the upper head's adornment through."""
    extension = extend_rule(upper, subgoal_index, lower, fresh)
    head = _transfer_adornment(extension.upper_applied.head, upper_head.adornment)
    return ExtendedRule(
        rule=extension.rule,
        head=head,
        mgu=extension.mgu,
        upper_applied=extension.upper_applied,
        lower_applied=extension.lower_applied,
        resolved_index=subgoal_index,
    )


def compose_qual_trees(
    upper: Rule,
    upper_head: AdornedAtom,
    subgoal_index: int,
    lower: Rule,
    fresh: FreshVariables | None = None,
) -> tuple[ExtendedRule, QualTree]:
    """Theorem 4.2: compose the qual trees of two monotone rules.

    Requires that both rules have the monotone flow property (for the binding
    patterns induced by the upper rule's qual-tree SIP) and that the resolved
    subgoal is a **leaf** of the upper qual tree.  The composition "attaches
    the neighbors of the root p^b of the qual tree of w to the parent of the
    resolved leaf p in the qual tree of u, removing both p^b and p".

    Returns the extended rule and its composed qual tree; the theorem (tested
    in the suite) asserts the result is a qual tree for the extended rule.
    """
    from .sips import adorn_body

    upper_sip = qual_tree_sip(upper, upper_head)
    if upper_sip is None:
        raise ValueError("upper rule lacks the monotone flow property")
    upper_tree = rule_qual_tree(upper, upper_head)
    assert upper_tree is not None
    leaf = subgoal_label(subgoal_index)
    if leaf not in upper_tree.leaves():
        raise ValueError(f"subgoal {subgoal_index} is not a leaf of the upper qual tree")

    adorned_subgoals = adorn_body(upper_sip)
    subgoal_adornment = adorned_subgoals[subgoal_index].adornment

    extension = extend_adorned(upper, upper_head, subgoal_index, lower, fresh)

    # Lower rule's qual tree, for the head binding pattern the subgoal imposes,
    # computed on the mgu-applied copy so vertex sets are the extended rule's.
    lower_head = _transfer_adornment(extension.lower_applied.head, subgoal_adornment)
    lower_tree = rule_qual_tree(extension.lower_applied, lower_head)
    if lower_tree is None:
        raise ValueError("lower rule lacks the monotone flow property for this binding")

    upper_applied_tree = rule_qual_tree(extension.upper_applied, extension.head)
    if upper_applied_tree is None:
        # The mgu can only merge variables already connected through p, so
        # this should not happen for well-formed inputs; guard anyway.
        raise ValueError("upper rule lost monotone flow after unification")

    # --- splice ---------------------------------------------------------
    nodes: dict[object, frozenset] = {}
    adjacency: dict[object, set[object]] = {}

    def upper_new_label(label: object) -> object:
        if label == HEAD_LABEL:
            return HEAD_LABEL
        index = int(str(label)[1:])
        return subgoal_label(extension.extended_index(index))

    def lower_new_label(label: object) -> object:
        index = int(str(label)[1:])
        return subgoal_label(extension.lower_extended_index(index))

    for label, vertices in upper_applied_tree.nodes.items():
        if label == leaf:
            continue
        nodes[upper_new_label(label)] = vertices
        adjacency[upper_new_label(label)] = set()
    for label, vertices in lower_tree.nodes.items():
        if label == HEAD_LABEL:
            continue
        nodes[lower_new_label(label)] = vertices
        adjacency[lower_new_label(label)] = set()

    parent_of_leaf = upper_new_label(upper_applied_tree.parent_map()[leaf])
    for a, neighbors in upper_applied_tree.adjacency.items():
        for b in neighbors:
            if leaf in (a, b):
                continue
            adjacency[upper_new_label(a)].add(upper_new_label(b))
    for a, neighbors in lower_tree.adjacency.items():
        for b in neighbors:
            if HEAD_LABEL in (a, b):
                continue
            adjacency[lower_new_label(a)].add(lower_new_label(b))
    for neighbor in lower_tree.adjacency[HEAD_LABEL]:
        new = lower_new_label(neighbor)
        adjacency[new].add(parent_of_leaf)
        adjacency[parent_of_leaf].add(new)

    composed = QualTree(nodes, adjacency, HEAD_LABEL)
    return extension, composed


def recursive_leaf_subgoals(rule: Rule, head: AdornedAtom) -> list[int]:
    """Subgoal indices sharing the head's predicate that are qual tree leaves.

    When every recursive subgoal is a leaf, Theorem 4.2 applies to each
    recursive expansion, so the monotone flow property "might be transmitted
    to all recursive extensions of the rule" (§4.2).
    """
    tree = rule_qual_tree(rule, head)
    if tree is None:
        return []
    leaves = set(tree.leaves())
    return [
        i
        for i, sub in enumerate(rule.body)
        if sub.predicate == rule.head.predicate and subgoal_label(i) in leaves
    ]
