"""Horn clause rules.

A *rule* (Section 1) is a definite Horn clause: one positive literal (the
head) and zero or more negative literals (the subgoals).  The paper writes
rules in Prolog style with the head on the left::

    p(X, Y) <- p(X, U), q(U, V), p(V, Y).

Facts are rules with an empty body and a ground head.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from .atoms import Atom
from .terms import Constant, FreshVariables, Term, Variable
from .unify import rename_apart

__all__ = ["Rule", "GOAL_PREDICATE"]

#: The distinguished predicate of the query rules (Section 1): it never
#: appears negatively, and the answer to the query is its portion of the
#: minimum model.
GOAL_PREDICATE = "goal"


@dataclass(frozen=True)
class Rule:
    """A definite Horn clause ``head <- body``.

    ``Rule`` is immutable and hashable; the rule/goal graph stores renamed
    copies rather than mutating rules in place.
    """

    head: Atom
    body: tuple[Atom, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.head, Atom):
            raise TypeError("rule head must be an Atom")
        for sub in self.body:
            if not isinstance(sub, Atom):
                raise TypeError("rule subgoals must be Atoms")

    # ------------------------------------------------------------------
    @property
    def is_fact(self) -> bool:
        """True iff the rule has an empty body."""
        return not self.body

    def variables(self) -> set[Variable]:
        """All distinct variables occurring anywhere in the rule."""
        result = self.head.variable_set()
        for sub in self.body:
            result |= sub.variable_set()
        return result

    def body_variables(self) -> set[Variable]:
        """Distinct variables occurring in the body."""
        result: set[Variable] = set()
        for sub in self.body:
            result |= sub.variable_set()
        return result

    def is_safe(self) -> bool:
        """Range restriction: every head variable must occur in the body.

        Safety guarantees the minimum model restricted to any predicate is a
        finite relation over the constants of the system, which the whole
        framework presumes.
        """
        return self.head.variable_set() <= self.body_variables()

    def predicates(self) -> set[str]:
        """All predicate symbols used by the rule (head and body)."""
        return {self.head.predicate, *(s.predicate for s in self.body)}

    def body_predicates(self) -> set[str]:
        """Predicate symbols occurring in the body."""
        return {s.predicate for s in self.body}

    # ------------------------------------------------------------------
    def substitute(self, mapping: Mapping[Variable, Term]) -> "Rule":
        """Apply a substitution to head and every subgoal."""
        return Rule(self.head.substitute(mapping), tuple(s.substitute(mapping) for s in self.body))

    def rename_apart(self, fresh: FreshVariables) -> "Rule":
        """Return a copy of the rule with all-new variables (Section 2.1)."""
        atoms, _ = rename_apart([self.head, *self.body], fresh)
        return Rule(atoms[0], tuple(atoms[1:]))

    def singleton_variables(self) -> set[Variable]:
        """Variables occurring exactly once in the whole rule.

        A variable occurring in one subgoal and nowhere else is classified
        "e" (existential) by the information-passing construction
        (Section 2.2): its value will not be transmitted.
        """
        counts: dict[Variable, int] = {}
        for atom_ in (self.head, *self.body):
            for term in atom_.args:
                if isinstance(term, Variable):
                    counts[term] = counts.get(term, 0) + 1
        return {v for v, n in counts.items() if n == 1}

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        if self.is_fact:
            return f"{self.head}."
        body = ", ".join(str(s) for s in self.body)
        return f"{self.head} <- {body}."

    def __repr__(self) -> str:
        return f"Rule({str(self)!r})"
