"""Statistics-driven information passing — the §3.1 extension, implemented.

"The basic set [of messages] can be extended in order to pass optimization
information, offering the possibility of taking advantage of statistics on
the EDB and using various heuristics."  The paper's default (greedy)
strategy deliberately assumes "a high degree of ignorance about the
relations in the EDB" (§4.3); this module drops that assumption:

* :class:`EdbStatistics` gathers per-relation cardinalities and per-column
  distinct counts from the actual database;
* :class:`CardinalityModel` estimates the cost of an evaluation order from
  them (uniformity-assumption selectivities, System-R style);
* :func:`statistics_sip` wraps both into a SIP factory the engine can use in
  place of :func:`~repro.core.sips.greedy_sip` — small/selective subgoals are
  scheduled early regardless of the purely structural greedy score.

The ablation benchmark (``benchmarks/bench_claim_statistics.py``) measures
when statistics beat the structural heuristic and by how much.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..relational.database import Database
from .adornment import AdornedAtom, head_bound_variables
from .atoms import Atom
from .rules import Rule
from .sips import SipStrategy, greedy_sip, sip_from_order
from .terms import Constant, Variable

__all__ = ["EdbStatistics", "CardinalityModel", "statistics_sip"]


@dataclass(frozen=True)
class RelationStats:
    """Summary statistics of one stored relation."""

    cardinality: int
    distinct_per_position: tuple[int, ...]


@dataclass
class EdbStatistics:
    """Per-predicate statistics harvested from a database.

    Predicates absent from the statistics (IDB predicates, empty relations)
    fall back to ``default_cardinality`` with ``default_distinct`` distinct
    values per column — the ignorance assumption, locally.
    """

    relations: dict[str, RelationStats] = field(default_factory=dict)
    default_cardinality: int = 1000
    default_distinct: int = 30

    @classmethod
    def from_database(
        cls,
        database: Database,
        default_cardinality: int = 1000,
        default_distinct: int = 30,
    ) -> "EdbStatistics":
        """One scan per relation: sizes and per-column distinct counts."""
        stats = cls(
            default_cardinality=default_cardinality,
            default_distinct=default_distinct,
        )
        for predicate in database.predicates():
            relation = database.relation(predicate)
            distinct = tuple(
                len(relation.distinct_values(column)) for column in relation.columns
            )
            stats.relations[predicate] = RelationStats(len(relation), distinct)
        return stats

    def cardinality(self, predicate: str) -> int:
        """Row count, or the default for unknown predicates."""
        entry = self.relations.get(predicate)
        return entry.cardinality if entry else self.default_cardinality

    def distinct(self, predicate: str, position: int) -> int:
        """Distinct values at one position (≥ 1), or the default."""
        entry = self.relations.get(predicate)
        if entry is None or position >= len(entry.distinct_per_position):
            return self.default_distinct
        return max(1, entry.distinct_per_position[position])


@dataclass
class CardinalityModel:
    """Order-cost estimation from real statistics (uniformity assumption).

    Evaluating a subgoal with a set of bound argument positions retrieves
    about ``cardinality / Π distinct(position)`` rows per binding; the
    accumulated binding-set size multiplies through the stages, and the cost
    of a stage is the paper's §4.3 rule — operands plus result.
    """

    statistics: EdbStatistics

    def subgoal_rows_per_binding(self, subgoal: Atom, bound: set[Variable]) -> float:
        """Estimated matching rows for one binding of the bound arguments."""
        selectivity = 1.0
        for position, term in enumerate(subgoal.args):
            if isinstance(term, Constant) or term in bound:
                selectivity /= self.statistics.distinct(subgoal.predicate, position)
        return max(
            self.statistics.cardinality(subgoal.predicate) * selectivity, 0.001
        )

    def estimate_order(
        self, rule: Rule, head: AdornedAtom, order: tuple[int, ...]
    ) -> float:
        """Total §4.3-style cost of evaluating the body in ``order``."""
        bound: set[Variable] = set(head_bound_variables(head))
        accumulated = 1.0  # one head binding at a time
        total = 0.0
        for index in order:
            subgoal = rule.body[index]
            per_binding = self.subgoal_rows_per_binding(subgoal, bound)
            result = accumulated * per_binding
            total += accumulated + per_binding * max(accumulated, 1.0) + result
            accumulated = max(result, 0.001)
            bound |= subgoal.variable_set()
        return total

    def best_order(
        self, rule: Rule, head: AdornedAtom, exhaustive_limit: int = 7
    ) -> tuple[int, ...]:
        """The cheapest order: exhaustive for small bodies, greedy beyond."""
        n = len(rule.body)
        if n == 0:
            return ()
        if n <= exhaustive_limit:
            return min(
                itertools.permutations(range(n)),
                key=lambda order: (self.estimate_order(rule, head, order), order),
            )
        # Greedy-by-estimate fallback for very wide rules.
        bound: set[Variable] = set(head_bound_variables(head))
        remaining = list(range(n))
        order: list[int] = []
        while remaining:
            best = min(
                remaining,
                key=lambda i: (self.subgoal_rows_per_binding(rule.body[i], bound), i),
            )
            remaining.remove(best)
            order.append(best)
            bound |= rule.body[best].variable_set()
        return tuple(order)


def statistics_sip(
    statistics: EdbStatistics, exhaustive_limit: int = 7
):
    """A SIP factory that orders subgoals by estimated cost.

    Usage::

        stats = EdbStatistics.from_database(Database.from_facts(program.facts))
        result = evaluate(program, sip_factory=statistics_sip(stats))
    """
    model = CardinalityModel(statistics)

    def factory(rule: Rule, head: AdornedAtom) -> SipStrategy:
        if not rule.body:
            return greedy_sip(rule, head)
        order = model.best_order(rule, head, exhaustive_limit)
        return sip_from_order(rule, head, order)

    return factory
