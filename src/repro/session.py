"""A convenience session API: one knowledge base, many queries.

The paper's IDB is split into the *permanent* IDB and per-query rules
(Section 1): the PIDB and EDB persist while queries come and go.
:class:`Session` mirrors that: construct it once with rules and facts, then
call :meth:`query` with goal atoms.  Each query builds its own
information-passing rule/goal graph (binding patterns depend on the query's
constants) but shares the parsed program and the loaded EDB.

>>> from repro.session import Session
>>> s = Session('''
...     anc(X, Y) <- par(X, Y).
...     anc(X, Y) <- par(X, U), anc(U, Y).
...     par(ann, bob).  par(bob, cal).
... ''')
>>> sorted(s.query("anc(ann, Z)"))
[('bob',), ('cal',)]
>>> s.ask("anc(ann, cal)")
True
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from .core.atoms import Atom
from .core.parser import _Parser, _tokenize, parse_program, query_to_rule
from .core.program import Program
from .core.rulegoal import SipFactory
from .core.rules import GOAL_PREDICATE, Rule
from .core.sips import greedy_sip
from .network.engine import QueryResult, evaluate

__all__ = ["Session"]


def _parse_query_atoms(query: Union[str, Atom, Sequence[Atom]]) -> list[Atom]:
    if isinstance(query, Atom):
        return [query]
    if isinstance(query, str):
        parser = _Parser(_tokenize(query.rstrip(". \n") + "."))
        return parser.atom_list()
    return list(query)


class Session:
    """A permanent IDB + EDB against which queries are evaluated on demand."""

    def __init__(
        self,
        source: Union[str, Program],
        sip_factory: SipFactory = greedy_sip,
        coalesce: bool = False,
        package_requests: bool = False,
        provenance: bool = False,
    ) -> None:
        if isinstance(source, Program):
            program = source
        else:
            program = parse_program(source)
        # Strip any goal rules: the session supplies queries itself.
        self._rules = tuple(
            r for r in program.rules if r.head.predicate != GOAL_PREDICATE
        )
        self._facts = tuple(program.facts)
        self.sip_factory = sip_factory
        self.coalesce = coalesce
        self.package_requests = package_requests
        self.provenance = provenance
        self.last_result: Optional[QueryResult] = None
        self._last_engine = None

    # ------------------------------------------------------------------
    def program_for(self, query: Union[str, Atom, Sequence[Atom]]) -> Program:
        """The program (PIDB + EDB + desugared query) a query induces."""
        atoms = _parse_query_atoms(query)
        rules = list(self._rules)
        rules.append(query_to_rule(atoms))
        return Program(rules, self._facts)

    def query(
        self, query: Union[str, Atom, Sequence[Atom]], seed: Optional[int] = None
    ) -> set[tuple]:
        """Evaluate; answers are tuples over the query's free variables.

        Variable order follows first occurrence in the query, exactly as the
        ``?-`` syntax.  The full :class:`QueryResult` (messages, protocol
        statistics, the graph) is kept in :attr:`last_result`.
        """
        from .network.engine import MessagePassingEngine

        engine = MessagePassingEngine(
            self.program_for(query),
            sip_factory=self.sip_factory,
            seed=seed,
            coalesce=self.coalesce,
            package_requests=self.package_requests,
            provenance=self.provenance,
        )
        result = engine.run()
        self.last_result = result
        self._last_engine = engine
        return result.answers

    def ask(self, query: Union[str, Atom, Sequence[Atom]]) -> bool:
        """Boolean query: is the (possibly non-ground) query satisfiable?"""
        return bool(self.query(query))

    def explain(self, row: tuple):
        """Proof tree for an answer of the *last* query (needs provenance).

        Construct the session with ``provenance=True``; returns a
        :class:`~repro.network.provenance.Derivation`.
        """
        if self._last_engine is None:
            raise RuntimeError("no query has been evaluated yet")
        return self._last_engine.explain(row)

    def add_facts(self, facts: Iterable[Atom]) -> None:
        """Extend the EDB (subsequent queries see the new facts)."""
        self._facts = self._facts + tuple(facts)

    def add_rules(self, source: Union[str, Iterable[Rule]]) -> None:
        """Extend the permanent IDB with more rules."""
        if isinstance(source, str):
            parsed = parse_program(source, validate=False)
            new_rules: tuple[Rule, ...] = tuple(parsed.rules)
            if parsed.facts:
                self._facts = self._facts + tuple(parsed.facts)
        else:
            new_rules = tuple(source)
        self._rules = self._rules + tuple(
            r for r in new_rules if r.head.predicate != GOAL_PREDICATE
        )
        # Re-validate the combined program eagerly for a clear error site.
        Program(self._rules, self._facts)

    @property
    def rules(self) -> tuple[Rule, ...]:
        """The permanent IDB."""
        return self._rules

    @property
    def facts(self) -> tuple[Atom, ...]:
        """The extensional database."""
        return self._facts
