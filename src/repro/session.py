"""A convenience session API: one knowledge base, many queries.

The paper's IDB is split into the *permanent* IDB and per-query rules
(Section 1): the PIDB and EDB persist while queries come and go.
:class:`Session` mirrors that — and treats it as a serving architecture.
Construct it once with rules and facts, then call :meth:`query` with goal
atoms.  Two layers persist across queries:

* **the EDB**: one shared, index-preserving
  :class:`~repro.relational.database.Database` is built at construction
  and handed to every engine, so :class:`~repro.relational.relation.Relation`
  hash indexes survive from query to query (``add_facts`` extends them
  incrementally instead of rebuilding);
* **the rule/goal graph**: Theorem 2.1 makes the information-passing
  graph depend only on the IDB and the query's variant signature — never
  on the EDB — so graphs are cached in a bounded LRU
  (:class:`~repro.cache.GraphCache`) keyed by
  :func:`~repro.core.rulegoal.graph_cache_key` and reused across queries
  *and* across ``add_facts``.  ``add_rules`` flushes the graph cache.

Each :class:`~repro.network.engine.QueryResult` reports per-query database
counters (the engine snapshots the shared counters at ``run()`` start)
plus the cache outcome in ``graph_cache_hit`` / ``cache_stats``.

>>> from repro.session import Session
>>> s = Session('''
...     anc(X, Y) <- par(X, Y).
...     anc(X, Y) <- par(X, U), anc(U, Y).
...     par(ann, bob).  par(bob, cal).
... ''')
>>> sorted(s.query("anc(ann, Z)"))
[('bob',), ('cal',)]
>>> s.ask("anc(ann, cal)")
True
>>> s.query("anc(ann, W)") == s.query("anc(ann, Z)")  # graph-cache hit
True
>>> s.last_result.graph_cache_hit
True
"""

from __future__ import annotations

import math
import threading
import weakref
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from .cache import CacheStats, GraphCache
from .core.atoms import Atom
from .core.parser import _Parser, _tokenize, parse_program, query_to_rule
from .core.program import Program, ProgramError
from .core.rulegoal import (
    RuleGoalGraph,
    SipFactory,
    build_rule_goal_graph,
    graph_cache_key,
    rule_set_fingerprint,
)
from .core.rules import GOAL_PREDICATE, Rule
from .core.sips import greedy_sip
from .network.engine import QueryResult, evaluate
from .relational.database import Database

__all__ = ["Session", "PreparedQuery", "MaterializedQuery", "MaterializedQueryClosed"]


def _parse_query_atoms(query: Union[str, Atom, Sequence[Atom]]) -> list[Atom]:
    if isinstance(query, Atom):
        return [query]
    if isinstance(query, str):
        parser = _Parser(_tokenize(query.rstrip(". \n") + "."))
        return parser.atom_list()
    return list(query)


@dataclass(frozen=True)
class PreparedQuery:
    """A query parsed once: its atoms plus the Theorem 2.1 cache key.

    Built by :meth:`Session.prepare`; every Session entry point accepts
    one in place of the raw query, so a serving layer that needs the key
    *before* evaluating (answer-cache lookup, in-flight coalescing) pays
    one parse and one key computation per request instead of two.
    ``fingerprint`` pins the IDB rule set the key was computed against —
    if ``add_rules`` commits in between, the key is recomputed rather
    than trusted (the atoms themselves never go stale).
    """

    atoms: tuple[Atom, ...]
    key: tuple
    fingerprint: tuple
    #: The bucketed EDB-size digest the key embeds under ``planner="cost"``
    #: (always ``()`` for the static planner).  If ``add_facts`` grows a
    #: relation past the next order of magnitude, the key is recomputed.
    size_fingerprint: tuple = ()


class MaterializedQueryClosed(RuntimeError):
    """The materialization was invalidated (``add_rules``) or closed."""


class MaterializedQuery:
    """One query kept *warm*: the evaluated network retained for deltas.

    After the initial fixpoint the engine's per-node state — goal-node
    answer relations, rule-node environments and stage temporaries, the
    per-stream dedup sets — is kept alive.  Each committed ``add_facts``
    on the owning session enqueues its delta tuples here;
    :meth:`refresh` injects them into the warm network
    (:meth:`~repro.network.engine.MessagePassingEngine.run_delta`) and
    re-runs monotone set-semantics propagation to convergence — classic
    semi-naive evaluation, so a refresh costs work proportional to the
    *new* derivations, not the whole fixpoint.

    Lifecycle: created by :meth:`Session.materialize`, fed by the
    session's writes, invalidated by ``add_rules`` (the IDB fingerprint
    the network was built against changed), released by :meth:`close`.
    Instances are internally locked — refreshes and delta enqueues are
    mutually exclusive — but the *answers* object must be treated as
    read-only by callers.
    """

    def __init__(self, session: "Session", prepared: PreparedQuery, engine, result) -> None:
        self._session = session
        self.prepared = prepared
        self.key = prepared.key
        self._engine = engine
        self._result = result
        #: db_version of the last converged fixpoint this holds.
        self.version = session.db_version
        self._pending: list[Atom] = []
        self._pending_version = self.version
        self._lock = threading.RLock()
        self.refreshes = 0  # delta waves propagated
        self.closed = False

    # ------------------------------------------------------------------
    @property
    def answers(self) -> set[tuple]:
        """The answer set as of the last converged refresh (no implicit work)."""
        return self._result.answers

    @property
    def result(self) -> QueryResult:
        """The full :class:`QueryResult` of the last converged wave."""
        return self._result

    @property
    def stale(self) -> bool:
        """True when committed deltas have not been propagated yet."""
        with self._lock:
            return bool(self._pending) and not self.closed

    # ------------------------------------------------------------------
    def _absorb_write(self, facts: Sequence[Atom], version: int) -> None:
        """Session hook: queue one committed delta batch (cheap, no eval)."""
        with self._lock:
            if self.closed:
                return
            self._pending.extend(facts)
            self._pending_version = version

    def refresh(self) -> QueryResult:
        """Propagate every pending delta through the warm network.

        Returns the (possibly unchanged) :class:`QueryResult`; answers
        after a refresh equal a from-scratch evaluation against the
        current base.  Raises :class:`MaterializedQueryClosed` once the
        materialization has been invalidated.
        """
        with self._lock:
            if self.closed:
                raise MaterializedQueryClosed(
                    "materialized query was invalidated; re-materialize"
                )
            if not self._pending:
                return self._result
            delta, self._pending = self._pending, []
            result = self._engine.run_delta(delta)
            result.graph_cache_hit = True  # the whole network was reused
            result.cache_stats = self._session.cache_stats()
            self._result = result
            self.version = self._pending_version
            self.refreshes += 1
            return result

    def close(self) -> None:
        """Release the warm network (idempotent); further refreshes raise."""
        with self._lock:
            self.closed = True
            self._engine = None
            self._pending = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else f"v{self.version}"
        return (
            f"MaterializedQuery({', '.join(map(str, self.prepared.atoms))} "
            f"[{state}, {self.refreshes} refreshes])"
        )


class Session:
    """A permanent IDB + EDB against which queries are evaluated on demand.

    Parameters
    ----------
    source:
        The knowledge base: Datalog source text or a parsed
        :class:`~repro.core.program.Program` (any ``goal`` rules are
        stripped — the session supplies queries itself).
    sip_factory, coalesce, package_requests, tuple_sets, provenance:
        Evaluation options applied to every query (see
        :class:`~repro.network.engine.MessagePassingEngine`).
    graph_cache_size:
        LRU bound on cached rule/goal graphs (one per distinct query
        variant).  ``0`` disables graph caching — every query rebuilds
        its graph, the pre-cache behavior.
    runtime:
        Which substrate answers queries: ``"simulator"`` (default, the
        in-process scheduler), ``"pool"`` (supervised shard workers),
        ``"mp"`` (supervised one-process-per-node), or ``"cluster"``
        (remote shard workers behind a TCP cluster manager; see
        :mod:`repro.cluster`).  The non-simulator runtimes reuse the
        session's cached graphs — a retry after a worker crash skips
        graph construction — and the shared database (copy-on-write
        under fork; pickled into the job spec for the cluster).
    workers:
        Pool/cluster runtimes: shard worker count (pool default: CPU
        count; cluster default: every registered worker).
    cluster_address:
        Cluster runtime: the manager's ``"host:port"``.  ``None`` makes
        the session start a private localhost
        :class:`~repro.cluster.ClusterHarness` on first query and keep
        it warm until :meth:`close`.
    cluster_listen:
        Cluster runtime, mutually exclusive with ``cluster_address``:
        instead of dialing out, *announce* a manager at this
        ``"host:port"`` (port ``0`` binds an ephemeral port; read the
        bound address from :attr:`cluster_listen_address`).  Remote
        workers dial in with ``repro worker --connect``; the first
        query blocks until at least ``workers`` (default 1) of them
        have registered, bounded by ``timeout``.
    retries, backoff, backoff_factor, jitter:
        Whole-query re-execution policy for the multiprocess runtimes
        (``retries`` = max attempts; safe by monotonicity).  ``retries``
        also accepts a prebuilt
        :class:`~repro.runtime.supervision.RetryPolicy`, which then
        wins over the scalar knobs.  ``backoff_factor > 1`` grows the
        inter-attempt sleep geometrically and ``jitter`` adds a uniform
        random slice; the defaults keep the original fixed-sleep,
        fully deterministic behavior.
    fallback:
        ``"inprocess"`` to degrade to the simulator after retries are
        exhausted (the result is flagged ``degraded``); ``"none"`` to
        propagate the typed error.
    heartbeat_interval:
        Arms wedged-worker (stalled heartbeat) detection in the
        multiprocess runtimes; ``None`` leaves only crash detection on.
    timeout:
        Per-attempt deadline for the multiprocess runtimes.
    """

    def __init__(
        self,
        source: Union[str, Program],
        sip_factory: SipFactory = greedy_sip,
        coalesce: bool = False,
        package_requests: bool = False,
        tuple_sets: bool = True,
        columnar: bool = True,
        planner: str = "static",
        provenance: bool = False,
        graph_cache_size: int = 64,
        runtime: str = "simulator",
        workers: Optional[int] = None,
        cluster_address: Optional[str] = None,
        cluster_listen: Optional[str] = None,
        retries=1,
        backoff: float = 0.0,
        backoff_factor: float = 1.0,
        jitter: float = 0.0,
        fallback: str = "none",
        heartbeat_interval: Optional[float] = None,
        timeout: float = 120.0,
    ) -> None:
        if runtime not in ("simulator", "pool", "mp", "cluster"):
            raise ValueError(
                f"unknown session runtime {runtime!r}; "
                "use 'simulator', 'pool', 'mp', or 'cluster'"
            )
        if planner not in ("static", "cost"):
            raise ValueError(
                f"unknown planner {planner!r} (expected 'static' or 'cost')"
            )
        if isinstance(source, Program):
            program = source
        else:
            program = parse_program(source)
        # Strip any goal rules: the session supplies queries itself.
        self._rules = tuple(
            r for r in program.rules if r.head.predicate != GOAL_PREDICATE
        )
        self._facts = tuple(program.facts)
        # Validate the base eagerly so later queries can skip re-validation.
        Program(self._rules, self._facts)
        self.sip_factory = sip_factory
        self.coalesce = coalesce
        self.package_requests = package_requests
        self.tuple_sets = tuple_sets
        self.columnar = columnar
        self.planner = planner
        self.provenance = provenance
        self.runtime = runtime
        self.workers = workers
        if cluster_address is not None and cluster_listen is not None:
            raise ValueError(
                "cluster_address and cluster_listen are mutually exclusive: "
                "either dial an existing manager or announce one, not both"
            )
        self.cluster_address = cluster_address
        self.cluster_listen = cluster_listen
        # Cluster runtime: the client (and private harness or announced
        # manager, when no address was given) are created lazily on the
        # first query and kept warm across queries — connection reuse is
        # the whole point of a session — until close() tears them down.
        self._cluster_client = None
        self._cluster_harness = None
        self._cluster_manager = None
        self._cluster_lock = threading.Lock()
        self.retries = retries
        self.backoff = backoff
        self.backoff_factor = backoff_factor
        self.jitter = jitter
        self.fallback = fallback
        self.heartbeat_interval = heartbeat_interval
        self.timeout = timeout
        self.last_result: Optional[QueryResult] = None
        self._last_engine = None
        # The shared, index-preserving EDB (one build; grown incrementally).
        self._database = Database.from_facts(self._facts)
        self._edb_predicates = {f.predicate for f in self._facts}
        # The graph cache and the IDB fingerprint that keys it.
        self._graph_cache = GraphCache(graph_cache_size)
        self._rules_fingerprint = rule_set_fingerprint(self._rules)
        # Under the cost planner, cached graphs additionally embed the
        # bucketed EDB sizes their plans were chosen from (recomputed on
        # every add_facts commit; cheap — one len() per relation).
        self._size_fingerprint = self._planner_fingerprint()
        # Monotone knowledge-base version: bumped by every committed
        # mutation (add_facts/add_rules), never by queries.  Anything
        # derived from the base at version v — notably the serving
        # layer's answer cache — stays valid exactly while the counter
        # still reads v, so version mismatch *is* the invalidation.
        self._db_version = 0
        # Live materializations (weak: dropping the handle releases the
        # warm network).  add_facts feeds each one its delta; add_rules
        # invalidates them all — the networks embed the IDB fingerprint.
        self._materialized: "weakref.WeakSet[MaterializedQuery]" = weakref.WeakSet()

    # ------------------------------------------------------------------
    def program_for(self, query: Union[str, Atom, Sequence[Atom]]) -> Program:
        """The program (PIDB + EDB + desugared query) a query induces."""
        atoms = _parse_query_atoms(query)
        rules = list(self._rules)
        rules.append(query_to_rule(atoms))
        return Program(rules, self._facts)

    def prepare(
        self, query: Union[str, Atom, Sequence[Atom], PreparedQuery]
    ) -> PreparedQuery:
        """Parse a query and compute its cache key exactly once.

        The returned :class:`PreparedQuery` is accepted by every query
        entry point (``query``/``run_query``/``materialize``/
        ``cache_key_for``), which then skip their own parse and key
        computation — the serving layer's lookup-then-evaluate flow pays
        for one parse per request, not two.  Idempotent: preparing a
        prepared query returns it unchanged.
        """
        if isinstance(query, PreparedQuery):
            return query
        atoms = tuple(_parse_query_atoms(query))
        for atom_ in atoms:
            if atom_.predicate == GOAL_PREDICATE:
                raise ProgramError(f"'goal' may not be queried directly: {atom_}")
        key = self._key_for(atoms)
        return PreparedQuery(
            atoms, key, self._rules_fingerprint, self._size_fingerprint
        )

    def cache_key_for(
        self, query: Union[str, Atom, Sequence[Atom], PreparedQuery]
    ) -> tuple:
        """The graph-cache key a query resolves to (Theorem 2.1 key).

        Identical for *variant* queries (same predicates, constants, and
        repeated-variable pattern), different whenever the answer could
        differ — which also makes it the in-flight coalescing key used by
        :class:`repro.service.SharedSession`.
        """
        return self._current_key(self.prepare(query))

    def _planner_fingerprint(self) -> tuple:
        """The bucketed EDB-size digest (``()`` under the static planner)."""
        if self.planner == "static":
            return ()
        from .core.planner import size_fingerprint

        log_sizes = {
            predicate: math.log10(max(len(self._database.relation(predicate)), 2))
            for predicate in self._database.predicates()
            if len(self._database.relation(predicate)) > 0
        }
        return size_fingerprint(log_sizes)

    def _key_for(self, atoms: Sequence[Atom]) -> tuple:
        """The graph-cache key for query atoms under the current base."""
        return graph_cache_key(
            self._rules_fingerprint,
            atoms,
            self.sip_factory,
            self.coalesce,
            planner=self.planner,
            size_fingerprint=self._size_fingerprint,
        )

    def _current_key(self, prepared: PreparedQuery) -> tuple:
        """``prepared.key``, recomputed only if a commit outdated it."""
        if (
            prepared.fingerprint == self._rules_fingerprint
            and prepared.size_fingerprint == self._size_fingerprint
        ):
            return prepared.key
        return self._key_for(prepared.atoms)

    def _graph_for(
        self, atoms: Sequence[Atom], key: Optional[tuple] = None
    ) -> tuple[RuleGoalGraph, bool]:
        """The (possibly cached) rule/goal graph for a query; (graph, hit)."""
        if key is None:
            key = self._key_for(atoms)
        cached = self._graph_cache.get(key)
        if cached is not None:
            return cached, True  # type: ignore[return-value]
        # The base was validated at construction / mutation time and the
        # desugared query rule is safe by construction, so skip the
        # per-query O(|EDB|) re-validation the naive path would pay.
        program = Program(
            self._rules + (query_to_rule(atoms),), self._facts, validate=False
        )
        sip_factory = self.sip_factory
        plan_report = None
        if self.planner == "cost":
            from .core.planner import CostPlanner

            cost_planner = CostPlanner.from_database(self._database)
            sip_factory = cost_planner.sip_factory()
            plan_report = cost_planner.report
        graph = build_rule_goal_graph(program, sip_factory, coalesce=self.coalesce)
        if plan_report is not None:
            # Attached before caching; cached graphs are treated as
            # immutable afterwards.  The engine surfaces it on QueryResult.
            graph.plan_report = plan_report
        self._graph_cache.put(key, graph)
        return graph, False

    def query(
        self,
        query: Union[str, Atom, Sequence[Atom], PreparedQuery],
        seed: Optional[int] = None,
    ) -> set[tuple]:
        """Evaluate; answers are tuples over the query's free variables.

        Variable order follows first occurrence in the query, exactly as the
        ``?-`` syntax.  The full :class:`QueryResult` (messages, protocol
        statistics, the graph, cache accounting) is kept in
        :attr:`last_result`; multiprocess runtimes store their own result
        type there, carrying ``attempts`` / ``degraded`` / ``failure_log``
        supervision accounting instead of simulator statistics.  ``seed``
        randomizes delivery latencies in the simulator only.
        """
        result, engine = self._run_query(query, seed)
        self.last_result = result
        self._last_engine = engine
        return result.answers

    def run_query(
        self,
        query: Union[str, Atom, Sequence[Atom], PreparedQuery],
        seed: Optional[int] = None,
    ):
        """Evaluate and return the full result *without* touching session state.

        Unlike :meth:`query` this does not update :attr:`last_result` /
        :meth:`explain` state, so overlapping calls from different threads
        (e.g. :class:`repro.service.SharedSession` readers) never race on
        the result slots.  Shared structures it *does* touch — the graph
        cache and the database counters — are individually thread-safe or
        monotone.  Pass a :class:`PreparedQuery` (from :meth:`prepare`) to
        skip the parse and key computation already paid for.
        """
        result, _ = self._run_query(query, seed)
        return result

    def _run_query(self, query, seed=None):
        """Shared evaluation path; returns ``(result, engine_or_None)``."""
        from .network.engine import MessagePassingEngine

        prepared = self.prepare(query)
        graph, cache_hit = self._graph_for(
            prepared.atoms, self._current_key(prepared)
        )
        if self.runtime != "simulator":
            result = self._query_multiprocess(graph)
            result.graph_cache_hit = cache_hit
            result.cache_stats = self._graph_cache.stats()
            # explain() needs the in-process engine; none exists here.
            return result, None
        engine = MessagePassingEngine(
            graph.program,
            sip_factory=self.sip_factory,
            seed=seed,
            coalesce=self.coalesce,
            package_requests=self.package_requests,
            tuple_sets=self.tuple_sets,
            columnar=self.columnar,
            provenance=self.provenance,
            database=self._database,
            graph=graph,
        )
        result = engine.run()
        result.graph_cache_hit = cache_hit
        result.cache_stats = self._graph_cache.stats()
        return result, engine

    def _query_multiprocess(self, graph: RuleGoalGraph):
        """Dispatch one query to a supervised multiprocess runtime.

        The session's cached graph is passed through, so retries after a
        worker crash skip graph construction entirely, and the shared
        database rides into the workers copy-on-write under fork.
        """
        from .runtime import RetryPolicy, evaluate_multiprocessing, evaluate_pool

        if isinstance(self.retries, RetryPolicy):
            retry = self.retries
        else:
            retry = RetryPolicy(
                max_attempts=int(self.retries),
                backoff=self.backoff,
                backoff_factor=self.backoff_factor,
                jitter=self.jitter,
            )
        common = dict(
            timeout=self.timeout,
            package_requests=self.package_requests,
            tuple_sets=self.tuple_sets,
            columnar=self.columnar,
            retry=retry,
            fallback=self.fallback,
            heartbeat_interval=self.heartbeat_interval,
            graph=graph,
            database=self._database,
        )
        if self.runtime == "cluster":
            from .cluster import evaluate_cluster

            return evaluate_cluster(
                graph.program,
                workers=self.workers,
                client=self._ensure_cluster_client(),
                **common,
            )
        if self.runtime == "pool":
            return evaluate_pool(graph.program, workers=self.workers, **common)
        return evaluate_multiprocessing(graph.program, **common)

    # ------------------------------------------------------------------
    # Cluster runtime plumbing
    # ------------------------------------------------------------------
    def _ensure_cluster_manager(self):
        """Start (once) the announced manager for :attr:`cluster_listen`.

        Does not wait for workers — :meth:`_ensure_cluster_client` does
        that before the first dispatch.  Callers hold
        :attr:`_cluster_lock` or tolerate the idempotent race.
        """
        with self._cluster_lock:
            if self._cluster_manager is None:
                from .cluster.manager import ManagerThread

                host, _, port_text = self.cluster_listen.rpartition(":")
                self._cluster_manager = ManagerThread(
                    host or "127.0.0.1", int(port_text or 0)
                ).start()
            return self._cluster_manager

    @property
    def cluster_listen_address(self) -> str:
        """The announced manager's bound ``"host:port"``.

        Only meaningful with :attr:`cluster_listen`; starts the manager
        if the first query has not already.  Point remote workers here:
        ``repro worker --connect <this address>``.
        """
        if self.cluster_listen is None:
            raise RuntimeError(
                "cluster_listen_address requires Session(cluster_listen=...)"
            )
        return self._ensure_cluster_manager().address

    def _ensure_cluster_client(self):
        """The session's shared cluster client, created on first use.

        With :attr:`cluster_address` set it connects there; with
        :attr:`cluster_listen` set it announces a manager there and
        waits for :attr:`workers` (default 1) remote registrations;
        otherwise a private localhost
        :class:`~repro.cluster.ClusterHarness` (two workers, or
        :attr:`workers`) is started and owned by the session.  Either
        way the TCP connections persist across queries, so retry after
        a worker crash reuses the registration state the manager
        already holds.
        """
        if self.cluster_listen is not None:
            # Started outside the client lock: wait_for_workers can block
            # for the full timeout and must not hold up close().
            manager = self._ensure_cluster_manager()
            manager.wait_for_workers(self.workers or 1, timeout=self.timeout)
        with self._cluster_lock:
            if self._cluster_client is None:
                from .cluster import ClusterClient, ClusterHarness

                if self.cluster_address is not None:
                    self._cluster_client = ClusterClient(self.cluster_address)
                elif self._cluster_manager is not None:
                    self._cluster_client = ClusterClient(
                        self._cluster_manager.address
                    )
                else:
                    self._cluster_harness = ClusterHarness(
                        workers=self.workers or 2
                    ).start()
                    self._cluster_client = self._cluster_harness.client()
            return self._cluster_client

    def cluster_stats(self) -> Optional[dict]:
        """The manager's transport snapshot (cluster runtime; else ``None``).

        JSON-safe: per-worker wire counters (bytes, batches, reconnects,
        heartbeat RTT) plus registration and job totals — the section the
        service ``stats`` op surfaces under ``"cluster"``.
        """
        with self._cluster_lock:
            client = self._cluster_client
        if client is None:
            return None
        try:
            return client.stats()
        except Exception as exc:  # manager down ≠ stats op failure
            return {"error": f"{type(exc).__name__}: {exc}"}

    def close(self) -> None:
        """Release runtime resources (idempotent; simulator: no-op).

        Cluster runtime: closes the client connections and, when the
        session owns a private harness or an announced
        ``cluster_listen`` manager, stops it.  The session remains
        usable — the next query reconnects.
        """
        with self._cluster_lock:
            client, self._cluster_client = self._cluster_client, None
            harness, self._cluster_harness = self._cluster_harness, None
            manager, self._cluster_manager = self._cluster_manager, None
        if client is not None and harness is None:
            client.close()
        if harness is not None:
            harness.stop()  # also closes clients it handed out
        if manager is not None:
            manager.stop()  # announced manager; remote workers will retry

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def materialize(
        self,
        query: Union[str, Atom, Sequence[Atom], PreparedQuery],
        seed: Optional[int] = None,
    ) -> MaterializedQuery:
        """Evaluate once and keep the network warm for incremental deltas.

        Runs the query to its fixpoint and returns a
        :class:`MaterializedQuery` that retains the engine's per-node
        state.  From then on every committed ``add_facts`` queues its
        delta tuples on the materialization; ``refresh()`` propagates
        them semi-naively instead of re-deriving from scratch.
        ``add_rules`` with new rules closes all live materializations —
        their networks embed the old IDB.  Simulator runtime only: the
        multiprocess runtimes tear their node processes down after each
        query, so there is no warm network to retain.
        """
        if self.runtime != "simulator":
            raise ValueError(
                "materialized queries require the simulator runtime; "
                f"this session uses {self.runtime!r} — multiprocess "
                "runtimes invalidate and recompute instead"
            )
        from .network.engine import MessagePassingEngine

        prepared = self.prepare(query)
        graph, cache_hit = self._graph_for(
            prepared.atoms, self._current_key(prepared)
        )
        engine = MessagePassingEngine(
            graph.program,
            sip_factory=self.sip_factory,
            seed=seed,
            coalesce=self.coalesce,
            package_requests=self.package_requests,
            tuple_sets=self.tuple_sets,
            columnar=self.columnar,
            provenance=self.provenance,
            database=self._database,
            graph=graph,
        )
        result = engine.run()
        result.graph_cache_hit = cache_hit
        result.cache_stats = self._graph_cache.stats()
        mat = MaterializedQuery(self, prepared, engine, result)
        self._materialized.add(mat)
        return mat

    def ask(self, query: Union[str, Atom, Sequence[Atom]]) -> bool:
        """Boolean query: is the (possibly non-ground) query satisfiable?"""
        return bool(self.query(query))

    def explain(self, row: tuple):
        """Proof tree for an answer of the *last* query (needs provenance).

        Construct the session with ``provenance=True``; returns a
        :class:`~repro.network.provenance.Derivation`.
        """
        if self._last_engine is None:
            raise RuntimeError("no query has been evaluated yet")
        return self._last_engine.explain(row)

    # ------------------------------------------------------------------
    # Mutation — validate first, commit atomically
    # ------------------------------------------------------------------
    def add_facts(self, facts: Union[str, Iterable[Atom]]) -> None:
        """Extend the EDB (subsequent queries see the new facts).

        Accepts either an iterable of ground :class:`Atom` or program text
        containing only facts.  The shared database and its relation
        indexes grow incrementally; cached rule/goal graphs stay valid
        (Theorem 2.1: the graph never depends on the EDB).  Validation
        happens before any state changes, so a rejected batch leaves the
        session exactly as it was.
        """
        if isinstance(facts, str):
            parsed = parse_program(facts, validate=False)
            if parsed.rules:
                raise ProgramError(
                    "add_facts accepts facts only; use add_rules for rules"
                )
            new_facts: tuple[Atom, ...] = tuple(parsed.facts)
        else:
            new_facts = tuple(facts)
        idb = {r.head.predicate for r in self._rules}
        for fact in new_facts:
            if not fact.is_ground():
                raise ProgramError(f"EDB fact {fact} is not ground")
            if fact.predicate == GOAL_PREDICATE:
                raise ProgramError(
                    "the distinguished predicate 'goal' may not appear in the EDB"
                )
            if fact.predicate in idb:
                raise ProgramError(
                    f"fact predicate {fact.predicate} is defined by IDB rules"
                )
        # May raise on arity mismatch — internally atomic, nothing committed.
        self._database.add_facts(new_facts)
        self._facts = self._facts + new_facts
        self._edb_predicates |= {f.predicate for f in new_facts}
        if new_facts:
            self._db_version += 1
            self._size_fingerprint = self._planner_fingerprint()
            for mat in list(self._materialized):
                mat._absorb_write(new_facts, self._db_version)

    def add_rules(self, source: Union[str, Iterable[Rule]]) -> None:
        """Extend the permanent IDB with more rules.

        The combined program is validated *before* anything is committed —
        a validation failure leaves rules, facts, database, and caches
        untouched.  On success the graph cache is flushed: cached graphs
        were built against the old rule set.
        """
        if isinstance(source, str):
            parsed = parse_program(source, validate=False)
            new_rules: tuple[Rule, ...] = tuple(parsed.rules)
            new_facts: tuple[Atom, ...] = tuple(parsed.facts)
        else:
            new_rules = tuple(source)
            new_facts = ()
        new_rules = tuple(
            r for r in new_rules if r.head.predicate != GOAL_PREDICATE
        )
        candidate_rules = self._rules + new_rules
        candidate_facts = self._facts + new_facts
        # Validate the combined program first for a clear error site.
        Program(candidate_rules, candidate_facts)
        if new_facts:
            # Atomic: raises on arity mismatch before touching anything.
            self._database.add_facts(new_facts)
            self._edb_predicates |= {f.predicate for f in new_facts}
        self._rules = candidate_rules
        self._facts = candidate_facts
        if new_rules:
            self._rules_fingerprint = rule_set_fingerprint(self._rules)
            self._graph_cache.clear()
        if new_rules or new_facts:
            self._db_version += 1
        if new_facts:
            self._size_fingerprint = self._planner_fingerprint()
        if new_rules:
            # Live networks embed the old IDB — invalidate, don't refresh.
            for mat in list(self._materialized):
                mat.close()
        elif new_facts:
            for mat in list(self._materialized):
                mat._absorb_write(new_facts, self._db_version)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def rules(self) -> tuple[Rule, ...]:
        """The permanent IDB."""
        return self._rules

    @property
    def facts(self) -> tuple[Atom, ...]:
        """The extensional database."""
        return self._facts

    @property
    def database(self) -> Database:
        """The shared EDB instance handed to every query's engine.

        Its ``scans``/``indexed_lookups``/``rows_retrieved`` counters are
        cumulative across the session; each :class:`QueryResult` reports
        per-query deltas.
        """
        return self._database

    @property
    def db_version(self) -> int:
        """The monotone version of the knowledge base (mutation counter).

        Bumped once per committed ``add_facts``/``add_rules`` that
        actually changed something.  Two reads of the session at the
        same version are guaranteed to see the same rules and facts, so
        ``(cache_key_for(q), db_version)`` keys an answer set soundly:
        Theorem 2.1 covers the graph/query side, the version covers the
        EDB/IDB side.
        """
        return self._db_version

    @property
    def graph_cache(self) -> GraphCache:
        """The session's rule/goal-graph cache (for inspection and tests)."""
        return self._graph_cache

    def cache_stats(self) -> CacheStats:
        """A snapshot of graph-cache hit/miss/eviction counters."""
        return self._graph_cache.stats()
