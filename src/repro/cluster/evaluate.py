"""``evaluate_cluster``: the multi-host runtime behind ``runtime="cluster"``.

The call shape deliberately mirrors ``runtime/pool_engine.evaluate_pool`` —
same knobs, same retry/fallback semantics, same accounting vocabulary —
with the worker pool replaced by whatever workers are registered at a
cluster manager.  Point it at a running manager with ``address=...`` (or a
shared :class:`~repro.cluster.client.ClusterClient`), or give it neither
and it spins up a private localhost :class:`~repro.cluster.harness
.ClusterHarness` for the duration of the call — the CI path.

Per attempt, the client ships one pickled job spec (program + prebuilt
rule/goal graph + database + options); every worker rebuilds the same
engine and the same deterministic shard map from it.  Whole-query retry on
worker loss re-dispatches over the workers still registered, so losing a
worker degrades capacity, not correctness — monotone set semantics makes
the re-execution reach the identical least fixpoint.
"""

from __future__ import annotations

import copy
import pickle
from dataclasses import dataclass, field
from typing import Optional, Union

from ..core.adornment import AdornedAtom
from ..core.program import Program
from ..core.rulegoal import RuleGoalGraph, SipFactory, build_rule_goal_graph
from ..core.sips import greedy_sip
from ..network.engine import MessagePassingEngine
from ..network.nodes import DRIVER_ID
from ..relational.database import Database
from ..runtime.faults import FaultPlan
from ..runtime.supervision import RetryPolicy, run_with_retry
from .client import ClusterClient
from .framing import rows_from_wire

__all__ = ["ClusterQueryResult", "evaluate_cluster"]


@dataclass
class ClusterQueryResult:
    """Answers plus transport + supervision accounting from a cluster run.

    The logical/physical split carries over from the in-process accounting
    (PR 3): per-shard counters are in logical tuples (a TupleSet weighs
    ``len(rows)``), ``transport`` adds the wire-level view (bytes, frames,
    reconnects, heartbeat RTT) that has no in-process analogue.
    """

    answers: set[tuple]
    completed: bool
    workers: int
    cross_messages: int  # logical tuples that crossed a shard boundary
    cross_batches: int  # BATCH frames used to carry them
    driver_last_seq_sent: int
    driver_last_upto_ended: int
    shards: dict[int, dict] = field(default_factory=dict)  # per-shard counters
    transport: dict[str, dict] = field(default_factory=dict)  # per-worker wire
    attempts: int = 1
    degraded: bool = False
    failure_log: list[str] = field(default_factory=list)
    _labels: dict[int, str] = field(default_factory=dict, repr=False)

    @property
    def batching_factor(self) -> float:
        if not self.cross_batches:
            return 0.0
        return self.cross_messages / self.cross_batches

    @property
    def total_messages(self) -> int:
        """All delivered logical messages, summed across shards."""
        return sum(s.get("delivered_logical", 0) for s in self.shards.values())

    @property
    def physical_messages(self) -> int:
        return sum(s.get("delivered_physical", 0) for s in self.shards.values())

    @property
    def protocol_messages(self) -> int:
        return sum(s.get("protocol_messages", 0) for s in self.shards.values())

    @property
    def logical_tuple_rows(self) -> int:
        """Logical tuple-message rows delivered, summed across shards.

        This is the runtime-invariant slice of the accounting: per-stream
        dedup (``send_rows``'s ``sent_rows`` filter) makes the set of rows
        each stream carries a property of the least fixpoint, not of
        batching or timing, so this total must match the in-process
        runtime's exactly — the parity tests assert it.  Protocol-wave and
        end-message *counts* legitimately vary with scheduling.
        """
        return sum(s.get("tuple_rows", 0) for s in self.shards.values())

    @property
    def bytes_on_wire(self) -> int:
        return sum(
            t.get("bytes_in", 0) + t.get("bytes_out", 0)
            for t in self.transport.values()
        )

    def summary(self) -> str:
        """The compact report, matching ``QueryResult.summary``'s shape."""
        lines = [
            f"answers: {len(self.answers)}",
            f"messages: {self.total_messages} logical in "
            f"{self.physical_messages} deliveries "
            f"(tuple rows {self.logical_tuple_rows}, "
            f"protocol {self.protocol_messages})",
            f"cross-shard: {self.cross_messages} logical tuples in "
            f"{self.cross_batches} batches "
            f"(avg batch {self.batching_factor:.1f}) over {self.workers} workers",
            f"wire: {self.bytes_on_wire} bytes, "
            f"{sum(t.get('reconnects', 0) for t in self.transport.values())} "
            f"reconnects",
        ]
        rtts = [
            t["heartbeat_rtt_ms"]
            for t in self.transport.values()
            if t.get("heartbeat_rtt_ms") is not None
        ]
        if rtts:
            lines.append(
                f"heartbeat rtt: {min(rtts):.2f}..{max(rtts):.2f} ms "
                f"across {len(rtts)} workers"
            )
        if self.degraded or self.attempts > 1:
            note = f"supervision: {self.attempts} attempt(s)"
            if self.degraded:
                note += ", degraded to the in-process runtime"
            lines.append(note)
        return "\n".join(lines)

    def node_table(self, top: int = 10) -> str:
        """Busiest nodes by logical messages received, cluster-wide.

        Built from the per-shard ``by_receiver``/``tuples_by_node`` counters
        the workers report, labeled through the client-side graph — the
        same hot-spot view ``QueryResult.node_table`` gives in process,
        with a shard column showing placement.
        """
        received: dict[int, int] = {}
        tuples: dict[int, int] = {}
        shard_of: dict[int, int] = {}
        for shard, counters in self.shards.items():
            for key, count in counters.get("by_receiver", {}).items():
                node_id = int(key)
                received[node_id] = received.get(node_id, 0) + count
                shard_of[node_id] = shard
            for key, count in counters.get("tuples_by_node", {}).items():
                node_id = int(key)
                tuples[node_id] = tuples.get(node_id, 0) + count
                shard_of.setdefault(node_id, shard)
        rows = sorted(
            (
                (received.get(nid, 0), tuples.get(nid, 0), nid)
                for nid in set(received) | set(tuples)
            ),
            reverse=True,
        )
        width = max(
            (len(self._label(nid)) for _, _, nid in rows[:top]), default=4
        )
        lines = [f"{'node'.ljust(width)}  msgs-in  tuples  shard"]
        for count, stored, nid in rows[:top]:
            lines.append(
                f"{self._label(nid).ljust(width)}  {count:7d}  {stored:6d}"
                f"  {shard_of.get(nid, 0):5d}"
            )
        return "\n".join(lines)

    def _label(self, node_id: int) -> str:
        if node_id == DRIVER_ID:
            return "driver"
        return self._labels.get(node_id, f"edb-replica:{node_id}")


# ----------------------------------------------------------------------
def _result_from_reply(reply: dict, labels: dict[int, str]) -> ClusterQueryResult:
    shards = {int(k): v for k, v in reply.get("shards", {}).items()}
    cross_messages = sum(
        sum(s.get("sent", {}).values()) for s in shards.values()
    )
    cross_batches = sum(s.get("batches_out", 0) for s in shards.values())
    return ClusterQueryResult(
        answers={tuple(row) for row in rows_from_wire(reply.get("answers", []))},
        completed=True,
        workers=reply.get("workers", 0),
        cross_messages=cross_messages,
        cross_batches=cross_batches,
        driver_last_seq_sent=reply.get("seq", 0),
        driver_last_upto_ended=reply.get("upto", 0),
        shards=shards,
        transport=reply.get("transport", {}),
        _labels=labels,
    )


def evaluate_cluster(
    program: Program,
    sip_factory: SipFactory = greedy_sip,
    query_goal: Optional[AdornedAtom] = None,
    workers: Optional[int] = None,
    batch_size: int = 64,
    timeout: float = 120.0,
    coalesce: bool = False,
    package_requests: bool = False,
    edb_shards: Optional[int] = None,
    tuple_sets: bool = True,
    columnar: bool = True,
    planner: str = "static",
    retry: Union[RetryPolicy, int, None] = None,
    fallback: str = "none",
    heartbeat_interval: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
    graph: Optional[RuleGoalGraph] = None,
    database: Optional[Database] = None,
    address: Optional[str] = None,
    listen: Optional[str] = None,
    client: Optional[ClusterClient] = None,
) -> ClusterQueryResult:
    """Evaluate the query on a cluster of remote shard workers.

    Targets, in precedence order: an existing ``client``, a manager
    ``address`` (``"host:port"``), a ``listen`` address to *announce* a
    manager at for the call's duration (remote ``repro worker --connect``
    processes dial in; blocks until ``workers`` or 1 register, bounded by
    ``timeout``), or — when none is given — a private two-worker
    localhost :class:`ClusterHarness` torn down after the call.
    All other knobs match :func:`~repro.runtime.pool_engine.evaluate_pool`;
    ``edb_shards`` defaults to the number of shards the manager actually
    dispatches (it sends one shard per registered worker).
    """
    if fallback not in ("none", "inprocess"):
        raise ValueError(f"unknown fallback {fallback!r}; use 'none' or 'inprocess'")
    policy = RetryPolicy.of(retry)
    plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
    if planner not in ("static", "cost"):
        raise ValueError(f"unknown planner {planner!r} (expected 'static' or 'cost')")
    if graph is None:
        if planner == "cost":
            from ..core.planner import CostPlanner

            # Seed from the facts when no database is shared, exactly as
            # the in-process engine does — parity demands the same plan,
            # hence the same graph, hence the same logical row totals.
            cost_planner = CostPlanner.from_database(
                database
                if database is not None
                else Database.from_facts(program.facts)
            )
            sip_factory = cost_planner.sip_factory()
        graph = build_rule_goal_graph(
            program, sip_factory, query_goal=query_goal, coalesce=coalesce
        )
        if planner == "cost":
            graph.plan_report = cost_planner.report

    labels: dict[int, str] = {}
    for node_id in list(graph.goal_nodes) + list(graph.rule_nodes):
        labels[node_id] = graph.node_label(node_id)

    # The job spec crosses the wire pickled.  SIP decisions are already
    # baked into the graph's arcs, so workers never call its sip_factory
    # — but the cost planner's factory is a closure that cannot pickle.
    # Ship a shallow copy with a picklable placeholder instead (the
    # session's cached graph must not be mutated), and without the plan
    # report (client-side introspection only).
    wire_graph = copy.copy(graph)
    wire_graph.sip_factory = greedy_sip
    if getattr(wire_graph, "plan_report", None) is not None:
        wire_graph.plan_report = None

    if address is not None and listen is not None:
        raise ValueError(
            "address and listen are mutually exclusive: either dial an "
            "existing manager or announce one, not both"
        )
    own_harness = None
    own_client = None
    own_manager = None
    if client is None:
        if address is not None:
            client = own_client = ClusterClient(address)
        elif listen is not None:
            from .manager import ManagerThread

            host, _, port_text = listen.rpartition(":")
            own_manager = ManagerThread(
                host or "127.0.0.1", int(port_text or 0)
            ).start()
            try:
                own_manager.wait_for_workers(workers or 1, timeout=timeout)
            except Exception:
                own_manager.stop()
                raise
            client = own_client = ClusterClient(own_manager.address)
        else:
            from .harness import ClusterHarness

            own_harness = ClusterHarness(workers=workers or 2)
            own_harness.start()
            client = own_harness.client()

    def attempt(number: int) -> ClusterQueryResult:
        armed = plan.for_attempt(number) if plan is not None else None
        spec = {
            "program": program,
            "graph": wire_graph,
            "database": database,
            "batch_size": batch_size,
            "package_requests": package_requests,
            "edb_shards": edb_shards,
            "tuple_sets": tuple_sets,
            "columnar": columnar,
            "fault_plan": armed,
        }
        header = {
            "workers": workers,
            "timeout": timeout,
            "heartbeat_interval": heartbeat_interval,
        }
        if armed is not None and armed.has_link_faults():
            header["faults"] = armed.link_fields()
        reply = client.submit(header, pickle.dumps(spec), timeout)
        return _result_from_reply(reply, labels)

    def degraded_fallback() -> ClusterQueryResult:
        engine = MessagePassingEngine(
            program,
            package_requests=package_requests,
            tuple_sets=tuple_sets,
            columnar=columnar,
            database=database,
            graph=graph,
        )
        in_process = engine.run()
        stream = engine.driver.feeders[engine.graph.root]
        return ClusterQueryResult(
            answers=set(in_process.answers),
            completed=in_process.completed,
            workers=0,  # no cluster answered this query
            cross_messages=0,
            cross_batches=0,
            driver_last_seq_sent=stream.last_seq_sent,
            driver_last_upto_ended=stream.last_upto_ended,
            _labels=labels,
        )

    try:
        result, attempts, degraded, failure_log = run_with_retry(
            attempt,
            policy,
            degraded_fallback if fallback == "inprocess" else None,
        )
    finally:
        if own_client is not None:
            own_client.close()
        if own_harness is not None:
            own_harness.stop()
        if own_manager is not None:
            own_manager.stop()  # workers fall into their reconnect loop
    result.attempts = attempts
    result.degraded = degraded
    result.failure_log = list(failure_log)
    return result
