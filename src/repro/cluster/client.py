"""The cluster client: a connection-pooled blocking front to the manager.

``evaluate_cluster`` (and through it ``Session(runtime="cluster")`` and the
service) submits jobs here.  The pool exists because the service's worker
threads share one client: each submission checks a connection out, holds it
for the round trip (JOB → RESULT), and returns it — the manager serializes
evaluations anyway, so pool_size bounds connection churn, not parallelism.

Failures map onto the *same* typed vocabulary as the local runtimes
(``runtime/supervision.py``): a worker that died mid-job raises
:class:`WorkerCrashError`, a silent one :class:`WorkerStallError`, a
deadline :class:`EvaluationTimeout` — so ``run_with_retry`` and every
caller built for the pool runtime works against the cluster unchanged.
"""

from __future__ import annotations

import socket
import struct
import json
import threading
from typing import Optional

from ..runtime.supervision import (
    EvaluationTimeout,
    RuntimeFailure,
    WorkerCrashError,
    WorkerStallError,
)
from .framing import FrameError, FrameSocket, FrameType

__all__ = ["ClusterClient", "ClusterError", "NoWorkersError"]


class ClusterError(RuntimeFailure):
    """A cluster-transport failure (manager unreachable, handshake refused)."""


class NoWorkersError(ClusterError):
    """The manager has no registered workers to dispatch onto.

    Retryable on purpose: a worker that crashed or flapped may re-register
    within a retry policy's backoff window.
    """


def _parse_address(address: str) -> tuple[str, int]:
    host, _, port_text = address.rpartition(":")
    return host or "127.0.0.1", int(port_text)


class ClusterClient:
    """Submit evaluations to a :class:`~repro.cluster.manager.ClusterManager`."""

    def __init__(self, address: str, pool_size: int = 2) -> None:
        self.address = address
        self.pool_size = max(1, pool_size)
        self._idle: list[FrameSocket] = []
        self._lock = threading.Lock()
        self.closed = False

    # ------------------------------------------------------------------
    def _connect(self) -> FrameSocket:
        host, port = _parse_address(self.address)
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
        except OSError as exc:
            raise ClusterError(f"cannot reach cluster manager at {self.address}: {exc}")
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        fs = FrameSocket(sock)
        fs.send_json(FrameType.HELLO, {"role": "client"})
        try:
            welcome = fs.recv_frame(timeout=10.0)
        except (FrameError, OSError) as exc:
            fs.close()
            raise ClusterError(f"handshake with {self.address} failed: {exc}")
        if welcome.ftype == FrameType.REJECT:
            fs.close()
            raise ClusterError(
                f"manager rejected the connection: "
                f"{welcome.json().get('reason', 'unknown reason')}"
            )
        if welcome.ftype != FrameType.WELCOME:
            fs.close()
            raise ClusterError(f"expected WELCOME, got frame type {welcome.ftype}")
        return fs

    def _acquire(self) -> FrameSocket:
        with self._lock:
            if self._idle:
                return self._idle.pop()
        return self._connect()

    def _release(self, fs: FrameSocket) -> None:
        with self._lock:
            if not self.closed and len(self._idle) < self.pool_size:
                self._idle.append(fs)
                return
        fs.close()

    # ------------------------------------------------------------------
    def submit(self, header: dict, blob: bytes, timeout: float) -> dict:
        """One evaluation round trip; returns the RESULT payload on success.

        Raises the typed supervision error the RESULT describes, so the
        caller's retry policy treats remote failures exactly like local
        ones.
        """
        fs = self._acquire()
        head = json.dumps(header, separators=(",", ":")).encode("utf-8")
        try:
            fs.send_frame(
                FrameType.JOB, struct.pack("!I", len(head)) + head + blob
            )
            while True:
                try:
                    frame = fs.recv_frame(timeout=timeout)
                except socket.timeout:
                    # Tell the manager to tear the job down, then surface
                    # the same timeout the local supervisor would raise.
                    try:
                        fs.send_json(FrameType.ABORT, {})
                    except Exception:
                        pass
                    fs.close()
                    raise EvaluationTimeout(
                        f"cluster evaluation did not complete within {timeout}s"
                    )
                except (FrameError, OSError) as exc:
                    fs.close()
                    raise ClusterError(
                        f"lost the cluster manager mid-job: {exc}"
                    )
                if frame.ftype == FrameType.RESULT:
                    break
        except BaseException:
            raise
        else:
            self._release(fs)
        result = frame.json()
        if result.get("ok"):
            return result
        self._raise_failure(result, timeout)

    def _raise_failure(self, result: dict, timeout: float) -> None:
        kind = result.get("kind")
        where = result.get("where", "")
        if kind == "crash":
            raise WorkerCrashError(
                where or "remote worker",
                exitcode=result.get("exitcode"),
                remote_traceback=result.get("traceback"),
            )
        if kind == "stall":
            raise WorkerStallError(
                where or "remote worker",
                result.get("stalled_for", 0.0),
                result.get("heartbeat_interval") or 0.0,
            )
        if kind == "timeout":
            raise EvaluationTimeout(
                f"cluster evaluation did not complete within {timeout}s "
                f"({where})"
            )
        if kind == "no_workers":
            raise NoWorkersError(
                f"cluster manager at {self.address} has no registered workers"
            )
        raise ClusterError(f"cluster job failed: {kind} ({where})")

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The manager's per-worker transport counters (service stats op)."""
        fs = self._acquire()
        try:
            fs.send_json(FrameType.STATS_REQ, {})
            while True:
                frame = fs.recv_frame(timeout=10.0)
                if frame.ftype == FrameType.STATS_REP:
                    return frame.json()
        except (FrameError, OSError, socket.timeout) as exc:
            fs.close()
            raise ClusterError(f"stats request failed: {exc}")
        finally:
            if fs.sock.fileno() != -1:
                self._release(fs)

    def close(self) -> None:
        with self._lock:
            self.closed = True
            idle, self._idle = self._idle, []
        for fs in idle:
            fs.close()
